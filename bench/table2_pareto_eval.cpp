// Table 2 — evaluation of the predicted Pareto fronts: binary-hypervolume
// coverage difference D(P*, P') with reference point (0, 2), set
// cardinalities, and the objective-space distances at the two extreme points
// (max speedup / min energy), sorted by coverage like the paper.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace repro;

int main() {
  bench::print_header("Table 2", "evaluation of predicted Pareto fronts");
  auto& pipeline = bench::shared_pipeline();

  common::TablePrinter table(
      {"Benchmark", "D(P*,P')", "|P'|", "|P*|", "max speedup dist", "min energy dist"},
      {common::Align::kLeft, common::Align::kRight, common::Align::kRight,
       common::Align::kRight, common::Align::kRight, common::Align::kRight});
  common::CsvDocument csv({"benchmark", "coverage", "pred_size", "opt_size",
                           "max_speedup_ds", "max_speedup_de", "min_energy_ds",
                           "min_energy_de"});

  for (const auto& pc : pipeline.pareto_evaluation()) {
    const auto& e = pc.evaluation;
    table.add_row(
        {pc.name, bench::fmt(e.coverage, 4), std::to_string(e.predicted_size),
         std::to_string(e.optimal_size),
         "(" + bench::fmt(e.max_speedup.d_speedup) + ", " +
             bench::fmt(e.max_speedup.d_energy) + ")",
         "(" + bench::fmt(e.min_energy.d_speedup) + ", " +
             bench::fmt(e.min_energy.d_energy) + ")"});
    csv.add_row({pc.name, bench::fmt(e.coverage, 6), std::to_string(e.predicted_size),
                 std::to_string(e.optimal_size), bench::fmt(e.max_speedup.d_speedup, 6),
                 bench::fmt(e.max_speedup.d_energy, 6),
                 bench::fmt(e.min_energy.d_speedup, 6),
                 bench::fmt(e.min_energy.d_energy, 6)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("reference point (0.0, 2.0); P' scored at measured objectives.\n");
  std::printf("paper Table 2: D ranges 0.0059 (PerlinNoise) to 0.0660 (k-NN);\n");
  std::printf("|P'| 9-12, |P*| 6-14; max-speedup extreme exact in 7/12 cases.\n");
  const auto path = bench::dump_csv(csv, "table2_pareto_eval.csv");
  std::printf("table written to %s\n", path.c_str());
  return 0;
}
