// Figure 4 — supported combinations of memory and core frequencies on the
// GTX Titan X (a) and the Tesla P100 (b), including the NVML-reported "gray"
// configurations that silently clamp, and the default configuration.
//
// Uses the nvmlsim API end-to-end: this is exactly the enumeration the paper
// performs with nvmlDeviceGetSupportedMemoryClocks /
// nvmlDeviceGetSupportedGraphicsClocks.
#include <cstdio>

#include "bench_util.hpp"
#include "gpusim/freq_table.hpp"
#include "nvml/wrapper.hpp"

using namespace repro;

namespace {

void enumerate_device(unsigned index, const gpusim::FrequencyDomain& domain,
                      common::CsvDocument& csv) {
  const auto device = nvml::Device::by_index(index);
  if (!device.ok()) {
    std::fprintf(stderr, "device %u: %s\n", index, device.error().to_string().c_str());
    std::exit(1);
  }
  const auto name = device.value().name().value_or("?");
  std::printf("--- %s ---\n", name.c_str());

  const auto mems = device.value().supported_memory_clocks().value_or({});
  std::size_t actual_total = 0;
  std::size_t gray_total = 0;
  for (unsigned mem : mems) {
    const auto cores = device.value().supported_graphics_clocks(mem).value_or({});
    std::size_t actual = 0;
    std::size_t gray = 0;
    int min_core = 1 << 30;
    int max_core = 0;
    for (unsigned core : cores) {
      const gpusim::FrequencyConfig config{static_cast<int>(core), static_cast<int>(mem)};
      const bool is_actual = domain.is_actual(config);
      actual += is_actual ? 1 : 0;
      gray += is_actual ? 0 : 1;
      min_core = std::min(min_core, static_cast<int>(core));
      max_core = std::max(max_core, static_cast<int>(core));
      csv.add_row({name, std::to_string(mem), std::to_string(core),
                   is_actual ? "actual" : "reported_clamped"});
    }
    const auto level = domain.level_of(static_cast<int>(mem));
    std::printf(
        "  mem %4u MHz (%s): %3zu core clocks reported (%zu actual, %zu clamp to cap), "
        "range [%d, %d] MHz\n",
        mem, level.ok() ? gpusim::mem_level_label(level.value()) : "-", cores.size(),
        actual, gray, min_core, max_core);
    actual_total += actual;
    gray_total += gray;
  }
  const auto def = domain.default_config();
  std::printf("  default configuration: core %d MHz, mem %d MHz\n", def.core_mhz,
              def.mem_mhz);
  std::printf("  total: %zu actual configurations, %zu gray points\n\n", actual_total,
              gray_total);
}

}  // namespace

int main() {
  bench::print_header("Figure 4", "supported memory/core frequency combinations");

  nvml::Session session;
  if (!session.ok()) {
    std::fprintf(stderr, "nvmlInit failed\n");
    return 1;
  }
  common::CsvDocument csv({"device", "mem_mhz", "core_mhz", "kind"});
  enumerate_device(0, gpusim::FrequencyDomain::titan_x(), csv);   // Fig. 4a
  enumerate_device(1, gpusim::FrequencyDomain::tesla_p100(), csv);  // Fig. 4b

  std::printf("paper §4.1: mem-L supports 6 core clocks, mem-l 71, mem-h/H 50 each;\n");
  std::printf("requests above the cap are accepted by NVML but clamp silently.\n");
  const auto path = bench::dump_csv(csv, "fig4_freq_domains.csv");
  std::printf("full enumeration written to %s\n", path.c_str());
  return 0;
}
