// Portability — §4.1: "The methodology introduced by this work is portable"
// (the paper ran on both a Titan X and a Tesla P100, focusing on the Titan X
// because the P100 exposes a single memory clock). This harness retrains the
// full pipeline against the simulated Tesla P100 and reports the same error
// and Pareto statistics, demonstrating that nothing in the method is tied to
// the Titan X frequency topology.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/predictor.hpp"
#include "pareto/front_metrics.hpp"
#include "pareto/pareto.hpp"

using namespace repro;

int main() {
  bench::print_header("Portability", "the full pipeline on the simulated Tesla P100");

  // Retarget the whole stack by swapping the backend device — nothing else
  // in the method changes.
  const gpusim::GpuSimulator sim(gpusim::DeviceModel::tesla_p100());
  auto predictor = core::Predictor::builder()
                       .backend(std::make_unique<core::SimulatorBackend>(sim))
                       .build();
  if (!predictor.ok()) {
    std::fprintf(stderr, "training failed: %s\n", predictor.error().message.c_str());
    return 1;
  }
  const auto& model = predictor.value().model();
  std::printf("device: %s\n", sim.device().name.c_str());
  std::printf("configurations: %zu (single memory clock — the paper's \"less\n",
              sim.freq().all_actual().size());
  std::printf("interesting\" scenario); training samples: %zu\n\n",
              model.training_samples());

  common::TablePrinter table(
      {"benchmark", "speedup RMSE [%]", "energy RMSE [%]", "D(P*,P')", "|P*|"},
      {common::Align::kLeft, common::Align::kRight, common::Align::kRight,
       common::Align::kRight, common::Align::kRight});
  common::CsvDocument csv({"benchmark", "speedup_rmse", "energy_rmse", "coverage",
                           "opt_size"});

  const auto configs = sim.freq().all_actual();
  for (const auto& benchmark : kernels::test_suite()) {
    const auto features = kernels::benchmark_features(benchmark);
    if (!features.ok()) continue;
    const auto measured = sim.characterize(benchmark.profile, configs);
    const auto predicted = model.predict_all(features.value(), configs);

    std::vector<double> pred_s, true_s, pred_e, true_e;
    std::vector<pareto::Point> measured_points;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      pred_s.push_back(predicted[i].speedup);
      true_s.push_back(measured[i].speedup);
      pred_e.push_back(predicted[i].energy);
      true_e.push_back(measured[i].norm_energy);
      measured_points.push_back({measured[i].speedup, measured[i].norm_energy,
                                 static_cast<std::uint32_t>(i)});
    }
    const auto true_front = pareto::pareto_set_fast(measured_points);

    // Predicted Pareto set, evaluated at measured objectives (no mem-L
    // heuristic fires: the P100 has no 405 MHz memory domain).
    const auto pareto_pred = model.predict_pareto(features.value(), configs);
    std::vector<pareto::Point> pred_measured;
    for (const auto& p : pareto_pred) {
      const auto def = sim.run_default(benchmark.profile);
      const auto run = sim.run_at(benchmark.profile, p.config);
      pred_measured.push_back({def.time_ms / run.time_ms, run.energy_j / def.energy_j, 0});
    }
    const auto eval = pareto::evaluate_front(true_front, pred_measured);

    const double s_rmse = 100.0 * common::rmse(pred_s, true_s);
    const double e_rmse = 100.0 * common::rmse(pred_e, true_e);
    table.add_row({benchmark.name, bench::fmt(s_rmse, 2), bench::fmt(e_rmse, 2),
                   bench::fmt(eval.coverage, 4), std::to_string(eval.optimal_size)});
    csv.add_row({benchmark.name, bench::fmt(s_rmse, 4), bench::fmt(e_rmse, 4),
                 bench::fmt(eval.coverage, 6), std::to_string(eval.optimal_size)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("with a single memory domain the model only has to learn the core-\n");
  std::printf("frequency response — no erratic low-memory clocks, tighter errors.\n");
  const auto path = bench::dump_csv(csv, "portability_p100.csv");
  std::printf("written to %s\n", path.c_str());
  return 0;
}
