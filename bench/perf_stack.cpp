// perf_stack — microbenchmark for the parallel + vectorized prediction
// stack. Times the hot paths this layer optimizes, serial (1 thread /
// reference algorithm / sequential scalar kernel) against the optimized
// path (thread pool / blocked kernels / O(n log n) skyline / SIMD inner
// kernels), at several problem sizes, and emits the results as
// BENCH_perf_stack.json — the measurement baseline future perf PRs are
// judged against. The simd_kernels cases (simd_dot, simd_squared_distance,
// simd_kernel_matrix) compare the pre-SIMD sequential loops against the
// common::simd layer, and their bit_identical field checks the std-simd
// backend against the unrolled fallback (the determinism contract of
// docs/DETERMINISM.md). The serving section measures serve::Service —
// micro-batched, sharded prediction under concurrent clients — reporting
// throughput and latency percentiles per batching window, with
// bit_identical comparing every response against direct predict_batch.
//
//   perf_stack [--smoke] [--threads N] [--out PATH]
//
// --smoke shrinks every case to seconds-total (CI); --threads overrides the
// parallel thread count (default: ThreadPool::default_thread_count(), which
// itself honours REPRO_THREADS). Every timed pair also verifies that the
// optimized output is bit-identical to its reference and records the
// verdict in the JSON.
#include "common/alloc_hook.hpp"  // this binary's one hook TU (--alloc-report)

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <string_view>

#include "common/arena.hpp"
#include "common/buffer_pool.hpp"
#include "common/queue.hpp"

#include "benchgen/benchgen.hpp"
#include "clfront/features.hpp"
#include "clfront/stream.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "core/measurement.hpp"
#include "core/model.hpp"
#include "core/predictor.hpp"
#include "ml/kernel.hpp"
#include "ml/matrix.hpp"
#include "ml/svr.hpp"
#include "ml/synthetic.hpp"
#include "fleet/balancer.hpp"
#include "obs/metrics.hpp"
#include "pareto/pareto.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace repro;

namespace {

struct CaseResult {
  std::string name;
  std::size_t size = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool bit_identical = false;
};

double time_ms(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

constexpr auto make_dataset = ml::make_synthetic_regression;

std::vector<pareto::Point> make_points(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<pareto::Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = {rng.uniform(0.5, 1.5), rng.uniform(0.5, 1.5),
              static_cast<std::uint32_t>(i)};
  }
  return pts;
}

ml::SvrParams rbf_params() {
  ml::SvrParams params;
  params.kernel = ml::KernelFunction::rbf(0.5);
  params.c = 10.0;
  params.epsilon = 0.05;
  params.max_iter = 20'000;  // cap SMO so the timed cost is cache + solve
  return params;
}

/// SVR training: the parallel win is the kernel-matrix construction.
CaseResult bench_svr_train(std::size_t n, std::size_t threads, int reps) {
  constexpr std::size_t kDim = 12;
  ml::Matrix x;
  std::vector<double> y;
  make_dataset(n, kDim, 0x5EED0000 + n, x, y);

  std::string serial_model;
  std::string parallel_model;
  common::ThreadPool::set_global_threads(1);
  const double serial_ms = time_ms(
      [&] {
        ml::Svr svr(rbf_params());
        svr.fit(x, y);
        serial_model = svr.serialize();
      },
      reps);
  common::ThreadPool::set_global_threads(threads);
  const double parallel_ms = time_ms(
      [&] {
        ml::Svr svr(rbf_params());
        svr.fit(x, y);
        parallel_model = svr.serialize();
      },
      reps);
  return {"svr_train", n, serial_ms, parallel_ms, serial_model == parallel_model};
}

/// Batched SVR inference over m test points (one blocked pass, parallel
/// across points) against the same path pinned to one thread.
CaseResult bench_batch_predict(std::size_t m, std::size_t threads, int reps) {
  constexpr std::size_t kDim = 12;
  constexpr std::size_t kTrain = 384;
  ml::Matrix x_train;
  std::vector<double> y_train;
  make_dataset(kTrain, kDim, 0xBA7C4ED, x_train, y_train);
  common::ThreadPool::set_global_threads(threads);
  ml::Svr svr(rbf_params());
  svr.fit(x_train, y_train);

  ml::Matrix x_test;
  std::vector<double> y_unused;
  make_dataset(m, kDim, 0x7E57 + m, x_test, y_unused);

  std::vector<double> serial_pred;
  std::vector<double> parallel_pred;
  common::ThreadPool::set_global_threads(1);
  const double serial_ms = time_ms([&] { serial_pred = svr.predict(x_test); }, reps);
  common::ThreadPool::set_global_threads(threads);
  const double parallel_ms = time_ms([&] { parallel_pred = svr.predict(x_test); }, reps);
  const bool identical =
      serial_pred.size() == parallel_pred.size() &&
      std::memcmp(serial_pred.data(), parallel_pred.data(),
                  serial_pred.size() * sizeof(double)) == 0;
  return {"svr_batch_predict", m, serial_ms, parallel_ms, identical};
}

/// O(n^2) Algorithm 1 vs the O(n log n) skyline on the same point cloud.
CaseResult bench_pareto(std::size_t n, int reps) {
  const auto pts = make_points(n, 0xFA57 + n);
  std::vector<pareto::Point> naive;
  std::vector<pareto::Point> fast;
  const double serial_ms = time_ms([&] { naive = pareto::pareto_set_naive(pts); }, reps);
  const double parallel_ms = time_ms([&] { fast = pareto::pareto_set_fast(pts); }, reps);
  return {"pareto_front", n, serial_ms, parallel_ms, pareto::same_front(naive, fast)};
}

/// The acceptance path: batch-predict a frequency-grid-shaped problem for
/// both objectives, then take the Pareto set of the predictions. Serial
/// baseline = 1-thread prediction + Algorithm 1; parallel = pooled batched
/// prediction + skyline. Fronts must agree point for point.
CaseResult bench_predict_pareto(std::size_t m, std::size_t threads, int reps) {
  constexpr std::size_t kDim = 12;
  constexpr std::size_t kTrain = 384;
  ml::Matrix x_train;
  std::vector<double> y_speedup;
  std::vector<double> y_energy;
  make_dataset(kTrain, kDim, 0xBA7C4ED, x_train, y_speedup);
  make_dataset(kTrain, kDim, 0xE4E26, x_train, y_energy);
  common::ThreadPool::set_global_threads(threads);
  ml::Svr speedup_model(rbf_params());
  speedup_model.fit(x_train, y_speedup);
  ml::Svr energy_model(rbf_params());
  energy_model.fit(x_train, y_energy);

  ml::Matrix x_test;
  std::vector<double> unused;
  make_dataset(m, kDim, 0x6A1D + m, x_test, unused);

  const auto to_points = [](const std::vector<double>& s, const std::vector<double>& e) {
    std::vector<pareto::Point> pts(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      pts[i] = {s[i], e[i], static_cast<std::uint32_t>(i)};
    }
    return pts;
  };

  std::vector<pareto::Point> serial_front;
  std::vector<pareto::Point> parallel_front;
  common::ThreadPool::set_global_threads(1);
  const double serial_ms = time_ms(
      [&] {
        const auto s = speedup_model.predict(x_test);
        const auto e = energy_model.predict(x_test);
        serial_front = pareto::pareto_set_naive(to_points(s, e));
      },
      reps);
  common::ThreadPool::set_global_threads(threads);
  const double parallel_ms = time_ms(
      [&] {
        const auto s = speedup_model.predict(x_test);
        const auto e = energy_model.predict(x_test);
        parallel_front = pareto::pareto_set_fast(to_points(s, e));
      },
      reps);
  return {"predict_plus_pareto", m, serial_ms, parallel_ms,
          pareto::same_front(serial_front, parallel_front)};
}

/// Blocked, transposed-B, parallel matrix multiply vs one thread.
CaseResult bench_matmul(std::size_t n, std::size_t threads, int reps) {
  ml::Matrix a;
  ml::Matrix b;
  std::vector<double> unused;
  make_dataset(n, n, 0xA0 + n, a, unused);
  make_dataset(n, n, 0xB0 + n, b, unused);

  ml::Matrix serial_out;
  ml::Matrix parallel_out;
  common::ThreadPool::set_global_threads(1);
  const double serial_ms = time_ms([&] { serial_out = a.multiply(b); }, reps);
  common::ThreadPool::set_global_threads(threads);
  const double parallel_ms = time_ms([&] { parallel_out = a.multiply(b); }, reps);
  const bool identical =
      serial_out.data() == parallel_out.data();  // vector<double> operator==
  return {"matrix_multiply", n, serial_ms, parallel_ms, identical};
}

// --- simd_kernels section ----------------------------------------------------
//
// Scalar vs SIMD inner kernels. "serial" is the pre-SIMD sequential scalar
// loop (kept as common::simd::detail::*_sequential), "parallel" is the
// dispatched common::simd path; bit_identical verifies the determinism
// contract — the std-simd backend against the 4-wide unrolled fallback on
// the *production* path, which must match bit for bit (the sequential
// baseline intentionally has a different summation order).

/// Batched reductions, one vector against many rows — the shape every
/// production caller has (kernel rows, the matmul micro-kernel, the blocked
/// SVR decision function). serial = the pre-SIMD sequential loop per row;
/// SIMD = the batched dot_rows / squared_distance_rows entry points. The
/// working set stays cache-resident (~128 KiB) so the measurement shows the
/// arithmetic, not DRAM bandwidth; each timed pass sweeps the rows 16x.
CaseResult bench_simd_reduce(bool sqd, std::size_t dim, int reps) {
  const std::size_t rows = 16384 / std::max<std::size_t>(dim, 1) + 1;
  ml::Matrix a;
  ml::Matrix b;
  std::vector<double> unused;
  make_dataset(1, dim, 0x51A + dim, a, unused);
  make_dataset(rows, dim, 0x51B + dim, b, unused);
  const auto x = a.row(0);
  std::vector<double> out(rows);

  const double serial_ms = time_ms(
      [&] {
        for (int pass = 0; pass < 16; ++pass) {
          for (std::size_t j = 0; j < rows; ++j) {
            const double* y = b.row(j).data();
            out[j] = sqd ? common::simd::detail::squared_distance_sequential(x.data(), y, dim)
                         : common::simd::detail::dot_sequential(x.data(), y, dim);
          }
        }
      },
      reps);
  // Timed on whatever backend the run dispatches to (REPRO_SIMD honored) —
  // the JSON's simd_backend field records which.
  const double simd_ms = time_ms(
      [&] {
        for (int pass = 0; pass < 16; ++pass) {
          if (sqd) {
            common::simd::squared_distance_rows(out, x, b.row(0).data(), dim, 1.0);
          } else {
            common::simd::dot_rows(out, x, b.row(0).data(), dim);
          }
        }
      },
      reps);
  // Contract check: vector backend vs unrolled fallback, element by element.
  bool identical = true;
  for (std::size_t j = 0; j < rows && identical; ++j) {
    const double* y = b.row(j).data();
    const double v = sqd ? common::simd::detail::squared_distance_vector(x.data(), y, dim)
                         : common::simd::detail::dot_vector(x.data(), y, dim);
    const double u = sqd ? common::simd::detail::squared_distance_unrolled(x.data(), y, dim)
                         : common::simd::detail::dot_unrolled(x.data(), y, dim);
    identical = std::memcmp(&v, &u, sizeof(double)) == 0;
  }
  return {sqd ? "simd_squared_distance" : "simd_dot", dim, serial_ms, simd_ms, identical};
}

/// The SVR kernel-matrix build (the KernelCache fill pattern: upper
/// triangle + mirror, float storage), pinned to one thread so the A/B
/// isolates the SIMD effect from the thread pool.
CaseResult bench_simd_kernel_matrix(std::size_t n, int reps) {
  constexpr std::size_t kDim = 12;
  ml::Matrix x;
  std::vector<double> unused;
  make_dataset(n, kDim, 0x5EED2 + n, x, unused);
  const ml::KernelFunction kernel = ml::KernelFunction::rbf(0.5);
  const double gamma = 0.5;
  common::ThreadPool::set_global_threads(1);

  std::vector<float> k;
  // The pre-SIMD path: one kernel evaluation per pair, sequential scalar
  // reduction plus libm exp. Allocates its matrix inside the timed region,
  // exactly like the production builder below — cache construction includes
  // the allocation in both generations.
  const auto fill_scalar = [&] {
    std::vector<float> kk(n * n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto xi = x.row(i);
      for (std::size_t j = i; j < n; ++j) {
        const auto xj = x.row(j);
        const auto v = static_cast<float>(
            std::exp(-gamma * common::simd::detail::squared_distance_sequential(
                                  xi.data(), xj.data(), xi.size())));
        kk[i * n + j] = v;
        kk[j * n + i] = v;
      }
    }
    k = std::move(kk);
  };
  // The optimized side runs ml::build_kernel_matrix_f32 itself — the real
  // KernelCache fill (batched SIMD evaluate_row, block-tiled mirror) —
  // pinned to one thread above so the A/B isolates vectorization, and on
  // whatever backend the run dispatches to (REPRO_SIMD honored).
  const double serial_ms = time_ms(fill_scalar, reps);
  const double simd_ms =
      time_ms([&] { k = ml::build_kernel_matrix_f32(x, kernel); }, reps);
  // Contract check: the two backends must build the same bytes.
  const bool was_enabled = common::simd::enabled();
  common::simd::set_enabled(true);
  const std::vector<float> k_on = ml::build_kernel_matrix_f32(x, kernel);
  common::simd::set_enabled(false);
  k = ml::build_kernel_matrix_f32(x, kernel);
  common::simd::set_enabled(was_enabled);
  const bool identical = std::memcmp(k.data(), k_on.data(), n * n * sizeof(float)) == 0;
  return {"simd_kernel_matrix", n, serial_ms, simd_ms, identical};
}

// --- streaming featurization --------------------------------------------------

/// Whole-string featurization vs the chunked SourceFeeder on a synthetic
/// many-function OpenCL source (`n` helper functions + one kernel calling
/// into them). The interesting number is not the speedup — both paths do
/// the same lexing/parsing/lowering work — but bit_identical, which checks
/// the chunk-size-invariance contract on a source far larger than any chunk,
/// and the bounded pending buffer the streamed side keeps.
CaseResult bench_stream_featurize(std::size_t n_functions, int reps) {
  std::string source;
  source.reserve(n_functions * 160);
  for (std::size_t i = 0; i < n_functions; ++i) {
    const std::string id = std::to_string(i);
    source += "float helper" + id + "(float v) { /* synthetic filler " + id +
              " */ return v * " + id + ".25f + native_sin(v) - " + id + "; }\n";
  }
  source += "kernel void chain(global float* x) {\n  float v = x[get_global_id(0)];\n";
  for (std::size_t i = 0; i < n_functions; i += 7) {
    source += "  v = helper" + std::to_string(i) + "(v);\n";
  }
  source += "  x[get_global_id(0)] = v;\n}\n";

  repro::clfront::StaticFeatures whole;
  repro::clfront::StaticFeatures streamed;
  const double whole_ms = time_ms(
      [&] {
        whole = clfront::extract_features_from_source(source).value();
      },
      reps);
  const double streamed_ms = time_ms(
      [&] {
        streamed = clfront::extract_features_chunked(source, 64 * 1024).value();
      },
      reps);
  const bool identical =
      whole.kernel_name == streamed.kernel_name &&
      std::memcmp(whole.counts.data(), streamed.counts.data(),
                  sizeof(double) * clfront::kNumFeatures) == 0;
  return {"stream_featurize", source.size(), whole_ms, streamed_ms, identical};
}

// --- protocol codec: JSON lines vs binary frames ------------------------------
//
// One batch of wire messages encoded and decoded through the JSON framing
// (serial_ms) and the binary framing (parallel_ms) — the wire-level cost a
// negotiated connection saves. bit_identical cross-checks the codecs
// against each other: both decoded forms must carry the same bytes (ids,
// kernels, and every double compared by bit pattern).

bool wire_doubles_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

CaseResult bench_protocol_request_codec(std::size_t n, int reps) {
  common::Xoshiro256 rng(99);
  std::vector<serve::WireRequest> requests(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& request = requests[i];
    request.id = i + 1;
    request.kernel = "kernel_" + std::to_string(i % 17);
    request.deadline_ms = 50.0 + rng.uniform(0.0, 10.0);
    if (i % 3 == 0) {
      request.kind = serve::RequestKind::kPredictSource;
      request.source = std::string(200, 'k');
    } else {
      request.kind = serve::RequestKind::kPredict;
      std::array<double, clfront::kNumFeatures> features{};
      for (auto& f : features) f = rng.uniform(0.0, 64.0);
      request.features = features;
    }
  }

  std::vector<serve::WireRequest> via_json(n);
  std::vector<serve::WireRequest> via_binary(n);
  const double json_ms = time_ms(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          via_json[i] = serve::parse_request(serve::format_request(requests[i])).value();
        }
      },
      reps);
  const double binary_ms = time_ms(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          const std::string framed = serve::binary::format_request_frame(requests[i]);
          via_binary[i] = serve::binary::parse_request(
                              std::string_view(framed).substr(serve::binary::kHeaderBytes))
                              .value();
        }
      },
      reps);

  bool identical = true;
  for (std::size_t i = 0; i < n && identical; ++i) {
    const auto& a = via_json[i];
    const auto& b = via_binary[i];
    identical = a.id == b.id && a.kind == b.kind && a.kernel == b.kernel &&
                a.source == b.source &&
                a.features.has_value() == b.features.has_value() &&
                a.deadline_ms.has_value() == b.deadline_ms.has_value();
    if (identical && a.deadline_ms) {
      identical = wire_doubles_equal(*a.deadline_ms, *b.deadline_ms);
    }
    if (identical && a.features) {
      for (std::size_t f = 0; f < a.features->size() && identical; ++f) {
        identical = wire_doubles_equal((*a.features)[f], (*b.features)[f]);
      }
    }
  }
  return {"protocol_request_codec", n, json_ms, binary_ms, identical};
}

CaseResult bench_protocol_response_codec(std::size_t n, int reps) {
  common::Xoshiro256 rng(101);
  std::vector<core::Predictor::KernelPrediction> predictions(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& p = predictions[i];
    p.kernel = "kernel_" + std::to_string(i % 17);
    p.pareto.resize(5);
    for (auto& point : p.pareto) {
      point.config.core_mhz = static_cast<int>(500 + rng.uniform_index(1000));
      point.config.mem_mhz = static_cast<int>(3000 + rng.uniform_index(1000));
      point.speedup = rng.uniform(0.5, 1.5);
      point.energy = rng.uniform(0.5, 1.5);
      point.heuristic = rng.uniform_index(2) == 1;
    }
  }

  std::vector<serve::WireResponse> via_json(n);
  std::vector<serve::WireResponse> via_binary(n);
  const double json_ms = time_ms(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          via_json[i] =
              serve::parse_response(serve::format_response(i + 1, predictions[i]))
                  .value();
        }
      },
      reps);
  const double binary_ms = time_ms(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          const std::string framed =
              serve::binary::format_prediction_frame(i + 1, predictions[i]);
          via_binary[i] = serve::binary::parse_response(
                              std::string_view(framed).substr(serve::binary::kHeaderBytes))
                              .value();
        }
      },
      reps);

  bool identical = true;
  for (std::size_t i = 0; i < n && identical; ++i) {
    const auto& a = via_json[i];
    const auto& b = via_binary[i];
    identical = a.id == b.id && a.prediction.has_value() && b.prediction.has_value() &&
                a.prediction->kernel == b.prediction->kernel &&
                a.prediction->pareto.size() == b.prediction->pareto.size();
    for (std::size_t k = 0; identical && k < a.prediction->pareto.size(); ++k) {
      const auto& pa = a.prediction->pareto[k];
      const auto& pb = b.prediction->pareto[k];
      identical = pa.config == pb.config && pa.heuristic == pb.heuristic &&
                  wire_doubles_equal(pa.speedup, pb.speedup) &&
                  wire_doubles_equal(pa.energy, pb.energy);
    }
  }
  return {"protocol_response_codec", n, json_ms, binary_ms, identical};
}

// --- zero-allocation serve hot path ------------------------------------------
//
// The per-connection protocol loop the arena/pool work targets: split →
// parse → serialize the reply. "serial" is the pre-pooling shape (fresh
// heap strings per message: a copied payload, a heap-backed JSON document,
// a returned reply string); "parallel" is the production path (payload
// views, arena-backed parse reset per message, reply serialized _into a
// pooled buffer). bit_identical compares the reply bytes of both paths.

/// One representative predict request + its reply content.
struct HotpathFixture {
  std::string json_request;    // newline-terminated wire line
  std::string binary_request;  // full binary frame
  core::Predictor::KernelPrediction prediction;
};

HotpathFixture make_hotpath_fixture() {
  HotpathFixture fx;
  serve::WireRequest request;
  request.id = 42;
  request.kind = serve::RequestKind::kPredict;
  request.kernel = "k0";
  std::array<double, clfront::kNumFeatures> features{};
  for (std::size_t i = 0; i < features.size(); ++i) {
    features[i] = static_cast<double>(i) * 3.25 + 0.5;
  }
  request.features = features;
  fx.json_request = serve::format_request(request);
  fx.json_request.push_back('\n');
  fx.binary_request = serve::binary::format_request_frame(request);
  fx.prediction.kernel = "k0";
  for (int i = 0; i < 6; ++i) {
    core::PredictedPoint point;
    point.config = {500 + 100 * i, 3505};
    point.speedup = 1.0 + 0.125 * i;
    point.energy = 1.0 - 0.0625 * i;
    point.heuristic = i == 5;
    fx.prediction.pareto.push_back(point);
  }
  return fx;
}

/// JSON parse with and without a per-message arena behind the document.
CaseResult bench_protocol_parse_arena(std::size_t n, int reps) {
  const HotpathFixture fx = make_hotpath_fixture();
  const std::string_view line(fx.json_request.data(), fx.json_request.size() - 1);

  std::uint64_t heap_ids = 0;
  const double heap_ms = time_ms(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          heap_ids += serve::parse_request(line).value().id;
        }
      },
      reps);
  std::uint64_t arena_ids = 0;
  common::Arena arena;
  const double arena_ms = time_ms(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          arena_ids += serve::parse_request(line, &arena).value().id;
          arena.reset();
        }
      },
      reps);
  // Same requests decoded either way — the id sums must agree across every
  // rep (reps * n * 42 each), and one decoded pair is compared field-level.
  const auto heap_decoded = serve::parse_request(line).value();
  const auto arena_decoded = serve::parse_request(line, &arena).value();
  const bool identical =
      heap_ids == arena_ids && heap_decoded.id == arena_decoded.id &&
      heap_decoded.kernel == arena_decoded.kernel &&
      heap_decoded.features.has_value() && arena_decoded.features.has_value() &&
      std::memcmp(heap_decoded.features->data(), arena_decoded.features->data(),
                  sizeof(double) * clfront::kNumFeatures) == 0;
  return {"protocol_parse_arena", n, heap_ms, arena_ms, identical};
}

CaseResult bench_serving_hotpath(std::size_t n, int reps) {
  const HotpathFixture fx = make_hotpath_fixture();

  // Pre-pooling shape: payload copied to a fresh string, heap-backed JSON
  // document, reply returned as a new string — one message at a time
  // through a pool-less splitter.
  std::string last_alloc_reply;
  serve::MessageSplitter alloc_splitter(1 << 20);
  const double alloc_ms = time_ms(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          alloc_splitter.feed(fx.json_request);
          for (;;) {
            auto next = alloc_splitter.next();
            if (!next.ok() || !next.value().has_value()) break;
            const std::string payload(next.value()->payload);
            auto request = serve::parse_request(payload);
            std::string reply =
                serve::format_response(request.value().id, fx.prediction);
            reply.push_back('\n');
            last_alloc_reply = std::move(reply);
          }
        }
      },
      reps);

  // Production path: pooled splitter buffer, payload stays a view, the
  // document lives in a per-connection arena reset after each message, and
  // the reply is serialized _into one pooled buffer.
  common::BufferPool pool;
  serve::MessageSplitter pooled_splitter(1 << 20, /*accept_binary=*/true, &pool);
  common::Arena arena;
  auto reply_lease = pool.acquire();
  std::string& reply = *reply_lease;
  const double pooled_ms = time_ms(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          pooled_splitter.feed(fx.json_request);
          for (;;) {
            auto next = pooled_splitter.next();
            if (!next.ok() || !next.value().has_value()) break;
            auto request = serve::parse_request(next.value()->payload, &arena);
            reply.clear();
            serve::format_response_into(reply, request.value().id, fx.prediction);
            reply.push_back('\n');
            arena.reset();
          }
        }
      },
      reps);

  return {"serving_hotpath", n, alloc_ms, pooled_ms, last_alloc_reply == reply};
}

/// --alloc-report: count heap allocations across a steady-state hot-path
/// loop (the measurement AllocationRegressionTest gates at zero) and print
/// allocs/request per framing. Returns false if any steady-state request
/// allocated.
bool run_alloc_report() {
  namespace hook = repro::common::alloc_hook;
  const HotpathFixture fx = make_hotpath_fixture();
  bool clean = true;
  for (const bool binary : {false, true}) {
    const std::string& wire = binary ? fx.binary_request : fx.json_request;
    common::BufferPool pool;
    serve::MessageSplitter splitter(1 << 20, /*accept_binary=*/true, &pool);
    common::Arena arena;
    auto reply_lease = pool.acquire();
    std::string& reply = *reply_lease;
    const auto pump = [&] {
      splitter.feed(wire);
      for (;;) {
        auto next = splitter.next();
        if (!next.ok() || !next.value().has_value()) break;
        auto request = binary
                           ? serve::binary::parse_request(next.value()->payload)
                           : serve::parse_request(next.value()->payload, &arena);
        reply.clear();
        if (binary) {
          serve::binary::format_prediction_frame_into(reply, request.value().id,
                                                      fx.prediction);
        } else {
          serve::format_response_into(reply, request.value().id, fx.prediction);
          reply.push_back('\n');
        }
        arena.reset();
      }
    };
    for (int i = 0; i < 64; ++i) pump();  // warm capacities
    constexpr int kIters = 1024;
    const std::uint64_t before = hook::allocations();
    for (int i = 0; i < kIters; ++i) pump();
    const std::uint64_t allocs = hook::allocations() - before;
    std::printf("alloc-report  framing=%-6s  requests=%d  heap_allocs=%llu  "
                "allocs/request=%.4f\n",
                binary ? "binary" : "json", kIters,
                static_cast<unsigned long long>(allocs),
                static_cast<double>(allocs) / kIters);
    clean = clean && allocs == 0;
  }
  std::printf("alloc-report  steady-state %s\n",
              clean ? "allocation-free" : "ALLOCATES (regression)");
  return clean;
}

// --- serving section ----------------------------------------------------------
//
// Throughput and latency of serve::Service — the micro-batching scheduler
// and sharded workers above Predictor::predict_batch — under concurrent
// client threads, swept over the batching window. bit_identical checks the
// serving determinism contract: every response must equal the direct
// predict_batch output for the same kernel, byte for byte.

struct ServingResult {
  const char* mode = "closed_loop";
  std::size_t shards = 0;
  long window_us = 0;
  std::size_t clients = 0;
  double offered_rps = 0.0;  // open-loop arrival rate (0 for closed loop)
  std::size_t requests = 0;
  std::size_t batches = 0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  bool bit_identical = false;
  // Overload rows only: the admission bound in force and what it refused.
  long max_queue_delay_us = 0;
  std::size_t shed = 0;
  // obs-overhead row only: instrumented-vs-disabled throughput cost in
  // percent (min over alternating pairs, clamped at 0). 0 elsewhere.
  double overhead_pct = 0.0;
};

/// Percentile by nearest-rank; the caller sorts once.
double percentile_ms(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

bool points_bit_identical(const std::vector<core::PredictedPoint>& a,
                          const std::vector<core::PredictedPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].config == b[i].config) || a[i].heuristic != b[i].heuristic ||
        std::memcmp(&a[i].speedup, &b[i].speedup, sizeof(double)) != 0 ||
        std::memcmp(&a[i].energy, &b[i].energy, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

ServingResult bench_serving(const std::shared_ptr<const core::FrequencyModel>& model,
                            const std::vector<clfront::StaticFeatures>& mix,
                            std::size_t shards, long window_us, std::size_t clients,
                            std::size_t per_client) {
  ServingResult result;
  result.shards = shards;
  result.window_us = window_us;
  result.clients = clients;
  result.requests = clients * per_client;

  auto direct = core::Predictor::from_model(model);
  const auto reference = direct.value().predict_batch(mix);

  serve::ServiceOptions options;
  options.shards = shards;
  options.max_batch = 16;
  options.batch_window = std::chrono::microseconds(window_us);
  auto service = serve::Service::from_model(model, options);
  if (!service.ok()) {
    std::fprintf(stderr, "serving bench: %s\n", service.error().to_string().c_str());
    return result;
  }

  std::vector<double> latencies_ms(result.requests, 0.0);
  std::vector<char> identical(result.requests, 0);
  std::vector<std::thread> workers;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t slot = c * per_client + i;
        const std::size_t kernel = slot % mix.size();
        const auto r0 = std::chrono::steady_clock::now();
        auto response = service.value()->predict(mix[kernel]);
        const auto r1 = std::chrono::steady_clock::now();
        latencies_ms[slot] =
            std::chrono::duration<double, std::milli>(r1 - r0).count();
        identical[slot] =
            response.ok() &&
            points_bit_identical(response.value().pareto,
                                 reference.value()[kernel].pareto)
                ? 1
                : 0;
      }
    });
  }
  for (auto& t : workers) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  service.value()->stop();

  const double elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  result.throughput_rps =
      elapsed_s > 0.0 ? static_cast<double>(result.requests) / elapsed_s : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile_ms(latencies_ms, 50.0);
  result.p95_ms = percentile_ms(latencies_ms, 95.0);
  result.p99_ms = percentile_ms(latencies_ms, 99.0);
  result.bit_identical = true;
  for (char ok : identical) result.bit_identical = result.bit_identical && ok != 0;
  result.batches = service.value()->stats().batches;
  return result;
}

/// The obs-overhead contract (docs/OBSERVABILITY.md): serving throughput
/// with the metrics registry live vs runtime-disabled, as alternating
/// pairs so machine noise hits both sides alike; the reported overhead is
/// the MINIMUM across pairs (min-of-N sees through scheduler noise, and a
/// real cost shows up in every pair). Tracing is off in both runs — it is
/// off by default per request — and the disabled side still pays the one
/// relaxed load per event that REPRO_OBS=OFF removes at compile time.
ServingResult bench_serving_obs_overhead(
    const std::shared_ptr<const core::FrequencyModel>& model,
    const std::vector<clfront::StaticFeatures>& mix, std::size_t shards,
    long window_us, std::size_t clients, std::size_t per_client, int pairs) {
  ServingResult result;
  result.mode = "obs-overhead";
  result.shards = shards;
  result.window_us = window_us;
  result.clients = clients;
  result.bit_identical = true;
  double best_pct = std::numeric_limits<double>::infinity();
  for (int pair = 0; pair < pairs; ++pair) {
    obs::set_enabled(true);
    const auto on = bench_serving(model, mix, shards, window_us, clients, per_client);
    obs::set_enabled(false);
    const auto off = bench_serving(model, mix, shards, window_us, clients, per_client);
    obs::set_enabled(true);
    result.bit_identical = result.bit_identical && on.bit_identical && off.bit_identical;
    if (on.throughput_rps <= 0.0 || off.throughput_rps <= 0.0) continue;
    const double pct =
        (off.throughput_rps - on.throughput_rps) / off.throughput_rps * 100.0;
    if (pct < best_pct) {
      best_pct = pct;
      result.requests = on.requests;
      result.batches = on.batches;
      result.throughput_rps = on.throughput_rps;  // the instrumented side
      result.p50_ms = on.p50_ms;
      result.p95_ms = on.p95_ms;
      result.p99_ms = on.p99_ms;
    }
  }
  result.overhead_pct =
      std::isfinite(best_pct) ? std::max(0.0, best_pct) : 0.0;
  return result;
}

/// Open-loop (arrival-rate-driven) serving latency. The closed-loop bench
/// above understates batching wins — its 4 clients block on the window, so
/// at most 4 requests can ever coalesce. Here one dispatcher submits
/// requests on a fixed schedule (offered_rps), independent of completions,
/// and an in-order collector timestamps each response as it resolves;
/// latency is completion − *scheduled* arrival, so queueing delay under
/// overload is charged to the request, as an open-loop harness must.
ServingResult bench_serving_open_loop(
    const std::shared_ptr<const core::FrequencyModel>& model,
    const std::vector<clfront::StaticFeatures>& mix, std::size_t shards,
    long window_us, double offered_rps, std::size_t total_requests) {
  ServingResult result;
  result.mode = "open_loop";
  result.shards = shards;
  result.window_us = window_us;
  result.clients = 1;
  result.offered_rps = offered_rps;
  result.requests = total_requests;

  auto direct = core::Predictor::from_model(model);
  const auto reference = direct.value().predict_batch(mix);

  serve::ServiceOptions options;
  options.shards = shards;
  options.max_batch = 16;
  options.batch_window = std::chrono::microseconds(window_us);
  // The admission queue must hold the whole backlog: a full queue would
  // block the dispatcher and silently turn the harness closed-loop.
  options.queue_capacity = total_requests;
  auto service = serve::Service::from_model(model, options);
  if (!service.ok()) {
    std::fprintf(stderr, "open-loop bench: %s\n", service.error().to_string().c_str());
    return result;
  }

  struct InFlight {
    std::future<serve::Service::Response> response;
    std::chrono::steady_clock::time_point scheduled;
    std::size_t kernel = 0;
  };
  common::BoundedQueue<InFlight> in_flight(total_requests);

  std::vector<double> latencies_ms;
  latencies_ms.reserve(total_requests);
  bool identical = true;
  std::chrono::steady_clock::time_point last_completion;
  std::thread collector([&] {
    // FIFO batching completes requests in arrival order, so waiting on the
    // head future timestamps each completion accurately (a whole batch
    // resolves together and is read together).
    while (auto item = in_flight.pop()) {
      auto response = item->response.get();
      const auto now = std::chrono::steady_clock::now();
      last_completion = now;
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(now - item->scheduled).count());
      identical = identical && response.ok() &&
                  points_bit_identical(response.value().pareto,
                                       reference.value()[item->kernel].pareto);
    }
  });

  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / offered_rps));
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < total_requests; ++i) {
    const auto scheduled = t0 + interval * static_cast<long>(i);
    std::this_thread::sleep_until(scheduled);
    const std::size_t kernel = i % mix.size();
    in_flight.push(InFlight{service.value()->submit(mix[kernel]), scheduled, kernel});
  }
  in_flight.close();
  collector.join();
  service.value()->stop();

  const double elapsed_s = std::chrono::duration<double>(last_completion - t0).count();
  result.throughput_rps =
      elapsed_s > 0.0 ? static_cast<double>(total_requests) / elapsed_s : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile_ms(latencies_ms, 50.0);
  result.p95_ms = percentile_ms(latencies_ms, 95.0);
  result.p99_ms = percentile_ms(latencies_ms, 99.0);
  result.bit_identical = identical && latencies_ms.size() == total_requests;
  result.batches = service.value()->stats().batches;
  return result;
}

/// Overload: an open-loop dispatcher offering ~2x the service's measured
/// capacity, with and without the admission-time load shedder
/// (ServiceOptions::max_queue_delay). Without shedding every request is
/// admitted and the backlog — and therefore the latency of *every* request —
/// grows for as long as the burst lasts; with shedding the service refuses
/// (retryable kUnavailable) what it could only serve stale, and the p50/p99
/// here are those of the ACCEPTED requests, which is the number shedding
/// exists to protect. "shed" counts the refused requests.
/// True service capacity for the overload A/B: submit `n` requests as fast
/// as the admission queue accepts them and time the drain. Closed-loop
/// client threads understate this badly — they are latency-bound and the
/// batching window never fills — and an overload bench calibrated against
/// an understated capacity never actually overloads.
double measure_capacity_rps(const std::shared_ptr<const core::FrequencyModel>& model,
                            const std::vector<clfront::StaticFeatures>& mix,
                            std::size_t shards, long window_us, std::size_t n) {
  serve::ServiceOptions options;
  options.shards = shards;
  options.max_batch = 16;
  options.batch_window = std::chrono::microseconds(window_us);
  options.queue_capacity = n;
  auto service = serve::Service::from_model(model, options);
  if (!service.ok()) return 0.0;
  std::vector<std::future<serve::Service::Response>> futures;
  futures.reserve(n);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(service.value()->submit(mix[i % mix.size()]));
  }
  for (auto& f : futures) (void)f.get();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  service.value()->stop();
  return elapsed_s > 0.0 ? static_cast<double>(n) / elapsed_s : 0.0;
}

ServingResult bench_serving_overload(
    const std::shared_ptr<const core::FrequencyModel>& model,
    const std::vector<clfront::StaticFeatures>& mix, std::size_t shards,
    long window_us, double offered_rps, std::size_t total_requests,
    std::chrono::microseconds max_queue_delay) {
  ServingResult result;
  result.mode = "overload";
  result.shards = shards;
  result.window_us = window_us;
  result.clients = 1;
  result.offered_rps = offered_rps;
  result.requests = total_requests;
  result.max_queue_delay_us = static_cast<long>(max_queue_delay.count());

  auto direct = core::Predictor::from_model(model);
  const auto reference = direct.value().predict_batch(mix);

  serve::ServiceOptions options;
  options.shards = shards;
  options.max_batch = 16;
  options.batch_window = std::chrono::microseconds(window_us);
  options.queue_capacity = total_requests;  // admission never blocks
  options.max_queue_delay = max_queue_delay;
  auto service = serve::Service::from_model(model, options);
  if (!service.ok()) {
    std::fprintf(stderr, "overload bench: %s\n", service.error().to_string().c_str());
    return result;
  }
  // Warm the shedder's service-time estimate: it deliberately never fires
  // cold, and this bench is about its steady-state behaviour.
  (void)service.value()->predict(mix[0]);

  struct InFlight {
    std::future<serve::Service::Response> response;
    std::chrono::steady_clock::time_point scheduled;
    std::size_t kernel = 0;
  };
  common::BoundedQueue<InFlight> in_flight(total_requests);

  std::vector<double> accepted_ms;
  accepted_ms.reserve(total_requests);
  std::size_t shed = 0;
  bool identical = true;
  std::chrono::steady_clock::time_point last_completion;
  std::thread collector([&] {
    while (auto item = in_flight.pop()) {
      auto response = item->response.get();
      const auto now = std::chrono::steady_clock::now();
      last_completion = now;
      if (response.ok()) {
        accepted_ms.push_back(
            std::chrono::duration<double, std::milli>(now - item->scheduled).count());
        identical = identical &&
                    points_bit_identical(response.value().pareto,
                                         reference.value()[item->kernel].pareto);
      } else if (response.error().code == common::ErrorCode::kUnavailable) {
        ++shed;  // the admission bound working as designed
      } else {
        identical = false;  // anything else is a bench failure
      }
    }
  });

  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / offered_rps));
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < total_requests; ++i) {
    const auto scheduled = t0 + interval * static_cast<long>(i);
    std::this_thread::sleep_until(scheduled);
    const std::size_t kernel = i % mix.size();
    in_flight.push(InFlight{service.value()->submit(mix[kernel]), scheduled, kernel});
  }
  in_flight.close();
  collector.join();
  service.value()->stop();

  const double elapsed_s = std::chrono::duration<double>(last_completion - t0).count();
  result.throughput_rps =
      elapsed_s > 0.0 ? static_cast<double>(accepted_ms.size()) / elapsed_s : 0.0;
  std::sort(accepted_ms.begin(), accepted_ms.end());
  result.p50_ms = percentile_ms(accepted_ms, 50.0);
  result.p95_ms = percentile_ms(accepted_ms, 95.0);
  result.p99_ms = percentile_ms(accepted_ms, 99.0);
  result.shed = shed;
  result.bit_identical = identical && accepted_ms.size() + shed == total_requests;
  result.batches = service.value()->stats().batches;
  return result;
}

/// Fleet serving: concurrent clients against the front balancer over N
/// in-process workers (each a Service + SocketServer on an ephemeral TCP
/// port). Times the whole stack — wire framing both ways, balancer
/// dispatch, worker micro-batching — closed loop; "shards" carries the
/// worker count. bit_identical holds the fleet determinism contract: the
/// same reply bytes at any worker count.
ServingResult bench_serving_fleet(
    const std::shared_ptr<const core::FrequencyModel>& model,
    const std::vector<clfront::StaticFeatures>& mix, std::size_t workers,
    std::size_t clients, std::size_t per_client) {
  ServingResult result;
  result.mode = "fleet";
  result.shards = workers;
  result.window_us = 200;
  result.clients = clients;
  result.requests = clients * per_client;

  auto direct = core::Predictor::from_model(model);
  const auto reference = direct.value().predict_batch(mix);

  struct Worker {
    std::unique_ptr<serve::Service> service;
    std::unique_ptr<serve::SocketServer> server;
  };
  std::vector<Worker> nodes;
  std::vector<fleet::BackendEndpoint> endpoints;
  for (std::size_t w = 0; w < workers; ++w) {
    serve::ServiceOptions options;
    options.shards = 2;
    options.max_batch = 16;
    options.batch_window = std::chrono::microseconds(result.window_us);
    auto service = serve::Service::from_model(model, options);
    if (!service.ok()) {
      std::fprintf(stderr, "fleet bench: %s\n", service.error().to_string().c_str());
      return result;
    }
    serve::ServerOptions server_options;
    server_options.tcp_port = 0;
    auto server = serve::SocketServer::start(*service.value(), server_options);
    if (!server.ok()) {
      std::fprintf(stderr, "fleet bench: %s\n", server.error().to_string().c_str());
      return result;
    }
    endpoints.push_back({"", server.value()->tcp_port()});
    nodes.push_back({std::move(service).take(), std::move(server).take()});
  }
  fleet::BalancerOptions balancer_options;
  balancer_options.tcp_port = 0;
  auto balancer = fleet::Balancer::start(endpoints, balancer_options);
  if (!balancer.ok()) {
    std::fprintf(stderr, "fleet bench: %s\n", balancer.error().to_string().c_str());
    return result;
  }

  std::vector<double> latencies_ms(result.requests, 0.0);
  std::vector<char> identical(result.requests, 0);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client =
          serve::SocketClient::connect_tcp(balancer.value()->tcp_port());
      if (!client.ok()) return;
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t slot = c * per_client + i;
        const std::size_t kernel = slot % mix.size();
        const auto r0 = std::chrono::steady_clock::now();
        auto response = client.value().predict(mix[kernel]);
        const auto r1 = std::chrono::steady_clock::now();
        latencies_ms[slot] =
            std::chrono::duration<double, std::milli>(r1 - r0).count();
        identical[slot] =
            response.ok() &&
            points_bit_identical(response.value().pareto,
                                 reference.value()[kernel].pareto)
                ? 1
                : 0;
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  balancer.value()->stop();
  std::size_t batches = 0;
  for (auto& worker : nodes) {
    worker.server->stop();
    worker.service->stop();
    batches += worker.service->stats().batches;
  }

  const double elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  result.throughput_rps =
      elapsed_s > 0.0 ? static_cast<double>(result.requests) / elapsed_s : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile_ms(latencies_ms, 50.0);
  result.p95_ms = percentile_ms(latencies_ms, 95.0);
  result.p99_ms = percentile_ms(latencies_ms, 99.0);
  result.bit_identical = true;
  for (char ok : identical) result.bit_identical = result.bit_identical && ok != 0;
  result.batches = batches;
  return result;
}

/// Train the serving model on a reduced suite (every 4th micro-benchmark,
/// 16 configurations) — representative shape, seconds-scale training.
std::shared_ptr<const core::FrequencyModel> serving_model(
    std::vector<clfront::StaticFeatures>& mix_out) {
  auto full = benchgen::generate_training_suite();
  if (!full.ok()) return nullptr;
  std::vector<benchgen::MicroBenchmark> subset;
  for (std::size_t i = 0; i < full.value().size(); i += 4) {
    subset.push_back(full.value()[i]);
  }
  for (std::size_t i = 0; i < subset.size(); ++i) {
    mix_out.push_back(subset[i].features);
  }
  core::TrainingOptions options;
  options.num_configs = 16;
  const core::SimulatorBackend backend(gpusim::DeviceModel::titan_x());
  auto model = core::FrequencyModel::train(backend, subset, options);
  if (!model.ok()) return nullptr;
  return std::make_shared<const core::FrequencyModel>(std::move(model).take());
}

void write_json(const std::string& path, bool smoke, std::size_t threads,
                const std::vector<CaseResult>& results,
                const std::vector<ServingResult>& serving) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"perf_stack\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(f, "  \"threads\": %zu,\n  \"simd_backend\": \"%s\",\n  \"cases\": [\n",
               threads, common::simd::backend_name());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double speedup = r.parallel_ms > 0.0 ? r.serial_ms / r.parallel_ms : 0.0;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"size\": %zu, \"serial_ms\": %.3f, "
                 "\"parallel_ms\": %.3f, \"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                 r.name.c_str(), r.size, r.serial_ms, r.parallel_ms, speedup,
                 r.bit_identical ? "true" : "false", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"serving\": [\n");
  for (std::size_t i = 0; i < serving.size(); ++i) {
    const auto& s = serving[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"shards\": %zu, \"window_us\": %ld, "
                 "\"clients\": %zu, \"offered_rps\": %.0f, "
                 "\"requests\": %zu, \"batches\": %zu, \"throughput_rps\": %.1f, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"max_queue_delay_us\": %ld, \"shed\": %zu, "
                 "\"overhead_pct\": %.2f, "
                 "\"bit_identical\": %s}%s\n",
                 s.mode, s.shards, s.window_us, s.clients, s.offered_rps, s.requests,
                 s.batches, s.throughput_rps, s.p50_ms, s.p95_ms, s.p99_ms,
                 s.max_queue_delay_us, s.shed, s.overhead_pct,
                 s.bit_identical ? "true" : "false", i + 1 < serving.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t threads = common::ThreadPool::default_thread_count();
  std::string out = "BENCH_perf_stack.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--alloc-report") {
      // Count steady-state heap allocations on the serve hot path (the
      // contract AllocationRegressionTest locks at zero) and exit.
      return run_alloc_report() ? 0 : 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads N] [--out PATH] "
                   "[--alloc-report]\n",
                   argv[0]);
      return 2;
    }
  }
  if (threads == 0) threads = 1;
  const int reps = smoke ? 1 : 3;

  std::printf("perf_stack: serial (1 thread / reference) vs parallel (%zu threads)%s\n\n",
              threads, smoke ? " [smoke]" : "");

  std::vector<CaseResult> results;
  const auto run = [&](CaseResult r) {
    std::printf("%-18s n=%-8zu serial %9.3f ms   parallel %9.3f ms   x%.2f   %s\n",
                r.name.c_str(), r.size, r.serial_ms, r.parallel_ms,
                r.parallel_ms > 0.0 ? r.serial_ms / r.parallel_ms : 0.0,
                r.bit_identical ? "bit-identical" : "OUTPUT MISMATCH");
    results.push_back(std::move(r));
  };

  const std::vector<std::size_t> train_sizes = smoke ? std::vector<std::size_t>{48}
                                                     : std::vector<std::size_t>{128, 256, 512};
  for (std::size_t n : train_sizes) run(bench_svr_train(n, threads, reps));

  const std::vector<std::size_t> predict_sizes =
      smoke ? std::vector<std::size_t>{256} : std::vector<std::size_t>{2000, 10000, 40000};
  for (std::size_t m : predict_sizes) run(bench_batch_predict(m, threads, reps));

  const std::vector<std::size_t> pareto_sizes =
      smoke ? std::vector<std::size_t>{500} : std::vector<std::size_t>{2000, 8000, 20000};
  for (std::size_t n : pareto_sizes) run(bench_pareto(n, reps));

  const std::vector<std::size_t> combined_sizes =
      smoke ? std::vector<std::size_t>{256} : std::vector<std::size_t>{2000, 10000, 40000};
  for (std::size_t m : combined_sizes) run(bench_predict_pareto(m, threads, reps));

  const std::vector<std::size_t> matmul_sizes =
      smoke ? std::vector<std::size_t>{48} : std::vector<std::size_t>{128, 256, 384};
  for (std::size_t n : matmul_sizes) run(bench_matmul(n, threads, reps));

  // simd_kernels: scalar (sequential) vs SIMD inner kernels. The reduction
  // sweeps are sub-millisecond, so give them extra repetitions.
  const int reduce_reps = smoke ? 3 : 10;
  const std::vector<std::size_t> simd_dims =
      smoke ? std::vector<std::size_t>{12} : std::vector<std::size_t>{12, 64, 1024};
  for (std::size_t dim : simd_dims) run(bench_simd_reduce(false, dim, reduce_reps));
  for (std::size_t dim : simd_dims) run(bench_simd_reduce(true, dim, reduce_reps));

  const std::vector<std::size_t> kmat_sizes =
      smoke ? std::vector<std::size_t>{96} : std::vector<std::size_t>{500, 2000};
  for (std::size_t n : kmat_sizes) run(bench_simd_kernel_matrix(n, reps));

  // stream_featurize: whole-string vs chunked SourceFeeder on a synthetic
  // many-function source; "size" is the source length in bytes.
  const std::vector<std::size_t> stream_fns =
      smoke ? std::vector<std::size_t>{200} : std::vector<std::size_t>{500, 4000};
  for (std::size_t n : stream_fns) run(bench_stream_featurize(n, reps));

  // protocol_codec: JSON-line framing vs negotiated binary frames, encode +
  // decode per message batch; "size" is the number of messages per rep.
  const int codec_reps = smoke ? 3 : 10;
  const std::vector<std::size_t> codec_sizes =
      smoke ? std::vector<std::size_t>{500} : std::vector<std::size_t>{2000, 10000};
  for (std::size_t n : codec_sizes) run(bench_protocol_request_codec(n, codec_reps));
  for (std::size_t n : codec_sizes) run(bench_protocol_response_codec(n, codec_reps));

  // protocol_parse_arena / serving_hotpath: heap-per-message vs arena/pool
  // protocol paths; "size" is messages per rep.
  for (std::size_t n : codec_sizes) run(bench_protocol_parse_arena(n, codec_reps));
  for (std::size_t n : codec_sizes) run(bench_serving_hotpath(n, codec_reps));

  // serving: throughput and latency percentiles of serve::Service vs the
  // batching window, concurrent clients hammering one node. Restoring the
  // pool here also keeps any later library use on the expected thread count.
  common::ThreadPool::set_global_threads(threads);
  std::vector<ServingResult> serving;
  std::vector<clfront::StaticFeatures> mix;
  const auto model = serving_model(mix);
  if (model != nullptr) {
    const std::size_t clients = 4;
    const std::size_t per_client = smoke ? 50 : 400;
    const std::vector<long> windows =
        smoke ? std::vector<long>{200} : std::vector<long>{0, 200, 1000};
    const std::vector<std::size_t> shard_counts =
        smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 2};
    for (std::size_t shards : shard_counts) {
      for (long window : windows) {
        auto s = bench_serving(model, mix, shards, window, clients, per_client);
        std::printf(
            "serving            shards=%zu window=%4ldus  %8.0f req/s   p50 %6.3f ms  "
            "p99 %6.3f ms   %s\n",
            s.shards, s.window_us, s.throughput_rps, s.p50_ms, s.p99_ms,
            s.bit_identical ? "bit-identical" : "OUTPUT MISMATCH");
        serving.push_back(s);
      }
    }
    // Open loop: requests arrive on a clock, not on completions, so the
    // batching window actually fills — the number the closed loop cannot
    // show. Rates straddle the closed-loop single-shard throughput.
    const double duration_s = smoke ? 0.1 : 0.5;
    const std::vector<double> rates =
        smoke ? std::vector<double>{5000.0}
              : std::vector<double>{5000.0, 15000.0, 30000.0};
    const std::vector<long> open_windows =
        smoke ? std::vector<long>{200} : std::vector<long>{0, 200};
    for (long window : open_windows) {
      for (double rate : rates) {
        const auto total = static_cast<std::size_t>(rate * duration_s);
        auto s = bench_serving_open_loop(model, mix, 2, window, rate, total);
        std::printf(
            "serving-open       shards=%zu window=%4ldus  offered %6.0f req/s  "
            "p50 %6.3f ms  p99 %6.3f ms   %s\n",
            s.shards, s.window_us, s.offered_rps, s.p50_ms, s.p99_ms,
            s.bit_identical ? "bit-identical" : "OUTPUT MISMATCH");
        serving.push_back(s);
      }
    }
    // Overload: offer ~2x the measured closed-loop capacity, with the
    // admission shedder off and on. The off row shows what an unprotected
    // queue does to latency; the on row shows the shed rate that buys the
    // accepted requests a bounded p99.
    {
      double capacity_rps =
          measure_capacity_rps(model, mix, 2, 200, smoke ? 2000 : 20000);
      if (capacity_rps <= 0.0) capacity_rps = smoke ? 5000.0 : 20000.0;
      const double overload_rps = 2.0 * capacity_rps;
      const double overload_duration_s = smoke ? 0.1 : 0.5;
      const auto overload_total =
          static_cast<std::size_t>(overload_rps * overload_duration_s);
      for (const long delay_us : {0L, 2000L}) {
        auto s = bench_serving_overload(model, mix, 2, 200, overload_rps,
                                        overload_total,
                                        std::chrono::microseconds(delay_us));
        std::printf(
            "serving-overload   shards=%zu bound=%4ldus offered %6.0f req/s  "
            "shed %5.1f%%  p50 %6.3f ms  p99 %6.3f ms   %s\n",
            s.shards, s.max_queue_delay_us, s.offered_rps,
            s.requests > 0
                ? 100.0 * static_cast<double>(s.shed) / static_cast<double>(s.requests)
                : 0.0,
            s.p50_ms, s.p99_ms, s.bit_identical ? "bit-identical" : "OUTPUT MISMATCH");
        serving.push_back(s);
      }
    }
    // Fleet: the same closed loop through the front balancer and N
    // socket-served workers. The interesting read is fleet vs the
    // single-node serving rows (wire + dispatch overhead) and how
    // throughput scales with the worker count.
    const std::size_t fleet_per_client = smoke ? 50 : 200;
    const std::vector<std::size_t> worker_counts =
        smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 2, 4};
    for (std::size_t workers : worker_counts) {
      auto s = bench_serving_fleet(model, mix, workers, clients, fleet_per_client);
      std::printf(
          "serving-fleet      workers=%zu           %8.0f req/s   p50 %6.3f ms  "
          "p99 %6.3f ms   %s\n",
          s.shards, s.throughput_rps, s.p50_ms, s.p99_ms,
          s.bit_identical ? "bit-identical" : "OUTPUT MISMATCH");
      serving.push_back(s);
    }
    // obs-overhead: the observability tax — instrumented vs runtime-
    // disabled metrics on the closed-loop serving bench. perf_gate.sh
    // enforces the <= 3% contract on this row's overhead_pct.
    {
      auto s = bench_serving_obs_overhead(model, mix, 2, 200, clients,
                                          smoke ? 50 : 200, 3);
      std::printf(
          "serving-obs        shards=%zu window=%4ldus  %8.0f req/s   overhead "
          "%5.2f%%   %s\n",
          s.shards, s.window_us, s.throughput_rps, s.overhead_pct,
          s.bit_identical ? "bit-identical" : "OUTPUT MISMATCH");
      serving.push_back(s);
    }
  } else {
    std::fprintf(stderr, "serving bench: model training failed, section skipped\n");
  }

  write_json(out, smoke, threads, results, serving);
  std::printf("\nwritten to %s\n", out.c_str());

  bool ok = true;
  for (const auto& r : results) ok = ok && r.bit_identical;
  for (const auto& s : serving) ok = ok && s.bit_identical;
  return ok ? 0 : 1;
}
