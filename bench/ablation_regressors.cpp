// Ablation — regressor families (§3.4): the paper states it *tried* OLS,
// LASSO and SVR for speedup, and polynomial regression and SVR for
// normalized energy, keeping SVR for its accuracy. This harness fits every
// candidate on the identical 4240-sample training set and scores it on the
// twelve test benchmarks, reproducing that model-selection decision.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/features.hpp"
#include "ml/lasso.hpp"
#include "ml/linear.hpp"
#include "ml/poly.hpp"
#include "ml/svr.hpp"

using namespace repro;

namespace {

struct EvalData {
  ml::Matrix x_train{0, 0};
  std::vector<double> y_speedup_train;
  std::vector<double> y_energy_train;
  ml::Matrix x_test{0, 0};
  std::vector<double> y_speedup_test;
  std::vector<double> y_energy_test;
};

EvalData build_data(core::ExperimentPipeline& pipeline) {
  EvalData d;
  const auto& sim = pipeline.simulator();
  const core::FeatureAssembler assembler(sim.freq());
  const auto train_configs = pipeline.model().training_configs();
  for (const auto& mb : pipeline.training_suite()) {
    const auto points = sim.characterize(mb.profile, train_configs);
    const auto norm = mb.features.normalized();
    for (const auto& p : points) {
      d.x_train.push_row(assembler.assemble(norm, p.config));
      d.y_speedup_train.push_back(p.speedup);
      d.y_energy_train.push_back(p.norm_energy);
    }
  }
  const auto test_configs = sim.freq().all_actual();
  for (const auto& benchmark : kernels::test_suite()) {
    const auto features = kernels::benchmark_features(benchmark);
    if (!features.ok()) continue;
    const auto norm = features.value().normalized();
    const auto points = sim.characterize(benchmark.profile, test_configs);
    for (const auto& p : points) {
      d.x_test.push_row(assembler.assemble(norm, p.config));
      d.y_speedup_test.push_back(p.speedup);
      d.y_energy_test.push_back(p.norm_energy);
    }
  }
  return d;
}

double score(ml::Regressor& model, const EvalData& d, bool speedup) {
  model.fit(d.x_train, speedup ? d.y_speedup_train : d.y_energy_train);
  const auto pred = model.predict(d.x_test);
  return 100.0 * common::rmse(pred, speedup ? d.y_speedup_test : d.y_energy_test);
}

}  // namespace

int main() {
  bench::print_header("Ablation", "regressor families for speedup and energy");
  auto& pipeline = bench::shared_pipeline();
  const auto data = build_data(pipeline);
  std::printf("training samples: %zu, test samples: %zu\n\n", data.x_train.rows(),
              data.x_test.rows());

  common::TablePrinter table({"objective", "model", "test RMSE [%]"},
                             {common::Align::kLeft, common::Align::kLeft,
                              common::Align::kRight});
  common::CsvDocument csv({"objective", "model", "rmse_percent"});
  const auto add = [&](const char* objective, const char* name, double rmse) {
    table.add_row({objective, name, bench::fmt(rmse, 2)});
    csv.add_row({std::string(objective), std::string(name), bench::fmt(rmse, 4)});
  };

  // Speedup candidates (§3.4: OLS, LASSO, SVR).
  {
    ml::LinearRegression ols;
    add("speedup", "OLS", score(ols, data, true));
    ml::Lasso lasso(ml::LassoParams{.alpha = 0.001, .tol = 1e-8, .max_iter = 5000});
    add("speedup", "LASSO (alpha=1e-3)", score(lasso, data, true));
    ml::Svr svr{ml::SvrParams{ml::KernelFunction::linear(), 1000.0, 0.1}};
    add("speedup", "SVR linear (paper)", score(svr, data, true));
  }
  table.add_separator();
  // Energy candidates (§3.4: polynomial regression, SVR-RBF).
  {
    ml::LinearRegression ols;
    add("energy", "OLS (reference)", score(ols, data, false));
    ml::PolynomialRegression poly(ml::PolynomialParams{.degree = 2, .l2 = 1e-3});
    add("energy", "polynomial deg-2 (ridge)", score(poly, data, false));
    ml::Svr svr{ml::SvrParams{ml::KernelFunction::rbf(0.1), 1000.0, 0.1}};
    add("energy", "SVR RBF g=0.1 (paper)", score(svr, data, false));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape: SVR matches or beats the simpler families on the\n");
  std::printf("nonlinear energy objective, supporting the paper's model choice.\n");
  const auto path = bench::dump_csv(csv, "ablation_regressors.csv");
  std::printf("written to %s\n", path.c_str());
  return 0;
}
