// Ablation — regressor families (§3.4): the paper states it *tried* OLS,
// LASSO and SVR for speedup, and polynomial regression and SVR for
// normalized energy, keeping SVR for its accuracy. This harness reproduces
// that model-selection decision entirely through the public API: each
// candidate is a registry key handed to Predictor::builder().regressors(),
// trained on the identical suite/backend, and scored on the twelve test
// benchmarks over every actual configuration.
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/measurement.hpp"
#include "core/predictor.hpp"
#include "ml/registry.hpp"

using namespace repro;

namespace {

struct Candidate {
  const char* objective;  // "speedup" or "energy"
  const char* label;
  std::string key;        // regressor registry key
  ml::RegressorParams params{};
};

/// One scored test kernel: its static features plus the measured ground
/// truth over every configuration — characterized once, shared by all
/// candidates.
struct TestKernel {
  clfront::StaticFeatures features;
  std::vector<gpusim::GpuSimulator::CharacterizedPoint> measured;
};

/// Train a predictor with `candidate.key` modeling its objective (the other
/// objective gets a cheap OLS — it does not affect the scored one) and
/// return the test RMSE of the candidate objective, in percent.
/// `suite` and `measurements` are shared by every candidate so they all fit
/// the identical training matrices; `measurements` is the ONE CachingBackend
/// of this run (handed to the builder through a non-owning BorrowedBackend),
/// so the simulator measures each (kernel, config) pair exactly once across
/// all candidates instead of refilling a fresh cache per candidate.
std::optional<double> score(const Candidate& candidate,
                            const std::vector<benchgen::MicroBenchmark>& suite,
                            const core::MeasurementBackend& measurements,
                            std::span<const TestKernel> test_kernels,
                            std::span<const gpusim::FrequencyConfig> configs) {
  const bool speedup = std::string(candidate.objective) == "speedup";
  auto builder = core::Predictor::builder();
  builder.regressors(speedup ? candidate.key : "ols", speedup ? "ols" : candidate.key);
  if (speedup) {
    builder.regressor_params(candidate.params, {});
  } else {
    builder.regressor_params({}, candidate.params);
  }
  builder.suite(suite);
  builder.backend(std::make_unique<core::BorrowedBackend>(measurements));
  auto predictor = builder.build();
  if (!predictor.ok()) {
    std::fprintf(stderr, "candidate %s failed: %s\n", candidate.label,
                 predictor.error().to_string().c_str());
    return std::nullopt;
  }

  std::vector<double> pred;
  std::vector<double> truth;
  for (const auto& kernel : test_kernels) {
    const auto predicted = predictor.value().predict_all(kernel.features, configs);
    if (!predicted.ok()) continue;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      pred.push_back(speedup ? predicted.value()[i].speedup : predicted.value()[i].energy);
      truth.push_back(speedup ? kernel.measured[i].speedup
                              : kernel.measured[i].norm_energy);
    }
  }
  return 100.0 * common::rmse(pred, truth);
}

}  // namespace

int main() {
  bench::print_header("Ablation", "regressor families for speedup and energy");
  std::printf("registered regressor families:");
  for (const auto& name : ml::registered_regressors()) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // One training suite (the shared pipeline's, seed 0x5EED0001) and one
  // memoized measurement pass, shared by every candidate: the first build
  // measures suite x configs on the pipeline's simulator, the rest replay
  // from the cache.
  const auto& pipeline = bench::shared_pipeline();
  const std::vector<benchgen::MicroBenchmark>& suite = pipeline.training_suite();
  const core::SimulatorBackend sim_backend(pipeline.simulator());
  const core::CachingBackend caching_backend(sim_backend);
  const core::MeasurementBackend& measurements = caching_backend;

  // Characterize the twelve test benchmarks once, up front — the ground
  // truth is candidate-independent.
  const auto& sim = pipeline.simulator();
  const auto configs = sim.freq().all_actual();
  std::vector<TestKernel> test_kernels;
  for (const auto& benchmark : kernels::test_suite()) {
    const auto features = kernels::benchmark_features(benchmark);
    if (!features.ok()) continue;
    test_kernels.push_back(
        {features.value(), sim.characterize(benchmark.profile, configs)});
  }

  // Speedup candidates (§3.4: OLS, LASSO, SVR) and energy candidates
  // (§3.4: polynomial regression, SVR-RBF), all by registry key.
  std::vector<Candidate> candidates;
  candidates.push_back({"speedup", "OLS", "ols"});
  {
    Candidate lasso{"speedup", "LASSO (alpha=1e-3)", "lasso"};
    lasso.params.lasso = ml::LassoParams{.alpha = 0.001, .tol = 1e-8, .max_iter = 5000};
    candidates.push_back(lasso);
  }
  candidates.push_back({"speedup", "SVR linear (paper)", "svr-linear"});
  candidates.push_back({"energy", "OLS (reference)", "ols"});
  {
    Candidate poly{"energy", "polynomial deg-2 (ridge)", "poly"};
    poly.params.poly = ml::PolynomialParams{.degree = 2, .l2 = 1e-3};
    candidates.push_back(poly);
  }
  candidates.push_back({"energy", "SVR RBF g=0.1 (paper)", "svr-rbf"});

  common::TablePrinter table({"objective", "model", "test RMSE [%]"},
                             {common::Align::kLeft, common::Align::kLeft,
                              common::Align::kRight});
  common::CsvDocument csv({"objective", "model", "rmse_percent"});
  bool separator_added = false;
  for (const auto& candidate : candidates) {
    if (!separator_added && std::string(candidate.objective) == "energy") {
      table.add_separator();
      separator_added = true;
    }
    const std::optional<double> rmse =
        score(candidate, suite, measurements, test_kernels, configs);
    table.add_row({candidate.objective, candidate.label,
                   rmse ? bench::fmt(*rmse, 2) : "n/a"});
    csv.add_row({std::string(candidate.objective), std::string(candidate.label),
                 rmse ? bench::fmt(*rmse, 4) : "nan"});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape: SVR matches or beats the simpler families on the\n");
  std::printf("nonlinear energy objective, supporting the paper's model choice.\n");
  const auto path = bench::dump_csv(csv, "ablation_regressors.csv");
  std::printf("written to %s\n", path.c_str());
  return 0;
}
