// Ablation — SVR hyper-parameters: the paper fixes C = 1000, ε = 0.1 and
// γ = 0.1 (§3.4) without reporting a search. This harness runs a K-fold
// cross-validated grid around those values on a subset of the training data
// and shows where the paper's point sits in the (C, γ) landscape.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/features.hpp"
#include "ml/dataset.hpp"
#include "ml/model_selection.hpp"

using namespace repro;

int main() {
  bench::print_header("Ablation", "SVR hyper-parameter landscape (energy model)");
  auto& pipeline = bench::shared_pipeline();
  const auto& sim = pipeline.simulator();
  const core::FeatureAssembler assembler(sim.freq());
  const auto configs = pipeline.model().training_configs();

  // A 1/4 subset keeps the grid search fast while preserving the structure.
  ml::Dataset data;
  const auto& suite = pipeline.training_suite();
  for (std::size_t k = 0; k < suite.size(); k += 4) {
    const auto points = sim.characterize(suite[k].profile, configs);
    const auto norm = suite[k].features.normalized();
    for (const auto& p : points) {
      data.add(assembler.assemble(norm, p.config), p.norm_energy);
    }
  }
  std::printf("grid-search data: %zu samples, 4-fold CV, objective: normalized energy\n\n",
              data.size());

  const std::vector<double> c_grid{10.0, 100.0, 1000.0};
  const std::vector<double> gamma_grid{0.01, 0.1, 1.0};
  const auto result = ml::svr_rbf_grid_search(data, 4, 0xC0FFEE, c_grid, gamma_grid, 0.1);

  common::TablePrinter table({"candidate", "CV RMSE", "note"},
                             {common::Align::kLeft, common::Align::kRight,
                              common::Align::kLeft});
  common::CsvDocument csv({"candidate", "cv_rmse"});
  for (const auto& [name, rmse] : result.scores) {
    std::string note;
    if (name == result.best_name) note = "<- best";
    if (name.find("C=1000") != std::string::npos && name.find("g=0.100") != std::string::npos) {
      note += note.empty() ? "paper's setting" : " (paper's setting)";
    }
    table.add_row({name, bench::fmt(rmse, 4), note});
    csv.add_row({name, bench::fmt(rmse, 6)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("best: %s (CV RMSE %.4f)\n", result.best_name.c_str(), result.best_rmse);
  std::printf("the landscape is flat in C (the epsilon tube dominates) and mildly\n");
  std::printf("sensitive to gamma; on the simulated substrate a tighter gamma would\n");
  std::printf("buy a further ~15-20%% CV error — a cheap per-device tuning knob the\n");
  std::printf("paper's fixed (C=1000, gamma=0.1) leaves on the table.\n");
  const auto path = bench::dump_csv(csv, "ablation_hyperparams.csv");
  std::printf("written to %s\n", path.c_str());
  return 0;
}
