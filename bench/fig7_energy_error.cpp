// Figure 7 — prediction error of normalized energy: same methodology as
// Fig. 6 for the RBF-kernel energy model.
//
// Paper reference values: RMSE = 7.82% (mem-H), 5.65% (mem-h), 12.85%
// (mem-l), 15.10% (mem-L).
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace repro;

int main() {
  bench::print_header("Figure 7", "prediction error of normalized energy");
  auto& pipeline = bench::shared_pipeline();
  std::printf("model: RBF-kernel SVR (gamma=0.1, C=1000, eps=0.1) trained on %zu samples\n\n",
              pipeline.model().training_samples());

  const double paper[4] = {7.82, 5.65, 12.85, 15.10};
  const auto report = pipeline.energy_errors();

  common::CsvDocument csv({"mem_mhz", "benchmark", "min", "q25", "median", "q75", "max"});
  int level_idx = 0;
  for (const auto& block : report.levels) {
    std::printf("Memory Frequency: %d MHz (%s)\n", block.mem_mhz,
                gpusim::mem_level_label(block.level));
    common::TablePrinter table({"benchmark", "min", "q25", "median", "q75", "max"},
                               {common::Align::kLeft, common::Align::kRight,
                                common::Align::kRight, common::Align::kRight,
                                common::Align::kRight, common::Align::kRight});
    for (const auto& group : block.per_benchmark) {
      table.add_row({group.benchmark, bench::fmt(group.box.min, 1),
                     bench::fmt(group.box.q25, 1), bench::fmt(group.box.median, 1),
                     bench::fmt(group.box.q75, 1), bench::fmt(group.box.max, 1)});
      csv.add_row({std::to_string(block.mem_mhz), group.benchmark,
                   bench::fmt(group.box.min, 4), bench::fmt(group.box.q25, 4),
                   bench::fmt(group.box.median, 4), bench::fmt(group.box.q75, 4),
                   bench::fmt(group.box.max, 4)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("RMSE = %.2f%%   (paper: %.2f%%)\n\n", block.rmse_percent,
                paper[level_idx]);
    ++level_idx;
  }
  const auto path = bench::dump_csv(csv, "fig7_energy_error.csv");
  std::printf("box-plot data written to %s\n", path.c_str());
  return 0;
}
