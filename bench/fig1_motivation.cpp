// Figure 1 — motivation: speedup (a,d), normalized energy (b,e) and the
// multi-objective view (c,f) of k-NN and MT (Mersenne Twister) across every
// supported (core, memory) configuration.
//
// Prints one series per memory level and dumps the full data to CSV so the
// figure can be re-plotted.
#include <cstdio>

#include "bench_util.hpp"
#include "gpusim/simulator.hpp"
#include "kernels/kernels.hpp"

using namespace repro;

namespace {

void characterize_application(const gpusim::GpuSimulator& sim, const char* name,
                              common::CsvDocument& csv) {
  const auto* benchmark = kernels::find_benchmark(name);
  if (benchmark == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", name);
    std::exit(1);
  }
  std::printf("--- %s ---\n", name);
  for (const auto& domain : sim.freq().domains()) {
    std::vector<gpusim::FrequencyConfig> configs;
    for (int core : domain.actual_core_mhz) configs.push_back({core, domain.mem_mhz});
    const auto points = sim.characterize(benchmark->profile, configs);

    std::printf("%s (%d MHz): core MHz -> (speedup, norm. energy)\n",
                gpusim::mem_level_label(domain.level), domain.mem_mhz);
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Print a readable subset (every 4th point); the CSV has everything.
      if (i % 4 == 0 || i + 1 == points.size()) {
        std::printf("  %4d -> (%s, %s)\n", configs[i].core_mhz,
                    bench::fmt(points[i].speedup).c_str(),
                    bench::fmt(points[i].norm_energy).c_str());
      }
      csv.add_row({std::string(name), std::string(gpusim::mem_level_label(domain.level)),
                   std::to_string(configs[i].core_mhz), std::to_string(domain.mem_mhz),
                   bench::fmt(points[i].speedup, 6), bench::fmt(points[i].norm_energy, 6)});
    }
  }
  const auto def = sim.freq().default_config();
  std::printf("default configuration: core %d MHz, mem %d MHz -> (1.000, 1.000)\n\n",
              def.core_mhz, def.mem_mhz);
}

}  // namespace

int main() {
  bench::print_header("Figure 1", "speedup and normalized energy vs. frequencies");

  const gpusim::GpuSimulator sim(gpusim::DeviceModel::titan_x());
  common::CsvDocument csv(
      {"benchmark", "mem_level", "core_mhz", "mem_mhz", "speedup", "norm_energy"});

  // The paper's two motivating applications: strongly core-sensitive k-NN
  // (Fig. 1a-c) vs. memory-dominated MT (Fig. 1d-f).
  characterize_application(sim, "k-NN", csv);
  characterize_application(sim, "MersenneTwister", csv);

  const auto path = bench::dump_csv(csv, "fig1_motivation.csv");
  std::printf("full series written to %s\n", path.c_str());
  return 0;
}
