// Shared plumbing for the experiment harnesses: a cached pipeline (so the
// model is trained once and reused by every binary), CSV dumping next to the
// printed tables, and small formatting helpers.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "core/evaluation.hpp"

namespace repro::bench {

/// All harnesses share one model cache in the working directory; the first
/// binary trains (~seconds), the rest load.
inline core::PipelineOptions default_pipeline_options() {
  core::PipelineOptions options;
  options.model_cache_path = "gpufreq_model_cache.txt";
  return options;
}

/// Prepare the shared pipeline or abort with a message.
inline core::ExperimentPipeline& shared_pipeline() {
  static auto* pipeline = [] {
    common::set_log_level(common::LogLevel::kInfo);
    auto* p = new core::ExperimentPipeline(default_pipeline_options());
    const auto st = p->prepare();
    if (!st.ok()) {
      std::fprintf(stderr, "pipeline setup failed: %s\n", st.error().to_string().c_str());
      std::exit(1);
    }
    return p;
  }();
  return *pipeline;
}

/// Write a CSV next to the binary output; returns the path for the footer.
inline std::string dump_csv(const common::CsvDocument& doc, const std::string& name) {
  std::filesystem::create_directories("bench_out");
  const std::string path = "bench_out/" + name;
  if (const auto st = doc.save(path); !st.ok()) {
    std::fprintf(stderr, "warning: could not write %s: %s\n", path.c_str(),
                 st.error().to_string().c_str());
  }
  return path;
}

inline std::string fmt(double v, int precision = 3) {
  return common::format_double(v, precision);
}

inline void print_header(const char* experiment, const char* what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("Reproduction of: Fan, Cosenza, Juurlink, \"Predictable GPUs\n");
  std::printf("Frequency Scaling for Energy and Performance\", ICPP 2019.\n");
  std::printf("Backend: simulated GPUs (see DESIGN.md for the substitution analysis).\n");
  std::printf("================================================================\n\n");
}

}  // namespace repro::bench
