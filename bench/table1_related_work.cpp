// Table 1 — comparison against the state of the art. The table is
// qualitative in the paper; this harness reprints it and verifies that the
// implemented system actually exhibits the four claimed properties by
// construction (static features, Pareto-optimal output, frequency scaling,
// machine learning).
#include <cstdio>

#include "bench_util.hpp"
#include "clfront/features.hpp"
#include "common/table.hpp"
#include "kernels/kernels.hpp"

using namespace repro;

int main() {
  bench::print_header("Table 1", "comparison against the state of the art");

  common::TablePrinter table(
      {"Paper", "Static", "Pareto-optimal", "Frequency Scaling", "Machine Learning"});
  table.add_row({"Grewe et al. [10]", "yes", "no", "no", "yes"});
  table.add_row({"Steen et al. [7]", "no", "yes", "no", "no"});
  table.add_row({"Abe et al. [1]", "no", "no", "yes", "no"});
  table.add_row({"Guerreiro et al. [11]", "no", "no", "yes", "yes"});
  table.add_row({"Wu et al. [29]", "no", "no", "yes", "yes"});
  table.add_separator();
  table.add_row({"This work (reproduction)", "yes", "yes", "yes", "yes"});
  std::printf("%s\n", table.to_string().c_str());

  // Evidence that the reproduction has the four properties:
  // 1. Static: features come from source text alone, no execution involved.
  const auto* knn = kernels::find_benchmark("k-NN");
  const auto features = clfront::extract_features_from_source(knn->source, knn->kernel_name);
  std::printf("[static]   extracted %s without executing the kernel\n",
              features.ok() ? features.value().to_string().c_str() : "ERROR");

  // 2-4: exercised by the pipeline below (SVR models over (k, f) features,
  // Pareto set output across core/memory clocks).
  auto& pipeline = bench::shared_pipeline();
  const auto cases = pipeline.pareto_evaluation();
  std::printf("[pareto]   predicted Pareto sets for %zu benchmarks\n", cases.size());
  std::printf("[dvfs]     %zu (core, memory) configurations modeled\n",
              pipeline.simulator().freq().all_actual().size());
  std::printf("[ml]       models: %s + %s\n",
              pipeline.model().speedup_model().name().c_str(),
              pipeline.model().energy_model().name().c_str());
  return 0;
}
