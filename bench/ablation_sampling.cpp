// Ablation — training-configuration budget (§3.3): the paper samples 40 of
// the 177 configurations per micro-benchmark ("20 minutes" vs "70 minutes"
// for all). This harness sweeps the budget and reports accuracy, showing the
// knee that justifies 40.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/model.hpp"

using namespace repro;

namespace {

struct Accuracy {
  double speedup_rmse = 0.0;
  double energy_rmse = 0.0;
};

Accuracy evaluate(const core::FrequencyModel& model, const gpusim::GpuSimulator& sim) {
  std::vector<double> pred_s, true_s, pred_e, true_e;
  const auto configs = sim.freq().all_actual();
  for (const auto& benchmark : kernels::test_suite()) {
    const auto features = kernels::benchmark_features(benchmark);
    if (!features.ok()) continue;
    const auto measured = sim.characterize(benchmark.profile, configs);
    const auto predicted = model.predict_all(features.value(), configs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      pred_s.push_back(predicted[i].speedup);
      true_s.push_back(measured[i].speedup);
      pred_e.push_back(predicted[i].energy);
      true_e.push_back(measured[i].norm_energy);
    }
  }
  return {100.0 * common::rmse(pred_s, true_s), 100.0 * common::rmse(pred_e, true_e)};
}

}  // namespace

int main() {
  bench::print_header("Ablation", "training-configuration sampling budget");
  auto& pipeline = bench::shared_pipeline();
  const auto& sim = pipeline.simulator();
  const auto& suite = pipeline.training_suite();

  common::TablePrinter table(
      {"configs/kernel", "samples", "speedup RMSE [%]", "energy RMSE [%]"},
      {common::Align::kRight, common::Align::kRight, common::Align::kRight,
       common::Align::kRight});
  common::CsvDocument csv({"configs", "samples", "speedup_rmse", "energy_rmse"});

  for (const std::size_t budget : {12u, 20u, 30u, 40u, 60u, 90u}) {
    core::TrainingOptions options;
    options.num_configs = budget;
    const auto model = core::FrequencyModel::train(sim, suite, options);
    if (!model.ok()) {
      std::fprintf(stderr, "training failed at %zu configs: %s\n", budget,
                   model.error().message.c_str());
      continue;
    }
    const auto acc = evaluate(model.value(), sim);
    table.add_row({std::to_string(model.value().training_configs().size()),
                   std::to_string(model.value().training_samples()),
                   bench::fmt(acc.speedup_rmse, 2), bench::fmt(acc.energy_rmse, 2)});
    csv.add_row({std::to_string(model.value().training_configs().size()),
                 std::to_string(model.value().training_samples()),
                 bench::fmt(acc.speedup_rmse, 4), bench::fmt(acc.energy_rmse, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("the paper's 40-configuration budget sits at the accuracy knee:\n");
  std::printf("the energy model under-resolves the low memory clocks below ~30 samples;\n");
  std::printf("the linear speedup model is capacity-limited, not data-limited.\n");
  const auto path = bench::dump_csv(csv, "ablation_sampling.csv");
  std::printf("written to %s\n", path.c_str());
  return 0;
}
