// Figure 5 — characterization of eight selected benchmarks: speedup vs.
// normalized energy at every actual frequency configuration, grouped by
// memory level. Prints a per-level summary (ranges and best points) and
// dumps the full scatter to CSV.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/simulator.hpp"
#include "kernels/kernels.hpp"

using namespace repro;

int main() {
  bench::print_header("Figure 5", "speedup / normalized-energy characterization");

  const gpusim::GpuSimulator sim(gpusim::DeviceModel::titan_x());
  common::CsvDocument csv(
      {"benchmark", "mem_level", "core_mhz", "mem_mhz", "speedup", "norm_energy"});

  for (const auto& name : kernels::figure5_selection()) {
    const auto* benchmark = kernels::find_benchmark(name);
    std::printf("--- %s ---\n", name.c_str());
    common::TablePrinter table(
        {"mem level", "configs", "speedup range", "energy range", "best (s, e)"},
        {common::Align::kLeft, common::Align::kRight, common::Align::kRight,
         common::Align::kRight, common::Align::kRight});

    for (const auto& domain : sim.freq().domains()) {
      std::vector<gpusim::FrequencyConfig> configs;
      for (int core : domain.actual_core_mhz) configs.push_back({core, domain.mem_mhz});
      const auto points = sim.characterize(benchmark->profile, configs);

      double s_lo = 1e18, s_hi = -1e18, e_lo = 1e18, e_hi = -1e18;
      double best_s = 0.0, best_e = 1e18;
      for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        s_lo = std::min(s_lo, p.speedup);
        s_hi = std::max(s_hi, p.speedup);
        e_lo = std::min(e_lo, p.norm_energy);
        e_hi = std::max(e_hi, p.norm_energy);
        if (p.norm_energy < best_e) {
          best_e = p.norm_energy;
          best_s = p.speedup;
        }
        csv.add_row({name, std::string(gpusim::mem_level_label(domain.level)),
                     std::to_string(configs[i].core_mhz), std::to_string(domain.mem_mhz),
                     bench::fmt(p.speedup, 6), bench::fmt(p.norm_energy, 6)});
      }
      table.add_row({gpusim::mem_level_label(domain.level),
                     std::to_string(points.size()),
                     "[" + bench::fmt(s_lo) + ", " + bench::fmt(s_hi) + "]",
                     "[" + bench::fmt(e_lo) + ", " + bench::fmt(e_hi) + "]",
                     "(" + bench::fmt(best_s) + ", " + bench::fmt(best_e) + ")"});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf("paper §4.2: top rows are memory-dominated at low memory clocks\n");
  std::printf("(clusters/lines), bottom-right is better in every panel.\n");
  const auto path = bench::dump_csv(csv, "fig5_characterization.csv");
  std::printf("full scatter written to %s\n", path.c_str());
  return 0;
}
