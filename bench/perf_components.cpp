// Google-benchmark suite for the library components themselves: Pareto set
// algorithms (the paper's Algorithm 1 vs. the O(n log n) front),
// hypervolume, SVR training/prediction, static feature extraction and the
// GPU simulator's measurement path.
#include <benchmark/benchmark.h>

#include "benchgen/benchgen.hpp"
#include "clfront/features.hpp"
#include "common/rng.hpp"
#include "core/features.hpp"
#include "gpusim/simulator.hpp"
#include "kernels/kernels.hpp"
#include "ml/registry.hpp"
#include "pareto/hypervolume.hpp"
#include "pareto/pareto.hpp"

using namespace repro;

namespace {

std::vector<pareto::Point> random_points(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<pareto::Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({rng.uniform(0.05, 1.3), rng.uniform(0.4, 1.9),
                   static_cast<std::uint32_t>(i)});
  }
  return out;
}

void BM_ParetoNaive(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::pareto_set_naive(pts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParetoNaive)->Range(16, 4096)->Complexity();

void BM_ParetoFast(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::pareto_set_fast(pts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParetoFast)->Range(16, 4096)->Complexity();

void BM_Hypervolume(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::hypervolume(pts));
  }
}
BENCHMARK(BM_Hypervolume)->Range(16, 4096);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto* benchmark_def = kernels::find_benchmark("Blackscholes");
  for (auto _ : state) {
    benchmark::DoNotOptimize(clfront::extract_features_from_source(
        benchmark_def->source, benchmark_def->kernel_name));
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_SimulatorMeasurement(benchmark::State& state) {
  const gpusim::GpuSimulator sim(gpusim::DeviceModel::titan_x());
  const auto* benchmark_def = kernels::find_benchmark("MatrixMultiply");
  const gpusim::FrequencyConfig config{1001, 3505};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_at(benchmark_def->profile, config));
  }
}
BENCHMARK(BM_SimulatorMeasurement);

void BM_SvrTraining(benchmark::State& state) {
  // Train on a slice of the real pipeline data (size = range samples).
  static const auto suite = benchgen::generate_training_suite().value();
  const gpusim::GpuSimulator sim(gpusim::DeviceModel::titan_x());
  const core::FeatureAssembler assembler(sim.freq());
  const auto configs = sim.freq().sample_configs(40);
  ml::Matrix x(0, 0);
  std::vector<double> y;
  const auto samples = static_cast<std::size_t>(state.range(0));
  for (const auto& mb : suite) {
    if (x.rows() >= samples) break;
    const auto pts = sim.characterize(mb.profile, configs);
    const auto norm = mb.features.normalized();
    for (const auto& p : pts) {
      if (x.rows() >= samples) break;
      x.push_row(assembler.assemble(norm, p.config));
      y.push_back(p.speedup);
    }
  }
  for (auto _ : state) {
    auto svr = ml::make_regressor("svr-linear").take();
    svr->fit(x, y);
    benchmark::DoNotOptimize(svr);
  }
}
BENCHMARK(BM_SvrTraining)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_SvrPrediction(benchmark::State& state) {
  static const auto suite = benchgen::generate_training_suite().value();
  const gpusim::GpuSimulator sim(gpusim::DeviceModel::titan_x());
  const core::FeatureAssembler assembler(sim.freq());
  const auto configs = sim.freq().sample_configs(40);
  ml::Matrix x(0, 0);
  std::vector<double> y;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto pts = sim.characterize(suite[i].profile, configs);
    const auto norm = suite[i].features.normalized();
    for (const auto& p : pts) {
      x.push_row(assembler.assemble(norm, p.config));
      y.push_back(p.speedup);
    }
  }
  const auto svr = ml::make_regressor("svr-rbf").take();
  svr->fit(x, y);
  const auto probe = x.row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svr->predict_one(probe));
  }
}
BENCHMARK(BM_SvrPrediction);

void BM_TrainingDataGeneration(benchmark::State& state) {
  // One micro-benchmark characterized at the 40 sampled configurations —
  // the unit of work behind the "20 minutes per benchmark" the paper quotes
  // for the real hardware (§3.3); here it is micro-seconds.
  static const auto suite = benchgen::generate_training_suite().value();
  const gpusim::GpuSimulator sim(gpusim::DeviceModel::titan_x());
  const auto configs = sim.freq().sample_configs(40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.characterize(suite[0].profile, configs));
  }
}
BENCHMARK(BM_TrainingDataGeneration);

}  // namespace

BENCHMARK_MAIN();
