// Ablation — the mem-L heuristic (§4.5): the paper excludes the erratic
// 405 MHz memory clock from modeling and appends its highest-core
// configuration to every predicted Pareto set ("accurate for all but one
// code: AES"). This harness scores the predicted fronts with and without
// the heuristic point.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "pareto/front_metrics.hpp"

using namespace repro;

int main() {
  bench::print_header("Ablation", "the paper's mem-L heuristic (§4.5)");
  auto& pipeline = bench::shared_pipeline();

  common::TablePrinter table(
      {"benchmark", "D with heuristic", "D without", "heuristic helps"},
      {common::Align::kLeft, common::Align::kRight, common::Align::kRight,
       common::Align::kLeft});
  common::CsvDocument csv({"benchmark", "d_with", "d_without", "helps"});

  int helps_count = 0;
  int hurts_count = 0;
  for (const auto& pc : pipeline.pareto_evaluation()) {
    // Strip the heuristic point and re-evaluate.
    std::vector<pareto::Point> without;
    for (std::size_t i = 0; i < pc.predicted.size(); ++i) {
      if (!pc.predicted[i].heuristic) without.push_back(pc.predicted_measured[i]);
    }
    const auto eval_without = pareto::evaluate_front(pc.true_front, without);
    const double d_with = pc.evaluation.coverage;
    const double d_without = eval_without.coverage;
    const bool helps = d_with < d_without - 1e-9;
    const bool hurts = d_with > d_without + 1e-9;
    helps_count += helps ? 1 : 0;
    hurts_count += hurts ? 1 : 0;
    table.add_row({pc.name, bench::fmt(d_with, 4), bench::fmt(d_without, 4),
                   helps ? "yes" : (hurts ? "NO (hurts)" : "neutral")});
    csv.add_row({pc.name, bench::fmt(d_with, 6), bench::fmt(d_without, 6),
                 helps ? "1" : "0"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("heuristic helps %d / 12 benchmarks, hurts %d (paper: helps all but AES —\n",
              helps_count, hurts_count);
  std::printf("mem-L is dominant in 11 of 12 codes on their Titan X; on the simulated\n");
  std::printf("card the saving concentrates on the compute-dominated codes).\n");
  const auto path = bench::dump_csv(csv, "ablation_meml_heuristic.csv");
  std::printf("written to %s\n", path.c_str());
  return 0;
}
