// Figure 6 — prediction error of speedup: per-benchmark box plots of the
// signed error (percentage points of the default-normalized scale), grouped
// by memory frequency, with the per-group RMSE the paper annotates.
//
// Paper reference values: RMSE = 6.68% (mem-H), 7.10% (mem-h), 11.13%
// (mem-l), 9.09% (mem-L).
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace repro;

namespace {

void print_error_report(const core::ErrorReport& report, const char* csv_name,
                        const double paper_rmse[4]) {
  common::CsvDocument csv({"mem_mhz", "benchmark", "min", "q25", "median", "q75", "max"});
  int level_idx = 0;
  for (const auto& block : report.levels) {
    std::printf("Memory Frequency: %d MHz (%s)\n", block.mem_mhz,
                gpusim::mem_level_label(block.level));
    common::TablePrinter table({"benchmark", "min", "q25", "median", "q75", "max"},
                               {common::Align::kLeft, common::Align::kRight,
                                common::Align::kRight, common::Align::kRight,
                                common::Align::kRight, common::Align::kRight});
    for (const auto& group : block.per_benchmark) {
      table.add_row({group.benchmark, bench::fmt(group.box.min, 1),
                     bench::fmt(group.box.q25, 1), bench::fmt(group.box.median, 1),
                     bench::fmt(group.box.q75, 1), bench::fmt(group.box.max, 1)});
      csv.add_row({std::to_string(block.mem_mhz), group.benchmark,
                   bench::fmt(group.box.min, 4), bench::fmt(group.box.q25, 4),
                   bench::fmt(group.box.median, 4), bench::fmt(group.box.q75, 4),
                   bench::fmt(group.box.max, 4)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("RMSE = %.2f%%   (paper: %.2f%%)\n\n", block.rmse_percent,
                paper_rmse[level_idx]);
    ++level_idx;
  }
  const auto path = bench::dump_csv(csv, csv_name);
  std::printf("box-plot data written to %s\n", path.c_str());
}

}  // namespace

int main() {
  bench::print_header("Figure 6", "prediction error of speedup");
  auto& pipeline = bench::shared_pipeline();
  std::printf("model: linear-kernel SVR (C=1000, eps=0.1) trained on %zu samples\n",
              pipeline.model().training_samples());
  std::printf("(%zu micro-benchmarks x %zu sampled configurations)\n\n",
              pipeline.training_suite().size(), pipeline.model().training_configs().size());

  const double paper[4] = {6.68, 7.10, 11.13, 9.09};
  print_error_report(pipeline.speedup_errors(), "fig6_speedup_error.csv", paper);
  return 0;
}
