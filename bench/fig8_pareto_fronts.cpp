// Figure 8 — accuracy of the predicted Pareto fronts: for each of the
// twelve test benchmarks, the measured true front P* (blue line in the
// paper) and the predicted set P' (red crosses) re-evaluated at its measured
// objectives, including the heuristic mem-L point.
#include <cstdio>

#include "bench_util.hpp"
#include "pareto/pareto.hpp"

using namespace repro;

int main() {
  bench::print_header("Figure 8", "predicted Pareto front vs. measured front");
  auto& pipeline = bench::shared_pipeline();

  common::CsvDocument csv({"benchmark", "set", "core_mhz", "mem_mhz", "speedup",
                           "norm_energy", "heuristic"});

  for (const auto& pc : pipeline.pareto_evaluation()) {
    std::printf("--- %s (coverage difference D = %.4f) ---\n", pc.name.c_str(),
                pc.evaluation.coverage);

    std::printf("measured Pareto front P* (%zu points):\n", pc.true_front.size());
    for (const auto& p : pc.true_front) {
      const auto& config = pc.measured[p.id].config;
      std::printf("  (%s, %s) at core %4d / mem %4d\n", bench::fmt(p.speedup).c_str(),
                  bench::fmt(p.energy).c_str(), config.core_mhz, config.mem_mhz);
      csv.add_row({pc.name, std::string("true_front"), std::to_string(config.core_mhz),
                   std::to_string(config.mem_mhz), bench::fmt(p.speedup, 6),
                   bench::fmt(p.energy, 6), std::string("0")});
    }

    std::printf("predicted set P' (%zu points, measured objectives):\n",
                pc.predicted.size());
    for (std::size_t i = 0; i < pc.predicted.size(); ++i) {
      const auto& pred = pc.predicted[i];
      const auto& meas = pc.predicted_measured[i];
      std::printf("  (%s, %s) at core %4d / mem %4d%s  [predicted (%s, %s)]\n",
                  bench::fmt(meas.speedup).c_str(), bench::fmt(meas.energy).c_str(),
                  pred.config.core_mhz, pred.config.mem_mhz,
                  pred.heuristic ? " [mem-L heuristic]" : "",
                  bench::fmt(pred.speedup).c_str(), bench::fmt(pred.energy).c_str());
      csv.add_row({pc.name, std::string("predicted"),
                   std::to_string(pred.config.core_mhz),
                   std::to_string(pred.config.mem_mhz), bench::fmt(meas.speedup, 6),
                   bench::fmt(meas.energy, 6), pred.heuristic ? "1" : "0"});
    }

    // The full measured scatter (the gray/green points of the figure).
    for (const auto& m : pc.measured) {
      csv.add_row({pc.name, std::string("measured_all"), std::to_string(m.config.core_mhz),
                   std::to_string(m.config.mem_mhz), bench::fmt(m.speedup, 6),
                   bench::fmt(m.norm_energy, 6), std::string("0")});
    }
    std::printf("\n");
  }

  const auto path = bench::dump_csv(csv, "fig8_pareto_fronts.csv");
  std::printf("fronts and scatter written to %s\n", path.c_str());
  return 0;
}
