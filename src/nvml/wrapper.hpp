// RAII C++ wrapper over the nvmlsim C API — the interface the examples use.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "gpusim/freq_table.hpp"
#include "gpusim/kernel_profile.hpp"
#include "nvml/nvmlsim.h"

namespace repro::nvml {

/// Scoped nvmlInit/nvmlShutdown.
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] common::Result<std::size_t> device_count() const;

 private:
  bool ok_ = false;
};

/// Non-owning device facade (handles live as long as the session).
class Device {
 public:
  /// Open by index (0 = Titan X, 1 = Tesla P100 in nvmlsim).
  [[nodiscard]] static common::Result<Device> by_index(unsigned index);

  [[nodiscard]] common::Result<std::string> name() const;
  [[nodiscard]] common::Result<std::vector<unsigned>> supported_memory_clocks() const;
  [[nodiscard]] common::Result<std::vector<unsigned>> supported_graphics_clocks(
      unsigned mem_mhz) const;

  [[nodiscard]] common::Status set_applications_clocks(unsigned mem_mhz,
                                                       unsigned core_mhz) const;
  [[nodiscard]] common::Status reset_applications_clocks() const;

  /// Requested vs effective clocks (they differ in the clamp zone).
  [[nodiscard]] common::Result<gpusim::FrequencyConfig> applications_clocks() const;
  [[nodiscard]] common::Result<gpusim::FrequencyConfig> effective_clocks() const;

  [[nodiscard]] common::Result<double> power_usage_watts() const;

  [[nodiscard]] common::Status bind_workload(const gpusim::KernelProfile* profile) const;

  struct RunResult {
    double time_ms = 0.0;
    double energy_j = 0.0;
  };
  [[nodiscard]] common::Result<RunResult> run_workload() const;

 private:
  explicit Device(nvmlDevice_t handle) : handle_(handle) {}
  nvmlDevice_t handle_ = nullptr;
};

/// Map an nvmlReturn_t to a library error.
[[nodiscard]] common::Error to_error(nvmlReturn_t rc, const std::string& what);

}  // namespace repro::nvml
