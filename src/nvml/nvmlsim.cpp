#include "nvml/nvmlsim.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "gpusim/simulator.hpp"

namespace {

using repro::gpusim::DeviceModel;
using repro::gpusim::FrequencyConfig;
using repro::gpusim::GpuSimulator;
using repro::gpusim::KernelProfile;

struct SimDevice {
  GpuSimulator sim;
  FrequencyConfig requested;  // application clocks as requested
  FrequencyConfig effective;  // after clamping
  const KernelProfile* workload = nullptr;

  explicit SimDevice(DeviceModel model)
      : sim(std::move(model)),
        requested(sim.freq().default_config()),
        effective(sim.freq().default_config()) {}
};

struct NvmlState {
  std::mutex mutex;
  bool initialized = false;
  std::vector<std::unique_ptr<SimDevice>> devices;
};

NvmlState& state() {
  static NvmlState s;
  return s;
}

SimDevice* to_device(nvmlDevice_t handle) {
  return reinterpret_cast<SimDevice*>(handle);
}

bool is_valid_device(const NvmlState& s, SimDevice* dev) {
  for (const auto& d : s.devices) {
    if (d.get() == dev) return true;
  }
  return false;
}

/// Guard that validates initialization + handle and produces the device.
nvmlReturn_t checked_device(nvmlDevice_t handle, SimDevice** out) {
  NvmlState& s = state();
  if (!s.initialized) return NVML_ERROR_UNINITIALIZED;
  SimDevice* dev = to_device(handle);
  if (dev == nullptr || !is_valid_device(s, dev)) return NVML_ERROR_INVALID_ARGUMENT;
  *out = dev;
  return NVML_SUCCESS;
}

}  // namespace

extern "C" {

const char* nvmlErrorString(nvmlReturn_t result) {
  switch (result) {
    case NVML_SUCCESS: return "The operation was successful";
    case NVML_ERROR_UNINITIALIZED: return "NVML was not first initialized with nvmlInit()";
    case NVML_ERROR_INVALID_ARGUMENT: return "A supplied argument is invalid";
    case NVML_ERROR_NOT_SUPPORTED: return "The requested operation is not available";
    case NVML_ERROR_NOT_FOUND: return "A query to find an object was unsuccessful";
    case NVML_ERROR_INSUFFICIENT_SIZE: return "An input argument is not large enough";
    default: return "An internal driver error occurred";
  }
}

nvmlReturn_t nvmlInit(void) {
  NvmlState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.initialized) {
    s.devices.clear();
    s.devices.push_back(std::make_unique<SimDevice>(DeviceModel::titan_x()));
    s.devices.push_back(std::make_unique<SimDevice>(DeviceModel::tesla_p100()));
    s.initialized = true;
  }
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlShutdown(void) {
  NvmlState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.initialized) return NVML_ERROR_UNINITIALIZED;
  s.devices.clear();
  s.initialized = false;
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlDeviceGetCount(unsigned int* deviceCount) {
  NvmlState& s = state();
  if (!s.initialized) return NVML_ERROR_UNINITIALIZED;
  if (deviceCount == nullptr) return NVML_ERROR_INVALID_ARGUMENT;
  *deviceCount = static_cast<unsigned int>(s.devices.size());
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlDeviceGetHandleByIndex(unsigned int index, nvmlDevice_t* device) {
  NvmlState& s = state();
  if (!s.initialized) return NVML_ERROR_UNINITIALIZED;
  if (device == nullptr) return NVML_ERROR_INVALID_ARGUMENT;
  if (index >= s.devices.size()) return NVML_ERROR_NOT_FOUND;
  *device = reinterpret_cast<nvmlDevice_t>(s.devices[index].get());
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlDeviceGetName(nvmlDevice_t device, char* name, unsigned int length) {
  SimDevice* dev = nullptr;
  if (const nvmlReturn_t rc = checked_device(device, &dev); rc != NVML_SUCCESS) return rc;
  if (name == nullptr || length == 0) return NVML_ERROR_INVALID_ARGUMENT;
  const std::string& n = dev->sim.device().name;
  if (n.size() + 1 > length) return NVML_ERROR_INSUFFICIENT_SIZE;
  std::memcpy(name, n.c_str(), n.size() + 1);
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlDeviceGetSupportedMemoryClocks(nvmlDevice_t device, unsigned int* count,
                                                unsigned int* clocksMHz) {
  SimDevice* dev = nullptr;
  if (const nvmlReturn_t rc = checked_device(device, &dev); rc != NVML_SUCCESS) return rc;
  if (count == nullptr) return NVML_ERROR_INVALID_ARGUMENT;
  const auto& domains = dev->sim.freq().domains();
  const auto available = static_cast<unsigned int>(domains.size());
  if (clocksMHz == nullptr || *count < available) {
    *count = available;
    return clocksMHz == nullptr ? NVML_SUCCESS : NVML_ERROR_INSUFFICIENT_SIZE;
  }
  // NVML enumerates descending.
  std::vector<unsigned int> clocks;
  for (const auto& d : domains) clocks.push_back(static_cast<unsigned int>(d.mem_mhz));
  std::sort(clocks.rbegin(), clocks.rend());
  std::copy(clocks.begin(), clocks.end(), clocksMHz);
  *count = available;
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlDeviceGetSupportedGraphicsClocks(nvmlDevice_t device,
                                                  unsigned int memoryClockMHz,
                                                  unsigned int* count,
                                                  unsigned int* clocksMHz) {
  SimDevice* dev = nullptr;
  if (const nvmlReturn_t rc = checked_device(device, &dev); rc != NVML_SUCCESS) return rc;
  if (count == nullptr) return NVML_ERROR_INVALID_ARGUMENT;
  const auto* domain = dev->sim.freq().find_domain(static_cast<int>(memoryClockMHz));
  if (domain == nullptr) return NVML_ERROR_NOT_FOUND;
  const auto available = static_cast<unsigned int>(domain->reported_core_mhz.size());
  if (clocksMHz == nullptr || *count < available) {
    *count = available;
    return clocksMHz == nullptr ? NVML_SUCCESS : NVML_ERROR_INSUFFICIENT_SIZE;
  }
  std::vector<unsigned int> clocks;
  for (int f : domain->reported_core_mhz) clocks.push_back(static_cast<unsigned int>(f));
  std::sort(clocks.rbegin(), clocks.rend());
  std::copy(clocks.begin(), clocks.end(), clocksMHz);
  *count = available;
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlDeviceSetApplicationsClocks(nvmlDevice_t device, unsigned int memClockMHz,
                                             unsigned int graphicsClockMHz) {
  SimDevice* dev = nullptr;
  if (const nvmlReturn_t rc = checked_device(device, &dev); rc != NVML_SUCCESS) return rc;
  const FrequencyConfig requested{static_cast<int>(graphicsClockMHz),
                                  static_cast<int>(memClockMHz)};
  const auto resolved = dev->sim.freq().resolve(requested);
  if (!resolved.ok()) return NVML_ERROR_NOT_SUPPORTED;
  dev->requested = requested;
  dev->effective = resolved.value();  // silent clamp, as on real hardware
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlDeviceResetApplicationsClocks(nvmlDevice_t device) {
  SimDevice* dev = nullptr;
  if (const nvmlReturn_t rc = checked_device(device, &dev); rc != NVML_SUCCESS) return rc;
  dev->requested = dev->sim.freq().default_config();
  dev->effective = dev->requested;
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlDeviceGetApplicationsClock(nvmlDevice_t device, nvmlClockType_t type,
                                            unsigned int* clockMHz) {
  SimDevice* dev = nullptr;
  if (const nvmlReturn_t rc = checked_device(device, &dev); rc != NVML_SUCCESS) return rc;
  if (clockMHz == nullptr) return NVML_ERROR_INVALID_ARGUMENT;
  switch (type) {
    case NVML_CLOCK_GRAPHICS:
    case NVML_CLOCK_SM:
      *clockMHz = static_cast<unsigned int>(dev->requested.core_mhz);
      return NVML_SUCCESS;
    case NVML_CLOCK_MEM:
      *clockMHz = static_cast<unsigned int>(dev->requested.mem_mhz);
      return NVML_SUCCESS;
  }
  return NVML_ERROR_INVALID_ARGUMENT;
}

nvmlReturn_t nvmlDeviceGetClockInfo(nvmlDevice_t device, nvmlClockType_t type,
                                    unsigned int* clockMHz) {
  SimDevice* dev = nullptr;
  if (const nvmlReturn_t rc = checked_device(device, &dev); rc != NVML_SUCCESS) return rc;
  if (clockMHz == nullptr) return NVML_ERROR_INVALID_ARGUMENT;
  switch (type) {
    case NVML_CLOCK_GRAPHICS:
    case NVML_CLOCK_SM:
      *clockMHz = static_cast<unsigned int>(dev->effective.core_mhz);
      return NVML_SUCCESS;
    case NVML_CLOCK_MEM:
      *clockMHz = static_cast<unsigned int>(dev->effective.mem_mhz);
      return NVML_SUCCESS;
  }
  return NVML_ERROR_INVALID_ARGUMENT;
}

nvmlReturn_t nvmlDeviceGetPowerUsage(nvmlDevice_t device, unsigned int* milliwatts) {
  SimDevice* dev = nullptr;
  if (const nvmlReturn_t rc = checked_device(device, &dev); rc != NVML_SUCCESS) return rc;
  if (milliwatts == nullptr) return NVML_ERROR_INVALID_ARGUMENT;
  if (dev->workload == nullptr) {
    // Idle board: static power at the current voltage point.
    const auto& model = dev->sim.device();
    const double v = model.voltage.volts_at(static_cast<double>(dev->effective.core_mhz));
    const double idle_w = model.static_power_base + model.static_power_v2 * v * v + 8.0;
    *milliwatts = static_cast<unsigned int>(idle_w * 1000.0);
    return NVML_SUCCESS;
  }
  const auto m = dev->sim.run_at(*dev->workload, dev->effective);
  *milliwatts = static_cast<unsigned int>(m.avg_power_w * 1000.0);
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlsimDeviceBindWorkload(nvmlDevice_t device,
                                       const repro::gpusim::KernelProfile* profile) {
  SimDevice* dev = nullptr;
  if (const nvmlReturn_t rc = checked_device(device, &dev); rc != NVML_SUCCESS) return rc;
  dev->workload = profile;
  return NVML_SUCCESS;
}

nvmlReturn_t nvmlsimDeviceRunWorkload(nvmlDevice_t device, double* timeMs, double* energyJ) {
  SimDevice* dev = nullptr;
  if (const nvmlReturn_t rc = checked_device(device, &dev); rc != NVML_SUCCESS) return rc;
  if (dev->workload == nullptr) return NVML_ERROR_NOT_FOUND;
  const auto m = dev->sim.run_at(*dev->workload, dev->effective);
  if (timeMs != nullptr) *timeMs = m.time_ms;
  if (energyJ != nullptr) *energyJ = m.energy_j;
  return NVML_SUCCESS;
}

}  // extern "C"
