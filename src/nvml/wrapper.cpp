#include "nvml/wrapper.hpp"

namespace repro::nvml {

common::Error to_error(nvmlReturn_t rc, const std::string& what) {
  const std::string msg = what + ": " + nvmlErrorString(rc);
  switch (rc) {
    case NVML_ERROR_INVALID_ARGUMENT: return common::invalid_argument(msg);
    case NVML_ERROR_NOT_FOUND: return common::not_found(msg);
    case NVML_ERROR_NOT_SUPPORTED: return common::unsupported(msg);
    default: return common::internal_error(msg);
  }
}

Session::Session() { ok_ = nvmlInit() == NVML_SUCCESS; }

Session::~Session() {
  if (ok_) nvmlShutdown();
}

common::Result<std::size_t> Session::device_count() const {
  unsigned count = 0;
  if (const auto rc = nvmlDeviceGetCount(&count); rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceGetCount");
  }
  return static_cast<std::size_t>(count);
}

common::Result<Device> Device::by_index(unsigned index) {
  nvmlDevice_t handle = nullptr;
  if (const auto rc = nvmlDeviceGetHandleByIndex(index, &handle); rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceGetHandleByIndex");
  }
  return Device(handle);
}

common::Result<std::string> Device::name() const {
  char buf[128];
  if (const auto rc = nvmlDeviceGetName(handle_, buf, sizeof(buf)); rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceGetName");
  }
  return std::string(buf);
}

common::Result<std::vector<unsigned>> Device::supported_memory_clocks() const {
  unsigned count = 0;
  (void)nvmlDeviceGetSupportedMemoryClocks(handle_, &count, nullptr);
  std::vector<unsigned> clocks(count);
  if (const auto rc = nvmlDeviceGetSupportedMemoryClocks(handle_, &count, clocks.data());
      rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceGetSupportedMemoryClocks");
  }
  clocks.resize(count);
  return clocks;
}

common::Result<std::vector<unsigned>> Device::supported_graphics_clocks(
    unsigned mem_mhz) const {
  unsigned count = 0;
  (void)nvmlDeviceGetSupportedGraphicsClocks(handle_, mem_mhz, &count, nullptr);
  std::vector<unsigned> clocks(count);
  if (const auto rc =
          nvmlDeviceGetSupportedGraphicsClocks(handle_, mem_mhz, &count, clocks.data());
      rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceGetSupportedGraphicsClocks");
  }
  clocks.resize(count);
  return clocks;
}

common::Status Device::set_applications_clocks(unsigned mem_mhz, unsigned core_mhz) const {
  if (const auto rc = nvmlDeviceSetApplicationsClocks(handle_, mem_mhz, core_mhz);
      rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceSetApplicationsClocks");
  }
  return common::Status::Ok();
}

common::Status Device::reset_applications_clocks() const {
  if (const auto rc = nvmlDeviceResetApplicationsClocks(handle_); rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceResetApplicationsClocks");
  }
  return common::Status::Ok();
}

common::Result<gpusim::FrequencyConfig> Device::applications_clocks() const {
  unsigned core = 0;
  unsigned mem = 0;
  if (const auto rc = nvmlDeviceGetApplicationsClock(handle_, NVML_CLOCK_GRAPHICS, &core);
      rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceGetApplicationsClock(graphics)");
  }
  if (const auto rc = nvmlDeviceGetApplicationsClock(handle_, NVML_CLOCK_MEM, &mem);
      rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceGetApplicationsClock(mem)");
  }
  return gpusim::FrequencyConfig{static_cast<int>(core), static_cast<int>(mem)};
}

common::Result<gpusim::FrequencyConfig> Device::effective_clocks() const {
  unsigned core = 0;
  unsigned mem = 0;
  if (const auto rc = nvmlDeviceGetClockInfo(handle_, NVML_CLOCK_GRAPHICS, &core);
      rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceGetClockInfo(graphics)");
  }
  if (const auto rc = nvmlDeviceGetClockInfo(handle_, NVML_CLOCK_MEM, &mem);
      rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceGetClockInfo(mem)");
  }
  return gpusim::FrequencyConfig{static_cast<int>(core), static_cast<int>(mem)};
}

common::Result<double> Device::power_usage_watts() const {
  unsigned mw = 0;
  if (const auto rc = nvmlDeviceGetPowerUsage(handle_, &mw); rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlDeviceGetPowerUsage");
  }
  return static_cast<double>(mw) / 1000.0;
}

common::Status Device::bind_workload(const gpusim::KernelProfile* profile) const {
  if (const auto rc = nvmlsimDeviceBindWorkload(handle_, profile); rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlsimDeviceBindWorkload");
  }
  return common::Status::Ok();
}

common::Result<Device::RunResult> Device::run_workload() const {
  RunResult r;
  if (const auto rc = nvmlsimDeviceRunWorkload(handle_, &r.time_ms, &r.energy_j);
      rc != NVML_SUCCESS) {
    return to_error(rc, "nvmlsimDeviceRunWorkload");
  }
  return r;
}

}  // namespace repro::nvml
