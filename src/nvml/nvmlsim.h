// nvmlsim — an NVML-compatible C API over the simulated GPUs.
//
// Mirrors the subset of the NVIDIA Management Library the paper relies on
// (§4.1): querying supported memory/graphics clocks, setting application
// clocks (including the silent clamping of over-cap requests the authors
// observed), and reading board power. Two simulated devices are registered:
// index 0 = GTX Titan X, index 1 = Tesla P100.
//
// Semantics intentionally copied from NVML:
//  * all calls except nvmlInit fail with NVML_ERROR_UNINITIALIZED before
//    nvmlInit / after nvmlShutdown;
//  * nvmlDeviceGetSupportedGraphicsClocks enumerates the *reported* clocks,
//    a superset of what actually takes effect (Fig. 4a gray points);
//  * nvmlDeviceSetApplicationsClocks accepts any reported combination and
//    the hardware clamps silently — nvmlDeviceGetClockInfo exposes the
//    clamped, effective clock while nvmlDeviceGetApplicationsClock returns
//    the requested one;
//  * nvmlDeviceGetPowerUsage reports milliwatts with the 62.5 Hz counter
//    granularity.
//
// The nvmlsim* extension functions (bottom) bind a simulated workload to a
// device so that power/time readings reflect a "running" kernel.
#pragma once

#include <cstddef>

namespace repro::gpusim {
struct KernelProfile;  // workload binding for the simulation extension
}

extern "C" {

typedef enum nvmlReturn_enum {
  NVML_SUCCESS = 0,
  NVML_ERROR_UNINITIALIZED = 1,
  NVML_ERROR_INVALID_ARGUMENT = 2,
  NVML_ERROR_NOT_SUPPORTED = 3,
  NVML_ERROR_NOT_FOUND = 6,
  NVML_ERROR_INSUFFICIENT_SIZE = 7,
  NVML_ERROR_UNKNOWN = 999,
} nvmlReturn_t;

typedef enum nvmlClockType_enum {
  NVML_CLOCK_GRAPHICS = 0,
  NVML_CLOCK_SM = 1,
  NVML_CLOCK_MEM = 2,
} nvmlClockType_t;

typedef struct nvmlDevice_st* nvmlDevice_t;

const char* nvmlErrorString(nvmlReturn_t result);

nvmlReturn_t nvmlInit(void);
nvmlReturn_t nvmlShutdown(void);

nvmlReturn_t nvmlDeviceGetCount(unsigned int* deviceCount);
nvmlReturn_t nvmlDeviceGetHandleByIndex(unsigned int index, nvmlDevice_t* device);
nvmlReturn_t nvmlDeviceGetName(nvmlDevice_t device, char* name, unsigned int length);

/// Enumerate supported memory clocks (descending, like NVML).
nvmlReturn_t nvmlDeviceGetSupportedMemoryClocks(nvmlDevice_t device, unsigned int* count,
                                                unsigned int* clocksMHz);

/// Enumerate *reported* graphics clocks for a memory clock (descending).
nvmlReturn_t nvmlDeviceGetSupportedGraphicsClocks(nvmlDevice_t device,
                                                  unsigned int memoryClockMHz,
                                                  unsigned int* count,
                                                  unsigned int* clocksMHz);

nvmlReturn_t nvmlDeviceSetApplicationsClocks(nvmlDevice_t device,
                                             unsigned int memClockMHz,
                                             unsigned int graphicsClockMHz);
nvmlReturn_t nvmlDeviceResetApplicationsClocks(nvmlDevice_t device);

/// The clock that was *requested* via SetApplicationsClocks.
nvmlReturn_t nvmlDeviceGetApplicationsClock(nvmlDevice_t device, nvmlClockType_t type,
                                            unsigned int* clockMHz);

/// The clock that actually took effect (clamped).
nvmlReturn_t nvmlDeviceGetClockInfo(nvmlDevice_t device, nvmlClockType_t type,
                                    unsigned int* clockMHz);

/// Board power draw in milliwatts for the bound workload (idle if none).
nvmlReturn_t nvmlDeviceGetPowerUsage(nvmlDevice_t device, unsigned int* milliwatts);

// --- nvmlsim extensions (not part of NVML) --------------------------------

/// Bind a workload so power readings reflect a running kernel; pass nullptr
/// to return the device to idle.
nvmlReturn_t nvmlsimDeviceBindWorkload(nvmlDevice_t device,
                                       const repro::gpusim::KernelProfile* profile);

/// Execute the bound workload once at the current application clocks;
/// returns time (ms) and per-invocation energy (J).
nvmlReturn_t nvmlsimDeviceRunWorkload(nvmlDevice_t device, double* timeMs,
                                      double* energyJ);

}  // extern "C"
