// Pattern-based synthetic training-benchmark generator (paper §3.3).
//
// Each pattern targets one component of the static feature vector and
// produces nine codes of growing instruction intensity (2^0 .. 2^8 copies of
// the pattern line), giving good coverage of the static feature space.
// Sixteen additional "mix" codes combine several patterns with randomized
// intensities. Total: 10 x 9 + 16 = 106 micro-benchmarks, the number the
// paper trains on.
//
// The generated codes are straight-line (fully unrolled), so their dynamic
// instruction mix equals their static mix — the property that makes them
// good training codes for a static model. The dynamic execution profile for
// the simulator is therefore derived directly from the extracted static
// counts, guaranteeing source/profile consistency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clfront/features.hpp"
#include "common/status.hpp"
#include "gpusim/kernel_profile.hpp"

namespace repro::benchgen {

/// One pattern per static feature component.
enum class Pattern : std::uint8_t {
  kIntAdd = 0,
  kIntMul,
  kIntDiv,
  kIntBw,
  kFloatAdd,
  kFloatMul,
  kFloatDiv,
  kSf,
  kGlAccess,
  kLocAccess,
};

inline constexpr std::size_t kNumPatterns = 10;
inline constexpr int kIntensityLevels = 9;       // 2^0 .. 2^8
inline constexpr std::size_t kNumMixes = 16;
inline constexpr std::size_t kSuiteSize =
    kNumPatterns * static_cast<std::size_t>(kIntensityLevels) + kNumMixes;  // 106

[[nodiscard]] const char* pattern_name(Pattern p) noexcept;

struct MicroBenchmark {
  std::string name;
  std::string source;                  // OpenCL-C, parseable by clfront
  clfront::StaticFeatures features;    // static features of `source`
  gpusim::KernelProfile profile;       // dynamic profile for the simulator
};

/// Generate the source of one pattern benchmark at intensity 2^exponent.
[[nodiscard]] std::string pattern_source(Pattern p, int exponent);

/// Generate the full 106-benchmark training suite. The seed controls the
/// mix benchmarks and per-kernel simulator knobs; the pattern codes are
/// fully deterministic.
[[nodiscard]] common::Result<std::vector<MicroBenchmark>> generate_training_suite(
    std::uint64_t seed = 0xB1CA1);

}  // namespace repro::benchgen
