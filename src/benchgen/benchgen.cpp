#include "benchgen/benchgen.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"

namespace repro::benchgen {

namespace {

using clfront::FeatureIndex;
using gpusim::KernelProfile;
using gpusim::OpClass;

/// Emit one "pattern line" of the given kind into the kernel body.
/// `i` is the statement index (used to vary constants and break trivial
/// common-subexpression structure). Integer lines mutate iv0/iv1, float
/// lines fv0/fv1.
void emit_line(std::ostringstream& out, Pattern p, int i) {
  switch (p) {
    case Pattern::kIntAdd:
      out << "  iv" << (i % 2) << " = iv" << (i % 2) << " + iv" << ((i + 1) % 2) << ";\n";
      break;
    case Pattern::kIntMul:
      out << "  iv" << (i % 2) << " = iv" << (i % 2) << " * " << (3 + (i % 5)) << ";\n";
      break;
    case Pattern::kIntDiv:
      out << "  iv" << (i % 2) << " = iv" << (i % 2) << " / " << (3 + (i % 7)) << ";\n";
      break;
    case Pattern::kIntBw:
      out << "  iv" << (i % 2) << " = iv" << (i % 2) << " ^ " << (0x5A5A + i) << ";\n";
      break;
    case Pattern::kFloatAdd:
      out << "  fv" << (i % 2) << " = fv" << (i % 2) << " + fv" << ((i + 1) % 2) << ";\n";
      break;
    case Pattern::kFloatMul:
      out << "  fv" << (i % 2) << " = fv" << (i % 2) << " * 1.0000" << (1 + (i % 9))
          << "f;\n";
      break;
    case Pattern::kFloatDiv:
      out << "  fv" << (i % 2) << " = fv" << (i % 2) << " / 1.0000" << (1 + (i % 9))
          << "f;\n";
      break;
    case Pattern::kSf:
      out << "  fv" << (i % 2) << " = "
          << (i % 3 == 0 ? "native_sin" : (i % 3 == 1 ? "native_cos" : "native_exp"))
          << "(fv" << (i % 2) << ");\n";
      break;
    case Pattern::kGlAccess:
      // Pure loads (no companion arithmetic) so the access fraction grows
      // monotonically with intensity, like the arithmetic patterns.
      out << "  fv" << (i % 2) << " = " << (i % 2 == 0 ? "data" : "result")
          << "[gid];\n";
      break;
    case Pattern::kLocAccess:
      out << "  fv" << (i % 2) << " = tile[lid];\n";
      break;
  }
}

bool is_float_pattern(Pattern p) {
  switch (p) {
    case Pattern::kFloatAdd:
    case Pattern::kFloatMul:
    case Pattern::kFloatDiv:
    case Pattern::kSf:
    case Pattern::kGlAccess:
    case Pattern::kLocAccess:
      return true;
    default:
      return false;
  }
}

bool uses_local(Pattern p) { return p == Pattern::kLocAccess; }

/// Build a kernel from a list of (pattern, line-count) sections.
std::string build_kernel(const std::string& name,
                         const std::vector<std::pair<Pattern, int>>& sections) {
  bool any_float = false;
  bool any_int = false;
  bool any_local = false;
  for (const auto& [p, n] : sections) {
    any_float |= is_float_pattern(p);
    any_int |= !is_float_pattern(p);
    any_local |= uses_local(p);
  }

  std::ostringstream out;
  out << "// auto-generated training micro-benchmark\n";
  out << "kernel void " << name << "(global float* data, global float* result, int n) {\n";
  out << "  int gid = get_global_id(0);\n";
  if (any_local) out << "  int lid = get_local_id(0);\n";
  if (any_local) out << "  local float tile[256];\n";
  out << "  float fv0 = data[gid];\n";
  out << "  float fv1 = fv0 + 1.5f;\n";
  if (any_int) {
    out << "  int iv0 = gid + n;\n";
    out << "  int iv1 = gid ^ 3;\n";
  }
  if (any_local) {
    out << "  tile[lid & 255] = fv0;\n";
    out << "  barrier(CLK_LOCAL_MEM_FENCE);\n";
  }
  int line_idx = 0;
  for (const auto& [p, n] : sections) {
    for (int i = 0; i < n; ++i) emit_line(out, p, line_idx++);
  }
  out << "  result[gid] = fv0 + fv1";
  if (any_int) out << " + (float)(iv0 + iv1)";
  out << ";\n";
  out << "}\n";
  return out.str();
}

/// Dynamic profile from extracted static counts (unrolled codes: dynamic
/// mix == static mix), plus per-kernel simulator knobs.
KernelProfile make_profile(const std::string& name, const clfront::StaticFeatures& f,
                           std::uint64_t seed) {
  KernelProfile profile;
  profile.name = name;
  // FeatureIndex and OpClass share the paper's component order.
  for (std::size_t i = 0; i < clfront::kNumFeatures; ++i) {
    profile.ops[i] = f.counts[i];
  }
  const std::uint64_t h = common::hash_combine(seed, common::fnv1a(name));
  const double mem_intensity =
      (f.count(FeatureIndex::kGlAccess)) / std::max(1.0, f.total());
  profile.work_items = mem_intensity > 0.15 ? (1u << 21) : (1u << 20);
  profile.bytes_per_access = 4.0;
  profile.cache_hit_rate = 0.15 + 0.35 * common::hash_uniform(h);
  profile.mem_coalescing = 0.75 + 0.2 * common::hash_uniform(common::mix64(h));
  profile.overlap_penalty = 0.1 + 0.1 * common::hash_uniform(common::mix64(h ^ 0x11));
  profile.erratic = 0.25 + 0.5 * common::hash_uniform(common::mix64(h ^ 0x22));
  return profile;
}

common::Result<MicroBenchmark> finalize(std::string name, std::string source,
                                        std::uint64_t seed) {
  auto features = clfront::extract_features_from_source(source, name);
  if (!features.ok()) {
    return common::internal_error("benchgen: generated source for '" + name +
                                  "' does not compile: " + features.error().message);
  }
  MicroBenchmark mb;
  mb.name = std::move(name);
  mb.source = std::move(source);
  mb.features = features.value();
  mb.profile = make_profile(mb.name, mb.features, seed);
  return mb;
}

}  // namespace

const char* pattern_name(Pattern p) noexcept {
  switch (p) {
    case Pattern::kIntAdd: return "b-int-add";
    case Pattern::kIntMul: return "b-int-mul";
    case Pattern::kIntDiv: return "b-int-div";
    case Pattern::kIntBw: return "b-int-bw";
    case Pattern::kFloatAdd: return "b-float-add";
    case Pattern::kFloatMul: return "b-float-mul";
    case Pattern::kFloatDiv: return "b-float-div";
    case Pattern::kSf: return "b-sf";
    case Pattern::kGlAccess: return "b-gl-access";
    case Pattern::kLocAccess: return "b-loc-access";
  }
  return "?";
}

std::string pattern_source(Pattern p, int exponent) {
  std::string name = pattern_name(p);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += "_" + std::to_string(exponent);
  return build_kernel(name, {{p, 1 << exponent}});
}

common::Result<std::vector<MicroBenchmark>> generate_training_suite(std::uint64_t seed) {
  std::vector<MicroBenchmark> suite;
  suite.reserve(kSuiteSize);

  // 10 patterns x 9 intensity levels.
  for (std::size_t pi = 0; pi < kNumPatterns; ++pi) {
    const auto p = static_cast<Pattern>(pi);
    for (int e = 0; e < kIntensityLevels; ++e) {
      std::string name = pattern_name(p);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += "_" + std::to_string(e);
      auto mb = finalize(name, pattern_source(p, e), seed);
      if (!mb.ok()) return mb.error();
      suite.push_back(std::move(mb).take());
    }
  }

  // 16 mixed-feature benchmarks combining 2-4 random pattern sections.
  common::Xoshiro256 rng(seed);
  for (std::size_t m = 0; m < kNumMixes; ++m) {
    const int n_sections = 2 + static_cast<int>(rng.uniform_index(3));
    std::vector<std::pair<Pattern, int>> sections;
    for (int s = 0; s < n_sections; ++s) {
      const auto p = static_cast<Pattern>(rng.uniform_index(kNumPatterns));
      const int lines = 1 << static_cast<int>(rng.uniform_index(7));  // 1 .. 64 lines
      sections.emplace_back(p, lines);
    }
    const std::string name = "b_mix_" + std::to_string(m);
    auto mb = finalize(name, build_kernel(name, sections), seed);
    if (!mb.ok()) return mb.error();
    suite.push_back(std::move(mb).take());
  }

  return suite;
}

}  // namespace repro::benchgen
