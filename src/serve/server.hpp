// The socket front of serve::Service: line-delimited JSON requests — and,
// after a per-connection "hello" negotiation, length-prefixed binary frames
// — over a Unix-domain or TCP socket (see protocol.hpp for both wire
// formats). Framing is detected per message by first byte, and every reply
// mirrors its request's framing, so JSON and binary can interleave on one
// connection without desync.
//
// One acceptor thread plus a reader/writer thread pair per connection, and
// each connection is *pipelined*: the reader decodes and submits request
// N+1 while N's batch is still in flight (up to max_inflight outstanding),
// and the writer sends responses back strictly in request order. A client
// that streams many request lines without waiting therefore fills the
// micro-batching window from a single connection — previously batching only
// coalesced across connections. Requests are submitted to the shared
// Service; predict_source requests ship raw bytes and featurize on the
// worker shards. stop() is graceful: the listener closes, open connections
// are shut down, in-flight requests are still answered.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/buffer_pool.hpp"
#include "common/status.hpp"
#include "serve/service.hpp"

namespace repro::serve {

class ModelCache;

struct ServerOptions {
  /// Unix-domain socket path; takes precedence over TCP when non-empty.
  std::string unix_path;
  /// TCP port on 127.0.0.1 (0 = ask the kernel for an ephemeral port; the
  /// bound port is reported by tcp_port()).
  int tcp_port = -1;  // -1 = TCP disabled
  /// Requests longer than this are answered with an error and the
  /// connection is closed (protects the server from unbounded buffering).
  /// Bounds both framings: a JSON line and a binary frame payload. A
  /// chunk-streamed predict_source is bounded per *frame*, not per request —
  /// the total source may far exceed this.
  std::size_t max_line_bytes = 1 << 20;
  /// Accept binary-framed messages and answer a "hello" negotiation with
  /// protocol 1. When false the server is a JSON-only peer: hello answers
  /// protocol 0 and a 0xB1 byte is just a malformed JSON line.
  bool enable_binary = true;
  /// Per-request input budget for chunk-streamed predict_source. Zero means
  /// the featurization pipeline's own max_source_bytes budget applies
  /// unchanged; non-zero can only tighten it.
  std::size_t max_source_bytes = 0;
  /// Per-connection pipelining window: how many decoded requests may be in
  /// flight (submitted, response not yet written) before the reader stops
  /// decoding — backpressure against a client that streams without reading.
  std::size_t max_inflight = 64;
  /// When set, "stats" responses include this cache's hit/miss counters
  /// (the cache the service was created against). Must outlive the server.
  const ModelCache* model_cache = nullptr;
  /// Per-operation progress timeout on response writes: a client that stops
  /// reading cannot wedge this connection's writer thread (and the futures
  /// queued behind it) forever. Reads deliberately stay unbounded — idle
  /// persistent connections (the balancer's backend pool) are legitimate.
  std::chrono::milliseconds write_timeout{30000};
  /// Registry the server's own counters join and "metrics" requests expose.
  /// Null = obs::Registry::global(). Should match the Service's registry so
  /// one scrape shows the whole worker.
  obs::Registry* registry = nullptr;
  /// Pool behind every connection's splitter input buffer and reply output
  /// buffer. Null = common::BufferPool::global() — one process-wide pool the
  /// server, balancer, and clients all ride. Must outlive the server.
  common::BufferPool* buffer_pool = nullptr;
};

class SocketServer {
 public:
  /// Bind, listen, and start accepting. `service` must outlive the server.
  [[nodiscard]] static common::Result<std::unique_ptr<SocketServer>> start(
      Service& service, const ServerOptions& options);

  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Stop accepting, shut down open connections, join all threads. The
  /// Service itself is left running (the owner decides when to stop it).
  /// Idempotent; also run by the destructor.
  void stop();

  /// The TCP port actually bound (ephemeral-port discovery); -1 for Unix.
  [[nodiscard]] int tcp_port() const noexcept;
  /// The Unix socket path, empty for TCP.
  [[nodiscard]] const std::string& unix_path() const noexcept;

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t protocol_errors = 0;
    /// High-water mark, across finished connections, of bytes buffered for
    /// one message — the observable bound the streaming contract asserts
    /// (a chunked predict_source never buffers more than a frame at a time).
    std::uint64_t peak_message_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  SocketServer();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace repro::serve
