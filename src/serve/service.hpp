// The in-process prediction service: a bounded admission queue, a
// micro-batching scheduler, and a sharded worker pool over core::Predictor.
//
//   admission queue          scheduler                shards
//   (BoundedQueue) ──pop──▶ coalesce ≤ max_batch  ──▶ shard 0: Predictor ─▶ promise
//    submit() seq#           within batch_window  ──▶ shard 1: Predictor ─▶ promise
//    submit_source()         sort by seq#, RR     ──▶ …        (LRU ModelCache)
//
// Requests carry either pre-extracted features (submit) or raw OpenCL-C
// source (submit_source). Source requests are featurized on the worker
// shard that serves their batch — through the shard Predictor's
// core::FeaturePipeline — so featurization parallelizes across shards and
// never blocks the submitting (connection) thread; a featurization failure
// resolves only that request's promise, never its batch neighbours'.
//
// Determinism: a request's prediction depends only on its features and the
// trained model — never on which batch, shard, or thread served it — so
// every response is bit-identical to a direct Predictor::predict_batch call
// at any shard count, batch window, and REPRO_THREADS setting
// (tests/serve_test.cpp asserts this with memcmp). Batch assembly itself is
// made reproducible-by-construction: requests carry arrival sequence
// numbers and each batch is sorted by them before dispatch, so a batch's
// composition is a deterministic function of which requests it coalesced.
//
// Shutdown: stop() (or the destructor) closes the admission queue, the
// scheduler drains what was already admitted, every queued request is still
// answered, and late submit() calls fail fast with an unavailable error.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "clfront/features.hpp"
#include "clfront/stream.hpp"
#include "common/status.hpp"
#include "core/predictor.hpp"
#include "gpusim/device.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/model_cache.hpp"

namespace repro::serve {

struct ServiceOptions {
  /// Worker shards; each owns a Predictor over the shared trained model.
  std::size_t shards = 1;
  /// Coalesce at most this many requests into one predict_batch call.
  std::size_t max_batch = 16;
  /// How long the scheduler waits for followers after a batch's first
  /// request arrives. Zero = dispatch whatever is immediately available.
  std::chrono::microseconds batch_window{200};
  /// Admission-queue bound; submit() blocks when full (backpressure).
  std::size_t queue_capacity = 1024;
  /// Load shedding: when non-zero, submit() rejects (kUnavailable,
  /// retryable) any request whose estimated queue delay — admission backlog
  /// × EWMA of per-request service time ÷ shards — already exceeds this
  /// bound, or the request's own deadline. Zero disables shedding (the
  /// bounded queue's blocking backpressure is then the only limit).
  std::chrono::microseconds max_queue_delay{0};
  /// Metrics registry the service's counters/histograms register in.
  /// Null = the process-global registry (obs::Registry::global()); tests
  /// that assert exact counter values pass their own.
  obs::Registry* registry = nullptr;
  /// How many retired batch vectors the scheduler keeps for reuse. Served
  /// batches return their (emptied, capacity-keeping) vector to a free list
  /// instead of freeing it, so steady-state batch assembly allocates
  /// nothing. 0 disables reuse. Invisible to outputs — a pooled vector is
  /// cleared before refilling, so batch composition and reply bytes are
  /// unchanged (the determinism tests still pass with any setting).
  std::size_t spare_batches = 8;
};

/// What a Service trains (or fetches from a ModelCache) at startup.
struct ServiceConfig {
  gpusim::DeviceModel device = gpusim::DeviceModel::titan_x();
  core::TrainingOptions training{};
  /// Training suite; defaults to the generated 106 micro-benchmarks.
  std::optional<std::vector<benchgen::MicroBenchmark>> suite;
  ServiceOptions options{};
};

class Service {
 public:
  using Response = common::Result<core::Predictor::KernelPrediction>;

  /// Train (or fetch from `cache`) the model for `config`, then start the
  /// scheduler and shard workers. The cache is only used during create —
  /// the returned Service keeps the model alive on its own.
  [[nodiscard]] static common::Result<std::unique_ptr<Service>> create(
      const ServiceConfig& config, ModelCache& cache);

  /// Serve an already-trained model (tests, or a model trained elsewhere).
  [[nodiscard]] static common::Result<std::unique_ptr<Service>> from_model(
      std::shared_ptr<const core::FrequencyModel> model, const ServiceOptions& options);

  /// The cache key create() files `config` under.
  [[nodiscard]] static ModelKey key_for(const ServiceConfig& config);
  /// The train-or-fetch step of create() by itself — what the fleet's
  /// model-cache broker runs without starting a Service.
  [[nodiscard]] static common::Result<std::shared_ptr<const core::FrequencyModel>>
  train_or_fetch(const ServiceConfig& config, ModelCache& cache);

  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Absolute point after which a request must not be predicted. Requests
  /// that are already expired at submit resolve kDeadlineExceeded without
  /// ever entering batch assembly; ones that expire while queued are dropped
  /// by the shard worker before featurization/prediction.
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  /// Enqueue one request; the future resolves when its batch is served.
  /// Blocks while the admission queue is full; resolves immediately with an
  /// error after stop(). A non-null `trace` opts the request into per-stage
  /// timing stamps (admission, batch, execute) — untraced requests pay one
  /// pointer test per stamp site.
  [[nodiscard]] std::future<Response> submit(clfront::StaticFeatures features,
                                             Deadline deadline = {},
                                             obs::RequestTracePtr trace = nullptr);

  /// Enqueue a raw-source request; featurization happens on the worker
  /// shard inside the batch (the serving half of Predictor::predict_source).
  [[nodiscard]] std::future<Response> submit_source(std::string source,
                                                    std::string kernel = {},
                                                    Deadline deadline = {},
                                                    obs::RequestTracePtr trace = nullptr);

  /// An in-progress streamed source request: chunks are featurized
  /// incrementally through a clfront::SourceFeeder as they arrive off the
  /// wire, so peak memory is bounded by the feeder's pending window — never
  /// the full source. finish() enqueues the resolved features exactly like
  /// submit(); the result is bit-identical to submit_source() on the
  /// concatenated bytes at any chunk split (the feeder's chunk-invariance
  /// contract). Feed errors are sticky and surface from finish().
  class SourceStream {
   public:
    SourceStream(SourceStream&&) = default;
    SourceStream& operator=(SourceStream&&) = default;
    SourceStream(const SourceStream&) = delete;
    SourceStream& operator=(const SourceStream&) = delete;

    /// Append the next chunk; boundaries may fall anywhere. Errors are
    /// sticky — callers may stop early or keep feeding harmlessly.
    common::Status feed(std::string_view chunk);

    /// End of input: settle featurization and enqueue the request. Exactly
    /// one call resolves the returned future; further calls fail fast.
    [[nodiscard]] std::future<Response> finish();

    /// Peak bytes the feeder ever buffered (the bounded window the memory
    /// contract is about).
    [[nodiscard]] std::size_t peak_pending_bytes() const noexcept;

   private:
    friend class Service;
    SourceStream(Service* service, clfront::SourceFeeder feeder,
                 std::string kernel, Deadline deadline)
        : service_(service),
          feeder_(std::make_unique<clfront::SourceFeeder>(std::move(feeder))),
          kernel_(std::move(kernel)),
          deadline_(deadline) {}

    Service* service_;
    std::unique_ptr<clfront::SourceFeeder> feeder_;
    std::string kernel_;
    Deadline deadline_;
    bool finished_ = false;
  };

  /// Open a streamed source request. `max_source_bytes` overrides (by min)
  /// the pipeline's own input budget when non-zero.
  [[nodiscard]] SourceStream begin_stream(std::string kernel = {},
                                          Deadline deadline = {},
                                          std::size_t max_source_bytes = 0);

  /// Blocking convenience around submit() / submit_source().
  [[nodiscard]] Response predict(clfront::StaticFeatures features);
  [[nodiscard]] Response predict_source(std::string source, std::string kernel = {});

  /// Submit all, then gather in input order.
  [[nodiscard]] std::vector<Response> predict_many(
      std::vector<clfront::StaticFeatures> kernels);

  /// Graceful shutdown: admitted requests are served, new ones refused.
  /// Idempotent; also run by the destructor.
  void stop();

  struct Stats {
    std::uint64_t requests = 0;         // admitted (both kinds)
    std::uint64_t source_requests = 0;  // admitted submit_source requests
    std::uint64_t rejected = 0;         // submit() after stop
    std::uint64_t batches = 0;          // predict_batch calls issued
    std::uint64_t max_batch_seen = 0;
    std::uint64_t shed = 0;               // refused at admission by load shedding
    std::uint64_t deadline_exceeded = 0;  // expired before prediction
    std::uint64_t streamed = 0;           // admitted via SourceStream::finish
  };
  [[nodiscard]] Stats stats() const;
  /// Requests admitted but not yet pulled into a batch — the backlog a
  /// "health" wire response reports as queue_depth.
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const ServiceOptions& options() const noexcept { return options_; }
  [[nodiscard]] const core::FrequencyModel& model() const noexcept { return *model_; }

 private:
  Service(std::shared_ptr<const core::FrequencyModel> model, ServiceOptions options);
  void start(std::vector<core::Predictor> shard_predictors);
  void scheduler_loop();
  void shard_loop(std::size_t shard_index);

  struct Request {
    std::uint64_t seq = 0;
    std::variant<clfront::StaticFeatures, core::Predictor::SourceRequest> payload;
    Deadline deadline;
    /// Admission time; feeds the latency histogram when the batch resolves.
    std::chrono::steady_clock::time_point arrival;
    /// Null unless the request asked to be traced.
    obs::RequestTracePtr trace;
    std::promise<Response> promise;
  };
  using Batch = std::vector<Request>;

  [[nodiscard]] std::future<Response> enqueue(Request request, bool is_source,
                                              bool is_streamed = false);

  std::shared_ptr<const core::FrequencyModel> model_;
  ServiceOptions options_;
  struct Impl;  // queues, threads, counters (keeps <thread> out of the header)
  std::unique_ptr<Impl> impl_;
};

}  // namespace repro::serve
