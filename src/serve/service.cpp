#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <utility>

#include "common/log.hpp"
#include "common/queue.hpp"
#include "core/measurement.hpp"

namespace repro::serve {

namespace {

common::Error unavailable_error() {
  // kUnavailable, not kUnsupported: clients (and the fleet balancer's
  // re-dispatch) must be able to tell "shutting down, retry elsewhere" from
  // a request the service genuinely cannot serve.
  return common::unavailable("serve::Service: stopped");
}

common::Error deadline_error() {
  return common::deadline_exceeded("serve::Service: deadline expired");
}

}  // namespace

struct Service::Impl {
  explicit Impl(const ServiceOptions& options)
      : admission(options.queue_capacity) {
    // One name lookup each at construction; the hot paths below touch only
    // the cached pointers (one relaxed atomic per event).
    obs::Registry& reg =
        options.registry != nullptr ? *options.registry : obs::Registry::global();
    obs_requests = reg.counter("repro_requests_total");
    obs_source_requests = reg.counter("repro_source_requests_total");
    obs_rejected = reg.counter("repro_rejected_total");
    obs_batches = reg.counter("repro_batches_total");
    obs_shed = reg.counter("repro_shed_total");
    obs_deadline_exceeded = reg.counter("repro_deadline_exceeded_total");
    obs_streamed = reg.counter("repro_streamed_total");
    obs_latency = reg.histogram("repro_request_latency_us");
  }

  common::BoundedQueue<Request> admission;
  /// Retired batch vectors (emptied, capacity intact) waiting for reuse —
  /// shard loops give back, the scheduler takes. Bounded by
  /// ServiceOptions::spare_batches; overflow is simply freed.
  std::mutex spare_mutex;
  std::vector<Batch> spare_batches;
  // One queue per shard; a small bound so a slow shard backpressures the
  // scheduler instead of buffering unboundedly.
  std::vector<std::unique_ptr<common::BoundedQueue<Batch>>> shard_queues;
  std::vector<core::Predictor> shard_predictors;
  std::vector<std::thread> shard_threads;
  std::thread scheduler;
  std::atomic<std::uint64_t> next_seq{0};
  std::atomic<bool> stopped{false};
  std::once_flag stop_once;
  mutable std::mutex stats_mutex;
  Stats stats;
  // EWMA of per-request service time (µs), fed by the shard workers.
  // 0 until the first batch completes — shedding never fires cold.
  double ewma_service_us = 0.0;

  /// Pop a retired batch vector (empty, capacity intact) or a fresh one.
  [[nodiscard]] Batch take_spare() {
    std::lock_guard lock(spare_mutex);
    if (spare_batches.empty()) return {};
    Batch batch = std::move(spare_batches.back());
    spare_batches.pop_back();
    return batch;
  }

  /// Return a served batch's vector for reuse; freed when the list is full.
  void give_spare(Batch&& batch, std::size_t cap) {
    batch.clear();
    if (batch.capacity() == 0) return;  // nothing worth keeping
    std::lock_guard lock(spare_mutex);
    if (spare_batches.size() < cap) spare_batches.push_back(std::move(batch));
  }

  // obs instruments (registry-owned; see the constructor).
  obs::Counter* obs_requests = nullptr;
  obs::Counter* obs_source_requests = nullptr;
  obs::Counter* obs_rejected = nullptr;
  obs::Counter* obs_batches = nullptr;
  obs::Counter* obs_shed = nullptr;
  obs::Counter* obs_deadline_exceeded = nullptr;
  obs::Counter* obs_streamed = nullptr;
  obs::Histogram* obs_latency = nullptr;
};

Service::Service(std::shared_ptr<const core::FrequencyModel> model,
                 ServiceOptions options)
    : model_(std::move(model)), options_(options) {
  options_.shards = std::max<std::size_t>(1, options_.shards);
  options_.max_batch = std::max<std::size_t>(1, options_.max_batch);
  impl_ = std::make_unique<Impl>(options_);
}

ModelKey Service::key_for(const ServiceConfig& config) {
  // A custom suite joins the cache key as a fingerprint — a model trained
  // on a reduced suite must never be served for the default one (or vice
  // versa); the generated default suite is deterministic, so its name alone
  // identifies it.
  return ModelKey::from_options(
      config.device.freq.device_name(), config.training,
      config.suite.has_value() ? ModelKey::fingerprint(*config.suite)
                               : std::string(ModelKey::kDefaultSuite));
}

common::Result<std::shared_ptr<const core::FrequencyModel>> Service::train_or_fetch(
    const ServiceConfig& config, ModelCache& cache) {
  return cache.get_or_train(
      key_for(config), [&]() -> common::Result<core::FrequencyModel> {
        const core::SimulatorBackend backend(config.device);
        if (config.suite.has_value()) {
          if (config.suite->empty()) {
            return common::invalid_argument("serve::Service: empty training suite");
          }
          return core::FrequencyModel::train(backend, *config.suite, config.training);
        }
        auto suite = benchgen::generate_training_suite();
        if (!suite.ok()) return suite.error();
        return core::FrequencyModel::train(backend, suite.value(), config.training);
      });
}

common::Result<std::unique_ptr<Service>> Service::create(const ServiceConfig& config,
                                                         ModelCache& cache) {
  auto model = train_or_fetch(config, cache);
  if (!model.ok()) return model.error();
  return from_model(std::move(model).take(), config.options);
}

common::Result<std::unique_ptr<Service>> Service::from_model(
    std::shared_ptr<const core::FrequencyModel> model, const ServiceOptions& options) {
  if (model == nullptr) {
    return common::invalid_argument("serve::Service: null model");
  }
  std::unique_ptr<Service> service(new Service(std::move(model), options));

  // Each shard owns its Predictor; all share the one immutable model.
  std::vector<core::Predictor> shard_predictors;
  shard_predictors.reserve(service->options_.shards);
  for (std::size_t s = 0; s < service->options_.shards; ++s) {
    auto predictor = core::Predictor::from_model(service->model_);
    if (!predictor.ok()) return predictor.error();
    shard_predictors.push_back(std::move(predictor).take());
  }
  service->start(std::move(shard_predictors));
  return service;
}

void Service::start(std::vector<core::Predictor> shard_predictors) {
  impl_->shard_predictors = std::move(shard_predictors);
  impl_->shard_queues.reserve(options_.shards);
  impl_->shard_threads.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    impl_->shard_queues.push_back(std::make_unique<common::BoundedQueue<Batch>>(4));
  }
  for (std::size_t s = 0; s < options_.shards; ++s) {
    impl_->shard_threads.emplace_back([this, s] { shard_loop(s); });
  }
  impl_->scheduler = std::thread([this] { scheduler_loop(); });
}

Service::~Service() {
  if (impl_ != nullptr) stop();
}

void Service::stop() {
  std::call_once(impl_->stop_once, [this] {
    impl_->stopped.store(true, std::memory_order_release);
    impl_->admission.close();
    if (impl_->scheduler.joinable()) impl_->scheduler.join();
    // The scheduler has drained the admission queue into the shard queues
    // by now; closing them lets the workers finish their backlog and exit.
    for (auto& q : impl_->shard_queues) q->close();
    for (auto& t : impl_->shard_threads) {
      if (t.joinable()) t.join();
    }
  });
}

std::future<Service::Response> Service::submit(clfront::StaticFeatures features,
                                               Deadline deadline,
                                               obs::RequestTracePtr trace) {
  Request request;
  request.payload = std::move(features);
  request.deadline = deadline;
  request.trace = std::move(trace);
  return enqueue(std::move(request), /*is_source=*/false);
}

std::future<Service::Response> Service::submit_source(std::string source,
                                                      std::string kernel,
                                                      Deadline deadline,
                                                      obs::RequestTracePtr trace) {
  Request request;
  request.payload =
      core::Predictor::SourceRequest{std::move(source), std::move(kernel)};
  request.deadline = deadline;
  request.trace = std::move(trace);
  return enqueue(std::move(request), /*is_source=*/true);
}

Service::SourceStream Service::begin_stream(std::string kernel, Deadline deadline,
                                            std::size_t max_source_bytes) {
  // The feeder inherits the pipeline's budgets so a streamed request obeys
  // the same input bound as submit_source; a caller override can only
  // tighten it (the server passes its own per-request budget here).
  clfront::StreamOptions stream_options =
      impl_->shard_predictors.front().pipeline().stream_options();
  if (max_source_bytes > 0) {
    stream_options.max_source_bytes =
        std::min(stream_options.max_source_bytes, max_source_bytes);
  }
  return SourceStream(this, clfront::SourceFeeder(stream_options),
                      std::move(kernel), deadline);
}

common::Status Service::SourceStream::feed(std::string_view chunk) {
  if (finished_) {
    return common::internal_error("serve::SourceStream: feed after finish");
  }
  return feeder_->feed(chunk);
}

std::future<Service::Response> Service::SourceStream::finish() {
  std::promise<Response> failed;
  auto fail = [&](common::Error error) {
    auto future = failed.get_future();
    failed.set_value(std::move(error));
    return future;
  };
  if (finished_) {
    return fail(common::internal_error("serve::SourceStream: already finished"));
  }
  finished_ = true;
  if (auto status = feeder_->finish(); !status.ok()) {
    return fail(status.error());
  }
  auto features = feeder_->features(kernel_);
  if (!features.ok()) {
    return fail(features.error());
  }
  // From here the request is indistinguishable from submit(): featurization
  // already happened incrementally, so only the (fixed-size) feature vector
  // enters batch assembly. Counted as a source request AND a streamed one.
  Request request;
  request.payload = std::move(features).take();
  request.deadline = deadline_;
  return service_->enqueue(std::move(request), /*is_source=*/true,
                           /*is_streamed=*/true);
}

std::size_t Service::SourceStream::peak_pending_bytes() const noexcept {
  return feeder_->peak_pending_bytes();
}

std::future<Service::Response> Service::enqueue(Request request, bool is_source,
                                                bool is_streamed) {
  auto future = request.promise.get_future();
  const auto now = std::chrono::steady_clock::now();
  request.arrival = now;
  // An expired deadline never enters batch assembly: answer right here, and
  // do not count it as an admitted request.
  if (request.deadline.has_value() && *request.deadline <= now) {
    request.promise.set_value(deadline_error());
    impl_->obs_deadline_exceeded->inc();
    std::lock_guard lock(impl_->stats_mutex);
    ++impl_->stats.deadline_exceeded;
    return future;
  }
  // Load shedding: refuse work that would only be served stale. The
  // estimate is backlog × EWMA service time ÷ shards — deliberately crude,
  // but it is zero when the service is keeping up and grows linearly once
  // it is not, which is the only distinction shedding needs.
  if (options_.max_queue_delay.count() > 0) {
    double est_us = 0.0;
    {
      std::lock_guard lock(impl_->stats_mutex);
      est_us = impl_->ewma_service_us;
    }
    est_us *= static_cast<double>(impl_->admission.size()) /
              static_cast<double>(options_.shards);
    const bool over_bound =
        est_us > static_cast<double>(options_.max_queue_delay.count());
    const bool over_deadline =
        request.deadline.has_value() &&
        now + std::chrono::microseconds(static_cast<long>(est_us)) >=
            *request.deadline;
    if (over_bound || over_deadline) {
      request.promise.set_value(common::unavailable(
          "serve::Service: overloaded (estimated queue delay " +
          std::to_string(static_cast<long>(est_us)) + "us)"));
      impl_->obs_shed->inc();
      std::lock_guard lock(impl_->stats_mutex);
      ++impl_->stats.shed;
      return future;
    }
  }
  // The sequence number is taken immediately before the push; the queue's
  // FIFO order under its mutex can interleave differently, which is why the
  // scheduler re-sorts each batch by seq before dispatch.
  request.seq = impl_->next_seq.fetch_add(1, std::memory_order_relaxed);
  // The request is moved into the queue; keep the (usually null) trace
  // handle so the admission stamp lands after a successful push.
  obs::RequestTracePtr trace = request.trace;
  if (impl_->stopped.load(std::memory_order_acquire) ||
      !impl_->admission.push(std::move(request))) {
    // A refused push leaves `request` intact — resolve its promise with the
    // shutdown error so the future above still answers.
    request.promise.set_value(unavailable_error());
    impl_->obs_rejected->inc();
    std::lock_guard lock(impl_->stats_mutex);
    ++impl_->stats.rejected;
    return future;
  }
  obs::stamp(trace, "admission");
  impl_->obs_requests->inc();
  if (is_source) impl_->obs_source_requests->inc();
  if (is_streamed) impl_->obs_streamed->inc();
  std::lock_guard lock(impl_->stats_mutex);
  ++impl_->stats.requests;
  if (is_source) ++impl_->stats.source_requests;
  if (is_streamed) ++impl_->stats.streamed;
  return future;
}

Service::Response Service::predict(clfront::StaticFeatures features) {
  return submit(std::move(features)).get();
}

Service::Response Service::predict_source(std::string source, std::string kernel) {
  return submit_source(std::move(source), std::move(kernel)).get();
}

std::vector<Service::Response> Service::predict_many(
    std::vector<clfront::StaticFeatures> kernels) {
  std::vector<std::future<Response>> futures;
  futures.reserve(kernels.size());
  for (auto& k : kernels) futures.push_back(submit(std::move(k)));
  std::vector<Response> out;
  out.reserve(futures.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

void Service::scheduler_loop() {
  std::size_t next_shard = 0;
  for (;;) {
    auto first = impl_->admission.pop();
    if (!first.has_value()) break;  // closed and drained → shut down

    Batch batch = impl_->take_spare();  // reuses a served batch's capacity
    batch.reserve(options_.max_batch);
    batch.push_back(std::move(*first));
    if (options_.batch_window.count() > 0) {
      const auto deadline = std::chrono::steady_clock::now() + options_.batch_window;
      while (batch.size() < options_.max_batch) {
        auto follower = impl_->admission.pop_until(deadline);
        if (!follower.has_value()) break;  // window expired or queue closed
        batch.push_back(std::move(*follower));
      }
    } else {
      while (batch.size() < options_.max_batch) {
        auto follower = impl_->admission.try_pop();
        if (!follower.has_value()) break;
        batch.push_back(std::move(*follower));
      }
    }

    // Deterministic batch assembly: the batch is ordered by arrival
    // sequence number, not by queue-mutex interleaving.
    std::sort(batch.begin(), batch.end(),
              [](const Request& a, const Request& b) { return a.seq < b.seq; });

    impl_->obs_batches->inc();
    {
      std::lock_guard lock(impl_->stats_mutex);
      ++impl_->stats.batches;
      impl_->stats.max_batch_seen =
          std::max<std::uint64_t>(impl_->stats.max_batch_seen, batch.size());
    }

    // Round-robin dispatch. push() only fails when the shard queue is
    // closed, which stop() does strictly after this loop exits — but if
    // that invariant ever breaks, fail the promises rather than drop them
    // (a refused push leaves the batch intact).
    const std::size_t shard = next_shard;
    next_shard = (next_shard + 1) % options_.shards;
    if (!impl_->shard_queues[shard]->push(std::move(batch))) {
      for (auto& request : batch) request.promise.set_value(unavailable_error());
      break;
    }
  }
  // Normal exit drains the admission queue through the loop above; after an
  // abnormal break, answer whatever is still queued instead of abandoning it.
  while (auto leftover = impl_->admission.try_pop()) {
    leftover->promise.set_value(unavailable_error());
  }
}

void Service::shard_loop(std::size_t shard_index) {
  core::Predictor& predictor = impl_->shard_predictors[shard_index];
  auto& queue = *impl_->shard_queues[shard_index];
  // Per-shard scratch, cleared (capacity kept) every batch, so steady-state
  // batch service performs no vector allocations. Shard-local — no locking.
  std::vector<clfront::StaticFeatures> features;
  std::vector<std::size_t> slots;  // batch index serving features[k]
  for (;;) {
    auto batch = queue.pop();
    if (!batch.has_value()) return;  // closed and drained

    // Featurize source payloads here, on the shard — a request's features
    // depend only on its own bytes, so where this runs cannot change the
    // output. A featurization failure answers just that request; everything
    // that featurized joins the batch prediction. Only the promises are
    // needed after this — move, don't copy.
    features.clear();
    slots.clear();
    features.reserve(batch->size());
    slots.reserve(batch->size());
    const auto batch_start = std::chrono::steady_clock::now();
    std::uint64_t expired = 0;
    for (std::size_t i = 0; i < batch->size(); ++i) {
      auto& request = (*batch)[i];
      // A deadline that ran out while the request sat in a queue: answer it
      // now, spend nothing on featurization or prediction. Checked once per
      // batch, not per-predict — close enough, and keeps the hot loop flat.
      if (request.deadline.has_value() && *request.deadline <= batch_start) {
        request.promise.set_value(deadline_error());
        ++expired;
        continue;
      }
      obs::stamp(request.trace, "batch");
      if (auto* ready = std::get_if<clfront::StaticFeatures>(&request.payload)) {
        features.push_back(std::move(*ready));
        slots.push_back(i);
        continue;
      }
      auto& source = std::get<core::Predictor::SourceRequest>(request.payload);
      auto extracted = predictor.pipeline().featurize(source.source, source.kernel);
      if (extracted.ok()) {
        features.push_back(std::move(extracted).take());
        slots.push_back(i);
      } else {
        request.promise.set_value(extracted.error());
      }
    }
    if (expired > 0) {
      impl_->obs_deadline_exceeded->inc(expired);
      std::lock_guard lock(impl_->stats_mutex);
      impl_->stats.deadline_exceeded += expired;
    }
    if (features.empty()) {
      impl_->give_spare(std::move(*batch), options_.spare_batches);
      continue;
    }

    auto predictions = predictor.predict_batch(features);
    const auto batch_end = std::chrono::steady_clock::now();

    // Feed the shedding estimator BEFORE resolving the promises: per-request
    // service time over this batch (featurize + predict, amortized). The
    // ordering matters — anyone unblocked by these promises (a client that
    // warms up, then bursts) must find the sample already published, or the
    // burst races a zero EWMA and nothing sheds. EWMA with a 0.2 step —
    // reacts within a handful of batches, ignores single outliers.
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(batch_end - batch_start)
            .count();
    const double sample = elapsed_us / static_cast<double>(features.size());
    {
      std::lock_guard lock(impl_->stats_mutex);
      impl_->ewma_service_us = impl_->ewma_service_us == 0.0
                                   ? sample
                                   : 0.8 * impl_->ewma_service_us + 0.2 * sample;
    }

    // Admission-to-prediction latency, one histogram sample per request —
    // all against the single batch_end clock read above.
    for (std::size_t slot : slots) {
      auto& request = (*batch)[slot];
      obs::stamp(request.trace, "execute");
      impl_->obs_latency->observe_us(
          std::chrono::duration<double, std::micro>(batch_end - request.arrival)
              .count());
    }
    if (predictions.ok()) {
      auto& results = predictions.value();
      for (std::size_t k = 0; k < slots.size(); ++k) {
        (*batch)[slots[k]].promise.set_value(std::move(results[k]));
      }
    } else {
      for (std::size_t slot : slots) {
        (*batch)[slot].promise.set_value(predictions.error());
      }
    }
    impl_->give_spare(std::move(*batch), options_.spare_batches);
  }
}

Service::Stats Service::stats() const {
  std::lock_guard lock(impl_->stats_mutex);
  return impl_->stats;
}

std::size_t Service::queue_depth() const { return impl_->admission.size(); }

}  // namespace repro::serve
