// The line-delimited JSON wire protocol of repro_serve.
//
// One request per line, one response line per request, over a Unix or TCP
// socket. Two prediction request types: "predict" carries the 10 raw static
// feature counts, "predict_source" carries OpenCL-C source that the server
// featurizes on its worker shards (inside the micro-batch, off the
// connection thread):
//
//   {"id": 7, "type": "predict", "kernel": "saxpy",
//    "features": [12, 0, 0, 0, 8, 8, 0, 0, 3, 0]}
//   {"id": 8, "type": "predict_source",
//    "source": "kernel void f(global float* x) { ... }"}
//
// Three introspection request types, payload-free, answered on the
// connection thread (they never enter the batching pipeline): "health" is
// the cheap liveness probe (the fleet balancer pings it), "stats" the full
// counter dump, and "metrics" the Prometheus-style registry exposition
// (docs/OBSERVABILITY.md). Any request may also carry a numeric "trace"
// member — a trace id asking every hop to stamp per-stage timings onto the
// reply:
//
//   {"id": 9, "type": "health"}
//     → {"id": 9, "health": {"status": "ok", "uptime_s": 12.5, "queue_depth": 0}}
//   {"id": 10, "type": "stats"}
//     → {"id": 10, "stats": {"uptime_s": ..., "queue_depth": ..., "requests": ...,
//        "source_requests": ..., "batches": ..., "connections": ...,
//        "protocol_errors": ..., "cache_hits": ..., "cache_misses": ...}}
//
// "type" may be omitted for backward compatibility — the payload member
// then decides — but when present it must match the payload. Connections
// are pipelined: clients may write any number of request lines without
// waiting; responses come back in request order.
//
// Responses echo the id and carry the predicted Pareto set, or an error:
//
//   {"id": 7, "kernel": "saxpy", "pareto": [{"core_mhz": 1002, "mem_mhz": 3505,
//       "speedup": 0.93, "energy": 0.71, "heuristic": false}, ...]}
//   {"id": 8, "error": {"code": "parse_error", "message": "..."}}
//
// Determinism over the wire: every double is printed with std::to_chars
// (shortest round-trip form, locale-independent) and parsed with
// std::from_chars, which recovers IEEE-754 binary64 exactly — a client
// parsing the response sees bit-identical values to an in-process
// Predictor call (asserted in tests/serve_test.cpp) regardless of the
// embedding program's LC_NUMERIC.
//
// The JSON layer is a deliberately small, dependency-free subset parser —
// UTF-8 pass-through, \uXXXX escapes decoded for the BMP — sufficient for
// and validated against this protocol.
//
// --- binary framing (protocol version 1) -------------------------------------
//
// JSON lines stay the default and the debug surface. A client may upgrade a
// connection by sending a JSON "hello" request:
//
//   {"id": 1, "type": "hello", "max_protocol": 1}
//     → {"id": 1, "hello": {"protocol": 1}}
//
// A server that predates "hello" answers it with a parse error, which the
// client treats as a clean downgrade to JSON (no desync: the error reply is
// a perfectly ordinary reply line). After a successful negotiation both
// sides may frame messages as length-prefixed binary frames:
//
//   byte 0       magic 0xB1 (never the first byte of a JSON line)
//   byte 1       frame type (FrameType below)
//   bytes 2..5   payload length, u32 little-endian
//   bytes 6..    payload
//
// The two framings share one byte stream: each message is classified by its
// first byte (0xB1 = frame, anything else = JSON line up to '\n'), and every
// reply mirrors its request's framing. All binary integers are fixed-width
// little-endian; doubles travel as their IEEE-754 binary64 bit pattern —
// bit-exact by construction, including inf/nan/denormals, matching the
// exactness the JSON framing gets from to_chars/from_chars. Strings are a
// u32 length followed by raw bytes.
//
// kSourceBegin/kSourceChunk/kSourceEnd stream one predict_source request in
// bounded memory: Begin carries id/kernel/deadline, each Chunk up to one
// frame of raw source bytes (fed straight into the server's SourceFeeder),
// End settles the request and is answered like any predict reply.
// kSourceAbort drops a half-streamed request without a reply (client gone,
// or a forwarding balancer cleaning up).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "clfront/features.hpp"
#include "common/arena.hpp"
#include "common/buffer_pool.hpp"
#include "common/status.hpp"
#include "core/predictor.hpp"
#include "obs/trace.hpp"

namespace repro::serve {

// --- minimal JSON value -------------------------------------------------------

/// A parsed JSON document. All internal storage — strings, arrays, object
/// member vectors — is typed on common::ArenaAllocator, so a document built
/// by parse_json(text, &arena) lives entirely in that arena and dies at its
/// next reset() (the per-request parse on the serve hot path). With no
/// arena the allocator falls back to the heap and the value behaves exactly
/// as before. A JsonValue must never outlive the arena it was parsed into.
class JsonValue {
 public:
  using String =
      std::basic_string<char, std::char_traits<char>, common::ArenaAllocator<char>>;
  using Array = std::vector<JsonValue, common::ArenaAllocator<JsonValue>>;
  using Member = std::pair<String, JsonValue>;
  using Object = std::vector<Member, common::ArenaAllocator<Member>>;  // insertion order

  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  JsonValue(bool b) : data_(b) {}                        // NOLINT
  JsonValue(double d) : data_(d) {}                      // NOLINT
  JsonValue(std::string_view s) : data_(String(s)) {}    // NOLINT (heap-backed)
  JsonValue(const char* s) : data_(String(std::string_view(s))) {}  // NOLINT
  JsonValue(String s) : data_(std::move(s)) {}           // NOLINT
  JsonValue(Array a) : data_(std::move(a)) {}            // NOLINT
  JsonValue(Object o) : data_(std::move(o)) {}           // NOLINT

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<String>(data_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(data_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] double as_number() const { return std::get<double>(data_); }
  /// A view into the document's storage — valid only while the document
  /// (and its arena, if any) is alive. Copy out anything that escapes.
  [[nodiscard]] std::string_view as_string() const {
    const String& s = std::get<String>(data_);
    return {s.data(), s.size()};
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(data_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(data_); }

  /// First member with this key, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, double, String, Array, Object> data_;
};

/// Parse one JSON document (the whole input must be consumed, modulo
/// whitespace). Depth-limited; parse errors carry a byte offset. A non-null
/// `arena` backs every string/array/object in the returned document —
/// zero heap allocations on well-formed input — and the document must be
/// dropped before the arena resets.
[[nodiscard]] common::Result<JsonValue> parse_json(std::string_view text,
                                                   common::Arena* arena = nullptr);

/// Serialize (doubles in shortest round-trip form — exact binary64).
[[nodiscard]] std::string dump_json(const JsonValue& value);

/// Escape-quote one string as a JSON string literal.
[[nodiscard]] std::string json_quote(std::string_view s);

// --- protocol messages --------------------------------------------------------

/// Highest binary protocol version this build speaks. "hello" negotiates
/// min(client max, server max); version 0 means "JSON lines only".
/// Version 2 added the optional request trace flag (kFlagTrace) and the
/// metrics kind to the binary framing. The JSON framing needs no version:
/// its parser ignores unknown members, so "trace" is inherently
/// backward compatible there.
inline constexpr std::uint32_t kProtocolVersion = 2;

/// What a request line asks for. The two predict kinds are inferred from
/// the payload (the "type" member is optional for them); health, stats,
/// metrics and hello must be named explicitly and carry no payload.
enum class RequestKind {
  kPredict,
  kPredictSource,
  kHealth,
  kStats,
  kHello,
  kMetrics,
};

struct WireRequest {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kPredict;
  /// kHello only: the highest binary protocol version the client speaks.
  std::uint32_t max_protocol = 0;
  std::string kernel;  // optional display name; defaults applied server-side
  /// For the predict kinds, exactly one of the two is set after a
  /// successful parse: "predict" requests carry features, "predict_source"
  /// requests carry source. Both empty for health/stats.
  std::optional<std::array<double, clfront::kNumFeatures>> features;  // raw counts
  std::optional<std::string> source;                                  // OpenCL-C
  /// Optional latency budget in milliseconds, relative to when the server
  /// parses the line. A request whose budget has run out anywhere in the
  /// pipeline is answered "deadline_exceeded" without being predicted; the
  /// balancer deducts elapsed time before re-dispatching (see
  /// docs/ROBUSTNESS.md). Absent = no deadline (old clients unaffected).
  std::optional<double> deadline_ms;
  /// Optional trace id: asks every hop to stamp per-stage timestamps onto
  /// the reply (docs/OBSERVABILITY.md). Absent = untraced (the default;
  /// tracing is strictly opt-in per request). JSON servers that predate
  /// tracing ignore the member; on the binary framing the flag is only
  /// legal at protocol >= 2, so clients gate it on the negotiated version.
  std::optional<std::uint64_t> trace;

  /// The features to predict on — extracts from `source` when needed.
  /// (The server no longer calls this for source requests: featurization
  /// runs on the worker shards via Service::submit_source.)
  [[nodiscard]] common::Result<clfront::StaticFeatures> to_features() const;
};

/// The counters a "stats" (or, in its short form, "health") response
/// carries. One struct serves both framings: health replies fill only
/// uptime_s and queue_depth, stats replies everything their server knows
/// (cache_* stay zero when the server has no model cache wired in).
struct WireStats {
  double uptime_s = 0.0;
  std::uint64_t queue_depth = 0;  // admission-queue backlog right now
  std::uint64_t requests = 0;
  std::uint64_t source_requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t connections = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t shed = 0;               // rejected at admission by load shedding
  std::uint64_t deadline_exceeded = 0;  // expired before prediction
  std::uint64_t streamed = 0;           // requests that arrived as chunk streams
  std::uint64_t peak_message_bytes = 0;  // largest buffered wire message seen
};

/// A "metrics" response: the Prometheus text exposition plus the flat
/// structured view (obs::Registry::snapshot_values) so programmatic
/// consumers — the balancer's aggregator, repro_top — need not parse the
/// text form.
struct WireMetrics {
  std::string text;
  std::vector<std::pair<std::string, double>> values;
};

struct WireResponse {
  std::uint64_t id = 0;
  /// Exactly one of prediction/stats/metrics/error/protocol is set.
  std::optional<core::Predictor::KernelPrediction> prediction;
  std::optional<WireStats> stats;  // health and stats responses
  /// True when `stats` came from the short "health" framing (uptime_s and
  /// queue_depth only) rather than the full "stats" counter dump.
  bool health = false;
  std::optional<WireMetrics> metrics;  // metrics responses
  std::optional<common::Error> error;
  std::optional<std::uint32_t> protocol;  // hello responses
  /// Per-stage timings, present only when the request carried a trace id.
  /// Rides on prediction AND error replies (a shed request's trace answers
  /// "where was it shed"). The one deliberately nondeterministic reply
  /// field — excluded from bit-identity comparisons (DETERMINISM.md).
  std::optional<obs::Trace> trace;
};

/// Parse one request line. A non-null `arena` backs the intermediate JSON
/// document (reset by the caller after the reply is written); the returned
/// WireRequest always owns its strings on the heap — kernel and source may
/// escape into the batching pipeline, so nothing arena-backed leaves this
/// function (short kernel names land in SSO storage, so the steady-state
/// predict path still allocates nothing).
[[nodiscard]] common::Result<WireRequest> parse_request(std::string_view line,
                                                        common::Arena* arena = nullptr);
/// Prediction/error responses take an optional trace to append as the
/// ,"trace":{"id":…,"stages":[{"stage":…,"us":…},…]} member.
///
/// Every formatter has an `_into` form that appends to a caller-owned
/// buffer (the server's pooled reply buffer — no per-reply string on the
/// hot path); the returning forms are thin wrappers and byte-identical.
void format_response_into(std::string& out, std::uint64_t id,
                          const core::Predictor::KernelPrediction& p,
                          const obs::Trace* trace = nullptr);
[[nodiscard]] std::string format_response(std::uint64_t id,
                                          const core::Predictor::KernelPrediction& p,
                                          const obs::Trace* trace = nullptr);
void format_error_into(std::string& out, std::uint64_t id, const common::Error& error,
                       const obs::Trace* trace = nullptr);
[[nodiscard]] std::string format_error(std::uint64_t id, const common::Error& error,
                                       const obs::Trace* trace = nullptr);
/// {"id":…,"health":{"status":"ok","uptime_s":…,"queue_depth":…}}
void format_health_response_into(std::string& out, std::uint64_t id,
                                 const WireStats& stats);
[[nodiscard]] std::string format_health_response(std::uint64_t id, const WireStats& stats);
/// {"id":…,"stats":{…all WireStats fields…}}
void format_stats_response_into(std::string& out, std::uint64_t id,
                                const WireStats& stats);
[[nodiscard]] std::string format_stats_response(std::uint64_t id, const WireStats& stats);
/// {"id":…,"metrics":{"text":…,"values":{…name:number…}}}
void format_metrics_response_into(std::string& out, std::uint64_t id,
                                  const WireMetrics& metrics);
[[nodiscard]] std::string format_metrics_response(std::uint64_t id,
                                                  const WireMetrics& metrics);
/// {"id":…,"hello":{"protocol":…}}
void format_hello_response_into(std::string& out, std::uint64_t id,
                                std::uint32_t protocol);
[[nodiscard]] std::string format_hello_response(std::uint64_t id, std::uint32_t protocol);
[[nodiscard]] common::Result<WireResponse> parse_response(std::string_view line);
void format_request_into(std::string& out, const WireRequest& request);  // client side
[[nodiscard]] std::string format_request(const WireRequest& request);    // client side

/// The numeric "id" of a line whose full parse failed, when one can still
/// be recovered — error replies echo it so clients can correlate; 0 when
/// even the id is unrecoverable.
[[nodiscard]] std::uint64_t best_effort_id(std::string_view line);

// --- binary framing -----------------------------------------------------------

namespace binary {

/// First byte of every binary frame. JSON requests are objects, so a line
/// never starts with 0xB1 — one byte classifies the framing of a message.
inline constexpr unsigned char kMagic = 0xB1;
/// magic + frame type + u32 payload length.
inline constexpr std::size_t kHeaderBytes = 6;

enum class FrameType : std::uint8_t {
  kRequest = 1,      // one WireRequest (any kind)
  kResponse = 2,     // one WireResponse
  kSourceBegin = 3,  // open a chunked predict_source stream
  kSourceChunk = 4,  // raw source bytes for an open stream
  kSourceEnd = 5,    // settle the stream; answered like a predict reply
  kSourceAbort = 6,  // drop a half-streamed request; never answered
};

/// Opening frame of a chunked predict_source request. The deadline is
/// relative to when the receiver parses this frame, exactly like the JSON
/// deadline_ms; the kernel selects which __kernel to predict (first when
/// empty). Chunks and End correlate by id.
struct SourceBegin {
  std::uint64_t id = 0;
  std::string kernel;
  std::optional<double> deadline_ms;
};

struct SourceChunk {
  std::uint64_t id = 0;
  std::string data;  // raw source bytes; boundaries may fall anywhere
};

/// Wrap a payload in a frame header.
[[nodiscard]] std::string frame(FrameType type, std::string_view payload);

/// Like the JSON formatters, every frame builder has an `_into` form that
/// appends one complete frame (header included, length patched in place)
/// to a caller-owned buffer; the returning forms are byte-identical
/// wrappers.
void format_request_frame_into(std::string& out, const WireRequest& request);
[[nodiscard]] std::string format_request_frame(const WireRequest& request);
/// Like the JSON formatters, prediction/error frames take an optional
/// trace, encoded as a trailing section after the body (u64 id, u32 stage
/// count, then str+f64 per stage). Pre-trace parsers never see it: a
/// server only emits a trace when the request carried the trace flag,
/// which old clients never set.
void format_prediction_frame_into(std::string& out, std::uint64_t id,
                                  const core::Predictor::KernelPrediction& p,
                                  const obs::Trace* trace = nullptr);
[[nodiscard]] std::string format_prediction_frame(
    std::uint64_t id, const core::Predictor::KernelPrediction& p,
    const obs::Trace* trace = nullptr);
void format_error_frame_into(std::string& out, std::uint64_t id,
                             const common::Error& error,
                             const obs::Trace* trace = nullptr);
[[nodiscard]] std::string format_error_frame(std::uint64_t id,
                                             const common::Error& error,
                                             const obs::Trace* trace = nullptr);
void format_health_frame_into(std::string& out, std::uint64_t id,
                              const WireStats& stats);
[[nodiscard]] std::string format_health_frame(std::uint64_t id, const WireStats& stats);
void format_stats_frame_into(std::string& out, std::uint64_t id, const WireStats& stats);
[[nodiscard]] std::string format_stats_frame(std::uint64_t id, const WireStats& stats);
void format_metrics_frame_into(std::string& out, std::uint64_t id,
                               const WireMetrics& metrics);
[[nodiscard]] std::string format_metrics_frame(std::uint64_t id,
                                               const WireMetrics& metrics);
void format_hello_frame_into(std::string& out, std::uint64_t id, std::uint32_t protocol);
[[nodiscard]] std::string format_hello_frame(std::uint64_t id, std::uint32_t protocol);
[[nodiscard]] std::string format_source_begin(const SourceBegin& begin);
[[nodiscard]] std::string format_source_chunk(std::uint64_t id, std::string_view bytes);
[[nodiscard]] std::string format_source_end(std::uint64_t id);
[[nodiscard]] std::string format_source_abort(std::uint64_t id);

/// Parsers take the frame *payload* (header already stripped by the
/// MessageSplitter). Every read is bounds-checked; trailing bytes after a
/// well-formed payload are a parse error, so a length-prefix lie can never
/// smuggle data past validation.
[[nodiscard]] common::Result<WireRequest> parse_request(std::string_view payload);
[[nodiscard]] common::Result<WireResponse> parse_response(std::string_view payload);
[[nodiscard]] common::Result<SourceBegin> parse_source_begin(std::string_view payload);
[[nodiscard]] common::Result<SourceChunk> parse_source_chunk(std::string_view payload);
[[nodiscard]] common::Result<std::uint64_t> parse_source_end(std::string_view payload);
[[nodiscard]] common::Result<std::uint64_t> parse_source_abort(std::string_view payload);

/// Binary analogue of serve::best_effort_id: every frame payload leads with
/// the u64 id, so it is recoverable whenever at least 8 bytes arrived.
[[nodiscard]] std::uint64_t best_effort_id(std::string_view payload);

}  // namespace binary

// --- incremental message splitting --------------------------------------------

/// One decoded-but-unparsed wire message: a JSON line (terminator stripped)
/// or a binary frame's type + payload.
///
/// `payload` is a view into the splitter's internal buffer — valid only
/// until the next feed() on the same splitter (next() calls in between are
/// fine: the consumed prefix is compacted lazily, on feed). Parse or copy
/// before feeding more bytes.
struct WireMessage {
  bool binary = false;
  binary::FrameType frame = binary::FrameType::kRequest;  // binary only
  std::string_view payload;
};

/// Incremental splitter over the shared byte stream, used by the server,
/// the balancer (both sides), the client, and the protocol fuzzer: feed()
/// raw socket bytes, then drain next() until it reports "need more input".
///
/// Classification is per message by first byte (0xB1 = binary frame,
/// anything else = JSON line up to '\n'; a bare '\r\n' line is skipped).
/// Buffering is bounded: a message longer than max_message_bytes — an
/// overlong line, or a frame whose length prefix exceeds the bound — is an
/// unrecoverable framing fault. next() then returns an error, and the
/// connection must close: once a length prefix lies there is no resync
/// point in the stream.
class MessageSplitter {
 public:
  /// With a pool, the internal buffer is leased from it — a connection's
  /// splitter recycles another connection's warmed-up buffer instead of
  /// growing a fresh string from zero.
  explicit MessageSplitter(std::size_t max_message_bytes = 1 << 20,
                           bool accept_binary = true,
                           common::BufferPool* pool = nullptr)
      : max_bytes_(max_message_bytes),
        accept_binary_(accept_binary),
        buffer_(pool != nullptr ? pool->acquire() : common::BufferPool::Lease()) {}

  void feed(std::string_view bytes);
  /// A complete message, nullopt when more input is needed, or an
  /// unrecoverable framing fault (overlong message, unknown frame type).
  /// The returned payload views this splitter's buffer: valid until the
  /// next feed().
  [[nodiscard]] common::Result<std::optional<WireMessage>> next();

  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_->size() - pos_;
  }
  /// High-water mark of unconsumed bytes — the observable "bounded request
  /// buffer" of the streaming contract (asserted in tests).
  [[nodiscard]] std::size_t peak_buffered_bytes() const noexcept { return peak_; }

 private:
  std::size_t max_bytes_;
  bool accept_binary_;
  common::BufferPool::Lease buffer_;
  std::size_t pos_ = 0;  // consumed prefix, compacted on feed()
  std::size_t peak_ = 0;
};

}  // namespace repro::serve
