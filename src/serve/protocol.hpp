// The line-delimited JSON wire protocol of repro_serve.
//
// One request per line, one response line per request, over a Unix or TCP
// socket. Two prediction request types: "predict" carries the 10 raw static
// feature counts, "predict_source" carries OpenCL-C source that the server
// featurizes on its worker shards (inside the micro-batch, off the
// connection thread):
//
//   {"id": 7, "type": "predict", "kernel": "saxpy",
//    "features": [12, 0, 0, 0, 8, 8, 0, 0, 3, 0]}
//   {"id": 8, "type": "predict_source",
//    "source": "kernel void f(global float* x) { ... }"}
//
// Two introspection request types, payload-free, answered on the connection
// thread (they never enter the batching pipeline): "health" is the cheap
// liveness probe (the fleet balancer pings it), "stats" the full counter
// dump:
//
//   {"id": 9, "type": "health"}
//     → {"id": 9, "health": {"status": "ok", "uptime_s": 12.5, "queue_depth": 0}}
//   {"id": 10, "type": "stats"}
//     → {"id": 10, "stats": {"uptime_s": ..., "queue_depth": ..., "requests": ...,
//        "source_requests": ..., "batches": ..., "connections": ...,
//        "protocol_errors": ..., "cache_hits": ..., "cache_misses": ...}}
//
// "type" may be omitted for backward compatibility — the payload member
// then decides — but when present it must match the payload. Connections
// are pipelined: clients may write any number of request lines without
// waiting; responses come back in request order.
//
// Responses echo the id and carry the predicted Pareto set, or an error:
//
//   {"id": 7, "kernel": "saxpy", "pareto": [{"core_mhz": 1002, "mem_mhz": 3505,
//       "speedup": 0.93, "energy": 0.71, "heuristic": false}, ...]}
//   {"id": 8, "error": {"code": "parse_error", "message": "..."}}
//
// Determinism over the wire: every double is printed with std::to_chars
// (shortest round-trip form, locale-independent) and parsed with
// std::from_chars, which recovers IEEE-754 binary64 exactly — a client
// parsing the response sees bit-identical values to an in-process
// Predictor call (asserted in tests/serve_test.cpp) regardless of the
// embedding program's LC_NUMERIC.
//
// The JSON layer is a deliberately small, dependency-free subset parser —
// UTF-8 pass-through, \uXXXX escapes decoded for the BMP — sufficient for
// and validated against this protocol.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "clfront/features.hpp"
#include "common/status.hpp"
#include "core/predictor.hpp"

namespace repro::serve {

// --- minimal JSON value -------------------------------------------------------

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;  // insertion order preserved

  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  JsonValue(bool b) : data_(b) {}                        // NOLINT
  JsonValue(double d) : data_(d) {}                      // NOLINT
  JsonValue(std::string s) : data_(std::move(s)) {}      // NOLINT
  JsonValue(Array a) : data_(std::move(a)) {}            // NOLINT
  JsonValue(Object o) : data_(std::move(o)) {}           // NOLINT

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(data_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] double as_number() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(data_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(data_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(data_); }

  /// First member with this key, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse one JSON document (the whole input must be consumed, modulo
/// whitespace). Depth-limited; parse errors carry a byte offset.
[[nodiscard]] common::Result<JsonValue> parse_json(std::string_view text);

/// Serialize (doubles in shortest round-trip form — exact binary64).
[[nodiscard]] std::string dump_json(const JsonValue& value);

/// Escape-quote one string as a JSON string literal.
[[nodiscard]] std::string json_quote(std::string_view s);

// --- protocol messages --------------------------------------------------------

/// What a request line asks for. The two predict kinds are inferred from
/// the payload (the "type" member is optional for them); health and stats
/// must be named explicitly and carry no payload.
enum class RequestKind { kPredict, kPredictSource, kHealth, kStats };

struct WireRequest {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kPredict;
  std::string kernel;  // optional display name; defaults applied server-side
  /// For the predict kinds, exactly one of the two is set after a
  /// successful parse: "predict" requests carry features, "predict_source"
  /// requests carry source. Both empty for health/stats.
  std::optional<std::array<double, clfront::kNumFeatures>> features;  // raw counts
  std::optional<std::string> source;                                  // OpenCL-C
  /// Optional latency budget in milliseconds, relative to when the server
  /// parses the line. A request whose budget has run out anywhere in the
  /// pipeline is answered "deadline_exceeded" without being predicted; the
  /// balancer deducts elapsed time before re-dispatching (see
  /// docs/ROBUSTNESS.md). Absent = no deadline (old clients unaffected).
  std::optional<double> deadline_ms;

  /// The features to predict on — extracts from `source` when needed.
  /// (The server no longer calls this for source requests: featurization
  /// runs on the worker shards via Service::submit_source.)
  [[nodiscard]] common::Result<clfront::StaticFeatures> to_features() const;
};

/// The counters a "stats" (or, in its short form, "health") response
/// carries. One struct serves both framings: health replies fill only
/// uptime_s and queue_depth, stats replies everything their server knows
/// (cache_* stay zero when the server has no model cache wired in).
struct WireStats {
  double uptime_s = 0.0;
  std::uint64_t queue_depth = 0;  // admission-queue backlog right now
  std::uint64_t requests = 0;
  std::uint64_t source_requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t connections = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t shed = 0;               // rejected at admission by load shedding
  std::uint64_t deadline_exceeded = 0;  // expired before prediction
};

struct WireResponse {
  std::uint64_t id = 0;
  /// Exactly one of the three is set.
  std::optional<core::Predictor::KernelPrediction> prediction;
  std::optional<WireStats> stats;  // health and stats responses
  std::optional<common::Error> error;
};

[[nodiscard]] common::Result<WireRequest> parse_request(const std::string& line);
[[nodiscard]] std::string format_response(std::uint64_t id,
                                          const core::Predictor::KernelPrediction& p);
[[nodiscard]] std::string format_error(std::uint64_t id, const common::Error& error);
/// {"id":…,"health":{"status":"ok","uptime_s":…,"queue_depth":…}}
[[nodiscard]] std::string format_health_response(std::uint64_t id, const WireStats& stats);
/// {"id":…,"stats":{…all WireStats fields…}}
[[nodiscard]] std::string format_stats_response(std::uint64_t id, const WireStats& stats);
[[nodiscard]] common::Result<WireResponse> parse_response(const std::string& line);
[[nodiscard]] std::string format_request(const WireRequest& request);  // client side

/// The numeric "id" of a line whose full parse failed, when one can still
/// be recovered — error replies echo it so clients can correlate; 0 when
/// even the id is unrecoverable.
[[nodiscard]] std::uint64_t best_effort_id(const std::string& line);

}  // namespace repro::serve
