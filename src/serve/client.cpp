#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string_view>
#include <thread>
#include <utility>

#include "common/fault.hpp"
#include "common/net.hpp"
#include "serve/protocol.hpp"

namespace repro::serve {

namespace {

common::Error errno_error(const std::string& what) {
  return common::io_error(what + ": " + std::strerror(errno));
}

/// Connect failures worth retrying: the server process exists but has not
/// bound/listened yet, or is between restarts. Anything else (bad address,
/// permissions) will not heal with time.
bool connect_errno_is_transient(int err) {
  return err == ECONNREFUSED || err == ENOENT || err == ECONNRESET ||
         err == ETIMEDOUT || err == EAGAIN || err == EINTR;
}

/// One connect attempt per iteration, sleeping the (doubling, capped)
/// backoff between attempts. `try_connect` returns the connected fd or -1
/// with errno set.
template <typename TryConnect>
common::Result<int> connect_with_backoff(const ConnectOptions& options,
                                         const std::string& what,
                                         TryConnect&& try_connect) {
  const int attempts = options.attempts < 1 ? 1 : options.attempts;
  auto backoff = options.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    if (common::FaultInjector::enabled() &&
        common::FaultInjector::drop_connect()) {
      errno = ECONNREFUSED;  // injected: peer "not up" — retried via backoff
    } else {
      errno = 0;
    }
    const int fd = errno == ECONNREFUSED ? -1 : try_connect();
    if (fd >= 0) return fd;
    const int err = errno;
    if (attempt >= attempts || !connect_errno_is_transient(err)) {
      errno = err;
      return errno_error(what + " (attempt " + std::to_string(attempt) + "/" +
                         std::to_string(attempts) + ")");
    }
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, options.max_backoff);
  }
}

}  // namespace

common::Result<SocketClient> SocketClient::connect_unix(const std::string& path,
                                                        const ConnectOptions& options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return common::invalid_argument("SocketClient: unix path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  auto fd = connect_with_backoff(
      options, "SocketClient: connect(" + path + ")", [&]() -> int {
        const int s = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (s < 0) return -1;
        if (::connect(s, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
          const int err = errno;
          ::close(s);
          errno = err;
          return -1;
        }
        return s;
      });
  if (!fd.ok()) return fd.error();
  return SocketClient(fd.value(), options.io_timeout);
}

common::Result<SocketClient> SocketClient::connect_tcp(int port,
                                                       const ConnectOptions& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  auto fd = connect_with_backoff(
      options, "SocketClient: connect(127.0.0.1:" + std::to_string(port) + ")",
      [&]() -> int {
        const int s = ::socket(AF_INET, SOCK_STREAM, 0);
        if (s < 0) return -1;
        if (::connect(s, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
          const int err = errno;
          ::close(s);
          errno = err;
          return -1;
        }
        return s;
      });
  if (!fd.ok()) return fd.error();
  return SocketClient(fd.value(), options.io_timeout);
}

SocketClient::SocketClient(SocketClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      io_timeout_(other.io_timeout_),
      deadline_ms_(other.deadline_ms_),
      next_id_(other.next_id_),
      binary_(other.binary_),
      protocol_(other.protocol_),
      trace_enabled_(other.trace_enabled_),
      last_trace_(std::move(other.last_trace_)),
      splitter_(std::move(other.splitter_)),
      send_buf_(std::move(other.send_buf_)),
      scratch_request_(std::move(other.scratch_request_)) {}

SocketClient& SocketClient::operator=(SocketClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    io_timeout_ = other.io_timeout_;
    deadline_ms_ = other.deadline_ms_;
    next_id_ = other.next_id_;
    binary_ = other.binary_;
    protocol_ = other.protocol_;
    trace_enabled_ = other.trace_enabled_;
    last_trace_ = std::move(other.last_trace_);
    splitter_ = std::move(other.splitter_);
    send_buf_ = std::move(other.send_buf_);
    scratch_request_ = std::move(other.scratch_request_);
  }
  return *this;
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

common::Result<core::Predictor::KernelPrediction> SocketClient::predict(
    const std::string& kernel, const std::array<double, clfront::kNumFeatures>& counts) {
  WireRequest request;
  request.id = next_id_++;
  request.kernel = kernel;
  request.features = counts;
  request.deadline_ms = deadline_ms_;
  maybe_trace(request);
  return round_trip(request);
}

common::Result<core::Predictor::KernelPrediction> SocketClient::predict(
    const clfront::StaticFeatures& features) {
  return predict(features.kernel_name, features.counts);
}

common::Result<core::Predictor::KernelPrediction> SocketClient::predict_source(
    const std::string& opencl_source, const std::string& kernel_name) {
  WireRequest request;
  request.id = next_id_++;
  request.kind = RequestKind::kPredictSource;
  request.kernel = kernel_name;
  request.source = opencl_source;
  request.deadline_ms = deadline_ms_;
  maybe_trace(request);
  return round_trip(request);
}

common::Result<core::Predictor::KernelPrediction> SocketClient::predict_source_stream(
    const ChunkProvider& next_chunk, const std::string& kernel_name) {
  if (!binary_) {
    // JSON peers have no chunk framing: gather the stream and fall back to
    // one predict_source request. Same answer (chunk invariance), but the
    // whole source crosses the wire as one line.
    std::string source;
    while (auto chunk = next_chunk()) source += *chunk;
    return predict_source(source, kernel_name);
  }
  const std::uint64_t id = next_id_++;
  binary::SourceBegin begin;
  begin.id = id;
  begin.kernel = kernel_name;
  begin.deadline_ms = deadline_ms_;
  if (auto st = send_raw(binary::format_source_begin(begin)); !st.ok()) {
    return st.error();
  }
  // Re-split provider chunks so one frame never exceeds a size every
  // reasonable server-side frame bound accepts — the provider's chunking is
  // a caller convenience, not the wire's.
  constexpr std::size_t kMaxChunkFrame = 64u << 10;
  while (auto chunk = next_chunk()) {
    std::string_view rest(*chunk);
    while (!rest.empty()) {
      const std::size_t take = std::min(rest.size(), kMaxChunkFrame);
      if (auto st = send_raw(binary::format_source_chunk(id, rest.substr(0, take)));
          !st.ok()) {
        return st.error();
      }
      rest.remove_prefix(take);
    }
  }
  if (auto st = send_raw(binary::format_source_end(id)); !st.ok()) {
    return st.error();
  }
  return read_response(id);
}

common::Result<std::uint32_t> SocketClient::negotiate_binary() {
  WireRequest request;
  request.id = next_id_++;
  request.kind = RequestKind::kHello;
  request.max_protocol = kProtocolVersion;
  // The offer itself always goes as JSON — the one framing every peer,
  // however old, can parse.
  if (auto st = send_line(format_request(request)); !st.ok()) return st.error();
  auto response = read_wire(request.id);
  if (!response.ok()) return response.error();
  if (response.value().error.has_value()) {
    // Any well-formed error reply proves the peer frames JSON correctly but
    // does not serve hello (a pre-hello server's "unknown request type", a
    // shedding backend's "unavailable"): that is the downgrade signal, not a
    // failure — stay on JSON.
    protocol_ = 0;
    return 0;
  }
  if (!response.value().protocol.has_value()) {
    return common::parse_error("SocketClient: expected a hello response");
  }
  const std::uint32_t version = std::min(*response.value().protocol, kProtocolVersion);
  binary_ = version >= 1;
  protocol_ = version;
  return version;
}

std::vector<common::Result<core::Predictor::KernelPrediction>>
SocketClient::predict_source_many(
    const std::vector<core::Predictor::SourceRequest>& sources) {
  // Keep at most this many requests outstanding (written, response not yet
  // read). A client that writes an unbounded burst before reading deadlocks
  // against the server's own pipelining window once both directions' socket
  // buffers fill: the server's writer blocks on us, its reader stops at
  // max_inflight, and our send_line blocks on the server — forever. Staying
  // below the server's default window (64) keeps the pipeline moving.
  constexpr std::size_t kMaxOutstanding = 32;

  std::vector<common::Result<core::Predictor::KernelPrediction>> out;
  out.reserve(sources.size());
  const std::uint64_t first_id = next_id_;
  // Interleaved pipelining: write ahead of the responses (the server
  // decodes request N+1 while N's batch is in flight), draining the oldest
  // response whenever the window is full. Responses arrive in request
  // order, so slot k always reads id first_id + k. A write failure fails
  // the remaining slots but the responses already owed are still read.
  std::size_t sent = 0;
  std::size_t read = 0;
  common::Status send_status = common::Status::Ok();
  for (const auto& source : sources) {
    if (sent - read >= kMaxOutstanding) {
      out.push_back(read_response(first_id + read));
      ++read;
    }
    // Reuse one scratch request across the pipeline: its kernel/source
    // strings keep their capacity, so the steady state of a burst encodes
    // without reallocating per request.
    WireRequest& request = scratch_request_;
    request.id = next_id_++;
    request.kind = RequestKind::kPredictSource;
    request.kernel = source.kernel;
    request.features.reset();
    if (request.source.has_value()) {
      *request.source = source.source;  // copy-assign reuses capacity
    } else {
      request.source = source.source;
    }
    request.deadline_ms = deadline_ms_;
    request.trace.reset();
    maybe_trace(request);
    send_status = send_request(request);
    if (!send_status.ok()) break;
    ++sent;
  }
  for (; read < sent; ++read) {
    out.push_back(read_response(first_id + read));
  }
  for (std::size_t i = sent; i < sources.size(); ++i) {
    out.push_back(send_status.error());
  }
  return out;
}

common::Status SocketClient::send_raw(std::string_view bytes) {
  if (fd_ < 0) return common::io_error("SocketClient: not connected");
  const auto result = common::net::write_all(fd_, bytes, io_timeout_);
  switch (result.status) {
    case common::net::IoStatus::kOk:
      return common::Status::Ok();
    case common::net::IoStatus::kTimeout:
      // Retryable: the peer is wedged, not wrong — a retry elsewhere (or
      // later) can succeed.
      return common::unavailable("SocketClient: write timed out");
    default:
      errno = result.err;
      return errno_error("SocketClient: write");
  }
}

common::Status SocketClient::send_line(std::string_view line) {
  send_buf_.assign(line);
  send_buf_.push_back('\n');
  return send_raw(send_buf_);
}

common::Status SocketClient::send_request(const WireRequest& request) {
  // Encode into the reused buffer: the steady state of a pipelined burst
  // sends without touching the heap (both framings).
  send_buf_.clear();
  if (binary_) {
    binary::format_request_frame_into(send_buf_, request);
  } else {
    format_request_into(send_buf_, request);
    send_buf_.push_back('\n');
  }
  return send_raw(send_buf_);
}

common::Result<WireResponse> SocketClient::read_wire(std::uint64_t expect_id) {
  if (fd_ < 0) return common::io_error("SocketClient: not connected");
  for (;;) {
    auto next = splitter_.next();
    if (!next.ok()) return next.error();
    if (next.value().has_value()) {
      const WireMessage& message = *next.value();
      common::Result<WireResponse> response = [&]() -> common::Result<WireResponse> {
        if (!message.binary) return parse_response(message.payload);
        if (message.frame != binary::FrameType::kResponse) {
          return common::parse_error("SocketClient: unexpected frame from server");
        }
        return binary::parse_response(message.payload);
      }();
      if (!response.ok()) return response.error();
      if (response.value().id != expect_id) {
        return common::internal_error(
            "SocketClient: response id " + std::to_string(response.value().id) +
            " does not match request id " + std::to_string(expect_id));
      }
      last_trace_ = response.value().trace;
      return response;
    }
    char chunk[4096];
    const auto r = common::net::read_some(fd_, chunk, sizeof chunk, io_timeout_);
    if (r.status == common::net::IoStatus::kTimeout) {
      return common::unavailable("SocketClient: read timed out");
    }
    if (r.status == common::net::IoStatus::kError) {
      errno = r.err;
      return errno_error("SocketClient: read");
    }
    if (r.status == common::net::IoStatus::kEof) {
      return common::io_error("SocketClient: server closed the connection");
    }
    splitter_.feed(std::string_view(chunk, r.bytes));
  }
}

common::Result<core::Predictor::KernelPrediction> SocketClient::read_response(
    std::uint64_t expect_id) {
  auto response = read_wire(expect_id);
  if (!response.ok()) return response.error();
  if (response.value().error.has_value()) return *response.value().error;
  if (!response.value().prediction.has_value()) {
    return common::parse_error("SocketClient: expected a prediction response");
  }
  return std::move(*response.value().prediction);
}

common::Result<WireStats> SocketClient::introspect(RequestKind kind) {
  WireRequest request;
  request.id = next_id_++;
  request.kind = kind;
  if (auto st = send_request(request); !st.ok()) return st.error();
  auto response = read_wire(request.id);
  if (!response.ok()) return response.error();
  if (response.value().error.has_value()) return *response.value().error;
  if (!response.value().stats.has_value()) {
    return common::parse_error("SocketClient: expected a health/stats response");
  }
  return *response.value().stats;
}

common::Result<std::string> SocketClient::raw_round_trip(const std::string& line) {
  if (auto st = send_line(line); !st.ok()) return st.error();
  for (;;) {
    auto next = splitter_.next();
    if (!next.ok()) return next.error();
    if (next.value().has_value()) {
      if (next.value()->binary) {
        return common::parse_error("SocketClient: unexpected binary frame");
      }
      // Copy out: the payload views the splitter's buffer and would dangle
      // past the next feed().
      return std::string(next.value()->payload);
    }
    char chunk[4096];
    const auto r = common::net::read_some(fd_, chunk, sizeof chunk, io_timeout_);
    if (r.status == common::net::IoStatus::kTimeout) {
      return common::unavailable("SocketClient: read timed out");
    }
    if (r.status == common::net::IoStatus::kError) {
      errno = r.err;
      return errno_error("SocketClient: read");
    }
    if (r.status == common::net::IoStatus::kEof) {
      return common::io_error("SocketClient: server closed the connection");
    }
    splitter_.feed(std::string_view(chunk, r.bytes));
  }
}

common::Result<WireStats> SocketClient::health() {
  return introspect(RequestKind::kHealth);
}

common::Result<WireStats> SocketClient::stats() {
  return introspect(RequestKind::kStats);
}

common::Result<WireMetrics> SocketClient::metrics() {
  WireRequest request;
  request.id = next_id_++;
  request.kind = RequestKind::kMetrics;
  if (auto st = send_request(request); !st.ok()) return st.error();
  auto response = read_wire(request.id);
  if (!response.ok()) return response.error();
  if (response.value().error.has_value()) return *response.value().error;
  if (!response.value().metrics.has_value()) {
    return common::parse_error("SocketClient: expected a metrics response");
  }
  return std::move(*response.value().metrics);
}

void SocketClient::maybe_trace(WireRequest& request) {
  if (!trace_enabled_) return;
  // An old binary peer (protocol 1) has no trace flag bit and would reject
  // it as a protocol error; JSON peers ignore unknown members, so the JSON
  // path always opts in.
  if (binary_ && protocol_ < 2) return;
  request.trace = request.id;
}

common::Result<core::Predictor::KernelPrediction> SocketClient::round_trip(
    const WireRequest& request) {
  if (auto st = send_request(request); !st.ok()) return st.error();
  return read_response(request.id);
}

}  // namespace repro::serve
