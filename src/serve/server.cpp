#include "serve/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/log.hpp"
#include "common/net.hpp"
#include "common/queue.hpp"
#include "serve/model_cache.hpp"
#include "serve/protocol.hpp"

namespace repro::serve {

namespace {

common::Error errno_error(const std::string& what) {
  return common::io_error(what + ": " + std::strerror(errno));
}

}  // namespace

struct SocketServer::Impl {
  Service* service = nullptr;
  ServerOptions options;
  int listen_fd = -1;
  int bound_tcp_port = -1;
  std::string bound_unix_path;
  std::chrono::steady_clock::time_point started = std::chrono::steady_clock::now();

  /// One per accepted connection. The fd is closed only after the thread is
  /// joined (by the acceptor's reap sweep or by stop()), so a shutdown() on
  /// it can never hit a recycled descriptor.
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  std::thread acceptor;
  std::mutex conn_mutex;
  std::list<std::unique_ptr<Conn>> conns;
  std::atomic<bool> stopping{false};
  std::once_flag stop_once;

  mutable std::mutex stats_mutex;
  Stats stats;
  /// High-water mark of per-connection arena usage across finished
  /// connections — the repro_arena_bytes gauge.
  std::uint64_t peak_arena_bytes = 0;

  // obs instruments, resolved once in start() (after options are known).
  obs::Registry* registry = nullptr;
  obs::Counter* obs_connections = nullptr;
  obs::Counter* obs_protocol_errors = nullptr;
  // Buffer pool behind splitter input and reply output buffers.
  common::BufferPool* pool = nullptr;

  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked();
  [[nodiscard]] WireStats wire_stats();
  [[nodiscard]] WireMetrics wire_metrics();
};

SocketServer::SocketServer() : impl_(std::make_unique<Impl>()) {}

common::Result<std::unique_ptr<SocketServer>> SocketServer::start(
    Service& service, const ServerOptions& options) {
  std::unique_ptr<SocketServer> server(new SocketServer());
  server->impl_->service = &service;
  server->impl_->options = options;
  server->impl_->registry = options.registry != nullptr ? options.registry
                                                        : &obs::Registry::global();
  server->impl_->obs_connections =
      server->impl_->registry->counter("repro_connections_total");
  server->impl_->obs_protocol_errors =
      server->impl_->registry->counter("repro_protocol_errors_total");
  server->impl_->pool = options.buffer_pool != nullptr
                            ? options.buffer_pool
                            : &common::BufferPool::global();

  int fd = -1;
  if (!options.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.unix_path.size() >= sizeof(addr.sun_path)) {
      return common::invalid_argument("SocketServer: unix path too long: " +
                                      options.unix_path);
    }
    std::strncpy(addr.sun_path, options.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return errno_error("SocketServer: socket(AF_UNIX)");
    ::unlink(options.unix_path.c_str());  // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      auto err = errno_error("SocketServer: bind(" + options.unix_path + ")");
      ::close(fd);
      return err;
    }
    server->impl_->bound_unix_path = options.unix_path;
  } else if (options.tcp_port >= 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return errno_error("SocketServer: socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options.tcp_port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      auto err = errno_error("SocketServer: bind(127.0.0.1:" +
                             std::to_string(options.tcp_port) + ")");
      ::close(fd);
      return err;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      auto err = errno_error("SocketServer: getsockname");
      ::close(fd);
      return err;
    }
    server->impl_->bound_tcp_port = static_cast<int>(ntohs(bound.sin_port));
  } else {
    return common::invalid_argument(
        "SocketServer: configure either unix_path or tcp_port");
  }

  if (::listen(fd, 64) != 0) {
    auto err = errno_error("SocketServer: listen");
    ::close(fd);
    return err;
  }
  server->impl_->listen_fd = fd;
  server->impl_->acceptor = std::thread([impl = server->impl_.get()] {
    impl->accept_loop();
  });
  return server;
}

void SocketServer::Impl::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;  // logging below must not clobber it
      if (err == EINTR) continue;
      // stop() closed the listener (EBADF/EINVAL) — or a transient accept
      // failure while stopping; either way only exit when told to.
      if (stopping.load(std::memory_order_acquire)) return;
      if (err == ECONNABORTED || err == EMFILE || err == ENFILE) {
        common::log_warn() << "SocketServer: accept: " << std::strerror(err);
        if (err != ECONNABORTED) {
          // fd exhaustion: nothing in this loop frees descriptors (reaping
          // happens in connection epilogues), so back off instead of
          // busy-spinning and flooding the log until a client disconnects.
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        continue;
      }
      // Unexpected and unhandled — the server stops accepting; say so
      // loudly instead of dying silently while the process looks healthy.
      common::log_error() << "SocketServer: accept failed permanently: "
                          << std::strerror(err) << "; no longer accepting";
      return;
    }
    std::lock_guard lock(conn_mutex);
    if (stopping.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    // Reap exited connections first so a long-lived server does not
    // accumulate one dead (joinable) thread per past connection.
    reap_finished_locked();
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conns.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] {
      serve_connection(raw->fd);
      // Signal EOF to the peer now: the fd itself is closed only by the
      // reap sweep (so stop() can never shutdown() a recycled descriptor),
      // but the sweep runs at the next accept — without this, a pipelining
      // client that half-closes and reads to EOF would hang until then.
      ::shutdown(raw->fd, SHUT_RDWR);
      // Reap siblings before raising our own done flag: entries with done
      // set are past this epilogue and hold no locks, so joining them under
      // conn_mutex cannot deadlock — and an idle server retains at most
      // this one exited connection rather than every one since the last
      // accept.
      {
        std::lock_guard lock(conn_mutex);
        reap_finished_locked();
      }
      raw->done.store(true, std::memory_order_release);
    });
    obs_connections->inc();
    std::lock_guard slock(stats_mutex);
    ++stats.connections;
  }
}

void SocketServer::Impl::reap_finished_locked() {
  for (auto it = conns.begin(); it != conns.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = conns.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::Impl::serve_connection(int fd) {
  // Pipelined request handling: the reader below decodes and submits
  // request N+1 while N's batch is still in flight; this writer drains an
  // in-order reply queue, so responses always come back in request order.
  // The queue bound is the pipelining window — a client that streams
  // requests without reading responses blocks the reader at max_inflight
  // outstanding (backpressure), never the server.
  struct PendingReply {
    std::uint64_t id = 0;
    // The reply mirrors its request's framing.
    bool binary = false;
    // Engaged for submitted requests; preformatted message otherwise
    // (JSON without the trailing newline, binary as a complete frame).
    std::optional<std::future<Service::Response>> response;
    std::string immediate;
    // Shared with the service pipeline; the writer stamps "reply" and
    // serializes the accumulated stages. Null for untraced requests.
    obs::RequestTracePtr trace;
  };
  common::BoundedQueue<PendingReply> replies(std::max<std::size_t>(1, options.max_inflight));
  std::atomic<bool> write_failed{false};
  std::thread writer([&] {
    // One pooled reply buffer for the whole connection: every prediction
    // reply is serialized _into it in place — the steady state writes
    // without touching the heap.
    auto reply_lease = pool->acquire();
    std::string& reply = *reply_lease;
    while (auto pending = replies.pop()) {
      if (write_failed.load(std::memory_order_relaxed)) continue;  // drain only
      reply.clear();
      if (pending->response.has_value()) {
        auto response = pending->response->get();
        // The last worker-side stage: the reply is being written. Snapshot
        // after the stamp so the serialized trace includes it.
        std::optional<obs::Trace> trace;
        if (pending->trace != nullptr) {
          pending->trace->stamp("reply");
          trace = pending->trace->snapshot();
        }
        const obs::Trace* trace_ptr = trace.has_value() ? &*trace : nullptr;
        if (pending->binary) {
          if (response.ok()) {
            binary::format_prediction_frame_into(reply, pending->id,
                                                 response.value(), trace_ptr);
          } else {
            binary::format_error_frame_into(reply, pending->id, response.error(),
                                            trace_ptr);
          }
        } else {
          if (response.ok()) {
            format_response_into(reply, pending->id, response.value(), trace_ptr);
          } else {
            format_error_into(reply, pending->id, response.error(), trace_ptr);
          }
        }
      } else {
        reply += pending->immediate;  // cold path: introspection and errors
      }
      if (!pending->binary) reply.push_back('\n');
      // A write timeout counts as failure too: a client that stopped
      // reading has forfeited its replies — drain and tear down rather
      // than wedge this writer (and every future queued behind it).
      const auto wr = common::net::write_all(fd, reply, options.write_timeout);
      if (wr.status != common::net::IoStatus::kOk) {
        write_failed.store(true, std::memory_order_relaxed);
        // The peer is gone; unblock the reader's read() so the connection
        // tears down promptly instead of at the next request.
        ::shutdown(fd, SHUT_RD);
      }
    }
  });

  auto count_protocol_error = [&] {
    obs_protocol_errors->inc();
    std::lock_guard slock(stats_mutex);
    ++stats.protocol_errors;
  };
  // The wire deadline is relative to the moment the server takes custody of
  // the request (parses its frame). From here on it is an absolute
  // steady_clock point, immune to queueing delays.
  auto deadline_from = [](const std::optional<double>& ms) {
    Service::Deadline deadline;
    if (ms.has_value()) {
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(*ms));
    }
    return deadline;
  };
  // Shared by both framings once a WireRequest is decoded — only the reply
  // encoding differs, so JSON and binary dispatch cannot drift apart.
  auto handle_request = [&](WireRequest wire, bool is_binary) {
    PendingReply pending;
    pending.binary = is_binary;
    pending.id = wire.id;
    {
      std::lock_guard slock(stats_mutex);
      ++stats.requests;
    }
    switch (wire.kind) {
      case RequestKind::kHello: {
        // Per-connection negotiation: the reply is the min of the client's
        // ceiling and ours — or 0 when binary framing is disabled, telling
        // the client to stay on JSON lines.
        const std::uint32_t negotiated =
            options.enable_binary ? std::min(wire.max_protocol, kProtocolVersion)
                                  : 0;
        pending.immediate = is_binary
                                ? binary::format_hello_frame(wire.id, negotiated)
                                : format_hello_response(wire.id, negotiated);
        break;
      }
      case RequestKind::kHealth:
      case RequestKind::kStats: {
        // Introspection is answered right here on the connection thread —
        // a health ping must not queue behind a full admission queue (its
        // whole point is reporting that backlog).
        const auto now_stats = wire_stats();
        if (wire.kind == RequestKind::kHealth) {
          pending.immediate = is_binary
                                  ? binary::format_health_frame(wire.id, now_stats)
                                  : format_health_response(wire.id, now_stats);
        } else {
          pending.immediate = is_binary
                                  ? binary::format_stats_frame(wire.id, now_stats)
                                  : format_stats_response(wire.id, now_stats);
        }
        break;
      }
      case RequestKind::kMetrics: {
        // Same inline contract as health/stats: a registry snapshot never
        // waits behind the admission queue.
        const WireMetrics metrics = wire_metrics();
        pending.immediate = is_binary
                                ? binary::format_metrics_frame(wire.id, metrics)
                                : format_metrics_response(wire.id, metrics);
        break;
      }
      case RequestKind::kPredict:
      case RequestKind::kPredictSource: {
        // Tracing is opt-in per request: only a request that carried a
        // trace id pays for stamps. t0 is the parse moment — every worker
        // stage offset is relative to it.
        if (wire.trace.has_value()) {
          pending.trace = std::make_shared<obs::RequestTrace>(*wire.trace);
          pending.trace->stamp("parse");
        }
        const auto deadline = deadline_from(wire.deadline_ms);
        if (wire.source.has_value()) {
          // predict_source: ship the raw bytes; the worker shard featurizes
          // inside the batch, off this connection thread.
          pending.response =
              service->submit_source(std::move(*wire.source),
                                     std::move(wire.kernel), deadline, pending.trace);
        } else {
          auto features = wire.to_features();
          if (!features.ok()) {
            const obs::Trace* trace_ptr = nullptr;
            std::optional<obs::Trace> trace;
            if (pending.trace != nullptr) {
              trace = pending.trace->snapshot();
              trace_ptr = &*trace;
            }
            pending.immediate =
                is_binary
                    ? binary::format_error_frame(wire.id, features.error(), trace_ptr)
                    : format_error(wire.id, features.error(), trace_ptr);
            pending.trace = nullptr;  // already serialized into `immediate`
          } else {
            pending.response =
                service->submit(std::move(features).take(), deadline, pending.trace);
          }
        }
        break;
      }
    }
    replies.push(std::move(pending));
  };

  // Per-message framing detection; binary frames are refused outright when
  // negotiation is disabled (they parse as malformed JSON lines). The
  // splitter's input buffer is leased from the pool.
  MessageSplitter splitter(options.max_line_bytes, options.enable_binary, pool);
  // Per-connection parse arena: each JSON request document is bump-
  // allocated here and dies at the reset() after its message is handled.
  // Once the arena has seen the connection's biggest request, the steady
  // state parses without heap traffic.
  common::Arena arena;
  // Open chunked predict_source streams by client request id. Each buffers
  // at most the feeder's bounded pending window, never the whole source.
  std::unordered_map<std::uint64_t, Service::SourceStream> streams;
  char chunk[4096];
  bool framing_fault = false;
  for (;;) {
    // Blocking read (timeout 0): an idle connection is legitimate — the
    // balancer keeps persistent backend connections that go quiet between
    // bursts. Routed through net so fault injection covers this path.
    const auto rd = common::net::read_some(fd, chunk, sizeof chunk,
                                           std::chrono::milliseconds(0));
    if (rd.status != common::net::IoStatus::kOk) break;  // EOF, error, shutdown
    splitter.feed(std::string_view(chunk, rd.bytes));

    for (;;) {
      auto next = splitter.next();
      if (!next.ok()) {
        // Unrecoverable framing fault (overlong message, unknown frame
        // type): there is no resync point, so answer once and close. JSON
        // framing for the answer — a peer confused enough to trip this may
        // not speak binary at all.
        PendingReply pending;
        pending.immediate = format_error(0, next.error());
        replies.push(std::move(pending));
        framing_fault = true;
        break;
      }
      if (!next.value().has_value()) break;  // need more bytes
      WireMessage message = std::move(*next.value());

      if (!message.binary) {
        auto request = parse_request(message.payload, &arena);
        if (!request.ok()) {
          count_protocol_error();
          // Echo the id whenever one is recoverable from the malformed
          // line, so clients correlating by id see the real error.
          PendingReply pending;
          pending.id = best_effort_id(message.payload);
          pending.immediate = format_error(pending.id, request.error());
          replies.push(std::move(pending));
        } else {
          handle_request(std::move(request).take(), /*is_binary=*/false);
        }
        // The WireRequest owns copies of everything it keeps; the JSON
        // document it was parsed through is dead — rewind for the next one.
        arena.reset();
        continue;
      }

      switch (message.frame) {
        case binary::FrameType::kRequest: {
          auto request = binary::parse_request(message.payload);
          if (!request.ok()) {
            count_protocol_error();
            PendingReply pending;
            pending.binary = true;
            pending.id = binary::best_effort_id(message.payload);
            pending.immediate =
                binary::format_error_frame(pending.id, request.error());
            replies.push(std::move(pending));
          } else {
            handle_request(std::move(request).take(), /*is_binary=*/true);
          }
          break;
        }
        case binary::FrameType::kSourceBegin: {
          auto begin = binary::parse_source_begin(message.payload);
          if (!begin.ok()) {
            count_protocol_error();
            PendingReply pending;
            pending.binary = true;
            pending.id = binary::best_effort_id(message.payload);
            pending.immediate = binary::format_error_frame(pending.id, begin.error());
            replies.push(std::move(pending));
            break;
          }
          auto& open = begin.value();
          if (streams.find(open.id) != streams.end()) {
            count_protocol_error();
            PendingReply pending;
            pending.binary = true;
            pending.id = open.id;
            pending.immediate = binary::format_error_frame(
                open.id, common::parse_error("binary: duplicate stream id"));
            replies.push(std::move(pending));
            break;
          }
          if (streams.size() >= std::max<std::size_t>(1, options.max_inflight)) {
            // Overload, not a protocol fault: refuse retryably, open nothing.
            PendingReply pending;
            pending.binary = true;
            pending.id = open.id;
            pending.immediate = binary::format_error_frame(
                open.id, common::unavailable("binary: too many open streams"));
            replies.push(std::move(pending));
            break;
          }
          {
            std::lock_guard slock(stats_mutex);
            ++stats.requests;
          }
          streams.emplace(open.id,
                          service->begin_stream(std::move(open.kernel),
                                                deadline_from(open.deadline_ms),
                                                options.max_source_bytes));
          break;
        }
        case binary::FrameType::kSourceChunk: {
          // Chunks are never answered — feed errors are sticky inside the
          // stream and surface from the End reply, so mid-stream faults
          // cannot desynchronize the in-order reply queue.
          auto source_chunk = binary::parse_source_chunk(message.payload);
          if (!source_chunk.ok()) {
            count_protocol_error();
            break;
          }
          auto it = streams.find(source_chunk.value().id);
          if (it == streams.end()) {
            count_protocol_error();  // chunk for a stream that was never opened
            break;
          }
          (void)it->second.feed(source_chunk.value().data);
          break;
        }
        case binary::FrameType::kSourceEnd: {
          auto end = binary::parse_source_end(message.payload);
          if (!end.ok()) {
            count_protocol_error();
            break;
          }
          auto it = streams.find(end.value());
          if (it == streams.end()) {
            count_protocol_error();  // end without a begin
            break;
          }
          // The stream settles here; its reply takes its slot in request
          // order at End (a stream's featurization already happened
          // incrementally, chunk by chunk).
          PendingReply pending;
          pending.binary = true;
          pending.id = end.value();
          pending.response = it->second.finish();
          streams.erase(it);
          replies.push(std::move(pending));
          break;
        }
        case binary::FrameType::kSourceAbort: {
          // A half-streamed request the client gave up on: drop it, answer
          // nothing (the client is not waiting).
          auto abort = binary::parse_source_abort(message.payload);
          if (!abort.ok() || streams.erase(abort.value()) == 0) {
            count_protocol_error();
          }
          break;
        }
        case binary::FrameType::kResponse: {
          count_protocol_error();
          PendingReply pending;
          pending.binary = true;
          pending.id = binary::best_effort_id(message.payload);
          pending.immediate = binary::format_error_frame(
              pending.id,
              common::parse_error("binary: unexpected response frame"));
          replies.push(std::move(pending));
          break;
        }
      }
    }
    if (framing_fault) break;
  }
  // In-flight requests are still answered: close() lets the writer drain
  // everything already queued before it exits. Open streams die with the
  // connection — their requests were never admitted, so nothing leaks.
  replies.close();
  writer.join();
  {
    std::lock_guard slock(stats_mutex);
    if (framing_fault) ++stats.protocol_errors;
    stats.peak_message_bytes = std::max<std::uint64_t>(
        stats.peak_message_bytes, splitter.peak_buffered_bytes());
    peak_arena_bytes =
        std::max<std::uint64_t>(peak_arena_bytes, arena.peak_used_bytes());
  }
}

WireStats SocketServer::Impl::wire_stats() {
  WireStats wire;
  wire.uptime_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                started)
                      .count();
  wire.queue_depth = service->queue_depth();
  const auto service_stats = service->stats();
  wire.requests = service_stats.requests;
  wire.source_requests = service_stats.source_requests;
  wire.batches = service_stats.batches;
  wire.shed = service_stats.shed;
  wire.deadline_exceeded = service_stats.deadline_exceeded;
  wire.streamed = service_stats.streamed;
  {
    std::lock_guard lock(stats_mutex);
    wire.connections = stats.connections;
    wire.protocol_errors = stats.protocol_errors;
    wire.peak_message_bytes = stats.peak_message_bytes;
  }
  if (options.model_cache != nullptr) {
    const auto cache_stats = options.model_cache->stats();
    wire.cache_hits = cache_stats.hits + cache_stats.disk_hits;
    wire.cache_misses = cache_stats.misses;
  }
  return wire;
}

WireMetrics SocketServer::Impl::wire_metrics() {
  // Point-in-time gauges are set at scrape time (never from a hot path, so
  // there is no dangling-callback hazard when the server outlives a scrape).
  registry->gauge("repro_uptime_seconds")
      ->set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count());
  registry->gauge("repro_queue_depth")
      ->set(static_cast<double>(service->queue_depth()));
  if (options.model_cache != nullptr) {
    const auto cache_stats = options.model_cache->stats();
    registry->gauge("repro_cache_hits")
        ->set(static_cast<double>(cache_stats.hits + cache_stats.disk_hits));
    registry->gauge("repro_cache_misses")
        ->set(static_cast<double>(cache_stats.misses));
  }
  {
    std::lock_guard lock(stats_mutex);
    registry->gauge("repro_arena_bytes")
        ->set(static_cast<double>(peak_arena_bytes));
  }
  registry->gauge("repro_pool_reuse_total")
      ->set(static_cast<double>(pool->stats().reuses));
  WireMetrics metrics;
  metrics.values = registry->snapshot_values();
  metrics.text = registry->prometheus_text();
  return metrics;
}

SocketServer::~SocketServer() {
  if (impl_ != nullptr) stop();
}

void SocketServer::stop() {
  std::call_once(impl_->stop_once, [this] {
    impl_->stopping.store(true, std::memory_order_release);
    if (impl_->listen_fd >= 0) {
      // shutdown() unblocks a blocked accept(); the close comes after the
      // acceptor is joined so the descriptor number cannot be recycled
      // while the accept loop might still touch it.
      ::shutdown(impl_->listen_fd, SHUT_RDWR);
    }
    if (impl_->acceptor.joinable()) impl_->acceptor.join();
    if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);

    // The acceptor is gone, so this thread now owns the connection list.
    // Every fd in it is still open (fds are closed only at join time):
    // shutdown() unblocks each connection's read(), then join and close.
    std::list<std::unique_ptr<Impl::Conn>> conns;
    {
      std::lock_guard lock(impl_->conn_mutex);
      conns.swap(impl_->conns);
    }
    for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
    for (auto& conn : conns) {
      if (conn->thread.joinable()) conn->thread.join();
      ::close(conn->fd);
    }
    if (!impl_->bound_unix_path.empty()) {
      ::unlink(impl_->bound_unix_path.c_str());
    }
  });
}

int SocketServer::tcp_port() const noexcept { return impl_->bound_tcp_port; }

const std::string& SocketServer::unix_path() const noexcept {
  return impl_->bound_unix_path;
}

SocketServer::Stats SocketServer::stats() const {
  std::lock_guard lock(impl_->stats_mutex);
  return impl_->stats;
}

}  // namespace repro::serve
