// LRU cache of trained FrequencyModels, shared by the serving shards.
//
// A model is identified by everything that determines its trained weights:
// the device, the two regressor registry keys, and the training options
// (configuration budget, mem-L exclusion). Cache hits return a
// shared_ptr<const FrequencyModel> — shards hold the handle for as long as
// they serve with it, so eviction never invalidates in-flight predictions.
//
// When constructed with a directory the cache is write-through: trained
// models are persisted with FrequencyModel::save (the same serialization
// behind Predictor::Builder::cache), and a miss first tries the disk copy.
// A corrupt, truncated, or key-mismatched file is never fatal — loading
// returns a common::Result error internally and the cache falls back to
// retraining, overwriting the bad file.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "common/status.hpp"
#include "core/model.hpp"

namespace repro::serve {

/// Everything that determines a trained model's weights (hyperparameters
/// excluded, matching the contract of Predictor::Builder::cache): device,
/// regressor families, training options, and a fingerprint of the training
/// suite — two services training on different suites must never share a
/// cache entry.
struct ModelKey {
  std::string device;             // FrequencyDomain::device_name()
  std::string speedup_regressor = "svr-linear";
  std::string energy_regressor = "svr-rbf";
  std::size_t num_configs = 40;
  bool exclude_mem_L = false;
  /// fingerprint() of the suite; kDefaultSuite = the generated 106-benchmark
  /// suite (deterministic, so the name alone identifies it).
  std::string suite = std::string(kDefaultSuite);

  static constexpr std::string_view kDefaultSuite = "default106";

  friend bool operator==(const ModelKey&, const ModelKey&) = default;

  /// Canonical "device|speedup|energy|configs|excl|suite" form (logs, map key).
  [[nodiscard]] std::string to_string() const;
  /// Filesystem-safe stem for the on-disk copy, stable across runs.
  [[nodiscard]] std::string file_stem() const;

  /// Stable fingerprint ("n<count>-<hash>") of a custom training suite, over
  /// the benchmark names AND their static feature counts — a benchmark edited
  /// in body but not renamed still changes the key.
  [[nodiscard]] static std::string fingerprint(
      std::span<const benchgen::MicroBenchmark> suite);

  [[nodiscard]] static ModelKey from_options(
      const std::string& device_name, const core::TrainingOptions& options,
      std::string suite_fingerprint = std::string(kDefaultSuite));
};

/// Crash-atomic model persistence: serialize, write to a process-unique
/// temp file in the same directory, fsync, rename over `path`. The file
/// starts with a "gpufreq_checksum <16-hex fnv1a>" header over the payload,
/// so a torn or bit-flipped file is detected as parse_error (and the cache
/// degrades to retraining) instead of being parsed as a plausible model.
/// Readers anywhere in the fleet only ever observe the old file, the new
/// file, or no file — never a partial write.
[[nodiscard]] common::Status save_model_atomic(const core::FrequencyModel& model,
                                               const std::string& path);

/// Load a model persisted by save_model_atomic, verifying the checksum.
/// Headerless files (written by plain FrequencyModel::save before the
/// checksum existed) still load — old caches stay usable.
[[nodiscard]] common::Result<core::FrequencyModel> load_cached_model(
    const std::string& path);

class ModelCache {
 public:
  using Trainer = std::function<common::Result<core::FrequencyModel>()>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;        // miss = trained (disk load counts as hit_disk)
    std::uint64_t disk_hits = 0;
    std::uint64_t disk_errors = 0;   // corrupt / mismatched files survived
    std::uint64_t evictions = 0;
  };

  /// Keep at most `capacity` models in memory (>= 1). With a non-empty
  /// `disk_dir`, persist trained models there and try it first on a miss.
  explicit ModelCache(std::size_t capacity, std::string disk_dir = {});

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  /// Return the cached model for `key`, loading it from disk or training it
  /// (via `trainer`) on a miss. Serialized so concurrent callers of the
  /// same key train once; held shared_ptrs outlive eviction.
  [[nodiscard]] common::Result<std::shared_ptr<const core::FrequencyModel>> get_or_train(
      const ModelKey& key, const Trainer& trainer);

  /// The cached model when present (no disk probe, no training).
  [[nodiscard]] std::shared_ptr<const core::FrequencyModel> peek(const ModelKey& key);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Where the write-through copy of `key` lives (or would live); empty
  /// when the cache is memory-only. The fleet broker hands this path to
  /// workers so they load the broker-trained model instead of retraining.
  [[nodiscard]] std::string disk_path(const ModelKey& key) const {
    return disk_dir_.empty() ? std::string() : path_for(key);
  }
  [[nodiscard]] Stats stats() const;
  /// Keys currently resident, most recently used first (tests).
  [[nodiscard]] std::vector<std::string> resident_keys() const;

 private:
  struct Entry {
    std::shared_ptr<const core::FrequencyModel> model;
    std::list<std::string>::iterator lru_pos;  // into lru_, most recent at front
  };

  [[nodiscard]] std::string path_for(const ModelKey& key) const;
  void insert_locked(const std::string& canonical,
                     std::shared_ptr<const core::FrequencyModel> model);

  const std::size_t capacity_;
  const std::string disk_dir_;
  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // canonical keys, most recent first
  std::unordered_map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace repro::serve
