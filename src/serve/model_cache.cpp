#include "serve/model_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace repro::serve {

namespace {

/// common::fnv1a as a fixed-width hex token (stable across runs and
/// platforms, unlike std::hash).
std::string hash_token(const std::string& s) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(common::fnv1a(s)));
  return hex;
}

constexpr std::string_view kChecksumTag = "gpufreq_checksum ";

}  // namespace

common::Status save_model_atomic(const core::FrequencyModel& model,
                                 const std::string& path) {
  const std::string payload = model.serialize();
  std::string content;
  content.reserve(payload.size() + 32);
  content.append(kChecksumTag);
  content += hash_token(payload);
  content.push_back('\n');
  content += payload;

  // The temp name is unique per process: the broker and cold workers can
  // race on the same key, and each must scribble in its own file. The
  // content is deterministic for a given key, so whichever rename lands
  // last is byte-identical anyway.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return common::io_error("save_model_atomic: open(" + tmp +
                            "): " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return common::io_error("save_model_atomic: write(" + tmp +
                              "): " + std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: rename is atomic in the namespace, but without the
  // fsync a power loss could surface the *new* name with *old* (empty)
  // contents on some filesystems.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return common::io_error("save_model_atomic: fsync(" + tmp +
                            "): " + std::strerror(err));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return common::io_error(std::string("save_model_atomic: close: ") +
                            std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return common::io_error("save_model_atomic: rename(" + tmp + " -> " + path +
                            "): " + std::strerror(err));
  }
  return common::Status::Ok();
}

common::Result<core::FrequencyModel> load_cached_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::io_error("load_cached_model: cannot open " + path);
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  std::string content = raw.str();

  if (content.compare(0, kChecksumTag.size(), kChecksumTag) == 0) {
    const auto nl = content.find('\n');
    if (nl == std::string::npos) {
      return common::parse_error("load_cached_model: truncated header in " + path);
    }
    const std::string stored = content.substr(kChecksumTag.size(),
                                              nl - kChecksumTag.size());
    content.erase(0, nl + 1);
    if (stored != hash_token(content)) {
      return common::parse_error("load_cached_model: checksum mismatch in " +
                                 path + " (torn or corrupted file)");
    }
  }
  // No header: a legacy FrequencyModel::save file — parse as-is, its own
  // format validation is the only protection it ever had.
  return core::FrequencyModel::deserialize(content);
}

std::string ModelKey::to_string() const {
  return device + "|" + speedup_regressor + "|" + energy_regressor + "|" +
         std::to_string(num_configs) + "|" + (exclude_mem_L ? "noL" : "L") + "|" +
         suite;
}

std::string ModelKey::fingerprint(std::span<const benchgen::MicroBenchmark> suite) {
  // Hash names *and* static feature counts: a benchmark edited in body but
  // not renamed must still change the key, or the disk cache would serve a
  // model trained on different data. Counts are framed as shortest
  // round-trip text (std::to_chars — exact, endian- and locale-independent).
  std::string blob;
  blob.reserve(suite.size() * 192);
  char buf[32];
  for (const auto& mb : suite) {
    blob += mb.name;
    blob.push_back('\n');  // separator so {"ab"} and {"a","b"} differ
    for (double c : mb.features.counts) {
      const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, c);
      (void)ec;  // 32 bytes always suffice
      blob.append(buf, end);
      blob.push_back(',');
    }
    blob.push_back('\n');
  }
  return "n" + std::to_string(suite.size()) + "-" + hash_token(blob);
}

std::string ModelKey::file_stem() const {
  const std::string canonical = to_string();
  std::string stem;
  stem.reserve(canonical.size() + 20);
  for (char c : canonical) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    stem.push_back(safe ? c : '_');
  }
  // Sanitization can collide ("a|b" vs "a_b"); the canonical hash cannot.
  return stem + "-" + hash_token(canonical);
}

ModelKey ModelKey::from_options(const std::string& device_name,
                                const core::TrainingOptions& options,
                                std::string suite_fingerprint) {
  return ModelKey{device_name,          options.models.speedup_regressor,
                  options.models.energy_regressor, options.num_configs,
                  options.exclude_mem_L_from_training,
                  std::move(suite_fingerprint)};
}

ModelCache::ModelCache(std::size_t capacity, std::string disk_dir)
    : capacity_(capacity == 0 ? 1 : capacity), disk_dir_(std::move(disk_dir)) {}

std::string ModelCache::path_for(const ModelKey& key) const {
  return disk_dir_ + "/" + key.file_stem() + ".model";
}

void ModelCache::insert_locked(const std::string& canonical,
                               std::shared_ptr<const core::FrequencyModel> model) {
  lru_.push_front(canonical);
  entries_[canonical] = Entry{std::move(model), lru_.begin()};
  while (entries_.size() > capacity_) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

common::Result<std::shared_ptr<const core::FrequencyModel>> ModelCache::get_or_train(
    const ModelKey& key, const Trainer& trainer) {
  const std::string canonical = key.to_string();
  // One mutex over probe + load + train: concurrent requests for the same
  // key train exactly once (the second caller finds the entry). Shard
  // startup is the only caller on this path, so the serialization is not a
  // serving bottleneck.
  std::lock_guard lock(mutex_);
  if (const auto it = entries_.find(canonical); it != entries_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.model;
  }

  // Disk probe. Any failure — unreadable, corrupt, version-mismatched, or
  // trained for a different key — degrades to retraining, never propagates.
  if (!disk_dir_.empty()) {
    const std::string path = path_for(key);
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      auto loaded = load_cached_model(path);
      const bool matches = loaded.ok() &&
                           loaded.value().domain().device_name() == key.device &&
                           loaded.value().speedup_regressor() == key.speedup_regressor &&
                           loaded.value().energy_regressor() == key.energy_regressor;
      if (matches) {
        ++stats_.disk_hits;
        auto model =
            std::make_shared<const core::FrequencyModel>(std::move(loaded).take());
        insert_locked(canonical, model);
        return model;
      }
      ++stats_.disk_errors;
      common::log_warn() << "ModelCache: unusable cache file " << path << " ("
                         << (loaded.ok() ? std::string("trained for a different setup")
                                         : loaded.error().message)
                         << "), retraining";
    }
  }

  ++stats_.misses;
  auto trained = trainer();
  if (!trained.ok()) return trained.error();
  auto model = std::make_shared<const core::FrequencyModel>(std::move(trained).take());
  if (!disk_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(disk_dir_, ec);
    if (auto st = save_model_atomic(*model, path_for(key)); !st.ok()) {
      common::log_warn() << "ModelCache: could not persist model: "
                         << st.error().message;
    }
  }
  insert_locked(canonical, model);
  return model;
}

std::shared_ptr<const core::FrequencyModel> ModelCache::peek(const ModelKey& key) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(key.to_string());
  return it == entries_.end() ? nullptr : it->second.model;
}

std::size_t ModelCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

ModelCache::Stats ModelCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<std::string> ModelCache::resident_keys() const {
  std::lock_guard lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

}  // namespace repro::serve
