// A small blocking client for the repro_serve wire protocol: connect to a
// Unix or TCP endpoint, send one line-delimited JSON request per call, read
// one response line. Not thread-safe — use one client per thread (the
// server batches across connections).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "clfront/features.hpp"
#include "common/status.hpp"
#include "core/predictor.hpp"

namespace repro::serve {

class SocketClient {
 public:
  [[nodiscard]] static common::Result<SocketClient> connect_unix(const std::string& path);
  [[nodiscard]] static common::Result<SocketClient> connect_tcp(int port);

  SocketClient(SocketClient&& other) noexcept;
  SocketClient& operator=(SocketClient&& other) noexcept;
  ~SocketClient();

  /// Predict from raw static feature counts.
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict(
      const std::string& kernel,
      const std::array<double, clfront::kNumFeatures>& counts);
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict(
      const clfront::StaticFeatures& features);

  /// Predict from OpenCL-C source (features are extracted server-side).
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict_source(
      const std::string& opencl_source, const std::string& kernel_name = {});

 private:
  explicit SocketClient(int fd) : fd_(fd) {}
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> round_trip(
      const std::string& request_line, std::uint64_t expect_id);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string buffer_;  // bytes read past the last response line
};

}  // namespace repro::serve
