// A small blocking client for the repro_serve wire protocol: connect to a
// Unix or TCP endpoint, send line-delimited JSON requests (or, after
// negotiate_binary(), length-prefixed binary frames), read responses. predict/predict_source are strict request→response round trips;
// predict_source_many pipelines — all requests are written back-to-back and
// the responses (which the server returns in request order) are read
// afterwards, filling the server's micro-batching window from one
// connection. Not thread-safe — use one client per thread.
//
// connect_unix/connect_tcp take a ConnectOptions with bounded exponential
// backoff: a fleet spawns its workers and connects to them concurrently, so
// the first connect routinely races a worker that has not called listen()
// yet — retry-with-backoff turns that startup race into a short wait
// instead of an error.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "clfront/features.hpp"
#include "common/status.hpp"
#include "core/predictor.hpp"
#include "serve/protocol.hpp"

namespace repro::serve {

/// Retry policy for the connect call itself (never for requests). The delay
/// starts at initial_backoff and doubles per failed attempt, capped at
/// max_backoff; attempts <= 1 preserves the old fail-fast behaviour. Only
/// "server not up yet" errors are retried (ECONNREFUSED, ENOENT on a unix
/// path, and friends) — a path that is too long fails immediately.
struct ConnectOptions {
  int attempts = 1;
  std::chrono::milliseconds initial_backoff{25};
  std::chrono::milliseconds max_backoff{1000};
  /// Per-operation socket timeout for every read and write on the connected
  /// client (progress-based, enforced with poll). A stalled or wedged server
  /// yields a retryable kUnavailable instead of hanging the caller forever.
  /// Zero or negative = block indefinitely (opt-in only; the broker fetch
  /// path raises it instead, because "the model is still training" can
  /// legitimately take minutes).
  std::chrono::milliseconds io_timeout{30000};
};

class SocketClient {
 public:
  [[nodiscard]] static common::Result<SocketClient> connect_unix(
      const std::string& path, const ConnectOptions& options = {});
  [[nodiscard]] static common::Result<SocketClient> connect_tcp(
      int port, const ConnectOptions& options = {});

  SocketClient(SocketClient&& other) noexcept;
  SocketClient& operator=(SocketClient&& other) noexcept;
  ~SocketClient();

  /// Predict from raw static feature counts.
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict(
      const std::string& kernel,
      const std::array<double, clfront::kNumFeatures>& counts);
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict(
      const clfront::StaticFeatures& features);

  /// Predict from OpenCL-C source (features are extracted server-side, on
  /// the worker shards).
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict_source(
      const std::string& opencl_source, const std::string& kernel_name = {});

  /// Pipelined predict_source over many sources: write every request line,
  /// then read the in-order responses. One Result per input, same order.
  [[nodiscard]] std::vector<common::Result<core::Predictor::KernelPrediction>>
  predict_source_many(const std::vector<core::Predictor::SourceRequest>& sources);

  /// Pulls the next source chunk; nullopt ends the stream (an engaged empty
  /// string is a legal chunk that sends nothing).
  using ChunkProvider = std::function<std::optional<std::string>()>;

  /// Streamed predict_source: chunks are framed and written as they are
  /// pulled from the provider, so neither side ever holds the whole source —
  /// the way to serve a file larger than the server's max_line_bytes. Needs
  /// a negotiated binary connection; on a JSON connection the chunks are
  /// concatenated into one ordinary predict_source request (correct, but
  /// subject to the server's line bound). The reply is bit-identical to
  /// predict_source on the concatenated bytes at any chunk split.
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction>
  predict_source_stream(const ChunkProvider& next_chunk,
                        const std::string& kernel_name = {});

  /// Offer the server binary framing (one "hello" round trip). Returns the
  /// negotiated protocol version: >= 1 switches this client's subsequent
  /// requests to binary frames, 0 means the peer is JSON-only (any error
  /// reply — an old server's "unknown request type", a shedding backend's
  /// "unavailable" — is treated as 0, not a failure) and the connection
  /// stays on JSON lines either way — no desync.
  [[nodiscard]] common::Result<std::uint32_t> negotiate_binary();

  /// True once negotiate_binary() settled on protocol >= 1.
  [[nodiscard]] bool binary() const noexcept { return binary_; }

  /// The version negotiate_binary() settled on (0 until negotiated, or when
  /// the peer is JSON-only). Wire features gated on a version — the binary
  /// trace flag needs >= 2 — check this, not binary().
  [[nodiscard]] std::uint32_t protocol() const noexcept { return protocol_; }

  /// Default latency budget stamped on every subsequent prediction request
  /// (wire "deadline_ms"). The server answers deadline_exceeded instead of
  /// predicting once the budget runs out. nullopt (the default) sends no
  /// deadline.
  void set_deadline_ms(std::optional<double> deadline_ms) noexcept {
    deadline_ms_ = deadline_ms;
  }

  /// Ask the server for per-stage timing on every subsequent prediction
  /// request (wire "trace"; the trace id is the request id, so one id
  /// follows the request end to end). On a binary connection the trace flag
  /// needs negotiated protocol >= 2 — against an older peer the request is
  /// simply sent untraced rather than rejected. The reply's stage table
  /// lands in last_trace().
  void set_trace_enabled(bool enabled) noexcept { trace_enabled_ = enabled; }

  /// The trace carried by the most recently parsed response, if any (error
  /// replies carry traces too). Overwritten — or cleared — by every
  /// successful read.
  [[nodiscard]] const std::optional<obs::Trace>& last_trace() const noexcept {
    return last_trace_;
  }

  /// Liveness probe: uptime_s and queue_depth only (the cheap form the
  /// balancer pings workers with).
  [[nodiscard]] common::Result<WireStats> health();
  /// The server's full counter dump.
  [[nodiscard]] common::Result<WireStats> stats();
  /// The server's metrics-registry exposition: Prometheus-style text plus
  /// the flat name→value map (a balancer answers with its own counters
  /// merged with every backend's).
  [[nodiscard]] common::Result<WireMetrics> metrics();

  /// Send one raw line (no trailing newline) and read one raw reply line —
  /// for side protocols that share the line framing but not the message
  /// schema (the fleet's model-cache broker).
  [[nodiscard]] common::Result<std::string> raw_round_trip(const std::string& line);

  /// Relinquish ownership of the connected descriptor and disconnect this
  /// client. The fleet balancer pools backend connections this way: connect
  /// with the shared backoff logic here, then run its own reader on the fd.
  [[nodiscard]] int release_fd() noexcept {
    splitter_ = MessageSplitter(kMaxMessageBytes);
    binary_ = false;
    protocol_ = 0;
    last_trace_.reset();
    return std::exchange(fd_, -1);
  }

 private:
  /// Reply-side buffering bound — far above any real reply, it only guards
  /// against a garbage peer whose bytes never frame a message.
  static constexpr std::size_t kMaxMessageBytes = 64u << 20;

  SocketClient(int fd, std::chrono::milliseconds io_timeout)
      : fd_(fd), io_timeout_(io_timeout) {}
  [[nodiscard]] common::Status send_raw(std::string_view bytes);
  [[nodiscard]] common::Status send_line(std::string_view line);
  /// Format per the negotiated framing and send.
  [[nodiscard]] common::Status send_request(const WireRequest& request);
  [[nodiscard]] common::Result<WireResponse> read_wire(std::uint64_t expect_id);
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> read_response(
      std::uint64_t expect_id);
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> round_trip(
      const WireRequest& request);
  [[nodiscard]] common::Result<WireStats> introspect(RequestKind kind);
  /// Stamp the trace opt-in on a prediction request when enabled and the
  /// negotiated framing can carry it.
  void maybe_trace(WireRequest& request);

  int fd_ = -1;
  std::chrono::milliseconds io_timeout_{30000};
  std::optional<double> deadline_ms_;
  std::uint64_t next_id_ = 1;
  bool binary_ = false;  // negotiated framing for requests this client sends
  std::uint32_t protocol_ = 0;  // negotiated version; 0 = unnegotiated/JSON-only
  bool trace_enabled_ = false;
  std::optional<obs::Trace> last_trace_;
  MessageSplitter splitter_{kMaxMessageBytes};  // reply reassembly, both framings
  /// Reused across requests: every outgoing message (both framings) is
  /// encoded _into this buffer, so a pipelined predict_source_many burst
  /// encodes N requests with zero steady-state allocations.
  std::string send_buf_;
  /// Scratch request reused by predict_source_many — kernel/source strings
  /// keep their capacity across the pipeline instead of reallocating per
  /// request.
  WireRequest scratch_request_;
};

}  // namespace repro::serve
