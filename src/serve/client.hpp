// A small blocking client for the repro_serve wire protocol: connect to a
// Unix or TCP endpoint, send line-delimited JSON requests, read response
// lines. predict/predict_source are strict request→response round trips;
// predict_source_many pipelines — all requests are written back-to-back and
// the responses (which the server returns in request order) are read
// afterwards, filling the server's micro-batching window from one
// connection. Not thread-safe — use one client per thread.
//
// connect_unix/connect_tcp take a ConnectOptions with bounded exponential
// backoff: a fleet spawns its workers and connects to them concurrently, so
// the first connect routinely races a worker that has not called listen()
// yet — retry-with-backoff turns that startup race into a short wait
// instead of an error.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "clfront/features.hpp"
#include "common/status.hpp"
#include "core/predictor.hpp"
#include "serve/protocol.hpp"

namespace repro::serve {

/// Retry policy for the connect call itself (never for requests). The delay
/// starts at initial_backoff and doubles per failed attempt, capped at
/// max_backoff; attempts <= 1 preserves the old fail-fast behaviour. Only
/// "server not up yet" errors are retried (ECONNREFUSED, ENOENT on a unix
/// path, and friends) — a path that is too long fails immediately.
struct ConnectOptions {
  int attempts = 1;
  std::chrono::milliseconds initial_backoff{25};
  std::chrono::milliseconds max_backoff{1000};
};

class SocketClient {
 public:
  [[nodiscard]] static common::Result<SocketClient> connect_unix(
      const std::string& path, const ConnectOptions& options = {});
  [[nodiscard]] static common::Result<SocketClient> connect_tcp(
      int port, const ConnectOptions& options = {});

  SocketClient(SocketClient&& other) noexcept;
  SocketClient& operator=(SocketClient&& other) noexcept;
  ~SocketClient();

  /// Predict from raw static feature counts.
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict(
      const std::string& kernel,
      const std::array<double, clfront::kNumFeatures>& counts);
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict(
      const clfront::StaticFeatures& features);

  /// Predict from OpenCL-C source (features are extracted server-side, on
  /// the worker shards).
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict_source(
      const std::string& opencl_source, const std::string& kernel_name = {});

  /// Pipelined predict_source over many sources: write every request line,
  /// then read the in-order responses. One Result per input, same order.
  [[nodiscard]] std::vector<common::Result<core::Predictor::KernelPrediction>>
  predict_source_many(const std::vector<core::Predictor::SourceRequest>& sources);

  /// Liveness probe: uptime_s and queue_depth only (the cheap form the
  /// balancer pings workers with).
  [[nodiscard]] common::Result<WireStats> health();
  /// The server's full counter dump.
  [[nodiscard]] common::Result<WireStats> stats();

  /// Send one raw line (no trailing newline) and read one raw reply line —
  /// for side protocols that share the line framing but not the message
  /// schema (the fleet's model-cache broker).
  [[nodiscard]] common::Result<std::string> raw_round_trip(const std::string& line);

  /// Relinquish ownership of the connected descriptor and disconnect this
  /// client. The fleet balancer pools backend connections this way: connect
  /// with the shared backoff logic here, then run its own reader on the fd.
  [[nodiscard]] int release_fd() noexcept {
    buffer_.clear();
    return std::exchange(fd_, -1);
  }

 private:
  explicit SocketClient(int fd) : fd_(fd) {}
  [[nodiscard]] common::Status send_line(std::string line);
  [[nodiscard]] common::Result<WireResponse> read_wire(std::uint64_t expect_id);
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> read_response(
      std::uint64_t expect_id);
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> round_trip(
      const std::string& request_line, std::uint64_t expect_id);
  [[nodiscard]] common::Result<WireStats> introspect(RequestKind kind);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string buffer_;  // bytes read past the last response line
};

}  // namespace repro::serve
