// A small blocking client for the repro_serve wire protocol: connect to a
// Unix or TCP endpoint, send line-delimited JSON requests, read response
// lines. predict/predict_source are strict request→response round trips;
// predict_source_many pipelines — all requests are written back-to-back and
// the responses (which the server returns in request order) are read
// afterwards, filling the server's micro-batching window from one
// connection. Not thread-safe — use one client per thread.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clfront/features.hpp"
#include "common/status.hpp"
#include "core/predictor.hpp"

namespace repro::serve {

class SocketClient {
 public:
  [[nodiscard]] static common::Result<SocketClient> connect_unix(const std::string& path);
  [[nodiscard]] static common::Result<SocketClient> connect_tcp(int port);

  SocketClient(SocketClient&& other) noexcept;
  SocketClient& operator=(SocketClient&& other) noexcept;
  ~SocketClient();

  /// Predict from raw static feature counts.
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict(
      const std::string& kernel,
      const std::array<double, clfront::kNumFeatures>& counts);
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict(
      const clfront::StaticFeatures& features);

  /// Predict from OpenCL-C source (features are extracted server-side, on
  /// the worker shards).
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> predict_source(
      const std::string& opencl_source, const std::string& kernel_name = {});

  /// Pipelined predict_source over many sources: write every request line,
  /// then read the in-order responses. One Result per input, same order.
  [[nodiscard]] std::vector<common::Result<core::Predictor::KernelPrediction>>
  predict_source_many(const std::vector<core::Predictor::SourceRequest>& sources);

 private:
  explicit SocketClient(int fd) : fd_(fd) {}
  [[nodiscard]] common::Status send_line(std::string line);
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> read_response(
      std::uint64_t expect_id);
  [[nodiscard]] common::Result<core::Predictor::KernelPrediction> round_trip(
      const std::string& request_line, std::uint64_t expect_id);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string buffer_;  // bytes read past the last response line
};

}  // namespace repro::serve
