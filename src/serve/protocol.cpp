#include "serve/protocol.hpp"

#include <bit>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <system_error>
#include <utility>

namespace repro::serve {

// --- JSON parsing -------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 32;

/// Classifies a from_chars result_out_of_range token: true when the value is
/// too small for binary64 (rounds to zero) rather than too large (saturates
/// to infinity). Decided textually from the decimal order of magnitude of the
/// first significant digit, since from_chars leaves `value` unmodified.
bool token_underflows(std::string_view token) {
  if (!token.empty() && (token.front() == '-' || token.front() == '+')) {
    token.remove_prefix(1);
  }
  long exp10 = 0;
  const std::size_t epos = token.find_first_of("eE");
  const std::string_view mantissa = token.substr(0, epos);
  if (epos != std::string_view::npos) {
    std::string_view exp_text = token.substr(epos + 1);
    // Integer from_chars rejects a leading '+' that the double parse accepts.
    if (!exp_text.empty() && exp_text.front() == '+') exp_text.remove_prefix(1);
    const auto [end, ec] =
        std::from_chars(exp_text.data(), exp_text.data() + exp_text.size(), exp10);
    (void)end;
    if (ec == std::errc::result_out_of_range) {
      // Exponent itself exceeds long: its sign alone decides.
      return !exp_text.empty() && exp_text.front() == '-';
    }
  }
  const std::size_t dot = mantissa.find('.');
  const std::size_t first = mantissa.find_first_not_of("0.");
  if (first == std::string_view::npos) return true;  // all zeros: not out of range
  // Order of magnitude of the leading significant digit relative to the point.
  long order = 0;
  if (dot == std::string_view::npos || first < dot) {
    const std::size_t int_end = dot == std::string_view::npos ? mantissa.size() : dot;
    order = static_cast<long>(int_end - first) - 1;
  } else {
    order = -static_cast<long>(first - dot);
  }
  // Clamp before the sum: |order| is bounded by the token length, but exp10
  // may sit near LONG_MAX/LONG_MIN and the addition must not overflow.
  if (exp10 > 1000000) return false;
  if (exp10 < -1000000) return true;
  return exp10 + order < 0;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text, common::Arena* arena)
      : text_(text), alloc_(arena) {}

  common::Result<JsonValue> parse() {
    auto value = parse_value(0);
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return value;
  }

 private:
  common::Error fail(const std::string& what) const {
    return common::parse_error("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  common::Result<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return s.error();
        return JsonValue(std::move(s).take());
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return JsonValue(true);
        }
        return fail("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return JsonValue(false);
        }
        return fail("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return JsonValue(nullptr);
        }
        return fail("bad literal");
      default: return parse_number();
    }
  }

  common::Result<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    JsonValue::Object members{JsonValue::Object::allocator_type(alloc_)};
    skip_ws();
    if (consume('}')) return JsonValue(std::move(members));
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected member key");
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key");
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      members.emplace_back(std::move(key).take(), std::move(value).take());
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue(std::move(members));
      return fail("expected ',' or '}' in object");
    }
  }

  common::Result<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    JsonValue::Array items{JsonValue::Array::allocator_type(alloc_)};
    skip_ws();
    if (consume(']')) return JsonValue(std::move(items));
    for (;;) {
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      items.push_back(std::move(value).take());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue(std::move(items));
      return fail("expected ',' or ']' in array");
    }
  }

  common::Result<JsonValue::String> parse_string() {
    ++pos_;  // opening quote
    JsonValue::String out{alloc_};
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          pos_ += 4;
          // Encode the BMP code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences — fine for this protocol, which
          // only ships ASCII identifiers and OpenCL-C source).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  common::Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string_view token = text_.substr(start, pos_ - start);
    // from_chars, not strtod: locale-independent (an embedder's LC_NUMERIC
    // must not change how the wire parses) and exact for binary64.
    double value = 0.0;
    const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range) {
      // from_chars reports result_out_of_range for BOTH ends of the binary64
      // range. Overflow (e.g. the "1e999" infinity sentinel dump_json emits)
      // saturates to infinity; underflow ("1e-999") rounds to zero.
      const bool negative = token.front() == '-';
      if (token_underflows(token)) {
        value = negative ? -0.0 : 0.0;
      } else {
        value = negative ? -HUGE_VAL : HUGE_VAL;
      }
    } else if (ec != std::errc() || end != token.data() + token.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  common::ArenaAllocator<char> alloc_;
  std::size_t pos_ = 0;
};

/// std::to_chars — shortest form that round-trips binary64 exactly, and
/// locale-independent (snprintf %g would honour LC_NUMERIC's decimal comma
/// and emit invalid JSON under some embedder locales).
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; the protocol never produces them, but never emit
    // invalid JSON either.
    out += v > 0 ? "1e999" : (v < 0 ? "-1e999" : "null");
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // 32 bytes always suffice for the shortest double form
  out.append(buf, end);
}

void dump_value(std::string& out, const JsonValue& value) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    append_double(out, value.as_number());
  } else if (value.is_string()) {
    out += json_quote(value.as_string());
  } else if (value.is_array()) {
    out.push_back('[');
    const auto& items = value.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out.push_back(',');
      dump_value(out, items[i]);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    const auto& members = value.as_object();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += json_quote(members[i].first);
      out.push_back(':');
      dump_value(out, members[i].second);
    }
    out.push_back('}');
  }
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (std::string_view(k.data(), k.size()) == key) return &v;
  }
  return nullptr;
}

common::Result<JsonValue> parse_json(std::string_view text, common::Arena* arena) {
  return JsonParser(text, arena).parse();
}

std::string dump_json(const JsonValue& value) {
  std::string out;
  dump_value(out, value);
  return out;
}

namespace {

/// Append-style json_quote — the hot-path formatters write straight into
/// the pooled reply buffer instead of materializing a quoted temporary.
void quote_into(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// std::to_chars integer append — no std::to_string temporary.
void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // 24 bytes always suffice for u64
  out.append(buf, end);
}

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  quote_into(out, s);
  return out;
}

// --- protocol messages --------------------------------------------------------

namespace {

common::Result<std::uint64_t> require_id(const JsonValue& doc) {
  const JsonValue* id = doc.find("id");
  if (id == nullptr || !id->is_number()) {
    return common::parse_error("protocol: missing numeric \"id\"");
  }
  const double v = id->as_number();
  if (!(v >= 0) || v != std::floor(v) || v > 1.8e19) {
    return common::parse_error("protocol: \"id\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

common::Result<clfront::StaticFeatures> WireRequest::to_features() const {
  if (features.has_value()) {
    clfront::StaticFeatures f;
    f.kernel_name = kernel.empty() ? "request" : kernel;
    f.counts = *features;
    return f;
  }
  if (source.has_value()) {
    auto extracted = clfront::extract_features_from_source(*source, kernel);
    if (!extracted.ok()) return extracted.error();
    return std::move(extracted).take();
  }
  return common::invalid_argument("protocol: request has neither features nor source");
}

common::Result<WireRequest> parse_request(std::string_view line, common::Arena* arena) {
  auto doc = parse_json(line, arena);
  if (!doc.ok()) return doc.error();
  if (!doc.value().is_object()) {
    return common::parse_error("protocol: request must be a JSON object");
  }
  auto id = require_id(doc.value());
  if (!id.ok()) return id.error();

  WireRequest request;
  request.id = id.value();
  if (const JsonValue* kernel = doc.value().find("kernel"); kernel != nullptr) {
    if (!kernel->is_string()) {
      return common::parse_error("protocol: \"kernel\" must be a string");
    }
    request.kernel = kernel->as_string();
  }
  if (const JsonValue* deadline = doc.value().find("deadline_ms");
      deadline != nullptr) {
    // Finite number; non-positive is legal and means "already expired" —
    // the server answers deadline_exceeded without predicting, which is
    // exactly what a client whose budget ran out mid-flight wants.
    if (!deadline->is_number() || !std::isfinite(deadline->as_number())) {
      return common::parse_error(
          "protocol: \"deadline_ms\" must be a finite number");
    }
    request.deadline_ms = deadline->as_number();
  }
  if (const JsonValue* trace = doc.value().find("trace"); trace != nullptr) {
    // A trace id: opt into per-stage reply timings. Servers that predate
    // tracing simply never look the member up, so it is backward
    // compatible on the JSON framing by construction.
    const double v = trace->is_number() ? trace->as_number() : -1.0;
    if (!(v >= 0) || v != std::floor(v) || v > 1.8e19) {
      return common::parse_error(
          "protocol: \"trace\" must be a non-negative integer");
    }
    request.trace = static_cast<std::uint64_t>(v);
  }
  const JsonValue* features = doc.value().find("features");
  const JsonValue* source = doc.value().find("source");
  // Optional explicit request type; when present it must match the payload
  // (a "predict_source" request with a features array is a client bug worth
  // rejecting loudly, not guessing about). The introspection kinds have no
  // payload-inferable form, so they require the type member.
  if (const JsonValue* type = doc.value().find("type"); type != nullptr) {
    if (!type->is_string()) {
      return common::parse_error("protocol: \"type\" must be a string");
    }
    const std::string_view t = type->as_string();
    if (t == "health" || t == "stats" || t == "metrics") {
      if (features != nullptr || source != nullptr) {
        return common::parse_error("protocol: \"" + std::string(t) +
                                   "\" requests carry no payload");
      }
      request.kind = t == "health"  ? RequestKind::kHealth
                     : t == "stats" ? RequestKind::kStats
                                    : RequestKind::kMetrics;
      return request;
    }
    if (t == "hello") {
      // Binary-framing negotiation. A server without this branch answers
      // "unknown request type" — exactly the signal a client needs to stay
      // on JSON lines, so the handshake downgrades instead of desyncing.
      if (features != nullptr || source != nullptr) {
        return common::parse_error("protocol: \"hello\" requests carry no payload");
      }
      const JsonValue* max = doc.value().find("max_protocol");
      if (max == nullptr || !max->is_number()) {
        return common::parse_error(
            "protocol: \"hello\" needs a numeric \"max_protocol\"");
      }
      const double v = max->as_number();
      if (!(v >= 0) || v != std::floor(v) || v > 4.0e9) {
        return common::parse_error(
            "protocol: \"max_protocol\" must be a small non-negative integer");
      }
      request.kind = RequestKind::kHello;
      request.max_protocol = static_cast<std::uint32_t>(v);
      return request;
    }
    if (t != "predict" && t != "predict_source") {
      return common::parse_error("protocol: unknown request type \"" + std::string(t) +
                                 "\"");
    }
    if ((t == "predict_source") != (source != nullptr)) {
      return common::parse_error("protocol: request type \"" + std::string(t) +
                                 "\" does not match its payload");
    }
  }
  if ((features != nullptr) == (source != nullptr)) {
    return common::parse_error(
        "protocol: request needs exactly one of \"features\" or \"source\"");
  }
  if (features != nullptr) {
    if (!features->is_array() ||
        features->as_array().size() != clfront::kNumFeatures) {
      return common::parse_error("protocol: \"features\" must be an array of " +
                                 std::to_string(clfront::kNumFeatures) + " numbers");
    }
    std::array<double, clfront::kNumFeatures> counts{};
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const JsonValue& v = features->as_array()[i];
      if (!v.is_number()) {
        return common::parse_error("protocol: \"features\" must be numbers");
      }
      // Reject non-finite counts (e.g. the 1e999 saturation) here: an inf
      // feature would turn into NaN speedup/energy downstream, which
      // format_response frames as null and parse_response then refuses —
      // a whole-reply failure instead of this per-request error.
      if (!std::isfinite(v.as_number())) {
        return common::parse_error("protocol: \"features\" must be finite");
      }
      counts[i] = v.as_number();
    }
    request.features = counts;
    request.kind = RequestKind::kPredict;
  } else {
    if (!source->is_string()) {
      return common::parse_error("protocol: \"source\" must be a string");
    }
    // Copy out of the (possibly arena-backed) document: the source escapes
    // into the batching pipeline and must outlive the arena reset.
    request.source = std::string(source->as_string());
    request.kind = RequestKind::kPredictSource;
  }
  return request;
}

void format_request_into(std::string& out, const WireRequest& request) {
  out += "{\"id\":";
  append_u64(out, request.id);
  if (request.kind == RequestKind::kHealth) {
    out += ",\"type\":\"health\"}";
    return;
  }
  if (request.kind == RequestKind::kStats) {
    out += ",\"type\":\"stats\"}";
    return;
  }
  if (request.kind == RequestKind::kMetrics) {
    out += ",\"type\":\"metrics\"}";
    return;
  }
  if (request.kind == RequestKind::kHello) {
    out += ",\"type\":\"hello\",\"max_protocol\":";
    append_u64(out, request.max_protocol);
    out.push_back('}');
    return;
  }
  // Feature requests stay in the legacy (type-free) framing so old servers
  // keep accepting them; source requests name the predict_source type.
  if (request.source.has_value()) out += ",\"type\":\"predict_source\"";
  if (!request.kernel.empty()) {
    out += ",\"kernel\":";
    quote_into(out, request.kernel);
  }
  if (request.deadline_ms.has_value()) {
    out += ",\"deadline_ms\":";
    append_double(out, *request.deadline_ms);
  }
  if (request.trace.has_value()) {
    out += ",\"trace\":";
    append_u64(out, *request.trace);
  }
  if (request.features.has_value()) {
    out += ",\"features\":[";
    for (std::size_t i = 0; i < request.features->size(); ++i) {
      if (i != 0) out.push_back(',');
      append_double(out, (*request.features)[i]);
    }
    out.push_back(']');
  } else if (request.source.has_value()) {
    out += ",\"source\":";
    quote_into(out, *request.source);
  }
  out.push_back('}');
}

std::string format_request(const WireRequest& request) {
  std::string out;
  format_request_into(out, request);
  return out;
}

namespace {

/// ,"trace":{"id":…,"stages":[{"stage":…,"us":…},…]} — appended to
/// prediction and error responses when the request asked to be traced.
void append_trace(std::string& out, const obs::Trace* trace) {
  if (trace == nullptr) return;
  out += ",\"trace\":{\"id\":";
  append_u64(out, trace->id);
  out += ",\"stages\":[";
  for (std::size_t i = 0; i < trace->stages.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += "{\"stage\":";
    quote_into(out, trace->stages[i].stage);
    out += ",\"us\":";
    append_double(out, trace->stages[i].us);
    out.push_back('}');
  }
  out += "]}";
}

/// to_chars append for signed ints (frequency fields) — byte-identical to
/// the std::to_string output it replaces.
template <typename Int>
void append_int(std::string& out, Int v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, end);
}

}  // namespace

void format_response_into(std::string& out, std::uint64_t id,
                          const core::Predictor::KernelPrediction& p,
                          const obs::Trace* trace) {
  out += "{\"id\":";
  append_u64(out, id);
  out += ",\"kernel\":";
  quote_into(out, p.kernel);
  out += ",\"pareto\":[";
  for (std::size_t i = 0; i < p.pareto.size(); ++i) {
    const auto& point = p.pareto[i];
    if (i != 0) out.push_back(',');
    out += "{\"core_mhz\":";
    append_int(out, point.config.core_mhz);
    out += ",\"mem_mhz\":";
    append_int(out, point.config.mem_mhz);
    out += ",\"speedup\":";
    append_double(out, point.speedup);
    out += ",\"energy\":";
    append_double(out, point.energy);
    out += ",\"heuristic\":";
    out += point.heuristic ? "true" : "false";
    out.push_back('}');
  }
  out += "]";
  append_trace(out, trace);
  out.push_back('}');
}

std::string format_response(std::uint64_t id,
                            const core::Predictor::KernelPrediction& p,
                            const obs::Trace* trace) {
  std::string out;
  format_response_into(out, id, p, trace);
  return out;
}

void format_health_response_into(std::string& out, std::uint64_t id,
                                 const WireStats& stats) {
  out += "{\"id\":";
  append_u64(out, id);
  out += ",\"health\":{\"status\":\"ok\",\"uptime_s\":";
  append_double(out, stats.uptime_s);
  out += ",\"queue_depth\":";
  append_u64(out, stats.queue_depth);
  out += "}}";
}

std::string format_health_response(std::uint64_t id, const WireStats& stats) {
  std::string out;
  format_health_response_into(out, id, stats);
  return out;
}

void format_stats_response_into(std::string& out, std::uint64_t id,
                                const WireStats& stats) {
  out += "{\"id\":";
  append_u64(out, id);
  out += ",\"stats\":{\"uptime_s\":";
  append_double(out, stats.uptime_s);
  const std::pair<const char*, std::uint64_t> counters[] = {
      {",\"queue_depth\":", stats.queue_depth},
      {",\"requests\":", stats.requests},
      {",\"source_requests\":", stats.source_requests},
      {",\"batches\":", stats.batches},
      {",\"connections\":", stats.connections},
      {",\"protocol_errors\":", stats.protocol_errors},
      {",\"cache_hits\":", stats.cache_hits},
      {",\"cache_misses\":", stats.cache_misses},
      {",\"shed\":", stats.shed},
      {",\"deadline_exceeded\":", stats.deadline_exceeded},
      {",\"streamed\":", stats.streamed},
      {",\"peak_message_bytes\":", stats.peak_message_bytes},
  };
  for (const auto& [key, value] : counters) {
    out += key;
    append_u64(out, value);
  }
  out += "}}";
}

std::string format_stats_response(std::uint64_t id, const WireStats& stats) {
  std::string out;
  format_stats_response_into(out, id, stats);
  return out;
}

void format_metrics_response_into(std::string& out, std::uint64_t id,
                                  const WireMetrics& metrics) {
  out += "{\"id\":";
  append_u64(out, id);
  out += ",\"metrics\":{\"text\":";
  quote_into(out, metrics.text);
  out += ",\"values\":{";
  for (std::size_t i = 0; i < metrics.values.size(); ++i) {
    if (i != 0) out.push_back(',');
    quote_into(out, metrics.values[i].first);
    out.push_back(':');
    append_double(out, metrics.values[i].second);
  }
  out += "}}}";
}

std::string format_metrics_response(std::uint64_t id, const WireMetrics& metrics) {
  std::string out;
  format_metrics_response_into(out, id, metrics);
  return out;
}

void format_hello_response_into(std::string& out, std::uint64_t id,
                                std::uint32_t protocol) {
  out += "{\"id\":";
  append_u64(out, id);
  out += ",\"hello\":{\"protocol\":";
  append_u64(out, protocol);
  out += "}}";
}

std::string format_hello_response(std::uint64_t id, std::uint32_t protocol) {
  std::string out;
  format_hello_response_into(out, id, protocol);
  return out;
}

void format_error_into(std::string& out, std::uint64_t id, const common::Error& error,
                       const obs::Trace* trace) {
  out += "{\"id\":";
  append_u64(out, id);
  out += ",\"error\":{\"code\":";
  quote_into(out, common::to_string(error.code));
  out += ",\"message\":";
  quote_into(out, error.message);
  out.push_back('}');
  append_trace(out, trace);
  out.push_back('}');
}

std::string format_error(std::uint64_t id, const common::Error& error,
                         const obs::Trace* trace) {
  std::string out;
  format_error_into(out, id, error, trace);
  return out;
}

common::Result<WireResponse> parse_response(std::string_view line) {
  auto doc = parse_json(line);
  if (!doc.ok()) return doc.error();
  if (!doc.value().is_object()) {
    return common::parse_error("protocol: response must be a JSON object");
  }
  auto id = require_id(doc.value());
  if (!id.ok()) return id.error();

  WireResponse response;
  response.id = id.value();
  // Optional per-stage trace; rides on prediction and error responses.
  if (const JsonValue* trace = doc.value().find("trace"); trace != nullptr) {
    if (!trace->is_object()) {
      return common::parse_error("protocol: \"trace\" must be an object");
    }
    obs::Trace t;
    if (const JsonValue* tid = trace->find("id");
        tid != nullptr && tid->is_number() && tid->as_number() >= 0 &&
        tid->as_number() == std::floor(tid->as_number()) &&
        tid->as_number() <= 1.8e19) {
      t.id = static_cast<std::uint64_t>(tid->as_number());
    } else {
      return common::parse_error("protocol: \"trace\" needs a numeric \"id\"");
    }
    const JsonValue* stages = trace->find("stages");
    if (stages == nullptr || !stages->is_array()) {
      return common::parse_error("protocol: \"trace\" needs a \"stages\" array");
    }
    for (const JsonValue& item : stages->as_array()) {
      const JsonValue* stage = item.find("stage");
      const JsonValue* us = item.find("us");
      if (stage == nullptr || !stage->is_string() || us == nullptr ||
          !us->is_number()) {
        return common::parse_error("protocol: malformed trace stage");
      }
      t.stages.push_back(
          obs::TraceStage{std::string(stage->as_string()), us->as_number()});
    }
    response.trace = std::move(t);
  }
  if (const JsonValue* error = doc.value().find("error"); error != nullptr) {
    const JsonValue* message = error->find("message");
    const JsonValue* code = error->find("code");
    common::Error e;
    e.code = common::ErrorCode::kInternal;
    if (code != nullptr && code->is_string()) {
      for (int c = 0; c <= static_cast<int>(common::ErrorCode::kDeadlineExceeded);
           ++c) {
        if (code->as_string() == common::to_string(static_cast<common::ErrorCode>(c))) {
          e.code = static_cast<common::ErrorCode>(c);
          break;
        }
      }
    }
    e.message = message != nullptr && message->is_string() ? message->as_string()
                                                           : "unknown remote error";
    response.error = std::move(e);
    return response;
  }

  if (const JsonValue* hello = doc.value().find("hello"); hello != nullptr) {
    const JsonValue* protocol = hello->find("protocol");
    if (protocol == nullptr || !protocol->is_number()) {
      return common::parse_error(
          "protocol: \"hello\" response needs a numeric \"protocol\"");
    }
    const double v = protocol->as_number();
    if (!(v >= 0) || v != std::floor(v) || v > 4.0e9) {
      return common::parse_error(
          "protocol: \"protocol\" must be a small non-negative integer");
    }
    response.protocol = static_cast<std::uint32_t>(v);
    return response;
  }

  if (const JsonValue* metrics = doc.value().find("metrics"); metrics != nullptr) {
    if (!metrics->is_object()) {
      return common::parse_error("protocol: \"metrics\" must be an object");
    }
    WireMetrics m;
    if (const JsonValue* text = metrics->find("text"); text != nullptr) {
      if (!text->is_string()) {
        return common::parse_error("protocol: metrics \"text\" must be a string");
      }
      m.text = text->as_string();
    }
    const JsonValue* values = metrics->find("values");
    if (values == nullptr || !values->is_object()) {
      return common::parse_error("protocol: metrics needs a \"values\" object");
    }
    for (const auto& [name, value] : values->as_object()) {
      if (!value.is_number()) {
        return common::parse_error("protocol: metric values must be numbers");
      }
      m.values.emplace_back(name, value.as_number());
    }
    response.metrics = std::move(m);
    return response;
  }

  // health / stats responses: the counters object under either key.
  const JsonValue* health = doc.value().find("health");
  const JsonValue* counters = health != nullptr ? health : doc.value().find("stats");
  if (counters != nullptr) {
    if (!counters->is_object()) {
      return common::parse_error("protocol: \"health\"/\"stats\" must be an object");
    }
    if (health != nullptr) {
      const JsonValue* status = counters->find("status");
      if (status == nullptr || !status->is_string() || status->as_string() != "ok") {
        return common::parse_error("protocol: health status missing or not ok");
      }
    }
    WireStats stats;
    const auto read_counter = [&](const char* key,
                                  std::uint64_t& out) -> common::Status {
      const JsonValue* v = counters->find(key);
      if (v == nullptr) return common::Status::Ok();  // absent = zero
      const double d = v->is_number() ? v->as_number() : -1.0;
      if (!(d >= 0) || d != std::floor(d) || d > 1.8e19) {
        return common::parse_error(std::string("protocol: \"") + key +
                                   "\" must be a non-negative integer");
      }
      out = static_cast<std::uint64_t>(d);
      return common::Status::Ok();
    };
    if (const JsonValue* uptime = counters->find("uptime_s"); uptime != nullptr) {
      if (!uptime->is_number() || !(uptime->as_number() >= 0)) {
        return common::parse_error("protocol: \"uptime_s\" must be non-negative");
      }
      stats.uptime_s = uptime->as_number();
    }
    for (auto [key, field] : {std::pair<const char*, std::uint64_t*>
                                  {"queue_depth", &stats.queue_depth},
                              {"requests", &stats.requests},
                              {"source_requests", &stats.source_requests},
                              {"batches", &stats.batches},
                              {"connections", &stats.connections},
                              {"protocol_errors", &stats.protocol_errors},
                              {"cache_hits", &stats.cache_hits},
                              {"cache_misses", &stats.cache_misses},
                              {"shed", &stats.shed},
                              {"deadline_exceeded", &stats.deadline_exceeded},
                              {"streamed", &stats.streamed},
                              {"peak_message_bytes", &stats.peak_message_bytes}}) {
      if (auto st = read_counter(key, *field); !st.ok()) return st.error();
    }
    response.stats = stats;
    response.health = health != nullptr;
    return response;
  }

  const JsonValue* pareto = doc.value().find("pareto");
  if (pareto == nullptr || !pareto->is_array()) {
    return common::parse_error("protocol: response needs \"pareto\" or \"error\"");
  }
  core::Predictor::KernelPrediction prediction;
  if (const JsonValue* kernel = doc.value().find("kernel");
      kernel != nullptr && kernel->is_string()) {
    prediction.kernel = kernel->as_string();
  }
  prediction.pareto.reserve(pareto->as_array().size());
  for (const JsonValue& item : pareto->as_array()) {
    const JsonValue* core_mhz = item.find("core_mhz");
    const JsonValue* mem_mhz = item.find("mem_mhz");
    const JsonValue* speedup = item.find("speedup");
    const JsonValue* energy = item.find("energy");
    const JsonValue* heuristic = item.find("heuristic");
    if (core_mhz == nullptr || !core_mhz->is_number() || mem_mhz == nullptr ||
        !mem_mhz->is_number() || speedup == nullptr || !speedup->is_number() ||
        energy == nullptr || !energy->is_number()) {
      return common::parse_error("protocol: malformed pareto point");
    }
    // Range-check before the int casts: a misbehaving server could frame
    // core_mhz as 1e300 and static_cast<int> of that is undefined behavior.
    const auto as_int = [](const JsonValue& v) -> common::Result<int> {
      const double d = v.as_number();
      if (!(d >= 0.0 && d <= 1e9) || d != std::trunc(d)) {
        return common::parse_error("protocol: frequency out of range");
      }
      return static_cast<int>(d);
    };
    auto core = as_int(*core_mhz);
    auto mem = as_int(*mem_mhz);
    if (!core.ok()) return core.error();
    if (!mem.ok()) return mem.error();
    core::PredictedPoint point;
    point.config.core_mhz = core.value();
    point.config.mem_mhz = mem.value();
    point.speedup = speedup->as_number();
    point.energy = energy->as_number();
    point.heuristic = heuristic != nullptr && heuristic->is_bool() && heuristic->as_bool();
    prediction.pareto.push_back(point);
  }
  response.prediction = std::move(prediction);
  return response;
}

std::uint64_t best_effort_id(std::string_view line) {
  auto doc = parse_json(line);
  if (!doc.ok() || !doc.value().is_object()) return 0;
  auto id = require_id(doc.value());
  return id.ok() ? id.value() : 0;
}

// --- binary framing -----------------------------------------------------------

namespace binary {

namespace {

// Request kind and response body codes on the wire. Fixed numbers, not the
// enum's values: the enum may be reordered, the wire must not.
constexpr std::uint8_t kWirePredict = 0;
constexpr std::uint8_t kWirePredictSource = 1;
constexpr std::uint8_t kWireHealth = 2;
constexpr std::uint8_t kWireStats = 3;
constexpr std::uint8_t kWireHello = 4;
constexpr std::uint8_t kWireMetrics = 5;  // protocol >= 2

constexpr std::uint8_t kBodyPrediction = 0;
constexpr std::uint8_t kBodyError = 1;
constexpr std::uint8_t kBodyHealth = 2;
constexpr std::uint8_t kBodyStats = 3;
constexpr std::uint8_t kBodyHello = 4;
constexpr std::uint8_t kBodyMetrics = 5;  // protocol >= 2

constexpr std::uint8_t kFlagDeadline = 0x01;
// Protocol >= 2: a u64 trace id follows the (optional) deadline. Version-1
// parsers reject unknown flag bits, so clients only set this after
// negotiating protocol >= 2 (the JSON framing needs no such gate).
constexpr std::uint8_t kFlagTrace = 0x02;

// u32(core) + u32(mem) + f64(speedup) + f64(energy) + u8(heuristic)
constexpr std::size_t kPointBytes = 4 + 4 + 8 + 8 + 1;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Doubles travel as their binary64 bit pattern: exact for every value a
/// double can hold, including inf/nan payloads and denormals — the binary
/// counterpart of the JSON framing's shortest-round-trip to_chars.
void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

common::Error truncated() {
  return common::parse_error("binary: truncated payload");
}

/// Bounds-checked little-endian reader over one frame payload. Every
/// accessor fails (never overreads) when fewer bytes remain than it needs —
/// the property the fuzzer drives with length-prefix lies and mid-frame
/// truncation.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  common::Result<std::uint8_t> u8() {
    if (remaining() < 1) return truncated();
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  common::Result<std::uint32_t> u32() {
    if (remaining() < 4) return truncated();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  common::Result<std::uint64_t> u64() {
    if (remaining() < 8) return truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  common::Result<double> f64() {
    auto bits = u64();
    if (!bits.ok()) return bits.error();
    return std::bit_cast<double>(bits.value());
  }

  common::Result<std::string_view> str() {
    auto len = u32();
    if (!len.ok()) return len.error();
    // The length is validated against what actually arrived before any
    // allocation — a lying prefix cannot trigger a huge reserve or a read
    // past the payload.
    if (len.value() > remaining()) return truncated();
    std::string_view s = data_.substr(pos_, len.value());
    pos_ += len.value();
    return s;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

common::Error trailing_bytes() {
  return common::parse_error("binary: trailing bytes after payload");
}

/// The shared (id, kind/flags, deadline, kernel) prefix of request-like
/// payloads. `allowed` is the flag mask this payload kind accepts —
/// chunked-source Begin frames stay deadline-only (streams are untraced).
common::Status read_deadline(Reader& reader, std::uint8_t flags,
                             std::optional<double>& out,
                             std::uint8_t allowed = kFlagDeadline) {
  if ((flags & ~allowed) != 0) {
    return common::parse_error("binary: unknown request flags");
  }
  if ((flags & kFlagDeadline) != 0) {
    auto deadline = reader.f64();
    if (!deadline.ok()) return deadline.error();
    if (!std::isfinite(deadline.value())) {
      return common::parse_error("binary: deadline_ms must be finite");
    }
    out = deadline.value();
  }
  return common::Status::Ok();
}

/// Trailing per-stage trace on prediction/error response payloads:
/// u64 trace id, u32 stage count, then (str stage, f64 us) per stage.
void put_trace(std::string& out, const obs::Trace& trace) {
  put_u64(out, trace.id);
  put_u32(out, static_cast<std::uint32_t>(trace.stages.size()));
  for (const obs::TraceStage& s : trace.stages) {
    put_str(out, s.stage);
    put_f64(out, s.us);
  }
}

common::Status read_trace(Reader& reader, std::optional<obs::Trace>& out) {
  obs::Trace trace;
  auto id = reader.u64();
  if (!id.ok()) return id.error();
  trace.id = id.value();
  auto count = reader.u32();
  if (!count.ok()) return count.error();
  // str(stage) is at least 4 bytes (its length prefix) + f64 = 12 — a lying
  // count cannot force a huge reserve.
  if (count.value() > reader.remaining() / 12) return truncated();
  trace.stages.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto stage = reader.str();
    if (!stage.ok()) return stage.error();
    auto us = reader.f64();
    if (!us.ok()) return us.error();
    trace.stages.push_back(
        obs::TraceStage{std::string(stage.value()), us.value()});
  }
  out = std::move(trace);
  return common::Status::Ok();
}

/// In-place framing for the _into formatters: write the 6-byte header with
/// a zero length, append the payload straight into `out`, then patch the
/// length — no per-frame payload temporary. Byte-identical to frame().
std::size_t begin_frame(std::string& out, FrameType type) {
  const std::size_t header = out.size();
  out.push_back(static_cast<char>(kMagic));
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, 0);
  return header;
}

void end_frame(std::string& out, std::size_t header) {
  const std::size_t length = out.size() - header - kHeaderBytes;
  for (int i = 0; i < 4; ++i) {
    out[header + 2 + static_cast<std::size_t>(i)] =
        static_cast<char>((length >> (8 * i)) & 0xFF);
  }
}

}  // namespace

std::string frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kMagic));
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

void format_request_frame_into(std::string& out, const WireRequest& request) {
  const std::size_t header = begin_frame(out, FrameType::kRequest);
  std::string& payload = out;
  put_u64(payload, request.id);
  // Like the JSON formatter, the payload member decides between the two
  // predict kinds — a request built with source set but kind left at its
  // default still encodes as predict_source.
  RequestKind effective = request.kind;
  if (effective == RequestKind::kPredict && request.source.has_value()) {
    effective = RequestKind::kPredictSource;
  }
  std::uint8_t kind = kWirePredict;
  switch (effective) {
    case RequestKind::kPredict: kind = kWirePredict; break;
    case RequestKind::kPredictSource: kind = kWirePredictSource; break;
    case RequestKind::kHealth: kind = kWireHealth; break;
    case RequestKind::kStats: kind = kWireStats; break;
    case RequestKind::kHello: kind = kWireHello; break;
    case RequestKind::kMetrics: kind = kWireMetrics; break;
  }
  put_u8(payload, kind);
  // Deadlines and traces only ride on the predict kinds (introspection and
  // hello are answered on the connection thread, never queued) — matching
  // the JSON formatter, so the two framings encode one logical request
  // identically.
  const bool queued = effective == RequestKind::kPredict ||
                      effective == RequestKind::kPredictSource;
  const bool deadline = request.deadline_ms.has_value() && queued;
  const bool trace = request.trace.has_value() && queued;
  put_u8(payload, (deadline ? kFlagDeadline : 0) | (trace ? kFlagTrace : 0));
  if (deadline) put_f64(payload, *request.deadline_ms);
  if (trace) put_u64(payload, *request.trace);
  put_str(payload, request.kernel);
  switch (effective) {
    case RequestKind::kPredict:
      put_u8(payload, static_cast<std::uint8_t>(clfront::kNumFeatures));
      for (double f : request.features.value_or(
               std::array<double, clfront::kNumFeatures>{})) {
        put_f64(payload, f);
      }
      break;
    case RequestKind::kPredictSource:
      put_str(payload, request.source.value_or(std::string()));
      break;
    case RequestKind::kHello: put_u32(payload, request.max_protocol); break;
    case RequestKind::kHealth:
    case RequestKind::kStats:
    case RequestKind::kMetrics: break;
  }
  end_frame(out, header);
}

std::string format_request_frame(const WireRequest& request) {
  std::string out;
  format_request_frame_into(out, request);
  return out;
}

common::Result<WireRequest> parse_request(std::string_view payload) {
  Reader reader(payload);
  WireRequest request;
  auto id = reader.u64();
  if (!id.ok()) return id.error();
  request.id = id.value();
  auto kind = reader.u8();
  if (!kind.ok()) return kind.error();
  auto flags = reader.u8();
  if (!flags.ok()) return flags.error();
  if (auto st = read_deadline(reader, flags.value(), request.deadline_ms,
                              kFlagDeadline | kFlagTrace);
      !st.ok()) {
    return st.error();
  }
  if ((flags.value() & kFlagTrace) != 0) {
    auto trace = reader.u64();
    if (!trace.ok()) return trace.error();
    request.trace = trace.value();
  }
  auto kernel = reader.str();
  if (!kernel.ok()) return kernel.error();
  request.kernel = std::string(kernel.value());
  switch (kind.value()) {
    case kWirePredict: {
      request.kind = RequestKind::kPredict;
      auto count = reader.u8();
      if (!count.ok()) return count.error();
      if (count.value() != clfront::kNumFeatures) {
        return common::parse_error("binary: predict needs exactly " +
                                   std::to_string(clfront::kNumFeatures) +
                                   " features");
      }
      std::array<double, clfront::kNumFeatures> counts{};
      for (auto& c : counts) {
        auto f = reader.f64();
        if (!f.ok()) return f.error();
        // Same rule as the JSON parse: non-finite counts would surface as a
        // whole-reply failure downstream instead of a per-request error.
        if (!std::isfinite(f.value())) {
          return common::parse_error("binary: features must be finite");
        }
        c = f.value();
      }
      request.features = counts;
      break;
    }
    case kWirePredictSource: {
      request.kind = RequestKind::kPredictSource;
      auto source = reader.str();
      if (!source.ok()) return source.error();
      request.source = std::string(source.value());
      break;
    }
    case kWireHealth: request.kind = RequestKind::kHealth; break;
    case kWireStats: request.kind = RequestKind::kStats; break;
    case kWireMetrics: request.kind = RequestKind::kMetrics; break;
    case kWireHello: {
      request.kind = RequestKind::kHello;
      auto max = reader.u32();
      if (!max.ok()) return max.error();
      request.max_protocol = max.value();
      break;
    }
    default: return common::parse_error("binary: unknown request kind");
  }
  if (!reader.done()) return trailing_bytes();
  return request;
}

void format_prediction_frame_into(std::string& out, std::uint64_t id,
                                  const core::Predictor::KernelPrediction& p,
                                  const obs::Trace* trace) {
  const std::size_t header = begin_frame(out, FrameType::kResponse);
  put_u64(out, id);
  put_u8(out, kBodyPrediction);
  put_str(out, p.kernel);
  put_u32(out, static_cast<std::uint32_t>(p.pareto.size()));
  for (const auto& point : p.pareto) {
    put_u32(out, static_cast<std::uint32_t>(point.config.core_mhz));
    put_u32(out, static_cast<std::uint32_t>(point.config.mem_mhz));
    put_f64(out, point.speedup);
    put_f64(out, point.energy);
    put_u8(out, point.heuristic ? 1 : 0);
  }
  if (trace != nullptr) put_trace(out, *trace);
  end_frame(out, header);
}

std::string format_prediction_frame(std::uint64_t id,
                                    const core::Predictor::KernelPrediction& p,
                                    const obs::Trace* trace) {
  std::string out;
  format_prediction_frame_into(out, id, p, trace);
  return out;
}

void format_error_frame_into(std::string& out, std::uint64_t id,
                             const common::Error& error, const obs::Trace* trace) {
  const std::size_t header = begin_frame(out, FrameType::kResponse);
  put_u64(out, id);
  put_u8(out, kBodyError);
  put_u8(out, static_cast<std::uint8_t>(error.code));
  put_str(out, error.message);
  if (trace != nullptr) put_trace(out, *trace);
  end_frame(out, header);
}

std::string format_error_frame(std::uint64_t id, const common::Error& error,
                               const obs::Trace* trace) {
  std::string out;
  format_error_frame_into(out, id, error, trace);
  return out;
}

void format_health_frame_into(std::string& out, std::uint64_t id,
                              const WireStats& stats) {
  const std::size_t header = begin_frame(out, FrameType::kResponse);
  put_u64(out, id);
  put_u8(out, kBodyHealth);
  put_f64(out, stats.uptime_s);
  put_u64(out, stats.queue_depth);
  end_frame(out, header);
}

std::string format_health_frame(std::uint64_t id, const WireStats& stats) {
  std::string out;
  format_health_frame_into(out, id, stats);
  return out;
}

void format_stats_frame_into(std::string& out, std::uint64_t id,
                             const WireStats& stats) {
  const std::size_t header = begin_frame(out, FrameType::kResponse);
  put_u64(out, id);
  put_u8(out, kBodyStats);
  put_f64(out, stats.uptime_s);
  put_u64(out, stats.queue_depth);
  put_u64(out, stats.requests);
  put_u64(out, stats.source_requests);
  put_u64(out, stats.batches);
  put_u64(out, stats.connections);
  put_u64(out, stats.protocol_errors);
  put_u64(out, stats.cache_hits);
  put_u64(out, stats.cache_misses);
  put_u64(out, stats.shed);
  put_u64(out, stats.deadline_exceeded);
  put_u64(out, stats.streamed);
  put_u64(out, stats.peak_message_bytes);
  end_frame(out, header);
}

std::string format_stats_frame(std::uint64_t id, const WireStats& stats) {
  std::string out;
  format_stats_frame_into(out, id, stats);
  return out;
}

void format_metrics_frame_into(std::string& out, std::uint64_t id,
                               const WireMetrics& metrics) {
  const std::size_t header = begin_frame(out, FrameType::kResponse);
  put_u64(out, id);
  put_u8(out, kBodyMetrics);
  put_str(out, metrics.text);
  put_u32(out, static_cast<std::uint32_t>(metrics.values.size()));
  for (const auto& [name, value] : metrics.values) {
    put_str(out, name);
    put_f64(out, value);
  }
  end_frame(out, header);
}

std::string format_metrics_frame(std::uint64_t id, const WireMetrics& metrics) {
  std::string out;
  format_metrics_frame_into(out, id, metrics);
  return out;
}

void format_hello_frame_into(std::string& out, std::uint64_t id,
                             std::uint32_t protocol) {
  const std::size_t header = begin_frame(out, FrameType::kResponse);
  put_u64(out, id);
  put_u8(out, kBodyHello);
  put_u32(out, protocol);
  end_frame(out, header);
}

std::string format_hello_frame(std::uint64_t id, std::uint32_t protocol) {
  std::string out;
  format_hello_frame_into(out, id, protocol);
  return out;
}

common::Result<WireResponse> parse_response(std::string_view payload) {
  Reader reader(payload);
  WireResponse response;
  auto id = reader.u64();
  if (!id.ok()) return id.error();
  response.id = id.value();
  auto body = reader.u8();
  if (!body.ok()) return body.error();
  switch (body.value()) {
    case kBodyPrediction: {
      core::Predictor::KernelPrediction prediction;
      auto kernel = reader.str();
      if (!kernel.ok()) return kernel.error();
      prediction.kernel = std::string(kernel.value());
      auto count = reader.u32();
      if (!count.ok()) return count.error();
      // A lying count cannot force a huge reserve: every point still in the
      // payload occupies kPointBytes, so the cap below is exact.
      if (count.value() > reader.remaining() / kPointBytes) return truncated();
      prediction.pareto.reserve(count.value());
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto core = reader.u32();
        auto mem = reader.u32();
        auto speedup = reader.f64();
        auto energy = reader.f64();
        auto heuristic = reader.u8();
        if (!core.ok()) return core.error();
        if (!mem.ok()) return mem.error();
        if (!speedup.ok()) return speedup.error();
        if (!energy.ok()) return energy.error();
        if (!heuristic.ok()) return heuristic.error();
        // Same range rule as the JSON parse (and int stays in range).
        if (core.value() > 1000000000u || mem.value() > 1000000000u) {
          return common::parse_error("binary: frequency out of range");
        }
        if (heuristic.value() > 1) {
          return common::parse_error("binary: heuristic must be 0 or 1");
        }
        core::PredictedPoint point;
        point.config.core_mhz = static_cast<int>(core.value());
        point.config.mem_mhz = static_cast<int>(mem.value());
        point.speedup = speedup.value();
        point.energy = energy.value();
        point.heuristic = heuristic.value() == 1;
        prediction.pareto.push_back(point);
      }
      response.prediction = std::move(prediction);
      // Remaining bytes are the optional trace section — only ever present
      // when this side asked for it, so pre-trace peers never see one.
      if (!reader.done()) {
        if (auto st = read_trace(reader, response.trace); !st.ok()) {
          return st.error();
        }
      }
      break;
    }
    case kBodyError: {
      auto code = reader.u8();
      if (!code.ok()) return code.error();
      if (code.value() > static_cast<std::uint8_t>(common::ErrorCode::kDeadlineExceeded)) {
        return common::parse_error("binary: unknown error code");
      }
      auto message = reader.str();
      if (!message.ok()) return message.error();
      common::Error e;
      e.code = static_cast<common::ErrorCode>(code.value());
      e.message = std::string(message.value());
      response.error = std::move(e);
      if (!reader.done()) {
        if (auto st = read_trace(reader, response.trace); !st.ok()) {
          return st.error();
        }
      }
      break;
    }
    case kBodyHealth:
    case kBodyStats: {
      WireStats stats;
      auto uptime = reader.f64();
      if (!uptime.ok()) return uptime.error();
      if (!(uptime.value() >= 0)) {
        return common::parse_error("binary: uptime_s must be non-negative");
      }
      stats.uptime_s = uptime.value();
      std::uint64_t* fields_health[] = {&stats.queue_depth};
      std::uint64_t* fields_stats[] = {
          &stats.queue_depth,  &stats.requests, &stats.source_requests,
          &stats.batches,      &stats.connections, &stats.protocol_errors,
          &stats.cache_hits,   &stats.cache_misses, &stats.shed,
          &stats.deadline_exceeded, &stats.streamed};
      const bool is_health = body.value() == kBodyHealth;
      auto* fields = is_health ? fields_health : fields_stats;
      const std::size_t n = is_health ? std::size(fields_health) : std::size(fields_stats);
      for (std::size_t i = 0; i < n; ++i) {
        auto v = reader.u64();
        if (!v.ok()) return v.error();
        *fields[i] = v.value();
      }
      // Trailing fields appended after protocol 1 — absent means zero, the
      // binary analogue of the JSON parser's absent-counter rule, so a new
      // client still reads an old server's stats frame.
      if (!is_health && !reader.done()) {
        auto v = reader.u64();
        if (!v.ok()) return v.error();
        stats.peak_message_bytes = v.value();
      }
      response.stats = stats;
      response.health = is_health;
      break;
    }
    case kBodyHello: {
      auto protocol = reader.u32();
      if (!protocol.ok()) return protocol.error();
      response.protocol = protocol.value();
      break;
    }
    case kBodyMetrics: {
      WireMetrics metrics;
      auto text = reader.str();
      if (!text.ok()) return text.error();
      metrics.text = std::string(text.value());
      auto count = reader.u32();
      if (!count.ok()) return count.error();
      // Each entry is at least str's u32 length prefix + f64 = 12 bytes.
      if (count.value() > reader.remaining() / 12) return truncated();
      metrics.values.reserve(count.value());
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto name = reader.str();
        if (!name.ok()) return name.error();
        auto value = reader.f64();
        if (!value.ok()) return value.error();
        metrics.values.emplace_back(std::string(name.value()), value.value());
      }
      response.metrics = std::move(metrics);
      break;
    }
    default: return common::parse_error("binary: unknown response body");
  }
  if (!reader.done()) return trailing_bytes();
  return response;
}

std::string format_source_begin(const SourceBegin& begin) {
  std::string payload;
  put_u64(payload, begin.id);
  put_u8(payload, begin.deadline_ms.has_value() ? kFlagDeadline : 0);
  if (begin.deadline_ms.has_value()) put_f64(payload, *begin.deadline_ms);
  put_str(payload, begin.kernel);
  return frame(FrameType::kSourceBegin, payload);
}

std::string format_source_chunk(std::uint64_t id, std::string_view bytes) {
  std::string payload;
  payload.reserve(8 + bytes.size());
  put_u64(payload, id);
  // No length prefix: the frame header already delimits the chunk, so the
  // rest of the payload IS the source bytes.
  payload.append(bytes);
  return frame(FrameType::kSourceChunk, payload);
}

std::string format_source_end(std::uint64_t id) {
  std::string payload;
  put_u64(payload, id);
  return frame(FrameType::kSourceEnd, payload);
}

std::string format_source_abort(std::uint64_t id) {
  std::string payload;
  put_u64(payload, id);
  return frame(FrameType::kSourceAbort, payload);
}

common::Result<SourceBegin> parse_source_begin(std::string_view payload) {
  Reader reader(payload);
  SourceBegin begin;
  auto id = reader.u64();
  if (!id.ok()) return id.error();
  begin.id = id.value();
  auto flags = reader.u8();
  if (!flags.ok()) return flags.error();
  if (auto st = read_deadline(reader, flags.value(), begin.deadline_ms); !st.ok()) {
    return st.error();
  }
  auto kernel = reader.str();
  if (!kernel.ok()) return kernel.error();
  begin.kernel = std::string(kernel.value());
  if (!reader.done()) return trailing_bytes();
  return begin;
}

common::Result<SourceChunk> parse_source_chunk(std::string_view payload) {
  Reader reader(payload);
  SourceChunk chunk;
  auto id = reader.u64();
  if (!id.ok()) return id.error();
  chunk.id = id.value();
  chunk.data = std::string(payload.substr(8));
  return chunk;
}

common::Result<std::uint64_t> parse_source_end(std::string_view payload) {
  Reader reader(payload);
  auto id = reader.u64();
  if (!id.ok()) return id.error();
  if (!reader.done()) return trailing_bytes();
  return id.value();
}

common::Result<std::uint64_t> parse_source_abort(std::string_view payload) {
  return parse_source_end(payload);
}

std::uint64_t best_effort_id(std::string_view payload) {
  Reader reader(payload);
  auto id = reader.u64();
  return id.ok() ? id.value() : 0;
}

}  // namespace binary

// --- incremental message splitting --------------------------------------------

void MessageSplitter::feed(std::string_view bytes) {
  // Compaction invalidates previously returned payload views — the
  // documented WireMessage contract (parse before feeding more bytes).
  if (pos_ > 0) {
    buffer_->erase(0, pos_);
    pos_ = 0;
  }
  buffer_->append(bytes);
  peak_ = std::max(peak_, buffer_->size());
}

common::Result<std::optional<WireMessage>> MessageSplitter::next() {
  const std::string& buffer = *buffer_;
  for (;;) {
    if (pos_ >= buffer.size()) return std::optional<WireMessage>();
    if (accept_binary_ &&
        static_cast<unsigned char>(buffer[pos_]) == binary::kMagic) {
      if (buffer.size() - pos_ < binary::kHeaderBytes) {
        return std::optional<WireMessage>();  // header still arriving
      }
      const auto type = static_cast<std::uint8_t>(buffer[pos_ + 1]);
      if (type < static_cast<std::uint8_t>(binary::FrameType::kRequest) ||
          type > static_cast<std::uint8_t>(binary::FrameType::kSourceAbort)) {
        return common::parse_error("binary: unknown frame type " +
                                   std::to_string(type));
      }
      std::uint32_t length = 0;
      for (int i = 0; i < 4; ++i) {
        length |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(buffer[pos_ + 2 + i]))
                  << (8 * i);
      }
      if (length > max_bytes_) {
        // The bound exists to keep per-connection buffering finite; a prefix
        // that exceeds it is unrecoverable (there is no resync point).
        return common::invalid_argument(
            "protocol: frame payload exceeds " + std::to_string(max_bytes_) +
            " bytes");
      }
      if (buffer.size() - pos_ < binary::kHeaderBytes + length) {
        return std::optional<WireMessage>();  // payload still arriving
      }
      WireMessage message;
      message.binary = true;
      message.frame = static_cast<binary::FrameType>(type);
      message.payload =
          std::string_view(buffer).substr(pos_ + binary::kHeaderBytes, length);
      pos_ += binary::kHeaderBytes + length;
      return std::optional<WireMessage>(message);
    }
    const auto nl = buffer.find('\n', pos_);
    if (nl == std::string::npos) {
      if (buffer.size() - pos_ > max_bytes_) {
        return common::invalid_argument("protocol: request line exceeds " +
                                        std::to_string(max_bytes_) + " bytes");
      }
      return std::optional<WireMessage>();
    }
    std::string_view line = std::string_view(buffer).substr(pos_, nl - pos_);
    pos_ = nl + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;  // blank keep-alive line
    WireMessage message;
    message.payload = line;
    return std::optional<WireMessage>(message);
  }
}

}  // namespace repro::serve
