#include "core/model.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hpp"
#include "ml/dataset.hpp"
#include "ml/svr.hpp"
#include "pareto/pareto.hpp"

namespace repro::core {

namespace {

bool is_mem_L(const gpusim::FrequencyDomain& domain, int mem_mhz) {
  const auto level = domain.level_of(mem_mhz);
  return level.ok() && level.value() == gpusim::MemLevel::kL;
}

void log_fit(const char* objective, const ml::Regressor& model) {
  auto line = common::log_info();
  line << objective << " model (" << model.name() << "): fitted";
  if (const auto* svr = dynamic_cast<const ml::Svr*>(&model)) {
    line << ", " << svr->training_info().iterations << " SMO iterations, "
         << svr->num_support_vectors() << " SVs";
  }
}

}  // namespace

common::Result<FrequencyModel> FrequencyModel::train(
    const MeasurementBackend& backend, std::span<const benchgen::MicroBenchmark> suite,
    const TrainingOptions& options) {
  if (suite.empty()) return common::invalid_argument("train: empty benchmark suite");

  const auto& domain = backend.domain();
  FrequencyModel model(domain, FeatureAssembler(domain));
  model.speedup_key_ = options.models.speedup_regressor;
  model.energy_key_ = options.models.energy_regressor;
  model.training_configs_ = domain.sample_configs(options.num_configs);
  if (options.exclude_mem_L_from_training) {
    std::erase_if(model.training_configs_, [&](const gpusim::FrequencyConfig& c) {
      return is_mem_L(domain, c.mem_mhz);
    });
  }
  if (model.training_configs_.empty()) {
    return common::invalid_argument("train: no training configurations");
  }

  // Build both regressors up front so an unknown registry key fails before
  // the (expensive) measurement pass.
  auto speedup = ml::make_regressor(options.models.speedup_regressor,
                                    options.models.speedup);
  if (!speedup.ok()) return speedup.error();
  auto energy = ml::make_regressor(options.models.energy_regressor,
                                   options.models.energy);
  if (!energy.ok()) return energy.error();

  // Assemble the training matrices: one row per (kernel, configuration).
  const std::size_t expected_rows = suite.size() * model.training_configs_.size();
  ml::Matrix x(0, 0);
  x.reserve_rows(expected_rows, kFeatureDim);
  std::vector<double> y_speedup;
  y_speedup.reserve(expected_rows);
  std::vector<double> y_energy;
  y_energy.reserve(expected_rows);
  for (const auto& mb : suite) {
    auto points = backend.measure(mb.profile, model.training_configs_);
    if (!points.ok()) return points.error();
    const auto normalized = mb.features.normalized();
    for (const auto& p : points.value()) {
      const auto row = model.assembler_.assemble(normalized, p.config);
      x.push_row(row);
      y_speedup.push_back(p.speedup);
      y_energy.push_back(p.norm_energy);
    }
  }
  model.training_samples_ = x.rows();
  common::log_info() << "FrequencyModel::train[" << backend.name() << "]: "
                     << suite.size() << " kernels x " << model.training_configs_.size()
                     << " configs = " << x.rows() << " samples";

  model.speedup_ = std::move(speedup).take();
  model.speedup_->fit(x, y_speedup);
  log_fit("speedup", *model.speedup_);

  model.energy_ = std::move(energy).take();
  model.energy_->fit(x, y_energy);
  log_fit("energy", *model.energy_);

  return model;
}

common::Result<FrequencyModel> FrequencyModel::train(
    const gpusim::GpuSimulator& simulator, std::span<const benchgen::MicroBenchmark> suite,
    const TrainingOptions& options) {
  return train(SimulatorBackend(simulator), suite, options);
}

common::Result<FrequencyModel> FrequencyModel::train_or_load(
    const MeasurementBackend& backend, std::span<const benchgen::MicroBenchmark> suite,
    const TrainingOptions& options, const std::string& cache_path) {
  if (std::filesystem::exists(cache_path)) {
    auto loaded = load(cache_path);
    if (loaded.ok() &&
        loaded.value().domain().device_name() == backend.domain().device_name() &&
        loaded.value().speedup_regressor() == options.models.speedup_regressor &&
        loaded.value().energy_regressor() == options.models.energy_regressor) {
      common::log_info() << "FrequencyModel: loaded cached model from " << cache_path;
      return loaded;
    }
    if (loaded.ok()) {
      common::log_warn() << "FrequencyModel: cache at " << cache_path
                         << " was trained for a different setup (device \""
                         << loaded.value().domain().device_name() << "\", regressors "
                         << loaded.value().speedup_regressor() << "/"
                         << loaded.value().energy_regressor() << "), retraining";
    } else {
      common::log_warn() << "FrequencyModel: stale cache at " << cache_path << " ("
                         << loaded.error().message << "), retraining";
    }
  }
  auto trained = train(backend, suite, options);
  if (!trained.ok()) return trained;
  if (auto st = trained.value().save(cache_path); !st.ok()) {
    common::log_warn() << "FrequencyModel: could not cache model: " << st.error().message;
  }
  return trained;
}

common::Result<FrequencyModel> FrequencyModel::train_or_load(
    const gpusim::GpuSimulator& simulator, std::span<const benchgen::MicroBenchmark> suite,
    const TrainingOptions& options, const std::string& cache_path) {
  return train_or_load(SimulatorBackend(simulator), suite, options, cache_path);
}

double FrequencyModel::predict_speedup(const clfront::StaticFeatures& features,
                                       gpusim::FrequencyConfig config) const {
  const auto w = assembler_.assemble(features, config);
  return speedup_->predict_one(w);
}

double FrequencyModel::predict_energy(const clfront::StaticFeatures& features,
                                      gpusim::FrequencyConfig config) const {
  const auto w = assembler_.assemble(features, config);
  return energy_->predict_one(w);
}

std::vector<PredictedPoint> FrequencyModel::predict_all(
    const clfront::StaticFeatures& features,
    std::span<const gpusim::FrequencyConfig> configs) const {
  // Assemble the feature matrix for the whole grid once, then one batch
  // prediction per objective — the regressors' batch paths parallelize
  // across configurations (SVR additionally blocks over support vectors).
  const auto normalized = features.normalized();
  ml::Matrix x(0, 0);
  x.reserve_rows(configs.size(), kFeatureDim);
  for (const auto& config : configs) {
    x.push_row(assembler_.assemble(normalized, config));
  }
  const auto speedups = speedup_->predict(x);
  const auto energies = energy_->predict(x);

  std::vector<PredictedPoint> out;
  out.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    out.push_back({configs[i], speedups[i], energies[i], false});
  }
  return out;
}

std::vector<PredictedPoint> FrequencyModel::predict_pareto(
    const clfront::StaticFeatures& features,
    std::span<const gpusim::FrequencyConfig> configs) const {
  // Model only the three upper memory clocks (mem-L is excluded, §4.5).
  std::vector<gpusim::FrequencyConfig> modeled;
  modeled.reserve(configs.size());
  for (const auto& c : configs) {
    if (!is_mem_L(domain_, c.mem_mhz)) modeled.push_back(c);
  }
  const auto predictions = predict_all(features, modeled);

  // Pareto set of the predictions: the O(n log n) skyline computes the same
  // set as the paper's Algorithm 1 (see pareto_test); re-sorting by id
  // restores the naive algorithm's input-order output, keeping the result
  // byte-identical to the O(n^2) path.
  std::vector<pareto::Point> points;
  points.reserve(predictions.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    points.push_back({predictions[i].speedup, predictions[i].energy,
                      static_cast<std::uint32_t>(i)});
  }
  auto front = pareto::pareto_set_fast(points);
  std::sort(front.begin(), front.end(),
            [](const pareto::Point& a, const pareto::Point& b) { return a.id < b.id; });

  std::vector<PredictedPoint> out;
  out.reserve(front.size() + 1);
  for (const auto& p : front) out.push_back(predictions[p.id]);

  // Heuristic: append the highest-core mem-L configuration (it is dominant
  // in 11 of 12 of the paper's codes). Prefer one present in `configs`.
  const auto* mem_L = domain_.find_domain(gpusim::MemLevel::kL);
  if (mem_L != nullptr && !mem_L->actual_core_mhz.empty()) {
    gpusim::FrequencyConfig best{0, mem_L->mem_mhz};
    for (const auto& c : configs) {
      if (c.mem_mhz == mem_L->mem_mhz && c.core_mhz > best.core_mhz) best = c;
    }
    if (best.core_mhz == 0) best = {mem_L->actual_core_mhz.back(), mem_L->mem_mhz};
    const auto w = assembler_.assemble(features, best);
    out.push_back({best, speedup_->predict_one(w), energy_->predict_one(w), true});
  }
  return out;
}

std::vector<PredictedPoint> FrequencyModel::predict_pareto(
    const clfront::StaticFeatures& features) const {
  const auto configs = domain_.sample_configs(training_configs_.empty()
                                                  ? 40
                                                  : training_configs_.size());
  return predict_pareto(features, configs);
}

std::string FrequencyModel::serialize() const {
  std::ostringstream oss;
  oss.precision(17);
  oss << "gpufreq_model v2\n";
  oss << "device " << domain_.device_name() << '\n';
  oss << "bounds " << assembler_.core_min() << ' ' << assembler_.core_max() << ' '
      << assembler_.mem_min() << ' ' << assembler_.mem_max() << '\n';
  oss << "training_configs " << training_configs_.size() << '\n';
  for (const auto& c : training_configs_) oss << c.core_mhz << ' ' << c.mem_mhz << '\n';
  oss << "training_samples " << training_samples_ << '\n';
  oss << "=== speedup ===\n" << ml::serialize_regressor(*speedup_);
  oss << "=== energy ===\n" << ml::serialize_regressor(*energy_);
  return oss.str();
}

common::Result<FrequencyModel> FrequencyModel::deserialize(const std::string& text) {
  std::istringstream iss(text);
  std::string line;
  if (!std::getline(iss, line) || line != "gpufreq_model v2") {
    return common::parse_error("FrequencyModel: bad header (expected gpufreq_model v2)");
  }
  if (!std::getline(iss, line) || line.rfind("device ", 0) != 0) {
    return common::parse_error("FrequencyModel: missing device line");
  }
  const std::string device_name = line.substr(7);

  double core_min = 0, core_max = 0, mem_min = 0, mem_max = 0;
  {
    std::string tag;
    if (!(iss >> tag >> core_min >> core_max >> mem_min >> mem_max) || tag != "bounds") {
      return common::parse_error("FrequencyModel: missing bounds");
    }
  }
  std::size_t n_configs = 0;
  {
    std::string tag;
    if (!(iss >> tag >> n_configs) || tag != "training_configs") {
      return common::parse_error("FrequencyModel: missing training_configs");
    }
  }
  if (n_configs > text.size()) {  // each config needs at least four payload bytes
    return common::parse_error("FrequencyModel: config count exceeds payload size");
  }
  std::vector<gpusim::FrequencyConfig> configs(n_configs);
  for (auto& c : configs) {
    if (!(iss >> c.core_mhz >> c.mem_mhz)) {
      return common::parse_error("FrequencyModel: truncated config list");
    }
  }
  std::size_t n_samples = 0;
  {
    std::string tag;
    if (!(iss >> tag >> n_samples) || tag != "training_samples") {
      return common::parse_error("FrequencyModel: missing training_samples");
    }
  }
  std::getline(iss, line);  // consume rest of line

  // Split the two regressor sections.
  std::string rest((std::istreambuf_iterator<char>(iss)), std::istreambuf_iterator<char>());
  const std::string speedup_tag = "=== speedup ===\n";
  const std::string energy_tag = "=== energy ===\n";
  const auto s_pos = rest.find(speedup_tag);
  const auto e_pos = rest.find(energy_tag);
  if (s_pos == std::string::npos || e_pos == std::string::npos || e_pos < s_pos) {
    return common::parse_error("FrequencyModel: missing regressor sections");
  }
  const std::string speedup_text =
      rest.substr(s_pos + speedup_tag.size(), e_pos - s_pos - speedup_tag.size());
  const std::string energy_text = rest.substr(e_pos + energy_tag.size());

  auto speedup = ml::deserialize_regressor(speedup_text);
  if (!speedup.ok()) return speedup.error();
  auto energy = ml::deserialize_regressor(energy_text);
  if (!energy.ok()) return energy.error();

  // The domain is reconstructed from the device name (only the two known
  // simulated devices are supported).
  gpusim::FrequencyDomain domain = device_name.find("P100") != std::string::npos
                                       ? gpusim::FrequencyDomain::tesla_p100()
                                       : gpusim::FrequencyDomain::titan_x();
  FrequencyModel model(std::move(domain),
                       FeatureAssembler(core_min, core_max, mem_min, mem_max));
  model.speedup_ = std::move(speedup).take();
  model.energy_ = std::move(energy).take();
  model.speedup_key_ = model.speedup_->name();
  model.energy_key_ = model.energy_->name();
  model.training_configs_ = std::move(configs);
  model.training_samples_ = n_samples;
  return model;
}

common::Status FrequencyModel::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return common::io_error("cannot write " + path);
  out << serialize();
  if (!out) return common::io_error("write failed: " + path);
  return common::Status::Ok();
}

common::Result<FrequencyModel> FrequencyModel::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return common::io_error("cannot read " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return deserialize(oss.str());
}

}  // namespace repro::core
