// The source→model-input featurization pipeline as a first-class object —
// the front half of the paper's Fig. 3 flow:
//
//   OpenCL-C source ──clfront──▶ StaticFeatures ──normalize──▶ k (10 dims)
//                                                     │
//   FrequencyConfig ──FeatureAssembler (scaler)──▶ (f_core, f_mem) in [0,1]
//                                                     ▼
//                                     w = (k, f)  — the regressor input
//
// One FeaturePipeline is owned by every core::Predictor (built from the
// trained model's FeatureAssembler, so assembled vectors match training) and
// by every serving shard — it replaces the extract-then-predict glue that
// examples and benches used to hand-roll. Featurization routes through
// clfront::SourceFeeder, so whole-string and chunked input are bit-identical
// and the streaming budgets (source size, nesting depth, call depth) guard
// every entry point, including untrusted sources off the serving socket.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "clfront/features.hpp"
#include "clfront/stream.hpp"
#include "common/status.hpp"
#include "core/features.hpp"
#include "gpusim/freq_table.hpp"

namespace repro::core {

class FeaturePipeline {
 public:
  explicit FeaturePipeline(FeatureAssembler assembler,
                           clfront::StreamOptions stream_options = {});

  // --- source → static features ---------------------------------------------
  /// Featurize one kernel (the first __kernel when `kernel` is empty).
  [[nodiscard]] common::Result<clfront::StaticFeatures> featurize(
      const std::string& source, const std::string& kernel = {}) const;

  /// Featurize every kernel of a source, in declaration order.
  [[nodiscard]] common::Result<std::vector<clfront::StaticFeatures>> featurize_all(
      const std::string& source) const;

  /// A SourceFeeder wired to this pipeline's budgets, for callers that
  /// stream large sources chunk by chunk.
  [[nodiscard]] clfront::SourceFeeder feeder() const {
    return clfront::SourceFeeder(stream_options_);
  }

  // --- static features + frequency → model input ----------------------------
  [[nodiscard]] std::array<double, kFeatureDim> assemble(
      const clfront::StaticFeatures& features, gpusim::FrequencyConfig config) const {
    return assembler_.assemble(features, config);
  }

  [[nodiscard]] const FeatureAssembler& assembler() const noexcept { return assembler_; }
  [[nodiscard]] const clfront::StreamOptions& stream_options() const noexcept {
    return stream_options_;
  }

 private:
  FeatureAssembler assembler_;
  clfront::StreamOptions stream_options_;
};

}  // namespace repro::core
