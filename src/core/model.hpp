// The trained frequency-scaling predictor — the paper's core contribution.
//
// Training (Fig. 2): each micro-benchmark is executed at a sampled subset of
// frequency configurations on the (simulated) GPU; static features plus the
// normalized frequency pair form the inputs, measured speedup / normalized
// energy the targets. Two SVR models are fit: a linear-kernel SVR for
// speedup and an RBF SVR (gamma = 0.1) for normalized energy, both with
// C = 1000 and epsilon = 0.1 (§3.4).
//
// Prediction (Fig. 3): a *new* kernel is never executed — its static
// features are combined with every candidate configuration, both models are
// evaluated, and the Pareto set of the predicted points is returned. The
// two lowest memory clocks are handled per the paper: mem-L is excluded
// from modeling and its highest-core configuration is appended to the
// predicted set heuristically (§4.5).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "clfront/features.hpp"
#include "common/status.hpp"
#include "core/features.hpp"
#include "gpusim/simulator.hpp"
#include "ml/svr.hpp"
#include "pareto/pareto.hpp"

namespace repro::core {

struct ModelParams {
  ml::SvrParams speedup{ml::KernelFunction::linear(), 1000.0, 0.1, 1e-3, 2'000'000};
  ml::SvrParams energy{ml::KernelFunction::rbf(0.1), 1000.0, 0.1, 1e-3, 2'000'000};
};

struct TrainingOptions {
  std::size_t num_configs = 40;  // §3.3: "40 carefully sampled frequency settings"
  ModelParams models;
  bool exclude_mem_L_from_training = false;  // ablation hook
};

/// One configuration recommended by the predictor.
struct PredictedPoint {
  gpusim::FrequencyConfig config;
  double speedup = 0.0;     // predicted
  double energy = 0.0;      // predicted normalized energy
  bool heuristic = false;   // appended by the mem-L rule, not modeled
};

class FrequencyModel {
 public:
  /// Train on a micro-benchmark suite using the given simulator as the
  /// measurement backend.
  [[nodiscard]] static common::Result<FrequencyModel> train(
      const gpusim::GpuSimulator& simulator,
      std::span<const benchgen::MicroBenchmark> suite, const TrainingOptions& options);

  /// Train, or load a previously serialized model from `cache_path` when it
  /// exists (and save after training otherwise).
  [[nodiscard]] static common::Result<FrequencyModel> train_or_load(
      const gpusim::GpuSimulator& simulator,
      std::span<const benchgen::MicroBenchmark> suite, const TrainingOptions& options,
      const std::string& cache_path);

  // --- single-point prediction ---------------------------------------------
  [[nodiscard]] double predict_speedup(const clfront::StaticFeatures& features,
                                       gpusim::FrequencyConfig config) const;
  [[nodiscard]] double predict_energy(const clfront::StaticFeatures& features,
                                      gpusim::FrequencyConfig config) const;

  // --- Pareto prediction ----------------------------------------------------
  /// Predict over `configs` (filtering out mem-L per the paper's heuristic),
  /// compute the Pareto set of the predictions (Algorithm 1) and append the
  /// highest-core mem-L configuration when the domain has one.
  [[nodiscard]] std::vector<PredictedPoint> predict_pareto(
      const clfront::StaticFeatures& features,
      std::span<const gpusim::FrequencyConfig> configs) const;

  /// Same, over the default evaluation sampling of the training domain.
  [[nodiscard]] std::vector<PredictedPoint> predict_pareto(
      const clfront::StaticFeatures& features) const;

  /// Predictions for every configuration in `configs` (no Pareto filter,
  /// no mem-L exclusion) — used by the error analyses of Figs. 6 and 7.
  [[nodiscard]] std::vector<PredictedPoint> predict_all(
      const clfront::StaticFeatures& features,
      std::span<const gpusim::FrequencyConfig> configs) const;

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] const gpusim::FrequencyDomain& domain() const noexcept { return domain_; }
  [[nodiscard]] const std::vector<gpusim::FrequencyConfig>& training_configs()
      const noexcept {
    return training_configs_;
  }
  [[nodiscard]] std::size_t training_samples() const noexcept { return training_samples_; }
  [[nodiscard]] const ml::Svr& speedup_model() const noexcept { return speedup_; }
  [[nodiscard]] const ml::Svr& energy_model() const noexcept { return energy_; }

  // --- persistence -----------------------------------------------------------
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static common::Result<FrequencyModel> deserialize(const std::string& text);
  [[nodiscard]] common::Status save(const std::string& path) const;
  [[nodiscard]] static common::Result<FrequencyModel> load(const std::string& path);

 private:
  FrequencyModel(gpusim::FrequencyDomain domain, FeatureAssembler assembler)
      : domain_(std::move(domain)), assembler_(assembler) {}

  gpusim::FrequencyDomain domain_;
  FeatureAssembler assembler_;
  ml::Svr speedup_;
  ml::Svr energy_;
  std::vector<gpusim::FrequencyConfig> training_configs_;
  std::size_t training_samples_ = 0;
};

}  // namespace repro::core
