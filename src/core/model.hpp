// The trained frequency-scaling predictor — the paper's core contribution.
//
// Training (Fig. 2): each micro-benchmark is executed at a sampled subset of
// frequency configurations through a MeasurementBackend (live simulator, CSV
// replay, or a caching decorator — see core/measurement.hpp); static
// features plus the normalized frequency pair form the inputs, measured
// speedup / normalized energy the targets. Two regressors are fit, selected
// by registry key (ml/registry.hpp). The paper's choice (§3.4) is a
// linear-kernel SVR for speedup and an RBF SVR (gamma = 0.1) for normalized
// energy, both with C = 1000 and epsilon = 0.1 — the defaults below.
//
// Prediction (Fig. 3): a *new* kernel is never executed — its static
// features are combined with every candidate configuration, both models are
// evaluated, and the Pareto set of the predicted points is returned. The
// two lowest memory clocks are handled per the paper: mem-L is excluded
// from modeling and its highest-core configuration is appended to the
// predicted set heuristically (§4.5).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "clfront/features.hpp"
#include "common/status.hpp"
#include "core/features.hpp"
#include "core/measurement.hpp"
#include "gpusim/simulator.hpp"
#include "ml/registry.hpp"
#include "pareto/pareto.hpp"

namespace repro::core {

/// Which regressor family models each objective (registry keys, see
/// ml::registered_regressors()) and the hyperparameters handed to the
/// factories. Defaults are the paper's models (§3.4).
struct ModelParams {
  std::string speedup_regressor = "svr-linear";
  std::string energy_regressor = "svr-rbf";
  ml::RegressorParams speedup{};
  ml::RegressorParams energy{};
};

struct TrainingOptions {
  std::size_t num_configs = 40;  // §3.3: "40 carefully sampled frequency settings"
  ModelParams models;
  bool exclude_mem_L_from_training = false;  // ablation hook
};

/// One configuration recommended by the predictor.
struct PredictedPoint {
  gpusim::FrequencyConfig config;
  double speedup = 0.0;     // predicted
  double energy = 0.0;      // predicted normalized energy
  bool heuristic = false;   // appended by the mem-L rule, not modeled
};

class FrequencyModel {
 public:
  /// Train on a micro-benchmark suite using the given measurement backend.
  [[nodiscard]] static common::Result<FrequencyModel> train(
      const MeasurementBackend& backend,
      std::span<const benchgen::MicroBenchmark> suite, const TrainingOptions& options);

  /// Convenience: train against a live simulator.
  [[nodiscard]] static common::Result<FrequencyModel> train(
      const gpusim::GpuSimulator& simulator,
      std::span<const benchgen::MicroBenchmark> suite, const TrainingOptions& options);

  /// Train, or load a previously serialized model from `cache_path` when it
  /// exists and was trained with the same regressor keys on the same device
  /// (and save after training otherwise). Hyperparameters are not part of
  /// the cache key — delete the cache after changing them.
  [[nodiscard]] static common::Result<FrequencyModel> train_or_load(
      const MeasurementBackend& backend,
      std::span<const benchgen::MicroBenchmark> suite, const TrainingOptions& options,
      const std::string& cache_path);

  [[nodiscard]] static common::Result<FrequencyModel> train_or_load(
      const gpusim::GpuSimulator& simulator,
      std::span<const benchgen::MicroBenchmark> suite, const TrainingOptions& options,
      const std::string& cache_path);

  // --- single-point prediction ---------------------------------------------
  [[nodiscard]] double predict_speedup(const clfront::StaticFeatures& features,
                                       gpusim::FrequencyConfig config) const;
  [[nodiscard]] double predict_energy(const clfront::StaticFeatures& features,
                                      gpusim::FrequencyConfig config) const;

  // --- Pareto prediction ----------------------------------------------------
  /// Predict over `configs` (filtering out mem-L per the paper's heuristic),
  /// compute the Pareto set of the predictions (Algorithm 1) and append the
  /// highest-core mem-L configuration when the domain has one.
  [[nodiscard]] std::vector<PredictedPoint> predict_pareto(
      const clfront::StaticFeatures& features,
      std::span<const gpusim::FrequencyConfig> configs) const;

  /// Same, over the default evaluation sampling of the training domain.
  [[nodiscard]] std::vector<PredictedPoint> predict_pareto(
      const clfront::StaticFeatures& features) const;

  /// Predictions for every configuration in `configs` (no Pareto filter,
  /// no mem-L exclusion) — used by the error analyses of Figs. 6 and 7.
  [[nodiscard]] std::vector<PredictedPoint> predict_all(
      const clfront::StaticFeatures& features,
      std::span<const gpusim::FrequencyConfig> configs) const;

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] const gpusim::FrequencyDomain& domain() const noexcept { return domain_; }
  /// The feature scaler this model was trained with (frequency pairs mapped
  /// into [0, 1] over the training domain) — what core::FeaturePipeline
  /// assembles prediction inputs with.
  [[nodiscard]] const FeatureAssembler& assembler() const noexcept { return assembler_; }
  [[nodiscard]] const std::vector<gpusim::FrequencyConfig>& training_configs()
      const noexcept {
    return training_configs_;
  }
  [[nodiscard]] std::size_t training_samples() const noexcept { return training_samples_; }
  [[nodiscard]] const ml::Regressor& speedup_model() const noexcept { return *speedup_; }
  [[nodiscard]] const ml::Regressor& energy_model() const noexcept { return *energy_; }
  /// Registry keys the models were built from.
  [[nodiscard]] const std::string& speedup_regressor() const noexcept {
    return speedup_key_;
  }
  [[nodiscard]] const std::string& energy_regressor() const noexcept {
    return energy_key_;
  }

  // --- persistence -----------------------------------------------------------
  /// Version 2 format: header + training metadata + two polymorphic
  /// regressor sections (ml::serialize_regressor envelopes). Any registered
  /// regressor family round-trips.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static common::Result<FrequencyModel> deserialize(const std::string& text);
  [[nodiscard]] common::Status save(const std::string& path) const;
  [[nodiscard]] static common::Result<FrequencyModel> load(const std::string& path);

 private:
  FrequencyModel(gpusim::FrequencyDomain domain, FeatureAssembler assembler)
      : domain_(std::move(domain)), assembler_(assembler) {}

  gpusim::FrequencyDomain domain_;
  FeatureAssembler assembler_;
  std::string speedup_key_ = "svr-linear";
  std::string energy_key_ = "svr-rbf";
  std::unique_ptr<ml::Regressor> speedup_;
  std::unique_ptr<ml::Regressor> energy_;
  std::vector<gpusim::FrequencyConfig> training_configs_;
  std::size_t training_samples_ = 0;
};

}  // namespace repro::core
