// The measurement abstraction behind model training and evaluation.
//
// The paper measures each (kernel, frequency configuration) pair on real
// hardware; this reproduction measures on a simulated GPU. A
// MeasurementBackend hides that choice behind one interface — speedup and
// normalized energy for a kernel at a set of configurations over a known
// frequency domain — so the predictor can train against a live simulator, a
// recorded CSV trace, or a memoizing cache without changing a line of the
// training code.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/csv.hpp"
#include "common/status.hpp"
#include "gpusim/kernel_profile.hpp"
#include "gpusim/simulator.hpp"

namespace repro::core {

/// One measured kernel execution in the paper's objective space.
struct MeasuredPoint {
  gpusim::FrequencyConfig config;
  double speedup = 0.0;      // t_default / t_config
  double norm_energy = 0.0;  // E_config / E_default
};

class MeasurementBackend {
 public:
  virtual ~MeasurementBackend() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// The frequency domain measurements are defined over.
  [[nodiscard]] virtual const gpusim::FrequencyDomain& domain() const = 0;

  /// Measure `profile` at each configuration, in order. Kernels are
  /// identified by `profile.name` (replay backends key on it).
  [[nodiscard]] virtual common::Result<std::vector<MeasuredPoint>> measure(
      const gpusim::KernelProfile& profile,
      std::span<const gpusim::FrequencyConfig> configs) const = 0;
};

/// Live measurement on the simulated GPU. Either owns its simulator
/// (constructed from a device model) or borrows an external one, whose
/// lifetime must then cover the backend's.
class SimulatorBackend final : public MeasurementBackend {
 public:
  explicit SimulatorBackend(gpusim::DeviceModel device, gpusim::SimOptions options = {});
  explicit SimulatorBackend(const gpusim::GpuSimulator& simulator);

  // Non-copyable/movable: sim_ points into owned_ for the owning variant,
  // and a defaulted copy/move would leave the new object aimed at the
  // source's simulator.
  SimulatorBackend(const SimulatorBackend&) = delete;
  SimulatorBackend& operator=(const SimulatorBackend&) = delete;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const gpusim::FrequencyDomain& domain() const override;
  [[nodiscard]] common::Result<std::vector<MeasuredPoint>> measure(
      const gpusim::KernelProfile& profile,
      std::span<const gpusim::FrequencyConfig> configs) const override;

  [[nodiscard]] const gpusim::GpuSimulator& simulator() const noexcept { return *sim_; }

 private:
  std::optional<gpusim::GpuSimulator> owned_;
  const gpusim::GpuSimulator* sim_;
};

/// Replays measurements recorded to CSV (columns: kernel, core_mhz, mem_mhz,
/// speedup, norm_energy). Requesting a (kernel, configuration) pair absent
/// from the trace is an error — a replay backend cannot measure anything new.
class CsvReplayBackend final : public MeasurementBackend {
 public:
  [[nodiscard]] static common::Result<CsvReplayBackend> from_document(
      const common::CsvDocument& doc, gpusim::FrequencyDomain domain);
  [[nodiscard]] static common::Result<CsvReplayBackend> from_csv(
      const std::string& path, gpusim::FrequencyDomain domain);

  /// Record a trace by measuring `profiles` x `configs` on `backend` — the
  /// document round-trips through from_document/from_csv.
  [[nodiscard]] static common::Result<common::CsvDocument> record(
      const MeasurementBackend& backend,
      std::span<const gpusim::KernelProfile> profiles,
      std::span<const gpusim::FrequencyConfig> configs);

  [[nodiscard]] std::string name() const override { return "csv-replay"; }
  [[nodiscard]] const gpusim::FrequencyDomain& domain() const override { return domain_; }
  [[nodiscard]] common::Result<std::vector<MeasuredPoint>> measure(
      const gpusim::KernelProfile& profile,
      std::span<const gpusim::FrequencyConfig> configs) const override;

  [[nodiscard]] std::size_t num_points() const noexcept { return points_.size(); }

 private:
  explicit CsvReplayBackend(gpusim::FrequencyDomain domain) : domain_(std::move(domain)) {}

  gpusim::FrequencyDomain domain_;
  std::unordered_map<std::string, MeasuredPoint> points_;  // key: kernel|core|mem
};

/// Non-owning adapter: forwards every call to a borrowed backend whose
/// lifetime must cover the adapter's. Lets APIs that take ownership
/// (e.g. Predictor::Builder::backend) share one long-lived backend — the
/// ablation harnesses hand every candidate the same CachingBackend this
/// way, so measurements are taken once instead of once per candidate/fold.
class BorrowedBackend final : public MeasurementBackend {
 public:
  explicit BorrowedBackend(const MeasurementBackend& inner) : inner_(&inner) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] const gpusim::FrequencyDomain& domain() const override {
    return inner_->domain();
  }
  [[nodiscard]] common::Result<std::vector<MeasuredPoint>> measure(
      const gpusim::KernelProfile& profile,
      std::span<const gpusim::FrequencyConfig> configs) const override {
    return inner_->measure(profile, configs);
  }

 private:
  const MeasurementBackend* inner_;
};

/// Memoizing decorator: measurements are delegated to the wrapped backend
/// once per (kernel, configuration) and served from memory afterwards.
/// Either owns the inner backend or borrows it. Not thread-safe.
class CachingBackend final : public MeasurementBackend {
 public:
  explicit CachingBackend(std::unique_ptr<MeasurementBackend> inner);
  explicit CachingBackend(const MeasurementBackend& inner);

  CachingBackend(const CachingBackend&) = delete;
  CachingBackend& operator=(const CachingBackend&) = delete;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const gpusim::FrequencyDomain& domain() const override {
    return inner_->domain();
  }
  [[nodiscard]] common::Result<std::vector<MeasuredPoint>> measure(
      const gpusim::KernelProfile& profile,
      std::span<const gpusim::FrequencyConfig> configs) const override;

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t cached_points() const noexcept { return cache_.size(); }

 private:
  std::unique_ptr<MeasurementBackend> owned_;
  const MeasurementBackend* inner_;
  mutable std::unordered_map<std::string, MeasuredPoint> cache_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace repro::core
