#include "core/pipeline.hpp"

namespace repro::core {

FeaturePipeline::FeaturePipeline(FeatureAssembler assembler,
                                 clfront::StreamOptions stream_options)
    : assembler_(assembler), stream_options_(stream_options) {}

common::Result<clfront::StaticFeatures> FeaturePipeline::featurize(
    const std::string& source, const std::string& kernel) const {
  // One-chunk streaming: bit-identical to the whole-string extractor (the
  // chunk-size-invariance contract) and covered by the stream budgets.
  clfront::SourceFeeder feeder(stream_options_);
  if (auto st = feeder.feed(source); !st.ok()) return st.error();
  if (auto st = feeder.finish(); !st.ok()) return st.error();
  return feeder.features(kernel);
}

common::Result<std::vector<clfront::StaticFeatures>> FeaturePipeline::featurize_all(
    const std::string& source) const {
  clfront::SourceFeeder feeder(stream_options_);
  if (auto st = feeder.feed(source); !st.ok()) return st.error();
  if (auto st = feeder.finish(); !st.ok()) return st.error();
  return feeder.kernel_features();
}

}  // namespace repro::core
