// The public entry point of the library: a trained predictor behind a
// builder, with every axis of the pipeline swappable.
//
//   auto predictor = core::Predictor::builder()
//                        .device(gpusim::DeviceModel::titan_x())
//                        .regressors("svr-linear", "svr-rbf")
//                        .cache("gpufreq_model_cache.txt")
//                        .build();
//   if (!predictor.ok()) { ... }
//   auto pareto = predictor.value().predict_pareto_source(kKernelSource);
//
// The builder defaults reproduce the paper end to end: simulated Titan X,
// the 106-micro-benchmark training suite, linear-SVR speedup + RBF-SVR
// energy models (C = 1000, epsilon = 0.1), 40 sampled training
// configurations. Swap any of them: another device, a recorded
// CsvReplayBackend, different regressor families from the registry, a
// custom training suite.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "clfront/features.hpp"
#include "common/status.hpp"
#include "core/measurement.hpp"
#include "core/model.hpp"
#include "core/pipeline.hpp"

namespace repro::core {

class Predictor {
 public:
  class Builder;
  [[nodiscard]] static Builder builder();

  /// Wrap an already-trained model (e.g. one handed out by
  /// serve::ModelCache) without re-training. The model is shared — several
  /// predictors (one per serving shard) can point at the same immutable
  /// FrequencyModel. `backend` may be null: prediction never measures, so a
  /// backend-less predictor supports the whole predict_* surface; only
  /// backend() is then off limits (check has_backend()).
  [[nodiscard]] static common::Result<Predictor> from_model(
      std::shared_ptr<const FrequencyModel> model,
      std::unique_ptr<MeasurementBackend> backend = nullptr);

  /// Per-kernel result of a batch prediction.
  struct KernelPrediction {
    std::string kernel;
    std::vector<PredictedPoint> pareto;
  };

  /// One raw-source prediction request (predict_source_batch, serving).
  struct SourceRequest {
    std::string source;  ///< OpenCL-C translation unit
    std::string kernel;  ///< kernel name; empty = first __kernel in `source`
  };

  // --- single-point ----------------------------------------------------------
  /// Predict both objectives for one kernel at one configuration. The
  /// configuration must be reported by the device's frequency domain.
  [[nodiscard]] common::Result<PredictedPoint> predict(
      const clfront::StaticFeatures& features, gpusim::FrequencyConfig config) const;

  /// Predictions at every given configuration (no Pareto filter).
  [[nodiscard]] common::Result<std::vector<PredictedPoint>> predict_all(
      const clfront::StaticFeatures& features,
      std::span<const gpusim::FrequencyConfig> configs) const;

  // --- Pareto ----------------------------------------------------------------
  [[nodiscard]] common::Result<std::vector<PredictedPoint>> predict_pareto(
      const clfront::StaticFeatures& features) const;
  [[nodiscard]] common::Result<std::vector<PredictedPoint>> predict_pareto(
      const clfront::StaticFeatures& features,
      std::span<const gpusim::FrequencyConfig> configs) const;

  // --- source-to-frequency (the paper's Fig. 3 flow) -------------------------
  /// Featurize OpenCL-C source through the owned FeaturePipeline and predict
  /// its Pareto set — source in, frequency recommendations out.
  [[nodiscard]] common::Result<KernelPrediction> predict_source(
      const std::string& opencl_source, const std::string& kernel_name = {}) const;

  /// Same, keeping only the Pareto set (the pre-pipeline spelling).
  [[nodiscard]] common::Result<std::vector<PredictedPoint>> predict_pareto_source(
      const std::string& opencl_source, const std::string& kernel_name = {}) const;

  /// predict_source over many sources, parallelized across them on the
  /// global thread pool. Output order and every byte are identical to the
  /// serial loop at any thread count; the first failing source (by input
  /// order) fails the batch.
  [[nodiscard]] common::Result<std::vector<KernelPrediction>> predict_source_batch(
      std::span<const SourceRequest> sources) const;

  // --- batch of kernels ------------------------------------------------------
  /// Pareto predictions for many kernels, parallelized across kernels on
  /// the global thread pool (common::ThreadPool). Output order and values
  /// are identical to the serial loop at any thread count.
  [[nodiscard]] common::Result<std::vector<KernelPrediction>> predict_batch(
      std::span<const clfront::StaticFeatures> kernels) const;

  // --- introspection ---------------------------------------------------------
  /// The source→features→model-input pipeline this predictor featurizes
  /// with (built on the trained model's FeatureAssembler).
  [[nodiscard]] const FeaturePipeline& pipeline() const noexcept { return pipeline_; }
  [[nodiscard]] const FrequencyModel& model() const noexcept { return *model_; }
  /// The trained model as a shareable handle (what serve::ModelCache stores).
  [[nodiscard]] std::shared_ptr<const FrequencyModel> share_model() const noexcept {
    return model_;
  }
  /// False for predictors created by from_model without a backend.
  [[nodiscard]] bool has_backend() const noexcept { return backend_ != nullptr; }
  /// Precondition: has_backend().
  [[nodiscard]] const MeasurementBackend& backend() const noexcept { return *backend_; }
  [[nodiscard]] const gpusim::FrequencyDomain& domain() const noexcept {
    return model_->domain();
  }

 private:
  Predictor(std::unique_ptr<MeasurementBackend> backend,
            std::shared_ptr<const FrequencyModel> model)
      : backend_(std::move(backend)),
        model_(std::move(model)),
        pipeline_(model_->assembler()) {}

  std::unique_ptr<MeasurementBackend> backend_;
  std::shared_ptr<const FrequencyModel> model_;
  FeaturePipeline pipeline_;
};

class Predictor::Builder {
 public:
  /// Measurement device (default: the simulated Titan X).
  Builder& device(gpusim::DeviceModel device);
  Builder& sim_options(gpusim::SimOptions options);

  /// Custom measurement backend; overrides device()/sim_options().
  Builder& backend(std::unique_ptr<MeasurementBackend> backend);

  /// Registry keys for the two objective models (see
  /// ml::registered_regressors()).
  Builder& regressors(std::string speedup_key, std::string energy_key);
  Builder& regressor_params(ml::RegressorParams speedup, ml::RegressorParams energy);

  /// Replace the full training options (regressor keys included).
  Builder& training(TrainingOptions options);
  Builder& num_configs(std::size_t n);

  /// Custom training suite (default: the 106 generated micro-benchmarks).
  Builder& suite(std::vector<benchgen::MicroBenchmark> suite);

  /// Persist the trained model here and reuse it across builds.
  Builder& cache(std::string model_cache_path);

  /// Wrap the backend in a memoizing CachingBackend.
  Builder& memoize(bool on = true);

  /// Assemble the backend, generate/adopt the suite, then train (or load
  /// the cached model).
  [[nodiscard]] common::Result<Predictor> build();

 private:
  gpusim::DeviceModel device_ = gpusim::DeviceModel::titan_x();
  gpusim::SimOptions sim_options_{};
  std::unique_ptr<MeasurementBackend> backend_;
  TrainingOptions training_{};
  std::optional<std::vector<benchgen::MicroBenchmark>> suite_;
  std::optional<std::string> cache_path_;
  bool memoize_ = false;
};

}  // namespace repro::core
