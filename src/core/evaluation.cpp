#include "core/evaluation.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"

namespace repro::core {

namespace {

std::vector<gpusim::MemLevel> figure_level_order() {
  // Figs. 6 and 7 stack the blocks highest-first: H, h, l, L.
  return {gpusim::MemLevel::kH, gpusim::MemLevel::kHigh, gpusim::MemLevel::kLow,
          gpusim::MemLevel::kL};
}

}  // namespace

ExperimentPipeline::ExperimentPipeline(PipelineOptions options)
    : options_(options),
      sim_(gpusim::DeviceModel::titan_x(), gpusim::SimOptions{.seed = options.seed}) {}

common::Status ExperimentPipeline::prepare() {
  if (model_.has_value()) return common::Status::Ok();
  auto suite = benchgen::generate_training_suite(options_.seed);
  if (!suite.ok()) return suite.error();
  suite_ = std::move(suite).take();

  // Train through the measurement abstraction (the pipeline's backend is the
  // live simulator; swap in a CsvReplayBackend to re-run figures offline).
  const SimulatorBackend backend(sim_);
  common::Result<FrequencyModel> model = common::internal_error("unreachable");
  if (options_.model_cache_path.has_value()) {
    model = FrequencyModel::train_or_load(backend, suite_, options_.training,
                                          *options_.model_cache_path);
  } else {
    model = FrequencyModel::train(backend, suite_, options_.training);
  }
  if (!model.ok()) return model.error();
  model_ = std::move(model).take();
  return common::Status::Ok();
}

const FrequencyModel& ExperimentPipeline::model() const {
  if (!model_.has_value()) throw std::logic_error("ExperimentPipeline: call prepare()");
  return *model_;
}

const std::vector<benchgen::MicroBenchmark>& ExperimentPipeline::training_suite() const {
  return suite_;
}

std::vector<gpusim::FrequencyConfig> ExperimentPipeline::evaluation_configs() const {
  return sim_.freq().sample_configs(options_.training.num_configs);
}

ErrorReport ExperimentPipeline::errors_for(bool speedup_objective) const {
  const FrequencyModel& m = model();
  ErrorReport report;
  report.objective = speedup_objective ? "speedup" : "normalized energy";

  for (const auto level : figure_level_order()) {
    const auto* domain = sim_.freq().find_domain(level);
    if (domain == nullptr) continue;
    ErrorReport::LevelBlock block;
    block.level = level;
    block.mem_mhz = domain->mem_mhz;

    std::vector<double> all_pred;
    std::vector<double> all_true;
    for (const auto& benchmark : kernels::test_suite()) {
      const auto features = kernels::benchmark_features(benchmark);
      if (!features.ok()) continue;

      std::vector<gpusim::FrequencyConfig> configs;
      configs.reserve(domain->actual_core_mhz.size());
      for (int core : domain->actual_core_mhz) configs.push_back({core, domain->mem_mhz});

      const auto measured = sim_.characterize(benchmark.profile, configs);
      const auto predicted = m.predict_all(features.value(), configs);

      ErrorGroup group;
      group.benchmark = benchmark.name;
      group.level = level;
      group.mem_mhz = domain->mem_mhz;
      for (std::size_t i = 0; i < configs.size(); ++i) {
        const double truth =
            speedup_objective ? measured[i].speedup : measured[i].norm_energy;
        const double pred = speedup_objective ? predicted[i].speedup : predicted[i].energy;
        group.errors_percent.push_back(100.0 * (pred - truth));
        all_pred.push_back(pred);
        all_true.push_back(truth);
      }
      group.box = common::box_stats(group.errors_percent);
      block.per_benchmark.push_back(std::move(group));
    }
    block.rmse_percent = 100.0 * common::rmse(all_pred, all_true);
    report.levels.push_back(std::move(block));
  }
  return report;
}

ErrorReport ExperimentPipeline::speedup_errors() const { return errors_for(true); }
ErrorReport ExperimentPipeline::energy_errors() const { return errors_for(false); }

std::vector<ParetoCase> ExperimentPipeline::pareto_evaluation() const {
  const FrequencyModel& m = model();
  const auto configs = evaluation_configs();

  std::vector<ParetoCase> cases;
  for (const auto& benchmark : kernels::test_suite()) {
    const auto features = kernels::benchmark_features(benchmark);
    if (!features.ok()) continue;

    ParetoCase pc;
    pc.name = benchmark.name;
    pc.measured = sim_.characterize(benchmark.profile, configs);

    // True front P* over the measured evaluation points.
    std::vector<pareto::Point> measured_points;
    measured_points.reserve(pc.measured.size());
    for (std::size_t i = 0; i < pc.measured.size(); ++i) {
      measured_points.push_back({pc.measured[i].speedup, pc.measured[i].norm_energy,
                                 static_cast<std::uint32_t>(i)});
    }
    pc.true_front = pareto::pareto_set_fast(measured_points);
    pareto::sort_front(pc.true_front);

    // Predicted set P', then re-evaluated at measured objectives.
    pc.predicted = m.predict_pareto(features.value(), configs);
    for (const auto& p : pc.predicted) {
      const auto meas = sim_.run_at(benchmark.profile, p.config);
      const auto def = sim_.run_default(benchmark.profile);
      pc.predicted_measured.push_back(
          {def.time_ms / meas.time_ms, meas.energy_j / def.energy_j, 0});
    }
    pc.evaluation = pareto::evaluate_front(pc.true_front, pc.predicted_measured);
    cases.push_back(std::move(pc));
  }

  std::sort(cases.begin(), cases.end(), [](const ParetoCase& a, const ParetoCase& b) {
    return a.evaluation.coverage < b.evaluation.coverage;
  });
  return cases;
}

}  // namespace repro::core
