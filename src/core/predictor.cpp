#include "core/predictor.hpp"

#include <utility>

#include "common/thread_pool.hpp"

namespace repro::core {

Predictor::Builder Predictor::builder() { return Builder(); }

// --- Builder -----------------------------------------------------------------

Predictor::Builder& Predictor::Builder::device(gpusim::DeviceModel device) {
  device_ = std::move(device);
  return *this;
}

Predictor::Builder& Predictor::Builder::sim_options(gpusim::SimOptions options) {
  sim_options_ = options;
  return *this;
}

Predictor::Builder& Predictor::Builder::backend(
    std::unique_ptr<MeasurementBackend> backend) {
  backend_ = std::move(backend);
  return *this;
}

Predictor::Builder& Predictor::Builder::regressors(std::string speedup_key,
                                                   std::string energy_key) {
  training_.models.speedup_regressor = std::move(speedup_key);
  training_.models.energy_regressor = std::move(energy_key);
  return *this;
}

Predictor::Builder& Predictor::Builder::regressor_params(ml::RegressorParams speedup,
                                                         ml::RegressorParams energy) {
  training_.models.speedup = speedup;
  training_.models.energy = energy;
  return *this;
}

Predictor::Builder& Predictor::Builder::training(TrainingOptions options) {
  training_ = std::move(options);
  return *this;
}

Predictor::Builder& Predictor::Builder::num_configs(std::size_t n) {
  training_.num_configs = n;
  return *this;
}

Predictor::Builder& Predictor::Builder::suite(std::vector<benchgen::MicroBenchmark> suite) {
  suite_ = std::move(suite);
  return *this;
}

Predictor::Builder& Predictor::Builder::cache(std::string model_cache_path) {
  cache_path_ = std::move(model_cache_path);
  return *this;
}

Predictor::Builder& Predictor::Builder::memoize(bool on) {
  memoize_ = on;
  return *this;
}

common::Result<Predictor> Predictor::Builder::build() {
  // Validate the cheap-to-check axes before any backend or suite work, so a
  // misconfigured builder fails in microseconds, not after a training pass.
  for (const std::string& key :
       {training_.models.speedup_regressor, training_.models.energy_regressor}) {
    if (key.empty()) {
      return common::invalid_argument("Predictor::builder: empty regressor key");
    }
    if (!ml::RegressorRegistry::instance().contains(key)) {
      return common::not_found("Predictor::builder: unknown regressor \"" + key +
                               "\"; registered: " + [] {
                                 std::string joined;
                                 for (const auto& n : ml::registered_regressors()) {
                                   if (!joined.empty()) joined += ", ";
                                   joined += n;
                                 }
                                 return joined;
                               }());
    }
  }
  if (training_.num_configs == 0) {
    return common::invalid_argument(
        "Predictor::builder: num_configs must be positive");
  }
  if (suite_.has_value() && suite_->empty()) {
    return common::invalid_argument("Predictor::builder: empty training suite");
  }

  std::unique_ptr<MeasurementBackend> backend = std::move(backend_);
  if (backend == nullptr) {
    backend = std::make_unique<SimulatorBackend>(device_, sim_options_);
  }
  if (memoize_) {
    backend = std::make_unique<CachingBackend>(std::move(backend));
  }

  std::vector<benchgen::MicroBenchmark> suite;
  if (suite_.has_value()) {
    suite = std::move(*suite_);
  } else {
    auto generated = benchgen::generate_training_suite();
    if (!generated.ok()) return generated.error();
    suite = std::move(generated).take();
  }

  auto model = cache_path_.has_value()
                   ? FrequencyModel::train_or_load(*backend, suite, training_,
                                                   *cache_path_)
                   : FrequencyModel::train(*backend, suite, training_);
  if (!model.ok()) return model.error();
  return Predictor(std::move(backend),
                   std::make_shared<const FrequencyModel>(std::move(model).take()));
}

// --- from_model --------------------------------------------------------------

common::Result<Predictor> Predictor::from_model(
    std::shared_ptr<const FrequencyModel> model,
    std::unique_ptr<MeasurementBackend> backend) {
  if (model == nullptr) {
    return common::invalid_argument("Predictor::from_model: null model");
  }
  return Predictor(std::move(backend), std::move(model));
}

// --- Predictor ---------------------------------------------------------------

common::Result<PredictedPoint> Predictor::predict(const clfront::StaticFeatures& features,
                                                  gpusim::FrequencyConfig config) const {
  if (!domain().is_reported(config)) {
    return common::invalid_argument(
        "predict: configuration core " + std::to_string(config.core_mhz) + " / mem " +
        std::to_string(config.mem_mhz) + " is not reported by " +
        domain().device_name());
  }
  return PredictedPoint{config, model_->predict_speedup(features, config),
                        model_->predict_energy(features, config), false};
}

common::Result<std::vector<PredictedPoint>> Predictor::predict_all(
    const clfront::StaticFeatures& features,
    std::span<const gpusim::FrequencyConfig> configs) const {
  if (configs.empty()) return common::invalid_argument("predict_all: no configurations");
  return model_->predict_all(features, configs);
}

common::Result<std::vector<PredictedPoint>> Predictor::predict_pareto(
    const clfront::StaticFeatures& features) const {
  return model_->predict_pareto(features);
}

common::Result<std::vector<PredictedPoint>> Predictor::predict_pareto(
    const clfront::StaticFeatures& features,
    std::span<const gpusim::FrequencyConfig> configs) const {
  if (configs.empty()) {
    return common::invalid_argument("predict_pareto: no configurations");
  }
  return model_->predict_pareto(features, configs);
}

common::Result<Predictor::KernelPrediction> Predictor::predict_source(
    const std::string& opencl_source, const std::string& kernel_name) const {
  auto features = pipeline_.featurize(opencl_source, kernel_name);
  if (!features.ok()) return features.error();
  KernelPrediction prediction;
  prediction.kernel = features.value().kernel_name;
  prediction.pareto = model_->predict_pareto(features.value());
  return prediction;
}

common::Result<std::vector<PredictedPoint>> Predictor::predict_pareto_source(
    const std::string& opencl_source, const std::string& kernel_name) const {
  auto prediction = predict_source(opencl_source, kernel_name);
  if (!prediction.ok()) return prediction.error();
  return std::move(prediction.value().pareto);
}

common::Result<std::vector<Predictor::KernelPrediction>> Predictor::predict_source_batch(
    std::span<const SourceRequest> sources) const {
  if (sources.empty()) {
    return common::invalid_argument("predict_source_batch: no sources");
  }
  // Sources are independent — featurize and predict each into its own slot
  // (identical to the serial loop at any thread count); the first failure
  // by input order, not completion order, fails the batch.
  std::vector<common::Result<KernelPrediction>> slots(
      sources.size(), common::internal_error("unset"));
  common::ThreadPool::global().parallel_for(
      0, sources.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          slots[i] = predict_source(sources[i].source, sources[i].kernel);
        }
      });
  std::vector<KernelPrediction> out;
  out.reserve(sources.size());
  for (auto& slot : slots) {
    if (!slot.ok()) return slot.error();
    out.push_back(std::move(slot).take());
  }
  return out;
}

common::Result<std::vector<Predictor::KernelPrediction>> Predictor::predict_batch(
    std::span<const clfront::StaticFeatures> kernels) const {
  if (kernels.empty()) return common::invalid_argument("predict_batch: no kernels");
  // Kernels are independent — predict them in parallel, each into its own
  // slot so the output order (and every value in it) is identical to the
  // serial loop at any thread count.
  std::vector<KernelPrediction> out(kernels.size());
  common::ThreadPool::global().parallel_for(
      0, kernels.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = {kernels[i].kernel_name, model_->predict_pareto(kernels[i])};
        }
      });
  return out;
}

}  // namespace repro::core
