#include "core/measurement.hpp"

#include <algorithm>
#include <charconv>
#include <utility>

#include "common/strings.hpp"

namespace repro::core {

namespace {

std::string point_key(const std::string& kernel, gpusim::FrequencyConfig config) {
  return kernel + '|' + std::to_string(config.core_mhz) + '|' +
         std::to_string(config.mem_mhz);
}

common::Result<int> parse_int(const std::string& s) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    return common::parse_error("not an integer: " + s);
  }
  return value;
}

common::Result<double> parse_double(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(s, &pos);
    if (pos != s.size()) return common::parse_error("not a number: " + s);
    return value;
  } catch (const std::exception&) {
    return common::parse_error("not a number: " + s);
  }
}

}  // namespace

// --- SimulatorBackend --------------------------------------------------------

SimulatorBackend::SimulatorBackend(gpusim::DeviceModel device, gpusim::SimOptions options)
    : owned_(gpusim::GpuSimulator(std::move(device), options)), sim_(&*owned_) {}

SimulatorBackend::SimulatorBackend(const gpusim::GpuSimulator& simulator)
    : sim_(&simulator) {}

std::string SimulatorBackend::name() const {
  return "simulator:" + sim_->device().name;
}

const gpusim::FrequencyDomain& SimulatorBackend::domain() const { return sim_->freq(); }

common::Result<std::vector<MeasuredPoint>> SimulatorBackend::measure(
    const gpusim::KernelProfile& profile,
    std::span<const gpusim::FrequencyConfig> configs) const {
  const auto characterized = sim_->characterize(profile, configs);
  std::vector<MeasuredPoint> out;
  out.reserve(characterized.size());
  for (const auto& p : characterized) {
    out.push_back({p.config, p.speedup, p.norm_energy});
  }
  return out;
}

// --- CsvReplayBackend --------------------------------------------------------

common::Result<CsvReplayBackend> CsvReplayBackend::from_document(
    const common::CsvDocument& doc, gpusim::FrequencyDomain domain) {
  const char* const columns[] = {"kernel", "core_mhz", "mem_mhz", "speedup",
                                 "norm_energy"};
  std::size_t idx[5] = {};
  for (std::size_t i = 0; i < 5; ++i) {
    auto col = doc.column_index(columns[i]);
    if (!col.ok()) return col.error();
    idx[i] = col.value();
  }

  CsvReplayBackend backend(std::move(domain));
  for (const auto& row : doc.rows()) {
    if (row.size() <= std::max({idx[0], idx[1], idx[2], idx[3], idx[4]})) {
      return common::parse_error("measurement trace: short row");
    }
    const auto core = parse_int(row[idx[1]]);
    if (!core.ok()) return core.error();
    const auto mem = parse_int(row[idx[2]]);
    if (!mem.ok()) return mem.error();
    const auto speedup = parse_double(row[idx[3]]);
    if (!speedup.ok()) return speedup.error();
    const auto energy = parse_double(row[idx[4]]);
    if (!energy.ok()) return energy.error();
    const gpusim::FrequencyConfig config{core.value(), mem.value()};
    backend.points_[point_key(row[idx[0]], config)] =
        MeasuredPoint{config, speedup.value(), energy.value()};
  }
  return backend;
}

common::Result<CsvReplayBackend> CsvReplayBackend::from_csv(
    const std::string& path, gpusim::FrequencyDomain domain) {
  auto doc = common::CsvDocument::load(path);
  if (!doc.ok()) return doc.error();
  return from_document(doc.value(), std::move(domain));
}

common::Result<common::CsvDocument> CsvReplayBackend::record(
    const MeasurementBackend& backend, std::span<const gpusim::KernelProfile> profiles,
    std::span<const gpusim::FrequencyConfig> configs) {
  common::CsvDocument doc({"kernel", "core_mhz", "mem_mhz", "speedup", "norm_energy"});
  for (const auto& profile : profiles) {
    auto points = backend.measure(profile, configs);
    if (!points.ok()) return points.error();
    for (const auto& p : points.value()) {
      doc.add_row({profile.name, std::to_string(p.config.core_mhz),
                   std::to_string(p.config.mem_mhz), common::format_double(p.speedup, 17),
                   common::format_double(p.norm_energy, 17)});
    }
  }
  return doc;
}

common::Result<std::vector<MeasuredPoint>> CsvReplayBackend::measure(
    const gpusim::KernelProfile& profile,
    std::span<const gpusim::FrequencyConfig> configs) const {
  std::vector<MeasuredPoint> out;
  out.reserve(configs.size());
  for (const auto& config : configs) {
    const auto it = points_.find(point_key(profile.name, config));
    if (it == points_.end()) {
      return common::not_found("csv-replay: no recorded measurement for kernel \"" +
                               profile.name + "\" at core " +
                               std::to_string(config.core_mhz) + " / mem " +
                               std::to_string(config.mem_mhz));
    }
    out.push_back(it->second);
  }
  return out;
}

// --- CachingBackend ----------------------------------------------------------

CachingBackend::CachingBackend(std::unique_ptr<MeasurementBackend> inner)
    : owned_(std::move(inner)), inner_(owned_.get()) {}

CachingBackend::CachingBackend(const MeasurementBackend& inner) : inner_(&inner) {}

std::string CachingBackend::name() const { return "caching(" + inner_->name() + ")"; }

common::Result<std::vector<MeasuredPoint>> CachingBackend::measure(
    const gpusim::KernelProfile& profile,
    std::span<const gpusim::FrequencyConfig> configs) const {
  // Collect the configurations not yet cached, measure them in one batch
  // (preserving the inner backend's batching behaviour), then serve the
  // requested order from the cache.
  std::vector<gpusim::FrequencyConfig> missing;
  for (const auto& config : configs) {
    if (!cache_.contains(point_key(profile.name, config))) missing.push_back(config);
  }
  if (!missing.empty()) {
    auto measured = inner_->measure(profile, missing);
    if (!measured.ok()) return measured.error();
    for (const auto& p : measured.value()) {
      cache_[point_key(profile.name, p.config)] = p;
    }
  }
  hits_ += configs.size() - missing.size();
  misses_ += missing.size();

  std::vector<MeasuredPoint> out;
  out.reserve(configs.size());
  for (const auto& config : configs) {
    const auto it = cache_.find(point_key(profile.name, config));
    if (it == cache_.end()) {
      return common::internal_error("caching backend: inner backend did not return " +
                                    point_key(profile.name, config));
    }
    out.push_back(it->second);
  }
  return out;
}

}  // namespace repro::core
