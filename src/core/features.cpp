#include "core/features.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::core {

FeatureAssembler::FeatureAssembler(const gpusim::FrequencyDomain& domain)
    : core_min_(1e18), core_max_(-1e18), mem_min_(1e18), mem_max_(-1e18) {
  for (const auto& config : domain.all_actual()) {
    core_min_ = std::min(core_min_, static_cast<double>(config.core_mhz));
    core_max_ = std::max(core_max_, static_cast<double>(config.core_mhz));
    mem_min_ = std::min(mem_min_, static_cast<double>(config.mem_mhz));
    mem_max_ = std::max(mem_max_, static_cast<double>(config.mem_mhz));
  }
  if (core_min_ >= core_max_ || mem_min_ > mem_max_) {
    throw std::invalid_argument("FeatureAssembler: degenerate frequency domain");
  }
}

FeatureAssembler::FeatureAssembler(double core_min, double core_max, double mem_min,
                                   double mem_max)
    : core_min_(core_min), core_max_(core_max), mem_min_(mem_min), mem_max_(mem_max) {}

double FeatureAssembler::normalize_core(double mhz) const noexcept {
  return (mhz - core_min_) / (core_max_ - core_min_);
}

double FeatureAssembler::normalize_mem(double mhz) const noexcept {
  if (mem_max_ == mem_min_) return 0.0;  // single-memory-clock devices (P100)
  return (mhz - mem_min_) / (mem_max_ - mem_min_);
}

std::array<double, kFeatureDim> FeatureAssembler::assemble(
    const clfront::StaticFeatures& features, gpusim::FrequencyConfig config) const {
  return assemble(features.normalized(), config);
}

std::array<double, kFeatureDim> FeatureAssembler::assemble(
    const std::array<double, clfront::kNumFeatures>& normalized_static,
    gpusim::FrequencyConfig config) const {
  std::array<double, kFeatureDim> out{};
  for (std::size_t i = 0; i < clfront::kNumFeatures; ++i) out[i] = normalized_static[i];
  out[clfront::kNumFeatures] = normalize_core(static_cast<double>(config.core_mhz));
  out[clfront::kNumFeatures + 1] = normalize_mem(static_cast<double>(config.mem_mhz));
  return out;
}

}  // namespace repro::core
