// End-to-end experiment pipeline shared by the benchmark harnesses
// (Figs. 6-8, Table 2): builds the simulated Titan X, generates the 106
// micro-benchmark training suite, trains (or loads) the predictor, and
// evaluates it on the twelve test benchmarks.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/model.hpp"
#include "gpusim/simulator.hpp"
#include "kernels/kernels.hpp"
#include "pareto/front_metrics.hpp"

namespace repro::core {

struct PipelineOptions {
  std::uint64_t seed = 0x5EED0001ULL;
  TrainingOptions training;
  /// When set, the trained model is cached at this path across runs.
  std::optional<std::string> model_cache_path = std::nullopt;
};

/// Per-(benchmark, memory level) error sample for Figs. 6 and 7.
///
/// Errors are in *percentage points of the default-normalized scale*:
/// err = 100 * (predicted - measured). Both objectives are ratios against
/// the default configuration (speedup, normalized energy ~ 1.0), so one
/// percentage point equals 1% of the default configuration's value — the
/// natural reading of the paper's "Mean error [%]" axes.
struct ErrorGroup {
  std::string benchmark;
  gpusim::MemLevel level = gpusim::MemLevel::kH;
  int mem_mhz = 0;
  std::vector<double> errors_percent;  // signed errors, percentage points
  common::BoxStats box;                // five-number summary of the above
};

/// One memory-level block of Fig. 6 / Fig. 7: per-benchmark boxes + the
/// group RMSE the paper annotates ("RMSE = 6.68%").
struct ErrorReport {
  struct LevelBlock {
    gpusim::MemLevel level;
    int mem_mhz = 0;
    std::vector<ErrorGroup> per_benchmark;
    double rmse_percent = 0.0;
  };
  std::string objective;  // "speedup" or "normalized energy"
  std::vector<LevelBlock> levels;  // ordered H, h, l, L like the figures
};

/// Fig. 8 / Table 2 material for one test benchmark.
struct ParetoCase {
  std::string name;
  /// Measured (speedup, energy) at every evaluation configuration.
  std::vector<gpusim::GpuSimulator::CharacterizedPoint> measured;
  /// True Pareto front P* of `measured`.
  std::vector<pareto::Point> true_front;
  /// Predicted set P' (configs + predicted objectives; the heuristic mem-L
  /// point is flagged).
  std::vector<PredictedPoint> predicted;
  /// P' re-evaluated at its *measured* objectives (what Table 2 scores).
  std::vector<pareto::Point> predicted_measured;
  pareto::FrontEvaluation evaluation;
};

class ExperimentPipeline {
 public:
  explicit ExperimentPipeline(PipelineOptions options = {});

  /// Train (or load the cached) model. Idempotent.
  [[nodiscard]] common::Status prepare();

  [[nodiscard]] const gpusim::GpuSimulator& simulator() const noexcept { return sim_; }
  [[nodiscard]] const FrequencyModel& model() const;
  [[nodiscard]] const std::vector<benchgen::MicroBenchmark>& training_suite() const;

  /// Error analyses over every actual configuration (Figs. 6 and 7).
  [[nodiscard]] ErrorReport speedup_errors() const;
  [[nodiscard]] ErrorReport energy_errors() const;

  /// Pareto evaluation on the sampled configuration set (Fig. 8, Table 2),
  /// for all twelve benchmarks in Table-2 order (by coverage, ascending).
  [[nodiscard]] std::vector<ParetoCase> pareto_evaluation() const;

  /// The evaluation configuration sampling (same scheme as training).
  [[nodiscard]] std::vector<gpusim::FrequencyConfig> evaluation_configs() const;

 private:
  [[nodiscard]] ErrorReport errors_for(bool speedup_objective) const;

  PipelineOptions options_;
  gpusim::GpuSimulator sim_;
  std::vector<benchgen::MicroBenchmark> suite_;
  std::optional<FrequencyModel> model_;
};

}  // namespace repro::core
