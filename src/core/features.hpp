// Feature assembly (paper §3.2): the model input for one kernel execution is
//   w = (k, f)
// where k is the 10-component static feature vector normalized over the
// total instruction count, and f = (f_core, f_mem) linearly mapped into
// [0, 1] over the device's actual clock ranges.
#pragma once

#include <array>
#include <vector>

#include "clfront/features.hpp"
#include "gpusim/freq_table.hpp"

namespace repro::core {

/// Dimensionality of the assembled feature vector: 10 static + 2 frequency.
inline constexpr std::size_t kFeatureDim = clfront::kNumFeatures + 2;

class FeatureAssembler {
 public:
  /// Bounds are taken from the device's *actual* configurations.
  explicit FeatureAssembler(const gpusim::FrequencyDomain& domain);

  /// For persistence: explicit bounds.
  FeatureAssembler(double core_min, double core_max, double mem_min, double mem_max);

  [[nodiscard]] std::array<double, kFeatureDim> assemble(
      const clfront::StaticFeatures& features, gpusim::FrequencyConfig config) const;

  /// Assemble from an already-normalized static vector.
  [[nodiscard]] std::array<double, kFeatureDim> assemble(
      const std::array<double, clfront::kNumFeatures>& normalized_static,
      gpusim::FrequencyConfig config) const;

  [[nodiscard]] double normalize_core(double mhz) const noexcept;
  [[nodiscard]] double normalize_mem(double mhz) const noexcept;

  [[nodiscard]] double core_min() const noexcept { return core_min_; }
  [[nodiscard]] double core_max() const noexcept { return core_max_; }
  [[nodiscard]] double mem_min() const noexcept { return mem_min_; }
  [[nodiscard]] double mem_max() const noexcept { return mem_max_; }

 private:
  double core_min_;
  double core_max_;
  double mem_min_;
  double mem_max_;
};

}  // namespace repro::core
