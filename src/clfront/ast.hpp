// Abstract syntax tree of the OpenCL-C subset.
//
// Nodes are tagged with a kind enum and down-cast with the checked as<T>()
// helpers; ownership is strictly tree-shaped via unique_ptr.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "clfront/token.hpp"
#include "clfront/types.hpp"

namespace repro::clfront {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  kIntLiteral,
  kFloatLiteral,
  kVarRef,
  kUnary,
  kBinary,
  kAssign,
  kConditional,
  kCall,
  kIndex,
  kMember,     // vector component access / swizzle
  kCast,
  kVectorCtor, // (float4)(a,b,c,d) or float4(a,b,c,d)
};

struct Expr {
  explicit Expr(ExprKind kind, SourceLoc loc) : kind(kind), loc(loc) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  template <typename T>
  [[nodiscard]] const T& as() const {
    return static_cast<const T&>(*this);
  }

  ExprKind kind;
  SourceLoc loc;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLiteralExpr final : Expr {
  IntLiteralExpr(std::uint64_t value, bool is_unsigned, SourceLoc loc)
      : Expr(ExprKind::kIntLiteral, loc), value(value), is_unsigned(is_unsigned) {}
  std::uint64_t value;
  bool is_unsigned;
};

struct FloatLiteralExpr final : Expr {
  FloatLiteralExpr(double value, bool is_float32, SourceLoc loc)
      : Expr(ExprKind::kFloatLiteral, loc), value(value), is_float32(is_float32) {}
  double value;
  bool is_float32;
};

struct VarRefExpr final : Expr {
  VarRefExpr(std::string name, SourceLoc loc)
      : Expr(ExprKind::kVarRef, loc), name(std::move(name)) {}
  std::string name;
};

enum class UnaryOp : std::uint8_t {
  kNegate,   // -x
  kNot,      // !x
  kBitNot,   // ~x
  kPreInc, kPreDec, kPostInc, kPostDec,
};

struct UnaryExpr final : Expr {
  UnaryExpr(UnaryOp op, ExprPtr operand, SourceLoc loc)
      : Expr(ExprKind::kUnary, loc), op(op), operand(std::move(operand)) {}
  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kLogicalAnd, kLogicalOr,
  kEq, kNe, kLt, kGt, kLe, kGe,
};

struct BinaryExpr final : Expr {
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc)
      : Expr(ExprKind::kBinary, loc), op(op), lhs(std::move(lhs)), rhs(std::move(rhs)) {}
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// Assignment, optionally compound (op != nullopt means `lhs op= rhs`).
struct AssignExpr final : Expr {
  AssignExpr(ExprPtr lhs, ExprPtr rhs, std::optional<BinaryOp> op, SourceLoc loc)
      : Expr(ExprKind::kAssign, loc), lhs(std::move(lhs)), rhs(std::move(rhs)), op(op) {}
  ExprPtr lhs;
  ExprPtr rhs;
  std::optional<BinaryOp> op;
};

struct ConditionalExpr final : Expr {
  ConditionalExpr(ExprPtr cond, ExprPtr then_e, ExprPtr else_e, SourceLoc loc)
      : Expr(ExprKind::kConditional, loc),
        cond(std::move(cond)),
        then_expr(std::move(then_e)),
        else_expr(std::move(else_e)) {}
  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
};

struct CallExpr final : Expr {
  CallExpr(std::string callee, std::vector<ExprPtr> args, SourceLoc loc)
      : Expr(ExprKind::kCall, loc), callee(std::move(callee)), args(std::move(args)) {}
  std::string callee;
  std::vector<ExprPtr> args;
};

struct IndexExpr final : Expr {
  IndexExpr(ExprPtr base, ExprPtr index, SourceLoc loc)
      : Expr(ExprKind::kIndex, loc), base(std::move(base)), index(std::move(index)) {}
  ExprPtr base;
  ExprPtr index;
};

struct MemberExpr final : Expr {
  MemberExpr(ExprPtr base, std::string member, SourceLoc loc)
      : Expr(ExprKind::kMember, loc), base(std::move(base)), member(std::move(member)) {}
  ExprPtr base;
  std::string member;  // "x", "y", "s0", "xyzw", ...
};

struct CastExpr final : Expr {
  CastExpr(Type target, ExprPtr operand, SourceLoc loc)
      : Expr(ExprKind::kCast, loc), target(target), operand(std::move(operand)) {}
  Type target;
  ExprPtr operand;
};

struct VectorCtorExpr final : Expr {
  VectorCtorExpr(Type type, std::vector<ExprPtr> args, SourceLoc loc)
      : Expr(ExprKind::kVectorCtor, loc), type(type), args(std::move(args)) {}
  Type type;
  std::vector<ExprPtr> args;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  kCompound,
  kDecl,
  kExpr,
  kIf,
  kFor,
  kWhile,
  kDoWhile,
  kReturn,
  kBreak,
  kContinue,
};

struct Stmt {
  explicit Stmt(StmtKind kind, SourceLoc loc) : kind(kind), loc(loc) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  template <typename T>
  [[nodiscard]] const T& as() const {
    return static_cast<const T&>(*this);
  }

  StmtKind kind;
  SourceLoc loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct CompoundStmt final : Stmt {
  explicit CompoundStmt(SourceLoc loc) : Stmt(StmtKind::kCompound, loc) {}
  std::vector<StmtPtr> body;
};

/// One declared variable; a DeclStmt may declare several.
struct VarDecl {
  std::string name;
  Type type;
  ExprPtr init;  // may be null
  /// Array size for local arrays like `__local float tile[256];` (0 = scalar).
  std::uint64_t array_size = 0;
};

struct DeclStmt final : Stmt {
  explicit DeclStmt(SourceLoc loc) : Stmt(StmtKind::kDecl, loc) {}
  std::vector<VarDecl> decls;
};

struct ExprStmt final : Stmt {
  ExprStmt(ExprPtr expr, SourceLoc loc) : Stmt(StmtKind::kExpr, loc), expr(std::move(expr)) {}
  ExprPtr expr;
};

struct IfStmt final : Stmt {
  IfStmt(ExprPtr cond, StmtPtr then_s, StmtPtr else_s, SourceLoc loc)
      : Stmt(StmtKind::kIf, loc),
        cond(std::move(cond)),
        then_stmt(std::move(then_s)),
        else_stmt(std::move(else_s)) {}
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  // may be null
};

struct ForStmt final : Stmt {
  explicit ForStmt(SourceLoc loc) : Stmt(StmtKind::kFor, loc) {}
  StmtPtr init;    // DeclStmt or ExprStmt or null
  ExprPtr cond;    // may be null
  ExprPtr step;    // may be null
  StmtPtr body;
};

struct WhileStmt final : Stmt {
  WhileStmt(ExprPtr cond, StmtPtr body, SourceLoc loc)
      : Stmt(StmtKind::kWhile, loc), cond(std::move(cond)), body(std::move(body)) {}
  ExprPtr cond;
  StmtPtr body;
};

struct DoWhileStmt final : Stmt {
  DoWhileStmt(StmtPtr body, ExprPtr cond, SourceLoc loc)
      : Stmt(StmtKind::kDoWhile, loc), body(std::move(body)), cond(std::move(cond)) {}
  StmtPtr body;
  ExprPtr cond;
};

struct ReturnStmt final : Stmt {
  ReturnStmt(ExprPtr value, SourceLoc loc)
      : Stmt(StmtKind::kReturn, loc), value(std::move(value)) {}
  ExprPtr value;  // may be null
};

struct BreakStmt final : Stmt {
  explicit BreakStmt(SourceLoc loc) : Stmt(StmtKind::kBreak, loc) {}
};

struct ContinueStmt final : Stmt {
  explicit ContinueStmt(SourceLoc loc) : Stmt(StmtKind::kContinue, loc) {}
};

// ---------------------------------------------------------------------------
// Functions / translation unit
// ---------------------------------------------------------------------------

struct ParamDecl {
  std::string name;
  Type type;
};

struct FunctionDecl {
  std::string name;
  Type return_type;
  std::vector<ParamDecl> params;
  std::unique_ptr<CompoundStmt> body;
  bool is_kernel = false;
  SourceLoc loc;
};

struct TranslationUnit {
  std::vector<FunctionDecl> functions;

  [[nodiscard]] const FunctionDecl* find_kernel(const std::string& name) const noexcept {
    for (const auto& f : functions) {
      if (f.is_kernel && f.name == name) return &f;
    }
    return nullptr;
  }
  [[nodiscard]] const FunctionDecl* first_kernel() const noexcept {
    for (const auto& f : functions) {
      if (f.is_kernel) return &f;
    }
    return nullptr;
  }
};

/// Human-readable dump (for tests and debugging).
[[nodiscard]] std::string dump_ast(const TranslationUnit& unit);

}  // namespace repro::clfront
