#include "clfront/types.hpp"

#include <array>
#include <utility>

namespace repro::clfront {

const char* scalar_kind_name(ScalarKind kind) noexcept {
  switch (kind) {
    case ScalarKind::kVoid: return "void";
    case ScalarKind::kBool: return "bool";
    case ScalarKind::kChar: return "char";
    case ScalarKind::kUChar: return "uchar";
    case ScalarKind::kShort: return "short";
    case ScalarKind::kUShort: return "ushort";
    case ScalarKind::kInt: return "int";
    case ScalarKind::kUInt: return "uint";
    case ScalarKind::kLong: return "long";
    case ScalarKind::kULong: return "ulong";
    case ScalarKind::kFloat: return "float";
    case ScalarKind::kDouble: return "double";
    case ScalarKind::kHalf: return "half";
  }
  return "?";
}

const char* address_space_name(AddressSpace space) noexcept {
  switch (space) {
    case AddressSpace::kPrivate: return "private";
    case AddressSpace::kGlobal: return "global";
    case AddressSpace::kLocal: return "local";
    case AddressSpace::kConstant: return "constant";
  }
  return "?";
}

std::string Type::to_string() const {
  std::string s;
  if (is_pointer) {
    s += address_space_name(addr_space);
    s += ' ';
  }
  s += scalar_kind_name(scalar);
  if (width > 1) s += std::to_string(width);
  if (is_pointer) s += '*';
  return s;
}

std::optional<Type> parse_type_name(const std::string& name) noexcept {
  static constexpr std::array<std::pair<const char*, ScalarKind>, 13> kScalars = {{
      {"void", ScalarKind::kVoid},
      {"bool", ScalarKind::kBool},
      {"char", ScalarKind::kChar},
      {"uchar", ScalarKind::kUChar},
      {"short", ScalarKind::kShort},
      {"ushort", ScalarKind::kUShort},
      {"int", ScalarKind::kInt},
      {"uint", ScalarKind::kUInt},
      {"long", ScalarKind::kLong},
      {"ulong", ScalarKind::kULong},
      {"float", ScalarKind::kFloat},
      {"double", ScalarKind::kDouble},
      {"half", ScalarKind::kHalf},
  }};
  if (name == "size_t") return Type{ScalarKind::kULong, 1, false, AddressSpace::kPrivate};
  if (name == "unsigned") return Type::uint_type();
  for (const auto& [base, kind] : kScalars) {
    const std::string base_s(base);
    if (name == base_s) return Type{kind, 1, false, AddressSpace::kPrivate};
    if (name.size() > base_s.size() && name.compare(0, base_s.size(), base_s) == 0) {
      const std::string suffix = name.substr(base_s.size());
      int width = 0;
      if (suffix == "2") width = 2;
      else if (suffix == "3") width = 3;
      else if (suffix == "4") width = 4;
      else if (suffix == "8") width = 8;
      else if (suffix == "16") width = 16;
      if (width != 0 && kind != ScalarKind::kVoid && kind != ScalarKind::kBool) {
        return Type{kind, width, false, AddressSpace::kPrivate};
      }
    }
  }
  return std::nullopt;
}

namespace {

int rank(ScalarKind kind) noexcept {
  switch (kind) {
    case ScalarKind::kVoid: return 0;
    case ScalarKind::kBool: return 1;
    case ScalarKind::kChar:
    case ScalarKind::kUChar: return 2;
    case ScalarKind::kShort:
    case ScalarKind::kUShort: return 3;
    case ScalarKind::kInt:
    case ScalarKind::kUInt: return 4;
    case ScalarKind::kLong:
    case ScalarKind::kULong: return 5;
    case ScalarKind::kHalf: return 6;
    case ScalarKind::kFloat: return 7;
    case ScalarKind::kDouble: return 8;
  }
  return 0;
}

}  // namespace

Type promote(const Type& a, const Type& b) noexcept {
  Type out = rank(a.scalar) >= rank(b.scalar) ? a : b;
  out.width = std::max(a.width, b.width);
  out.is_pointer = false;
  out.addr_space = AddressSpace::kPrivate;
  return out;
}

}  // namespace repro::clfront
