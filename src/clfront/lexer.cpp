#include "clfront/lexer.hpp"

#include <array>
#include <cctype>
#include <cstdlib>

namespace repro::clfront {

namespace {

constexpr std::array kKeywords = {
    "kernel",   "__kernel",   "global",   "__global", "local",    "__local",
    "constant", "__constant", "private",  "__private", "const",   "restrict",
    "volatile", "void",       "bool",     "char",     "uchar",    "short",
    "ushort",   "int",        "uint",     "long",     "ulong",    "float",
    "double",   "half",       "size_t",   "if",       "else",     "for",
    "while",    "do",         "return",   "break",    "continue", "struct",
    "unsigned", "signed",
};

}  // namespace

bool is_keyword(const std::string& word) noexcept {
  for (const char* k : kKeywords) {
    if (word == k) return true;
  }
  return false;
}

const char* token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kEof: return "<eof>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kComma: return ",";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kColon: return ":";
    case TokenKind::kQuestion: return "?";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kAmp: return "&";
    case TokenKind::kPipe: return "|";
    case TokenKind::kCaret: return "^";
    case TokenKind::kTilde: return "~";
    case TokenKind::kShl: return "<<";
    case TokenKind::kShr: return ">>";
    case TokenKind::kAmpAmp: return "&&";
    case TokenKind::kPipePipe: return "||";
    case TokenKind::kBang: return "!";
    case TokenKind::kAssign: return "=";
    case TokenKind::kPlusAssign: return "+=";
    case TokenKind::kMinusAssign: return "-=";
    case TokenKind::kStarAssign: return "*=";
    case TokenKind::kSlashAssign: return "/=";
    case TokenKind::kPercentAssign: return "%=";
    case TokenKind::kAmpAssign: return "&=";
    case TokenKind::kPipeAssign: return "|=";
    case TokenKind::kCaretAssign: return "^=";
    case TokenKind::kShlAssign: return "<<=";
    case TokenKind::kShrAssign: return ">>=";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kGt: return ">";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGe: return ">=";
    case TokenKind::kPlusPlus: return "++";
    case TokenKind::kMinusMinus: return "--";
    case TokenKind::kDot: return ".";
    case TokenKind::kArrow: return "->";
  }
  return "?";
}

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

char Lexer::peek(std::size_t ahead) const noexcept {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() noexcept {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++loc_.line;
    loc_.column = 1;
  } else {
    ++loc_.column;
  }
  return c;
}

bool Lexer::match(char expected) noexcept {
  if (at_end() || src_[pos_] != expected) return false;
  advance();
  return true;
}

common::Error Lexer::error_here(const std::string& msg) const {
  return common::parse_error("line " + std::to_string(loc_.line) + ":" +
                             std::to_string(loc_.column) + ": " + msg);
}

Token Lexer::make(TokenKind kind) const {
  Token t;
  t.kind = kind;
  t.loc = token_start_;
  return t;
}

common::Result<Token> Lexer::lex_number() {
  const std::size_t start = pos_;
  bool is_float = false;
  bool is_hex = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    is_hex = true;
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())) != 0) advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0) {
      is_float = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
    } else if (peek() == '.') {
      is_float = true;
      advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      is_float = true;
      advance();
      if (peek() == '+' || peek() == '-') advance();
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return error_here("malformed exponent in float literal");
      }
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
    }
  }

  std::string text = src_.substr(start, pos_ - start);
  Token t = make(is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral);
  t.text = text;

  if (is_float) {
    t.float_value = std::strtod(text.c_str(), nullptr);
    t.is_float32 = false;
    if (peek() == 'f' || peek() == 'F') {
      advance();
      t.is_float32 = true;
    }
  } else {
    t.int_value = std::strtoull(text.c_str(), nullptr, is_hex ? 16 : 10);
    // OpenCL suffixes: u, U, l, L and combinations.
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') {
      if (peek() == 'u' || peek() == 'U') t.is_unsigned = true;
      advance();
    }
    // "1.f"-style handled above; "1f" is invalid in C but accept gracefully.
    if (peek() == 'f' || peek() == 'F') {
      advance();
      t.kind = TokenKind::kFloatLiteral;
      t.float_value = static_cast<double>(t.int_value);
      t.is_float32 = true;
    }
  }
  return t;
}

Token Lexer::lex_identifier() {
  const std::size_t start = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) != 0 || peek() == '_') advance();
  Token t = make(TokenKind::kIdentifier);
  t.text = src_.substr(start, pos_ - start);
  if (is_keyword(t.text)) t.kind = TokenKind::kKeyword;
  return t;
}

common::Result<std::vector<Token>> Lexer::tokenize() {
  std::vector<Token> tokens;
  while (!at_end()) {
    token_start_ = loc_;
    const char c = peek();

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    // Preprocessor lines (e.g. #pragma OPENCL EXTENSION ...) are skipped.
    if (c == '#' && loc_.column == 1) {
      while (!at_end() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
      if (at_end()) return error_here("unterminated block comment");
      advance();
      advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      auto tok = lex_number();
      if (!tok.ok()) return tok.error();
      tokens.push_back(std::move(tok).take());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      tokens.push_back(lex_identifier());
      continue;
    }

    advance();
    switch (c) {
      case '(': tokens.push_back(make(TokenKind::kLParen)); break;
      case ')': tokens.push_back(make(TokenKind::kRParen)); break;
      case '{': tokens.push_back(make(TokenKind::kLBrace)); break;
      case '}': tokens.push_back(make(TokenKind::kRBrace)); break;
      case '[': tokens.push_back(make(TokenKind::kLBracket)); break;
      case ']': tokens.push_back(make(TokenKind::kRBracket)); break;
      case ',': tokens.push_back(make(TokenKind::kComma)); break;
      case ';': tokens.push_back(make(TokenKind::kSemicolon)); break;
      case ':': tokens.push_back(make(TokenKind::kColon)); break;
      case '?': tokens.push_back(make(TokenKind::kQuestion)); break;
      case '~': tokens.push_back(make(TokenKind::kTilde)); break;
      case '.': tokens.push_back(make(TokenKind::kDot)); break;
      case '+':
        if (match('+')) tokens.push_back(make(TokenKind::kPlusPlus));
        else if (match('=')) tokens.push_back(make(TokenKind::kPlusAssign));
        else tokens.push_back(make(TokenKind::kPlus));
        break;
      case '-':
        if (match('-')) tokens.push_back(make(TokenKind::kMinusMinus));
        else if (match('=')) tokens.push_back(make(TokenKind::kMinusAssign));
        else if (match('>')) tokens.push_back(make(TokenKind::kArrow));
        else tokens.push_back(make(TokenKind::kMinus));
        break;
      case '*':
        tokens.push_back(make(match('=') ? TokenKind::kStarAssign : TokenKind::kStar));
        break;
      case '/':
        tokens.push_back(make(match('=') ? TokenKind::kSlashAssign : TokenKind::kSlash));
        break;
      case '%':
        tokens.push_back(make(match('=') ? TokenKind::kPercentAssign : TokenKind::kPercent));
        break;
      case '&':
        if (match('&')) tokens.push_back(make(TokenKind::kAmpAmp));
        else if (match('=')) tokens.push_back(make(TokenKind::kAmpAssign));
        else tokens.push_back(make(TokenKind::kAmp));
        break;
      case '|':
        if (match('|')) tokens.push_back(make(TokenKind::kPipePipe));
        else if (match('=')) tokens.push_back(make(TokenKind::kPipeAssign));
        else tokens.push_back(make(TokenKind::kPipe));
        break;
      case '^':
        tokens.push_back(make(match('=') ? TokenKind::kCaretAssign : TokenKind::kCaret));
        break;
      case '!':
        tokens.push_back(make(match('=') ? TokenKind::kNe : TokenKind::kBang));
        break;
      case '=':
        tokens.push_back(make(match('=') ? TokenKind::kEq : TokenKind::kAssign));
        break;
      case '<':
        if (match('<')) {
          tokens.push_back(make(match('=') ? TokenKind::kShlAssign : TokenKind::kShl));
        } else {
          tokens.push_back(make(match('=') ? TokenKind::kLe : TokenKind::kLt));
        }
        break;
      case '>':
        if (match('>')) {
          tokens.push_back(make(match('=') ? TokenKind::kShrAssign : TokenKind::kShr));
        } else {
          tokens.push_back(make(match('=') ? TokenKind::kGe : TokenKind::kGt));
        }
        break;
      default:
        return error_here(std::string("unexpected character '") + c + "'");
    }
  }
  token_start_ = loc_;
  tokens.push_back(make(TokenKind::kEof));
  return tokens;
}

}  // namespace repro::clfront
