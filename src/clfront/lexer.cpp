#include "clfront/lexer.hpp"

#include <array>
#include <cctype>
#include <cstdlib>
#include <utility>

namespace repro::clfront {

namespace {

constexpr std::array kKeywords = {
    "kernel",   "__kernel",   "global",   "__global", "local",    "__local",
    "constant", "__constant", "private",  "__private", "const",   "restrict",
    "volatile", "void",       "bool",     "char",     "uchar",    "short",
    "ushort",   "int",        "uint",     "long",     "ulong",    "float",
    "double",   "half",       "size_t",   "if",       "else",     "for",
    "while",    "do",         "return",   "break",    "continue", "struct",
    "unsigned", "signed",
};

}  // namespace

bool is_keyword(const std::string& word) noexcept {
  for (const char* k : kKeywords) {
    if (word == k) return true;
  }
  return false;
}

const char* token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kEof: return "<eof>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kComma: return ",";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kColon: return ":";
    case TokenKind::kQuestion: return "?";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kAmp: return "&";
    case TokenKind::kPipe: return "|";
    case TokenKind::kCaret: return "^";
    case TokenKind::kTilde: return "~";
    case TokenKind::kShl: return "<<";
    case TokenKind::kShr: return ">>";
    case TokenKind::kAmpAmp: return "&&";
    case TokenKind::kPipePipe: return "||";
    case TokenKind::kBang: return "!";
    case TokenKind::kAssign: return "=";
    case TokenKind::kPlusAssign: return "+=";
    case TokenKind::kMinusAssign: return "-=";
    case TokenKind::kStarAssign: return "*=";
    case TokenKind::kSlashAssign: return "/=";
    case TokenKind::kPercentAssign: return "%=";
    case TokenKind::kAmpAssign: return "&=";
    case TokenKind::kPipeAssign: return "|=";
    case TokenKind::kCaretAssign: return "^=";
    case TokenKind::kShlAssign: return "<<=";
    case TokenKind::kShrAssign: return ">>=";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kGt: return ">";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGe: return ">=";
    case TokenKind::kPlusPlus: return "++";
    case TokenKind::kMinusMinus: return "--";
    case TokenKind::kDot: return ".";
    case TokenKind::kArrow: return "->";
  }
  return "?";
}

namespace {

/// The one lexing implementation. Scans a byte window starting in `mode` at
/// `loc`; with final == false it suspends (rolls back) any token that
/// touches the end of the window instead of committing it, so the caller
/// can retry once more bytes arrive — which is exactly what makes chunked
/// lexing byte-identical to one-shot lexing at any chunk size.
class ChunkLexer {
 public:
  ChunkLexer(std::string_view text, SourceLoc loc, detail::LexMode mode, bool final)
      : text_(text), loc_(loc), committed_loc_(loc), mode_(mode), final_(final) {}

  detail::ChunkLex run() {
    for (;;) {
      if (mode_ != detail::LexMode::kNormal) {
        if (!resume()) break;  // suspended (bytes committed) or error
      }
      commit();
      if (at_end()) break;
      token_start_ = loc_;
      const std::size_t start_pos = pos_;
      const SourceLoc start_loc = loc_;
      const char c = peek();

      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
        continue;
      }
      // Preprocessor lines (e.g. #pragma OPENCL EXTENSION ...) are skipped.
      if (c == '#' && loc_.column == 1) {
        advance();
        mode_ = detail::LexMode::kPreprocessor;
        continue;
      }
      if (c == '/') {
        // Classifying '/' needs one byte of lookahead; mid-stream, suspend
        // on the bare slash until the next chunk supplies it.
        if (pos_ + 1 >= text_.size() && !final_) break;
        if (peek(1) == '/') {
          advance();
          advance();
          mode_ = detail::LexMode::kLineComment;
          continue;
        }
        if (peek(1) == '*') {
          advance();
          advance();
          mode_ = detail::LexMode::kBlockComment;
          continue;
        }
      }
      // A '.' may start a float literal (".5f") — that too needs lookahead.
      if (c == '.' && pos_ + 1 >= text_.size() && !final_) break;

      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
        auto tok = lex_number();
        if (error_.has_value()) break;
        if (suspended_) {
          rollback(start_pos, start_loc);
          break;
        }
        tokens_.push_back(std::move(tok));
        if (pos_ == text_.size() && !final_) {
          tokens_.pop_back();
          rollback(start_pos, start_loc);
          break;
        }
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        tokens_.push_back(lex_identifier());
        if (pos_ == text_.size() && !final_) {
          tokens_.pop_back();
          rollback(start_pos, start_loc);
          break;
        }
        continue;
      }

      if (!lex_operator(c)) break;  // error recorded
      if (pos_ == text_.size() && !final_) {
        tokens_.pop_back();
        rollback(start_pos, start_loc);
        break;
      }
    }

    detail::ChunkLex out;
    out.tokens = std::move(tokens_);
    out.consumed = committed_pos_;
    out.loc = committed_loc_;
    out.mode = mode_;
    out.error = std::move(error_);
    return out;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++loc_.line;
      loc_.column = 1;
    } else {
      ++loc_.column;
    }
    return c;
  }
  [[nodiscard]] bool match(char expected) noexcept {
    if (at_end() || text_[pos_] != expected) return false;
    advance();
    return true;
  }
  void commit() noexcept {
    committed_pos_ = pos_;
    committed_loc_ = loc_;
  }
  void rollback(std::size_t pos, SourceLoc loc) noexcept {
    pos_ = pos;
    loc_ = loc;
  }

  void fail_here(const std::string& msg) {
    error_ = common::parse_error("line " + std::to_string(loc_.line) + ":" +
                                 std::to_string(loc_.column) + ": " + msg);
  }

  [[nodiscard]] Token make(TokenKind kind) const {
    Token t;
    t.kind = kind;
    t.loc = token_start_;
    return t;
  }

  /// Consume the open comment / preprocessor line. Returns true when normal
  /// lexing may proceed; false on suspend (bytes committed, mode saved) or
  /// error.
  bool resume() {
    if (mode_ == detail::LexMode::kLineComment ||
        mode_ == detail::LexMode::kPreprocessor) {
      while (!at_end() && peek() != '\n') advance();
      if (at_end() && !final_) {
        commit();
        return false;
      }
      // The '\n' (or EOF) ends the construct; the newline itself is left to
      // the whitespace path, exactly like the one-shot scan.
      mode_ = detail::LexMode::kNormal;
      return true;
    }
    // Block comment; a '/' right after a '*' closes it, even across chunks.
    bool star = mode_ == detail::LexMode::kBlockCommentStar;
    while (!at_end()) {
      const char c = advance();
      if (star && c == '/') {
        mode_ = detail::LexMode::kNormal;
        return true;
      }
      star = c == '*';
    }
    if (final_) {
      fail_here("unterminated block comment");
      return false;
    }
    mode_ = star ? detail::LexMode::kBlockCommentStar : detail::LexMode::kBlockComment;
    commit();
    return false;
  }

  Token lex_number() {
    const std::size_t start = pos_;
    bool is_float = false;
    bool is_hex = false;

    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      is_hex = true;
      advance();
      advance();
      while (std::isxdigit(static_cast<unsigned char>(peek())) != 0) advance();
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0) {
        is_float = true;
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
      } else if (peek() == '.') {
        is_float = true;
        advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        is_float = true;
        advance();
        if (peek() == '+' || peek() == '-') advance();
        if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
          // Mid-stream the missing digit may simply be in the next chunk.
          if (at_end() && !final_) {
            suspended_ = true;
            return Token{};
          }
          fail_here("malformed exponent in float literal");
          return Token{};
        }
        while (std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
      }
    }

    std::string text(text_.substr(start, pos_ - start));
    Token t = make(is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral);
    t.text = text;

    if (is_float) {
      t.float_value = std::strtod(text.c_str(), nullptr);
      t.is_float32 = false;
      if (peek() == 'f' || peek() == 'F') {
        advance();
        t.is_float32 = true;
      }
    } else {
      t.int_value = std::strtoull(text.c_str(), nullptr, is_hex ? 16 : 10);
      // OpenCL suffixes: u, U, l, L and combinations.
      while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') {
        if (peek() == 'u' || peek() == 'U') t.is_unsigned = true;
        advance();
      }
      // "1.f"-style handled above; "1f" is invalid in C but accept gracefully.
      if (peek() == 'f' || peek() == 'F') {
        advance();
        t.kind = TokenKind::kFloatLiteral;
        t.float_value = static_cast<double>(t.int_value);
        t.is_float32 = true;
      }
    }
    return t;
  }

  Token lex_identifier() {
    const std::size_t start = pos_;
    while (std::isalnum(static_cast<unsigned char>(peek())) != 0 || peek() == '_') {
      advance();
    }
    Token t = make(TokenKind::kIdentifier);
    t.text = std::string(text_.substr(start, pos_ - start));
    if (is_keyword(t.text)) t.kind = TokenKind::kKeyword;
    return t;
  }

  /// Punctuation and operators; pushes the token. False on error.
  bool lex_operator(char c) {
    advance();
    switch (c) {
      case '(': tokens_.push_back(make(TokenKind::kLParen)); break;
      case ')': tokens_.push_back(make(TokenKind::kRParen)); break;
      case '{': tokens_.push_back(make(TokenKind::kLBrace)); break;
      case '}': tokens_.push_back(make(TokenKind::kRBrace)); break;
      case '[': tokens_.push_back(make(TokenKind::kLBracket)); break;
      case ']': tokens_.push_back(make(TokenKind::kRBracket)); break;
      case ',': tokens_.push_back(make(TokenKind::kComma)); break;
      case ';': tokens_.push_back(make(TokenKind::kSemicolon)); break;
      case ':': tokens_.push_back(make(TokenKind::kColon)); break;
      case '?': tokens_.push_back(make(TokenKind::kQuestion)); break;
      case '~': tokens_.push_back(make(TokenKind::kTilde)); break;
      case '.': tokens_.push_back(make(TokenKind::kDot)); break;
      case '+':
        if (match('+')) tokens_.push_back(make(TokenKind::kPlusPlus));
        else if (match('=')) tokens_.push_back(make(TokenKind::kPlusAssign));
        else tokens_.push_back(make(TokenKind::kPlus));
        break;
      case '-':
        if (match('-')) tokens_.push_back(make(TokenKind::kMinusMinus));
        else if (match('=')) tokens_.push_back(make(TokenKind::kMinusAssign));
        else if (match('>')) tokens_.push_back(make(TokenKind::kArrow));
        else tokens_.push_back(make(TokenKind::kMinus));
        break;
      case '*':
        tokens_.push_back(make(match('=') ? TokenKind::kStarAssign : TokenKind::kStar));
        break;
      case '/':
        tokens_.push_back(make(match('=') ? TokenKind::kSlashAssign : TokenKind::kSlash));
        break;
      case '%':
        tokens_.push_back(
            make(match('=') ? TokenKind::kPercentAssign : TokenKind::kPercent));
        break;
      case '&':
        if (match('&')) tokens_.push_back(make(TokenKind::kAmpAmp));
        else if (match('=')) tokens_.push_back(make(TokenKind::kAmpAssign));
        else tokens_.push_back(make(TokenKind::kAmp));
        break;
      case '|':
        if (match('|')) tokens_.push_back(make(TokenKind::kPipePipe));
        else if (match('=')) tokens_.push_back(make(TokenKind::kPipeAssign));
        else tokens_.push_back(make(TokenKind::kPipe));
        break;
      case '^':
        tokens_.push_back(make(match('=') ? TokenKind::kCaretAssign : TokenKind::kCaret));
        break;
      case '!':
        tokens_.push_back(make(match('=') ? TokenKind::kNe : TokenKind::kBang));
        break;
      case '=':
        tokens_.push_back(make(match('=') ? TokenKind::kEq : TokenKind::kAssign));
        break;
      case '<':
        if (match('<')) {
          tokens_.push_back(make(match('=') ? TokenKind::kShlAssign : TokenKind::kShl));
        } else {
          tokens_.push_back(make(match('=') ? TokenKind::kLe : TokenKind::kLt));
        }
        break;
      case '>':
        if (match('>')) {
          tokens_.push_back(make(match('=') ? TokenKind::kShrAssign : TokenKind::kShr));
        } else {
          tokens_.push_back(make(match('=') ? TokenKind::kGe : TokenKind::kGt));
        }
        break;
      default:
        fail_here(std::string("unexpected character '") + c + "'");
        return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t committed_pos_ = 0;
  SourceLoc loc_;
  SourceLoc committed_loc_;
  SourceLoc token_start_{};
  detail::LexMode mode_;
  bool final_;
  bool suspended_ = false;
  std::vector<Token> tokens_;
  std::optional<common::Error> error_;
};

}  // namespace

namespace detail {

ChunkLex lex_chunk(std::string_view text, SourceLoc loc, LexMode mode, bool final) {
  return ChunkLexer(text, loc, mode, final).run();
}

}  // namespace detail

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

common::Result<std::vector<Token>> Lexer::tokenize() {
  auto out = detail::lex_chunk(src_, SourceLoc{}, detail::LexMode::kNormal, true);
  if (out.error.has_value()) return *out.error;
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.loc = out.loc;
  out.tokens.push_back(eof);
  return std::move(out.tokens);
}

}  // namespace repro::clfront
