// Static feature extraction — the stand-in for the paper's LLVM pass (§3.2).
//
// The 10-dimensional static feature vector of a kernel:
//   k = (int_add, int_mul, int_div, int_bw,
//        float_add, float_mul, float_div, sf,
//        gl_access, loc_access)
// Counts are static (each IR instruction once, width-weighted) and
// normalized over the total number of counted instructions, so kernels with
// the same arithmetic intensity but different sizes share a representation.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "clfront/ir.hpp"
#include "common/status.hpp"

namespace repro::clfront {

inline constexpr std::size_t kNumFeatures = 10;

/// Hard budget on the user-function call-chain depth feature extraction will
/// inline through (the static analogue of an inliner depth limit): deeper
/// chains fail with an error instead of overflowing the stack on
/// pathological many-function sources.
inline constexpr std::size_t kMaxCallDepth = 256;

/// Feature indices (the order of the paper's vector).
enum class FeatureIndex : std::size_t {
  kIntAdd = 0,
  kIntMul,
  kIntDiv,
  kIntBw,
  kFloatAdd,
  kFloatMul,
  kFloatDiv,
  kSf,
  kGlAccess,
  kLocAccess,
};

[[nodiscard]] const char* feature_name(FeatureIndex i) noexcept;

/// The feature class an IR opcode contributes to, if any — the one
/// opcode→feature mapping shared by whole-module extraction below and the
/// per-function summaries of the streaming featurizer (clfront/stream.hpp).
[[nodiscard]] std::optional<FeatureIndex> feature_index(Opcode op) noexcept;

struct StaticFeatures {
  std::string kernel_name;
  /// Raw width-weighted static counts.
  std::array<double, kNumFeatures> counts{};

  [[nodiscard]] double count(FeatureIndex i) const noexcept {
    return counts[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] double total() const noexcept;

  /// Counts normalized over the total (all-zero when total == 0).
  [[nodiscard]] std::array<double, kNumFeatures> normalized() const noexcept;

  /// Compact printable form (for logs / tests).
  [[nodiscard]] std::string to_string() const;
};

/// Extract features from a lowered module for one kernel. Calls to user
/// functions are resolved by adding the callee's counts at each call site
/// (recursively, with a cycle guard) — the static analogue of inlining.
[[nodiscard]] common::Result<StaticFeatures> extract_features(const IrModule& module,
                                                              const std::string& kernel);

/// Convenience: parse + lower + extract in one step. With an empty kernel
/// name the first __kernel function in the source is used.
[[nodiscard]] common::Result<StaticFeatures> extract_features_from_source(
    const std::string& source, const std::string& kernel = "");

}  // namespace repro::clfront
