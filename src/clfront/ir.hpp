// Three-address-style intermediate representation.
//
// The frontend lowers the AST to a linear instruction stream per function;
// the feature-extraction pass (the stand-in for the paper's LLVM pass) then
// counts instructions by class. Control flow is represented with labels and
// branches so the IR is a faithful, inspectable program form — but feature
// extraction is purely static: loop bodies count once, exactly like a static
// pass over LLVM IR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clfront/token.hpp"
#include "common/status.hpp"

namespace repro::clfront {

enum class Opcode : std::uint8_t {
  // Feature-carrying instruction classes (paper §3.2).
  kIAdd,        // integer add/sub/compare
  kIMul,
  kIDiv,        // integer div/rem
  kIBitwise,    // and/or/xor/shifts/not
  kFAdd,        // float add/sub/compare/abs-like
  kFMul,
  kFDiv,
  kSpecialFn,   // transcendental / sqrt family
  kGlobalLoad,
  kGlobalStore,
  kLocalLoad,
  kLocalStore,
  // Neutral instructions (no feature contribution).
  kCast,
  kRuntime,     // work-item geometry queries
  kBarrier,
  kCall,        // user function call (callee name attached)
  kBr,
  kCondBr,
  kLabel,
  kRet,
};

[[nodiscard]] const char* opcode_name(Opcode op) noexcept;

struct Instruction {
  Opcode op = Opcode::kIAdd;
  /// Vector width of the operation (a float4 add counts as 4 float adds).
  int width = 1;
  /// Callee for kCall, label id for kBr/kCondBr/kLabel (as text).
  std::string detail;
  SourceLoc loc;
};

struct IrFunction {
  std::string name;
  bool is_kernel = false;
  std::vector<Instruction> body;

  /// Number of instructions carrying a feature class, width-weighted.
  [[nodiscard]] double feature_instruction_count() const noexcept;
};

struct IrModule {
  std::vector<IrFunction> functions;

  [[nodiscard]] const IrFunction* find(const std::string& name) const noexcept {
    for (const auto& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

/// Sanity checks: labels referenced by branches exist, calls reference
/// functions of the module or known builtins are absent (already lowered),
/// widths positive.
[[nodiscard]] common::Status verify_ir(const IrModule& module);

/// Printable listing.
[[nodiscard]] std::string dump_ir(const IrModule& module);

}  // namespace repro::clfront
