#include "clfront/parser.hpp"

#include <algorithm>
#include <utility>

namespace repro::clfront {

namespace {

/// Binary operator precedence for the climbing parser (higher binds tighter).
struct OpInfo {
  BinaryOp op;
  int prec;
};

std::optional<OpInfo> binary_op_info(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPipePipe: return OpInfo{BinaryOp::kLogicalOr, 1};
    case TokenKind::kAmpAmp: return OpInfo{BinaryOp::kLogicalAnd, 2};
    case TokenKind::kPipe: return OpInfo{BinaryOp::kBitOr, 3};
    case TokenKind::kCaret: return OpInfo{BinaryOp::kBitXor, 4};
    case TokenKind::kAmp: return OpInfo{BinaryOp::kBitAnd, 5};
    case TokenKind::kEq: return OpInfo{BinaryOp::kEq, 6};
    case TokenKind::kNe: return OpInfo{BinaryOp::kNe, 6};
    case TokenKind::kLt: return OpInfo{BinaryOp::kLt, 7};
    case TokenKind::kGt: return OpInfo{BinaryOp::kGt, 7};
    case TokenKind::kLe: return OpInfo{BinaryOp::kLe, 7};
    case TokenKind::kGe: return OpInfo{BinaryOp::kGe, 7};
    case TokenKind::kShl: return OpInfo{BinaryOp::kShl, 8};
    case TokenKind::kShr: return OpInfo{BinaryOp::kShr, 8};
    case TokenKind::kPlus: return OpInfo{BinaryOp::kAdd, 9};
    case TokenKind::kMinus: return OpInfo{BinaryOp::kSub, 9};
    case TokenKind::kStar: return OpInfo{BinaryOp::kMul, 10};
    case TokenKind::kSlash: return OpInfo{BinaryOp::kDiv, 10};
    case TokenKind::kPercent: return OpInfo{BinaryOp::kRem, 10};
    default: return std::nullopt;
  }
}

std::optional<BinaryOp> compound_assign_op(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPlusAssign: return BinaryOp::kAdd;
    case TokenKind::kMinusAssign: return BinaryOp::kSub;
    case TokenKind::kStarAssign: return BinaryOp::kMul;
    case TokenKind::kSlashAssign: return BinaryOp::kDiv;
    case TokenKind::kPercentAssign: return BinaryOp::kRem;
    case TokenKind::kAmpAssign: return BinaryOp::kBitAnd;
    case TokenKind::kPipeAssign: return BinaryOp::kBitOr;
    case TokenKind::kCaretAssign: return BinaryOp::kBitXor;
    case TokenKind::kShlAssign: return BinaryOp::kShl;
    case TokenKind::kShrAssign: return BinaryOp::kShr;
    default: return std::nullopt;
  }
}

bool is_address_space_kw(const std::string& kw, AddressSpace* out) {
  if (kw == "global" || kw == "__global") {
    *out = AddressSpace::kGlobal;
    return true;
  }
  if (kw == "local" || kw == "__local") {
    *out = AddressSpace::kLocal;
    return true;
  }
  if (kw == "constant" || kw == "__constant") {
    *out = AddressSpace::kConstant;
    return true;
  }
  if (kw == "private" || kw == "__private") {
    *out = AddressSpace::kPrivate;
    return true;
  }
  return false;
}

bool is_qualifier_kw(const std::string& kw) {
  AddressSpace dummy;
  return is_address_space_kw(kw, &dummy) || kw == "const" || kw == "restrict" ||
         kw == "volatile" || kw == "unsigned" || kw == "signed";
}

}  // namespace

const Token& Parser::peek(std::size_t ahead) const noexcept {
  const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[idx];
}

const Token& Parser::advance() noexcept {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::check(TokenKind kind) const noexcept { return peek().kind == kind; }

bool Parser::check_keyword(const std::string& kw) const noexcept {
  return peek().kind == TokenKind::kKeyword && peek().text == kw;
}

bool Parser::match(TokenKind kind) noexcept {
  if (!check(kind)) return false;
  advance();
  return true;
}

bool Parser::match_keyword(const std::string& kw) noexcept {
  if (!check_keyword(kw)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, const std::string& what) {
  if (!check(kind)) {
    fail("expected " + std::string(token_kind_name(kind)) + " (" + what + "), got '" +
         (peek().text.empty() ? token_kind_name(peek().kind) : peek().text) + "'");
  }
  return advance();
}

void Parser::fail(const std::string& msg) const {
  const SourceLoc loc = peek().loc;
  throw ParseError{common::parse_error("line " + std::to_string(loc.line) + ":" +
                                       std::to_string(loc.column) + ": " + msg)};
}

Parser::DepthGuard::DepthGuard(Parser& parser) : parser_(parser) {
  if (parser_.depth_ >= kMaxNestingDepth) {
    parser_.fail("nesting exceeds the depth budget of " +
                 std::to_string(kMaxNestingDepth));
  }
  ++parser_.depth_;
}

bool Parser::looks_like_type_start(std::size_t ahead) const noexcept {
  const Token& t = peek(ahead);
  if (t.kind != TokenKind::kKeyword && t.kind != TokenKind::kIdentifier) return false;
  if (t.kind == TokenKind::kKeyword && is_qualifier_kw(t.text)) return true;
  return parse_type_name(t.text).has_value();
}

Type Parser::parse_type() {
  AddressSpace space = AddressSpace::kPrivate;
  bool saw_unsigned = false;
  // Leading qualifiers in any order.
  while (peek().kind == TokenKind::kKeyword && is_qualifier_kw(peek().text)) {
    AddressSpace s;
    if (is_address_space_kw(peek().text, &s)) space = s;
    if (peek().text == "unsigned") saw_unsigned = true;
    advance();
  }

  Type type = Type::int_type();
  if (peek().kind == TokenKind::kKeyword || peek().kind == TokenKind::kIdentifier) {
    if (auto parsed = parse_type_name(peek().text)) {
      type = *parsed;
      advance();
    } else if (saw_unsigned) {
      type = Type::uint_type();  // bare "unsigned"
    } else {
      fail("expected type name, got '" + peek().text + "'");
    }
  } else if (saw_unsigned) {
    type = Type::uint_type();
  } else {
    fail("expected type name");
  }
  if (saw_unsigned && type.scalar == ScalarKind::kInt) type.scalar = ScalarKind::kUInt;
  // Record the address space on the base type as well: array declarations
  // like `__local float tile[256]` need it even without a pointer declarator.
  type.addr_space = space;

  // Trailing qualifiers between type and declarator (e.g. "float const *").
  while (peek().kind == TokenKind::kKeyword && is_qualifier_kw(peek().text)) advance();

  if (match(TokenKind::kStar)) {
    type = type.as_pointer(space);
    // "* restrict" / "* const"
    while (peek().kind == TokenKind::kKeyword && is_qualifier_kw(peek().text)) advance();
  }
  return type;
}

common::Result<TranslationUnit> Parser::parse_translation_unit() {
  try {
    TranslationUnit unit;
    while (!check(TokenKind::kEof)) {
      unit.functions.push_back(parse_function());
    }
    return unit;
  } catch (ParseError& e) {
    return std::move(e.error);
  }
}

FunctionDecl Parser::parse_function() {
  FunctionDecl fn;
  fn.loc = peek().loc;
  while (check_keyword("kernel") || check_keyword("__kernel")) {
    fn.is_kernel = true;
    advance();
  }
  fn.return_type = parse_type();
  fn.name = expect(TokenKind::kIdentifier, "function name").text;
  expect(TokenKind::kLParen, "parameter list");
  if (!check(TokenKind::kRParen)) {
    do {
      ParamDecl param;
      param.type = parse_type();
      param.name = expect(TokenKind::kIdentifier, "parameter name").text;
      fn.params.push_back(std::move(param));
    } while (match(TokenKind::kComma));
  }
  expect(TokenKind::kRParen, "end of parameter list");
  fn.body = parse_compound();
  return fn;
}

std::unique_ptr<CompoundStmt> Parser::parse_compound() {
  const SourceLoc loc = peek().loc;
  expect(TokenKind::kLBrace, "block");
  auto block = std::make_unique<CompoundStmt>(loc);
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    block->body.push_back(parse_statement());
  }
  expect(TokenKind::kRBrace, "end of block");
  return block;
}

StmtPtr Parser::parse_statement() {
  const DepthGuard depth(*this);
  const SourceLoc loc = peek().loc;
  if (check(TokenKind::kLBrace)) return parse_compound();
  if (match_keyword("if")) {
    expect(TokenKind::kLParen, "if condition");
    auto cond = parse_expression();
    expect(TokenKind::kRParen, "end of if condition");
    auto then_s = parse_statement();
    StmtPtr else_s;
    if (match_keyword("else")) else_s = parse_statement();
    return std::make_unique<IfStmt>(std::move(cond), std::move(then_s), std::move(else_s),
                                    loc);
  }
  if (match_keyword("for")) {
    auto node = std::make_unique<ForStmt>(loc);
    expect(TokenKind::kLParen, "for header");
    if (!check(TokenKind::kSemicolon)) {
      if (looks_like_type_start()) {
        node->init = parse_declaration();  // consumes ';'
      } else {
        auto e = parse_expression();
        node->init = std::make_unique<ExprStmt>(std::move(e), loc);
        expect(TokenKind::kSemicolon, "after for-init");
      }
    } else {
      advance();
    }
    if (!check(TokenKind::kSemicolon)) node->cond = parse_expression();
    expect(TokenKind::kSemicolon, "after for-condition");
    if (!check(TokenKind::kRParen)) node->step = parse_expression();
    expect(TokenKind::kRParen, "end of for header");
    node->body = parse_statement();
    return node;
  }
  if (match_keyword("while")) {
    expect(TokenKind::kLParen, "while condition");
    auto cond = parse_expression();
    expect(TokenKind::kRParen, "end of while condition");
    auto body = parse_statement();
    return std::make_unique<WhileStmt>(std::move(cond), std::move(body), loc);
  }
  if (match_keyword("do")) {
    auto body = parse_statement();
    if (!match_keyword("while")) fail("expected 'while' after do-body");
    expect(TokenKind::kLParen, "do-while condition");
    auto cond = parse_expression();
    expect(TokenKind::kRParen, "end of do-while condition");
    expect(TokenKind::kSemicolon, "after do-while");
    return std::make_unique<DoWhileStmt>(std::move(body), std::move(cond), loc);
  }
  if (match_keyword("return")) {
    ExprPtr value;
    if (!check(TokenKind::kSemicolon)) value = parse_expression();
    expect(TokenKind::kSemicolon, "after return");
    return std::make_unique<ReturnStmt>(std::move(value), loc);
  }
  if (match_keyword("break")) {
    expect(TokenKind::kSemicolon, "after break");
    return std::make_unique<BreakStmt>(loc);
  }
  if (match_keyword("continue")) {
    expect(TokenKind::kSemicolon, "after continue");
    return std::make_unique<ContinueStmt>(loc);
  }
  if (looks_like_type_start()) return parse_declaration();

  auto expr = parse_expression();
  expect(TokenKind::kSemicolon, "after expression statement");
  return std::make_unique<ExprStmt>(std::move(expr), loc);
}

StmtPtr Parser::parse_declaration() {
  const SourceLoc loc = peek().loc;
  auto stmt = std::make_unique<DeclStmt>(loc);
  const Type base = parse_type();
  do {
    VarDecl decl;
    decl.type = base;
    if (match(TokenKind::kStar)) decl.type = base.as_pointer(base.addr_space);
    decl.name = expect(TokenKind::kIdentifier, "variable name").text;
    if (match(TokenKind::kLBracket)) {
      const Token& size = expect(TokenKind::kIntLiteral, "array size");
      decl.array_size = size.int_value;
      expect(TokenKind::kRBracket, "end of array size");
    }
    if (match(TokenKind::kAssign)) decl.init = parse_assignment();
    stmt->decls.push_back(std::move(decl));
  } while (match(TokenKind::kComma));
  expect(TokenKind::kSemicolon, "after declaration");
  return stmt;
}

ExprPtr Parser::parse_expression() { return parse_assignment(); }

ExprPtr Parser::parse_assignment() {
  const SourceLoc loc = peek().loc;
  auto lhs = parse_conditional();
  if (match(TokenKind::kAssign)) {
    auto rhs = parse_assignment();
    return std::make_unique<AssignExpr>(std::move(lhs), std::move(rhs), std::nullopt, loc);
  }
  if (auto op = compound_assign_op(peek().kind)) {
    advance();
    auto rhs = parse_assignment();
    return std::make_unique<AssignExpr>(std::move(lhs), std::move(rhs), op, loc);
  }
  return lhs;
}

ExprPtr Parser::parse_conditional() {
  const SourceLoc loc = peek().loc;
  auto cond = parse_binary(1);
  if (match(TokenKind::kQuestion)) {
    auto then_e = parse_assignment();
    expect(TokenKind::kColon, "conditional expression");
    auto else_e = parse_assignment();
    return std::make_unique<ConditionalExpr>(std::move(cond), std::move(then_e),
                                             std::move(else_e), loc);
  }
  return cond;
}

ExprPtr Parser::parse_binary(int min_prec) {
  auto lhs = parse_unary();
  while (true) {
    const auto info = binary_op_info(peek().kind);
    if (!info || info->prec < min_prec) return lhs;
    const SourceLoc loc = peek().loc;
    advance();
    auto rhs = parse_binary(info->prec + 1);
    lhs = std::make_unique<BinaryExpr>(info->op, std::move(lhs), std::move(rhs), loc);
  }
}

ExprPtr Parser::parse_unary() {
  // Every expression-level recursion cycle (parenthesized primaries, casts,
  // unary chains, nested subscripts/calls/ternaries) passes through here, so
  // one guard bounds them all; parse_statement bounds the statement cycles.
  const DepthGuard depth(*this);
  const SourceLoc loc = peek().loc;
  if (match(TokenKind::kMinus)) {
    return std::make_unique<UnaryExpr>(UnaryOp::kNegate, parse_unary(), loc);
  }
  if (match(TokenKind::kPlus)) return parse_unary();
  if (match(TokenKind::kBang)) {
    return std::make_unique<UnaryExpr>(UnaryOp::kNot, parse_unary(), loc);
  }
  if (match(TokenKind::kTilde)) {
    return std::make_unique<UnaryExpr>(UnaryOp::kBitNot, parse_unary(), loc);
  }
  if (match(TokenKind::kPlusPlus)) {
    return std::make_unique<UnaryExpr>(UnaryOp::kPreInc, parse_unary(), loc);
  }
  if (match(TokenKind::kMinusMinus)) {
    return std::make_unique<UnaryExpr>(UnaryOp::kPreDec, parse_unary(), loc);
  }
  // Cast or vector literal: '(' type ')' expr | '(' typeN ')' '(' args ')'.
  if (check(TokenKind::kLParen) && looks_like_type_start(1)) {
    advance();  // '('
    const Type target = parse_type();
    expect(TokenKind::kRParen, "end of cast");
    if (target.is_vector() && check(TokenKind::kLParen)) {
      // OpenCL vector literal (float4)(a, b, c, d).
      advance();
      std::vector<ExprPtr> args;
      if (!check(TokenKind::kRParen)) {
        do {
          args.push_back(parse_assignment());
        } while (match(TokenKind::kComma));
      }
      expect(TokenKind::kRParen, "end of vector literal");
      return std::make_unique<VectorCtorExpr>(target, std::move(args), loc);
    }
    return std::make_unique<CastExpr>(target, parse_unary(), loc);
  }
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  auto expr = parse_primary();
  while (true) {
    const SourceLoc loc = peek().loc;
    if (match(TokenKind::kLBracket)) {
      auto index = parse_expression();
      expect(TokenKind::kRBracket, "array subscript");
      expr = std::make_unique<IndexExpr>(std::move(expr), std::move(index), loc);
    } else if (match(TokenKind::kDot)) {
      const Token& member = expect(TokenKind::kIdentifier, "member name");
      expr = std::make_unique<MemberExpr>(std::move(expr), member.text, loc);
    } else if (match(TokenKind::kPlusPlus)) {
      expr = std::make_unique<UnaryExpr>(UnaryOp::kPostInc, std::move(expr), loc);
    } else if (match(TokenKind::kMinusMinus)) {
      expr = std::make_unique<UnaryExpr>(UnaryOp::kPostDec, std::move(expr), loc);
    } else {
      return expr;
    }
  }
}

ExprPtr Parser::parse_primary() {
  const SourceLoc loc = peek().loc;
  if (check(TokenKind::kIntLiteral)) {
    const Token& t = advance();
    return std::make_unique<IntLiteralExpr>(t.int_value, t.is_unsigned, loc);
  }
  if (check(TokenKind::kFloatLiteral)) {
    const Token& t = advance();
    return std::make_unique<FloatLiteralExpr>(t.float_value, t.is_float32, loc);
  }
  if (match(TokenKind::kLParen)) {
    auto inner = parse_expression();
    expect(TokenKind::kRParen, "closing parenthesis");
    return inner;
  }
  if (check(TokenKind::kIdentifier) || check(TokenKind::kKeyword)) {
    // Function-style vector constructor: float4(a, b, c, d).
    if (const auto type = parse_type_name(peek().text);
        type && type->is_vector() && peek(1).kind == TokenKind::kLParen) {
      advance();
      advance();
      std::vector<ExprPtr> args;
      if (!check(TokenKind::kRParen)) {
        do {
          args.push_back(parse_assignment());
        } while (match(TokenKind::kComma));
      }
      expect(TokenKind::kRParen, "end of constructor");
      return std::make_unique<VectorCtorExpr>(*type, std::move(args), loc);
    }
    if (check(TokenKind::kIdentifier)) {
      const Token& name = advance();
      if (match(TokenKind::kLParen)) {
        std::vector<ExprPtr> args;
        if (!check(TokenKind::kRParen)) {
          do {
            args.push_back(parse_assignment());
          } while (match(TokenKind::kComma));
        }
        expect(TokenKind::kRParen, "end of call");
        return std::make_unique<CallExpr>(name.text, std::move(args), loc);
      }
      return std::make_unique<VarRefExpr>(name.text, loc);
    }
  }
  fail("expected expression, got '" +
       (peek().text.empty() ? token_kind_name(peek().kind) : peek().text) + "'");
}

common::Result<TranslationUnit> parse_opencl(const std::string& source) {
  Lexer lexer(source);
  auto tokens = lexer.tokenize();
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).take());
  return parser.parse_translation_unit();
}

}  // namespace repro::clfront
