// Token vocabulary of the OpenCL-C subset accepted by the frontend.
#pragma once

#include <cstdint>
#include <string>

namespace repro::clfront {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,
  // Punctuation / operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon, kColon, kQuestion,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kShl, kShr,
  kAmpAmp, kPipePipe, kBang,
  kAssign, kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
  kAmpAssign, kPipeAssign, kCaretAssign, kShlAssign, kShrAssign,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kPlusPlus, kMinusMinus,
  kDot, kArrow,
};

[[nodiscard]] const char* token_kind_name(TokenKind kind) noexcept;

/// Source location (1-based line/column).
struct SourceLoc {
  int line = 1;
  int column = 1;
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;        // identifier/keyword spelling or literal text
  std::uint64_t int_value = 0;
  double float_value = 0.0;
  bool is_unsigned = false;   // integer literal had a 'u' suffix
  bool is_float32 = true;     // float literal had an 'f' suffix (else double)
  SourceLoc loc;
};

/// True if `word` is a reserved keyword of the accepted subset.
[[nodiscard]] bool is_keyword(const std::string& word) noexcept;

}  // namespace repro::clfront
