#include "clfront/lower.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "clfront/builtins.hpp"

namespace repro::clfront {

namespace {

struct LowerError {
  common::Error error;
};

[[noreturn]] void fail(SourceLoc loc, const std::string& msg) {
  throw LowerError{common::parse_error("line " + std::to_string(loc.line) + ":" +
                                       std::to_string(loc.column) + ": " + msg)};
}

/// Unknown user-call failures carry kNotFound so LowerSession callers (the
/// streaming featurizer) can distinguish "callee not declared *yet*" from a
/// genuine lowering error and defer the function until the stream ends.
[[noreturn]] void fail_unknown_callee(SourceLoc loc, const std::string& callee) {
  throw LowerError{common::not_found("line " + std::to_string(loc.line) + ":" +
                                     std::to_string(loc.column) +
                                     ": call to unknown function '" + callee + "'")};
}

/// Builtin numeric constants accepted as identifiers.
std::optional<Type> builtin_constant_type(const std::string& name) {
  static const std::map<std::string, Type> kConstants = {
      {"M_PI", Type::float_type()},        {"M_PI_F", Type::float_type()},
      {"M_E", Type::float_type()},         {"M_E_F", Type::float_type()},
      {"M_SQRT2", Type::float_type()},     {"FLT_MAX", Type::float_type()},
      {"FLT_MIN", Type::float_type()},     {"FLT_EPSILON", Type::float_type()},
      {"INFINITY", Type::float_type()},    {"NAN", Type::float_type()},
      {"CLK_LOCAL_MEM_FENCE", Type::uint_type()},
      {"CLK_GLOBAL_MEM_FENCE", Type::uint_type()},
      {"INT_MAX", Type::int_type()},       {"INT_MIN", Type::int_type()},
      {"UINT_MAX", Type::uint_type()},
  };
  const auto it = kConstants.find(name);
  if (it == kConstants.end()) return std::nullopt;
  return it->second;
}

/// Return type encoded in convert_*/as_* builtins ("convert_float4" etc).
std::optional<Type> conversion_target(const std::string& callee) {
  if (callee.rfind("convert_", 0) == 0) return parse_type_name(callee.substr(8));
  if (callee.rfind("as_", 0) == 0) return parse_type_name(callee.substr(3));
  return std::nullopt;
}

/// vloadN / vstoreN width (0 if not a vload/vstore name).
int vload_width(const std::string& name, bool* is_store) {
  const bool load = name.rfind("vload", 0) == 0;
  const bool store = name.rfind("vstore", 0) == 0;
  if (!load && !store) return 0;
  const std::string suffix = name.substr(load ? 5 : 6);
  int width = 0;
  if (suffix == "2") width = 2;
  else if (suffix == "3") width = 3;
  else if (suffix == "4") width = 4;
  else if (suffix == "8") width = 8;
  else if (suffix == "16") width = 16;
  if (width != 0) *is_store = store;
  return width;
}

class Lowerer {
 public:
  explicit Lowerer(const std::map<std::string, FunctionSignature>& signatures)
      : signatures_(signatures) {}

  IrFunction lower_function(const FunctionDecl& fn) {
    current_ = IrFunction{};
    current_.name = fn.name;
    current_.is_kernel = fn.is_kernel;
    label_counter_ = 0;
    scopes_.clear();
    loop_stack_.clear();
    push_scope();
    for (const auto& param : fn.params) declare(param.name, param.type, fn.loc);
    lower_stmt(*fn.body);
    emit(Opcode::kRet, 1);
    pop_scope();
    return std::move(current_);
  }

 private:
  // --- function / scope management ----------------------------------------

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare(const std::string& name, Type type, SourceLoc loc) {
    if (scopes_.back().count(name) != 0) fail(loc, "redeclaration of '" + name + "'");
    scopes_.back()[name] = type;
  }

  [[nodiscard]] std::optional<Type> lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return builtin_constant_type(name);
  }

  // --- emission helpers -----------------------------------------------------

  void emit(Opcode op, int width, std::string detail = {}, SourceLoc loc = {}) {
    current_.body.push_back(Instruction{op, width, std::move(detail), loc});
  }

  std::string new_label(const char* stem) {
    return std::string(stem) + std::to_string(label_counter_++);
  }

  /// Add-class opcode for a type (integer vs floating compare/add/select).
  static Opcode add_class(const Type& t) {
    return t.is_floating() ? Opcode::kFAdd : Opcode::kIAdd;
  }

  void emit_binary_op(BinaryOp op, const Type& type, SourceLoc loc) {
    const int w = type.width;
    const bool flt = type.is_floating();
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
        emit(flt ? Opcode::kFAdd : Opcode::kIAdd, w, {}, loc);
        break;
      case BinaryOp::kMul:
        emit(flt ? Opcode::kFMul : Opcode::kIMul, w, {}, loc);
        break;
      case BinaryOp::kDiv:
      case BinaryOp::kRem:
        emit(flt ? Opcode::kFDiv : Opcode::kIDiv, w, {}, loc);
        break;
      case BinaryOp::kBitAnd:
      case BinaryOp::kBitOr:
      case BinaryOp::kBitXor:
      case BinaryOp::kShl:
      case BinaryOp::kShr:
        emit(Opcode::kIBitwise, w, {}, loc);
        break;
      case BinaryOp::kLogicalAnd:
      case BinaryOp::kLogicalOr:
        emit(Opcode::kIAdd, w, {}, loc);  // short-circuit test, int class
        break;
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kGt:
      case BinaryOp::kLe:
      case BinaryOp::kGe:
        emit(flt ? Opcode::kFAdd : Opcode::kIAdd, w, {}, loc);  // cmp
        break;
    }
  }

  // --- lvalues ---------------------------------------------------------------

  struct LValue {
    bool is_memory = false;
    Opcode store_op = Opcode::kIAdd;  // valid when is_memory
    Type type;                        // value type of the location
  };

  static Opcode store_opcode(AddressSpace space, SourceLoc loc) {
    switch (space) {
      case AddressSpace::kGlobal: return Opcode::kGlobalStore;
      case AddressSpace::kLocal: return Opcode::kLocalStore;
      case AddressSpace::kConstant:
        fail(loc, "cannot store to __constant memory");
      case AddressSpace::kPrivate: return Opcode::kIAdd;  // register write — free
    }
    return Opcode::kIAdd;
  }

  static Opcode load_opcode(AddressSpace space) {
    switch (space) {
      case AddressSpace::kGlobal:
      case AddressSpace::kConstant:  // counted as a global access (k_gl)
        return Opcode::kGlobalLoad;
      case AddressSpace::kLocal: return Opcode::kLocalLoad;
      case AddressSpace::kPrivate: return Opcode::kIAdd;  // register
    }
    return Opcode::kIAdd;
  }

  /// Lower the address computation of an lvalue (counts index arithmetic)
  /// and describe where the store goes.
  LValue lower_lvalue(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kVarRef: {
        const auto type = lookup(e.as<VarRefExpr>().name);
        if (!type) fail(e.loc, "undeclared identifier '" + e.as<VarRefExpr>().name + "'");
        return LValue{false, Opcode::kIAdd, *type};
      }
      case ExprKind::kMember: {
        // Vector component write: the base must itself be an lvalue. Memory
        // bases (a[i].x = ...) write through; register bases are free.
        const auto& node = e.as<MemberExpr>();
        LValue out = lower_lvalue(*node.base);
        int width = 1;
        if (node.member == "lo" || node.member == "hi" || node.member == "odd" ||
            node.member == "even") {
          width = std::max(1, out.type.width / 2);
        } else if (node.member.size() > 1 && node.member[0] != 's') {
          width = static_cast<int>(node.member.size());
        }
        out.type = out.type.with_width(width);
        return out;
      }
      case ExprKind::kIndex: {
        const auto& node = e.as<IndexExpr>();
        const Type base_type = lower_expr(*node.base);
        lower_expr(*node.index);
        if (!base_type.is_pointer) fail(e.loc, "subscript of non-pointer value");
        LValue out;
        out.is_memory = base_type.addr_space == AddressSpace::kGlobal ||
                        base_type.addr_space == AddressSpace::kLocal;
        out.store_op = store_opcode(base_type.addr_space, e.loc);
        out.type = base_type.pointee();
        return out;
      }
      case ExprKind::kUnary: {
        // *p-style dereference is not in the subset; ++/-- handled elsewhere.
        fail(e.loc, "unsupported lvalue expression");
      }
      default:
        fail(e.loc, "expression is not assignable");
    }
  }

  // --- expressions -----------------------------------------------------------

  Type lower_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLiteral:
        return e.as<IntLiteralExpr>().is_unsigned ? Type::uint_type() : Type::int_type();
      case ExprKind::kFloatLiteral: {
        Type t = Type::float_type();
        if (!e.as<FloatLiteralExpr>().is_float32) t.scalar = ScalarKind::kDouble;
        return t;
      }
      case ExprKind::kVarRef: {
        const auto& node = e.as<VarRefExpr>();
        const auto type = lookup(node.name);
        if (!type) fail(e.loc, "undeclared identifier '" + node.name + "'");
        return *type;
      }
      case ExprKind::kUnary: return lower_unary(e.as<UnaryExpr>());
      case ExprKind::kBinary: return lower_binary(e.as<BinaryExpr>());
      case ExprKind::kAssign: return lower_assign(e.as<AssignExpr>());
      case ExprKind::kConditional: {
        const auto& node = e.as<ConditionalExpr>();
        lower_expr(*node.cond);
        const Type a = lower_expr(*node.then_expr);
        const Type b = lower_expr(*node.else_expr);
        const Type result = promote(a, b);
        emit(add_class(result), result.width, {}, e.loc);  // select
        return result;
      }
      case ExprKind::kCall: return lower_call(e.as<CallExpr>());
      case ExprKind::kIndex: {
        const auto& node = e.as<IndexExpr>();
        const Type base_type = lower_expr(*node.base);
        lower_expr(*node.index);
        if (!base_type.is_pointer) fail(e.loc, "subscript of non-pointer value");
        const Type elem = base_type.pointee();
        const Opcode op = load_opcode(base_type.addr_space);
        if (op == Opcode::kGlobalLoad || op == Opcode::kLocalLoad) {
          emit(op, elem.width, {}, e.loc);
        }
        return elem;
      }
      case ExprKind::kMember: {
        const auto& node = e.as<MemberExpr>();
        const Type base = lower_expr(*node.base);
        // Swizzle width: .x -> 1, .xy -> 2, .lo/.hi -> half, .s0 -> 1.
        int width = 1;
        if (node.member == "lo" || node.member == "hi" || node.member == "odd" ||
            node.member == "even") {
          width = std::max(1, base.width / 2);
        } else if (node.member.size() > 1 && node.member[0] != 's') {
          width = static_cast<int>(node.member.size());
        }
        return base.with_width(width);
      }
      case ExprKind::kCast: {
        const auto& node = e.as<CastExpr>();
        lower_expr(*node.operand);
        emit(Opcode::kCast, node.target.width, {}, e.loc);
        return node.target;
      }
      case ExprKind::kVectorCtor: {
        const auto& node = e.as<VectorCtorExpr>();
        for (const auto& arg : node.args) lower_expr(*arg);
        return node.type;
      }
    }
    fail(e.loc, "unhandled expression kind");
  }

  Type lower_unary(const UnaryExpr& node) {
    const Type t = lower_expr(*node.operand);
    switch (node.op) {
      case UnaryOp::kNegate:
        emit(t.is_floating() ? Opcode::kFAdd : Opcode::kIAdd, t.width, {}, node.loc);
        return t;
      case UnaryOp::kNot:
        emit(Opcode::kIAdd, t.width, {}, node.loc);
        return Type::bool_type();
      case UnaryOp::kBitNot:
        emit(Opcode::kIBitwise, t.width, {}, node.loc);
        return t;
      case UnaryOp::kPreInc:
      case UnaryOp::kPreDec:
      case UnaryOp::kPostInc:
      case UnaryOp::kPostDec: {
        emit(t.is_floating() ? Opcode::kFAdd : Opcode::kIAdd, t.width, {}, node.loc);
        // Writing back through a memory lvalue costs a store.
        if (node.operand->kind == ExprKind::kIndex) {
          const auto& idx = node.operand->as<IndexExpr>();
          // Base/index were already lowered as part of the value read; only
          // the store op itself is added here.
          (void)idx;
          emit(Opcode::kGlobalStore, t.width, {}, node.loc);
        }
        return t;
      }
    }
    return t;
  }

  Type lower_binary(const BinaryExpr& node) {
    const Type lhs = lower_expr(*node.lhs);
    const Type rhs = lower_expr(*node.rhs);
    // Pointer arithmetic yields the pointer type; one integer add.
    if (lhs.is_pointer || rhs.is_pointer) {
      emit(Opcode::kIAdd, 1, {}, node.loc);
      return lhs.is_pointer ? lhs : rhs;
    }
    const Type result = promote(lhs, rhs);
    emit_binary_op(node.op, result, node.loc);
    switch (node.op) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kGt:
      case BinaryOp::kLe:
      case BinaryOp::kGe:
      case BinaryOp::kLogicalAnd:
      case BinaryOp::kLogicalOr:
        return Type::bool_type().with_width(result.width);
      default:
        return result;
    }
  }

  Type lower_assign(const AssignExpr& node) {
    const Type rhs = lower_expr(*node.rhs);
    const LValue lhs = lower_lvalue(*node.lhs);
    if (node.op) {
      // Compound assignment re-reads the destination.
      if (lhs.is_memory) {
        emit(lhs.store_op == Opcode::kGlobalStore ? Opcode::kGlobalLoad
                                                  : Opcode::kLocalLoad,
             lhs.type.width, {}, node.loc);
      }
      emit_binary_op(*node.op, promote(lhs.type, rhs), node.loc);
    }
    if (lhs.is_memory) emit(lhs.store_op, lhs.type.width, {}, node.loc);
    return lhs.type;
  }

  Type lower_call(const CallExpr& node) {
    const BuiltinCategory cat = classify_builtin(node.callee);
    switch (cat) {
      case BuiltinCategory::kRuntime:
        for (const auto& arg : node.args) lower_expr(*arg);
        emit(Opcode::kRuntime, 1, node.callee, node.loc);
        return Type{ScalarKind::kULong, 1, false, AddressSpace::kPrivate};  // size_t
      case BuiltinCategory::kBarrier:
        for (const auto& arg : node.args) lower_expr(*arg);
        emit(Opcode::kBarrier, 1, node.callee, node.loc);
        return Type::void_type();
      case BuiltinCategory::kSpecial: {
        Type result = Type::float_type();
        for (const auto& arg : node.args) result = promote(result, lower_expr(*arg));
        emit(Opcode::kSpecialFn, result.width, node.callee, node.loc);
        return result;
      }
      case BuiltinCategory::kCheapMath: {
        Type result = node.args.empty() ? Type::float_type() : Type::void_type();
        bool first = true;
        for (const auto& arg : node.args) {
          const Type t = lower_expr(*arg);
          result = first ? t : promote(result, t);
          first = false;
        }
        emit(add_class(result), result.width, node.callee, node.loc);
        return result;
      }
      case BuiltinCategory::kMulAdd: {
        Type result = Type::float_type();
        for (const auto& arg : node.args) result = promote(result, lower_expr(*arg));
        emit(Opcode::kFMul, result.width, node.callee, node.loc);
        emit(Opcode::kFAdd, result.width, node.callee, node.loc);
        return result;
      }
      case BuiltinCategory::kDot: {
        Type vec = Type::float_type();
        for (const auto& arg : node.args) vec = promote(vec, lower_expr(*arg));
        emit(Opcode::kFMul, vec.width, node.callee, node.loc);
        if (vec.width > 1) emit(Opcode::kFAdd, vec.width - 1, node.callee, node.loc);
        if (node.callee == "length" || node.callee == "distance") {
          emit(Opcode::kSpecialFn, 1, "sqrt", node.loc);
        }
        return Type::float_type();
      }
      case BuiltinCategory::kConvert: {
        for (const auto& arg : node.args) lower_expr(*arg);
        const auto target = conversion_target(node.callee);
        if (!target) fail(node.loc, "malformed conversion '" + node.callee + "'");
        emit(Opcode::kCast, target->width, node.callee, node.loc);
        return *target;
      }
      case BuiltinCategory::kAtomic: {
        for (const auto& arg : node.args) lower_expr(*arg);
        emit(Opcode::kIAdd, 1, node.callee, node.loc);
        emit(Opcode::kGlobalStore, 1, node.callee, node.loc);
        return Type::int_type();
      }
      case BuiltinCategory::kNotBuiltin:
        break;
    }

    // vloadN / vstoreN.
    bool is_store = false;
    if (const int width = vload_width(node.callee, &is_store); width != 0) {
      AddressSpace space = AddressSpace::kGlobal;
      Type elem = Type::float_type();
      for (std::size_t i = 0; i < node.args.size(); ++i) {
        const Type t = lower_expr(*node.args[i]);
        if (t.is_pointer) {
          space = t.addr_space;
          elem = t.pointee();
        }
      }
      const Opcode op = is_store ? store_opcode(space, node.loc) : load_opcode(space);
      if (op != Opcode::kIAdd) emit(op, width, node.callee, node.loc);
      return is_store ? Type::void_type() : elem.with_width(width);
    }

    // User-defined function.
    const auto it = signatures_.find(node.callee);
    if (it == signatures_.end()) {
      fail_unknown_callee(node.loc, node.callee);
    }
    if (node.args.size() != it->second.num_params) {
      fail(node.loc, "wrong number of arguments to '" + node.callee + "'");
    }
    for (const auto& arg : node.args) lower_expr(*arg);
    emit(Opcode::kCall, 1, node.callee, node.loc);
    return it->second.return_type;
  }

  // --- statements ------------------------------------------------------------

  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kCompound: {
        push_scope();
        for (const auto& child : s.as<CompoundStmt>().body) lower_stmt(*child);
        pop_scope();
        break;
      }
      case StmtKind::kDecl: {
        for (const auto& d : s.as<DeclStmt>().decls) {
          Type var_type = d.type;
          // Arrays decay to pointers in their declared address space.
          if (d.array_size > 0) var_type = d.type.as_pointer(d.type.addr_space);
          declare(d.name, var_type, s.loc);
          if (d.init) lower_expr(*d.init);
        }
        break;
      }
      case StmtKind::kExpr:
        lower_expr(*s.as<ExprStmt>().expr);
        break;
      case StmtKind::kIf: {
        const auto& node = s.as<IfStmt>();
        lower_expr(*node.cond);
        const std::string then_label = new_label("if_then");
        const std::string else_label = new_label("if_else");
        const std::string end_label = new_label("if_end");
        emit(Opcode::kCondBr, 1, then_label + "," + else_label, s.loc);
        emit(Opcode::kLabel, 1, then_label, s.loc);
        lower_stmt(*node.then_stmt);
        emit(Opcode::kBr, 1, end_label, s.loc);
        emit(Opcode::kLabel, 1, else_label, s.loc);
        if (node.else_stmt) lower_stmt(*node.else_stmt);
        emit(Opcode::kBr, 1, end_label, s.loc);
        emit(Opcode::kLabel, 1, end_label, s.loc);
        break;
      }
      case StmtKind::kFor: {
        const auto& node = s.as<ForStmt>();
        push_scope();
        if (node.init) lower_stmt(*node.init);
        const std::string cond_label = new_label("for_cond");
        const std::string body_label = new_label("for_body");
        const std::string end_label = new_label("for_end");
        emit(Opcode::kLabel, 1, cond_label, s.loc);
        if (node.cond) lower_expr(*node.cond);
        emit(Opcode::kCondBr, 1, body_label + "," + end_label, s.loc);
        emit(Opcode::kLabel, 1, body_label, s.loc);
        loop_stack_.push_back({cond_label, end_label});
        lower_stmt(*node.body);
        if (node.step) lower_expr(*node.step);
        loop_stack_.pop_back();
        emit(Opcode::kBr, 1, cond_label, s.loc);
        emit(Opcode::kLabel, 1, end_label, s.loc);
        pop_scope();
        break;
      }
      case StmtKind::kWhile: {
        const auto& node = s.as<WhileStmt>();
        const std::string cond_label = new_label("while_cond");
        const std::string body_label = new_label("while_body");
        const std::string end_label = new_label("while_end");
        emit(Opcode::kLabel, 1, cond_label, s.loc);
        lower_expr(*node.cond);
        emit(Opcode::kCondBr, 1, body_label + "," + end_label, s.loc);
        emit(Opcode::kLabel, 1, body_label, s.loc);
        loop_stack_.push_back({cond_label, end_label});
        lower_stmt(*node.body);
        loop_stack_.pop_back();
        emit(Opcode::kBr, 1, cond_label, s.loc);
        emit(Opcode::kLabel, 1, end_label, s.loc);
        break;
      }
      case StmtKind::kDoWhile: {
        const auto& node = s.as<DoWhileStmt>();
        const std::string body_label = new_label("do_body");
        const std::string cond_label = new_label("do_cond");
        const std::string end_label = new_label("do_end");
        emit(Opcode::kLabel, 1, body_label, s.loc);
        loop_stack_.push_back({cond_label, end_label});
        lower_stmt(*node.body);
        loop_stack_.pop_back();
        emit(Opcode::kLabel, 1, cond_label, s.loc);
        lower_expr(*node.cond);
        emit(Opcode::kCondBr, 1, body_label + "," + end_label, s.loc);
        emit(Opcode::kLabel, 1, end_label, s.loc);
        break;
      }
      case StmtKind::kReturn:
        if (s.as<ReturnStmt>().value) lower_expr(*s.as<ReturnStmt>().value);
        emit(Opcode::kRet, 1, {}, s.loc);
        break;
      case StmtKind::kBreak:
        if (loop_stack_.empty()) fail(s.loc, "break outside loop");
        emit(Opcode::kBr, 1, loop_stack_.back().break_label, s.loc);
        break;
      case StmtKind::kContinue:
        if (loop_stack_.empty()) fail(s.loc, "continue outside loop");
        emit(Opcode::kBr, 1, loop_stack_.back().continue_label, s.loc);
        break;
    }
  }

  struct LoopLabels {
    std::string continue_label;
    std::string break_label;
  };

  const std::map<std::string, FunctionSignature>& signatures_;
  IrFunction current_;
  std::vector<std::map<std::string, Type>> scopes_;
  std::vector<LoopLabels> loop_stack_;
  int label_counter_ = 0;
};

}  // namespace

common::Result<IrModule> lower_to_ir(const TranslationUnit& unit) {
  // Declare every function first (forward references lower fine), then
  // lower in declaration order — the exact sequence the streaming path
  // reproduces incrementally through LowerSession.
  std::map<std::string, FunctionSignature> signatures;
  for (const auto& fn : unit.functions) {
    signatures.emplace(fn.name, FunctionSignature{fn.return_type, fn.params.size()});
  }
  try {
    Lowerer lowerer(signatures);
    IrModule module;
    for (const auto& fn : unit.functions) {
      module.functions.push_back(lowerer.lower_function(fn));
    }
    return module;
  } catch (LowerError& e) {
    // The kNotFound unknown-callee sentinel is LowerSession-internal (it
    // drives the streaming featurizer's deferral); at this public boundary
    // an unknown callee is invalid source, i.e. a parse error — as it
    // always has been.
    if (e.error.code == common::ErrorCode::kNotFound) {
      e.error.code = common::ErrorCode::kParseError;
    }
    return std::move(e.error);
  }
}

void LowerSession::declare(const FunctionDecl& fn) {
  signatures_.emplace(fn.name, FunctionSignature{fn.return_type, fn.params.size()});
}

common::Result<IrFunction> LowerSession::lower(const FunctionDecl& fn) const {
  try {
    Lowerer lowerer(signatures_);
    return lowerer.lower_function(fn);
  } catch (LowerError& e) {
    return std::move(e.error);
  }
}

}  // namespace repro::clfront
