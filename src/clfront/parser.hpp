// Recursive-descent parser for the OpenCL-C subset.
//
// Supported constructs: kernel/helper function definitions, OpenCL address-
// space and access qualifiers, scalar/vector types and pointers, the full C
// expression grammar (without the comma operator), declarations with
// initializers, if/for/while/do-while/return/break/continue, vector literals
// `(float4)(...)` and constructor calls `float4(...)`, and calls to the
// OpenCL builtin library (work-item queries, math, synchronization).
#pragma once

#include <string>
#include <vector>

#include "clfront/ast.hpp"
#include "clfront/lexer.hpp"
#include "common/status.hpp"

namespace repro::clfront {

/// Hard nesting budget across statements and expressions. Pathologically
/// nested input (thousands of parentheses or braces) fails with a parse
/// error at this depth instead of overflowing the stack — the parser is fed
/// untrusted sources over the serving socket.
inline constexpr int kMaxNestingDepth = 256;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Parse a translation unit; returns a parse error with location info on
  /// the first syntax problem.
  [[nodiscard]] common::Result<TranslationUnit> parse_translation_unit();

 private:
  struct ParseError {
    common::Error error;
  };

  // Token stream helpers.
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const noexcept;
  const Token& advance() noexcept;
  [[nodiscard]] bool check(TokenKind kind) const noexcept;
  [[nodiscard]] bool check_keyword(const std::string& kw) const noexcept;
  bool match(TokenKind kind) noexcept;
  bool match_keyword(const std::string& kw) noexcept;
  const Token& expect(TokenKind kind, const std::string& what);
  [[noreturn]] void fail(const std::string& msg) const;

  /// RAII guard enforcing kMaxNestingDepth on the recursive-descent entry
  /// points (statements and unary expressions cover every recursion cycle).
  struct DepthGuard {
    explicit DepthGuard(Parser& parser);
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser_;
  };

  // Types.
  [[nodiscard]] bool looks_like_type_start(std::size_t ahead = 0) const noexcept;
  Type parse_type();  // qualifiers + scalar/vector + optional '*'

  // Declarations.
  FunctionDecl parse_function();
  std::unique_ptr<CompoundStmt> parse_compound();
  StmtPtr parse_statement();
  StmtPtr parse_declaration();  // after lookahead confirmed a type

  // Expressions (precedence climbing).
  ExprPtr parse_expression();   // assignment level
  ExprPtr parse_assignment();
  ExprPtr parse_conditional();
  ExprPtr parse_binary(int min_prec);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

/// Convenience: lex + parse a source string.
[[nodiscard]] common::Result<TranslationUnit> parse_opencl(const std::string& source);

}  // namespace repro::clfront
