#include "clfront/ast.hpp"

#include <sstream>

namespace repro::clfront {

namespace {

const char* binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kRem: return "%";
    case BinaryOp::kBitAnd: return "&";
    case BinaryOp::kBitOr: return "|";
    case BinaryOp::kBitXor: return "^";
    case BinaryOp::kShl: return "<<";
    case BinaryOp::kShr: return ">>";
    case BinaryOp::kLogicalAnd: return "&&";
    case BinaryOp::kLogicalOr: return "||";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGe: return ">=";
  }
  return "?";
}

class Dumper {
 public:
  explicit Dumper(std::ostringstream& out) : out_(out) {}

  void dump(const TranslationUnit& unit) {
    for (const auto& f : unit.functions) dump_function(f);
  }

 private:
  void indent() {
    for (int i = 0; i < depth_; ++i) out_ << "  ";
  }

  void dump_function(const FunctionDecl& f) {
    indent();
    out_ << (f.is_kernel ? "kernel " : "") << "function " << f.name << " : "
         << f.return_type.to_string() << "(";
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      if (i != 0) out_ << ", ";
      out_ << f.params[i].type.to_string() << ' ' << f.params[i].name;
    }
    out_ << ")\n";
    ++depth_;
    if (f.body) dump_stmt(*f.body);
    --depth_;
  }

  void dump_stmt(const Stmt& s) {
    indent();
    switch (s.kind) {
      case StmtKind::kCompound: {
        out_ << "{\n";
        ++depth_;
        for (const auto& child : s.as<CompoundStmt>().body) dump_stmt(*child);
        --depth_;
        indent();
        out_ << "}\n";
        break;
      }
      case StmtKind::kDecl: {
        out_ << "decl";
        for (const auto& d : s.as<DeclStmt>().decls) {
          out_ << ' ' << d.type.to_string() << ' ' << d.name;
          if (d.array_size > 0) out_ << '[' << d.array_size << ']';
          if (d.init) {
            out_ << " = ";
            dump_expr(*d.init);
          }
          out_ << ';';
        }
        out_ << '\n';
        break;
      }
      case StmtKind::kExpr:
        dump_expr(*s.as<ExprStmt>().expr);
        out_ << '\n';
        break;
      case StmtKind::kIf: {
        const auto& node = s.as<IfStmt>();
        out_ << "if ";
        dump_expr(*node.cond);
        out_ << '\n';
        ++depth_;
        dump_stmt(*node.then_stmt);
        --depth_;
        if (node.else_stmt) {
          indent();
          out_ << "else\n";
          ++depth_;
          dump_stmt(*node.else_stmt);
          --depth_;
        }
        break;
      }
      case StmtKind::kFor: {
        const auto& node = s.as<ForStmt>();
        out_ << "for\n";
        ++depth_;
        if (node.init) dump_stmt(*node.init);
        if (node.cond) {
          indent();
          out_ << "cond: ";
          dump_expr(*node.cond);
          out_ << '\n';
        }
        if (node.step) {
          indent();
          out_ << "step: ";
          dump_expr(*node.step);
          out_ << '\n';
        }
        dump_stmt(*node.body);
        --depth_;
        break;
      }
      case StmtKind::kWhile: {
        const auto& node = s.as<WhileStmt>();
        out_ << "while ";
        dump_expr(*node.cond);
        out_ << '\n';
        ++depth_;
        dump_stmt(*node.body);
        --depth_;
        break;
      }
      case StmtKind::kDoWhile: {
        const auto& node = s.as<DoWhileStmt>();
        out_ << "do\n";
        ++depth_;
        dump_stmt(*node.body);
        --depth_;
        indent();
        out_ << "while ";
        dump_expr(*node.cond);
        out_ << '\n';
        break;
      }
      case StmtKind::kReturn:
        out_ << "return";
        if (s.as<ReturnStmt>().value) {
          out_ << ' ';
          dump_expr(*s.as<ReturnStmt>().value);
        }
        out_ << '\n';
        break;
      case StmtKind::kBreak: out_ << "break\n"; break;
      case StmtKind::kContinue: out_ << "continue\n"; break;
    }
  }

  void dump_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLiteral:
        out_ << e.as<IntLiteralExpr>().value;
        break;
      case ExprKind::kFloatLiteral:
        out_ << e.as<FloatLiteralExpr>().value;
        break;
      case ExprKind::kVarRef:
        out_ << e.as<VarRefExpr>().name;
        break;
      case ExprKind::kUnary: {
        const auto& node = e.as<UnaryExpr>();
        out_ << "(un ";
        dump_expr(*node.operand);
        out_ << ')';
        break;
      }
      case ExprKind::kBinary: {
        const auto& node = e.as<BinaryExpr>();
        out_ << '(';
        dump_expr(*node.lhs);
        out_ << ' ' << binary_op_name(node.op) << ' ';
        dump_expr(*node.rhs);
        out_ << ')';
        break;
      }
      case ExprKind::kAssign: {
        const auto& node = e.as<AssignExpr>();
        out_ << '(';
        dump_expr(*node.lhs);
        out_ << ' ';
        if (node.op) out_ << binary_op_name(*node.op);
        out_ << "= ";
        dump_expr(*node.rhs);
        out_ << ')';
        break;
      }
      case ExprKind::kConditional: {
        const auto& node = e.as<ConditionalExpr>();
        out_ << '(';
        dump_expr(*node.cond);
        out_ << " ? ";
        dump_expr(*node.then_expr);
        out_ << " : ";
        dump_expr(*node.else_expr);
        out_ << ')';
        break;
      }
      case ExprKind::kCall: {
        const auto& node = e.as<CallExpr>();
        out_ << node.callee << '(';
        for (std::size_t i = 0; i < node.args.size(); ++i) {
          if (i != 0) out_ << ", ";
          dump_expr(*node.args[i]);
        }
        out_ << ')';
        break;
      }
      case ExprKind::kIndex: {
        const auto& node = e.as<IndexExpr>();
        dump_expr(*node.base);
        out_ << '[';
        dump_expr(*node.index);
        out_ << ']';
        break;
      }
      case ExprKind::kMember: {
        const auto& node = e.as<MemberExpr>();
        dump_expr(*node.base);
        out_ << '.' << node.member;
        break;
      }
      case ExprKind::kCast: {
        const auto& node = e.as<CastExpr>();
        out_ << '(' << node.target.to_string() << ')';
        dump_expr(*node.operand);
        break;
      }
      case ExprKind::kVectorCtor: {
        const auto& node = e.as<VectorCtorExpr>();
        out_ << node.type.to_string() << '(';
        for (std::size_t i = 0; i < node.args.size(); ++i) {
          if (i != 0) out_ << ", ";
          dump_expr(*node.args[i]);
        }
        out_ << ')';
        break;
      }
    }
  }

  std::ostringstream& out_;
  int depth_ = 0;
};

}  // namespace

std::string dump_ast(const TranslationUnit& unit) {
  std::ostringstream oss;
  Dumper(oss).dump(unit);
  return oss.str();
}

}  // namespace repro::clfront
