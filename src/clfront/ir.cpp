#include "clfront/ir.hpp"

#include <set>
#include <sstream>

namespace repro::clfront {

const char* opcode_name(Opcode op) noexcept {
  switch (op) {
    case Opcode::kIAdd: return "iadd";
    case Opcode::kIMul: return "imul";
    case Opcode::kIDiv: return "idiv";
    case Opcode::kIBitwise: return "ibw";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFDiv: return "fdiv";
    case Opcode::kSpecialFn: return "sf";
    case Opcode::kGlobalLoad: return "gload";
    case Opcode::kGlobalStore: return "gstore";
    case Opcode::kLocalLoad: return "lload";
    case Opcode::kLocalStore: return "lstore";
    case Opcode::kCast: return "cast";
    case Opcode::kRuntime: return "runtime";
    case Opcode::kBarrier: return "barrier";
    case Opcode::kCall: return "call";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kLabel: return "label";
    case Opcode::kRet: return "ret";
  }
  return "?";
}

namespace {

bool is_feature_opcode(Opcode op) noexcept {
  switch (op) {
    case Opcode::kIAdd:
    case Opcode::kIMul:
    case Opcode::kIDiv:
    case Opcode::kIBitwise:
    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFDiv:
    case Opcode::kSpecialFn:
    case Opcode::kGlobalLoad:
    case Opcode::kGlobalStore:
    case Opcode::kLocalLoad:
    case Opcode::kLocalStore:
      return true;
    default:
      return false;
  }
}

}  // namespace

double IrFunction::feature_instruction_count() const noexcept {
  double acc = 0.0;
  for (const auto& inst : body) {
    if (is_feature_opcode(inst.op)) acc += static_cast<double>(inst.width);
  }
  return acc;
}

common::Status verify_ir(const IrModule& module) {
  for (const auto& fn : module.functions) {
    std::set<std::string> labels;
    for (const auto& inst : fn.body) {
      if (inst.width <= 0) {
        return common::internal_error("ir verify: non-positive width in " + fn.name);
      }
      if (inst.op == Opcode::kLabel) labels.insert(inst.detail);
    }
    for (const auto& inst : fn.body) {
      if (inst.op == Opcode::kBr || inst.op == Opcode::kCondBr) {
        // CondBr detail: "then,else" — every referenced label must exist.
        std::string rest = inst.detail;
        while (!rest.empty()) {
          const auto comma = rest.find(',');
          const std::string label = rest.substr(0, comma);
          if (!label.empty() && labels.count(label) == 0) {
            return common::internal_error("ir verify: branch to unknown label '" + label +
                                          "' in " + fn.name);
          }
          if (comma == std::string::npos) break;
          rest = rest.substr(comma + 1);
        }
      }
      if (inst.op == Opcode::kCall && module.find(inst.detail) == nullptr) {
        return common::internal_error("ir verify: call to unknown function '" +
                                      inst.detail + "' in " + fn.name);
      }
    }
  }
  return common::Status::Ok();
}

std::string dump_ir(const IrModule& module) {
  std::ostringstream oss;
  for (const auto& fn : module.functions) {
    oss << (fn.is_kernel ? "kernel " : "") << "func @" << fn.name << " {\n";
    for (const auto& inst : fn.body) {
      if (inst.op == Opcode::kLabel) {
        oss << inst.detail << ":\n";
        continue;
      }
      oss << "  " << opcode_name(inst.op);
      if (inst.width > 1) oss << " x" << inst.width;
      if (!inst.detail.empty()) oss << " @" << inst.detail;
      oss << '\n';
    }
    oss << "}\n";
  }
  return oss.str();
}

}  // namespace repro::clfront
