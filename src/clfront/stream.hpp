// Streaming featurization of OpenCL-C source: feed a multi-megabyte kernel
// file in chunks of any size and get the same static features — bit for bit
// — as the whole-string path (extract_features_from_source).
//
//   SourceFeeder feeder;
//   while (auto chunk = read_more())
//     if (auto st = feeder.feed(*chunk); !st.ok()) ...;
//   if (auto st = feeder.finish(); !st.ok()) ...;
//   auto features = feeder.features("my_kernel");
//
// How bounded memory is achieved:
//  * the chunk lexer (clfront/lexer.hpp, detail::lex_chunk) consumes
//    comments and preprocessor lines as they stream and keeps only the
//    bytes of a possibly-incomplete trailing token in its pending buffer;
//  * tokens are grouped into top-level functions by brace depth, and each
//    function is parsed, lowered, and collapsed into a FunctionSummary (10
//    local feature counts + the ordered callee list) the moment its closing
//    brace arrives — tokens, AST, and IR never outlive the function;
//  * cross-function call resolution (the static analogue of inlining that
//    extract_features performs over the whole IrModule) runs over the
//    summaries at finish(), when every signature has been seen. A function
//    whose callee is not yet defined (a forward reference) keeps its AST
//    until finish() — the only case that buffers more than one function.
//
// Why the result is bit-identical: feature counts are sums of integer
// instruction widths, exact in binary64 far beyond any real source size, so
// summing per-function first and across calls later reproduces the
// interleaved whole-module accumulation exactly. Error reporting keeps the
// whole-string precedence (first lexical error, else first parse error,
// else first lowering error in declaration order).
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "clfront/ast.hpp"
#include "clfront/features.hpp"
#include "clfront/lexer.hpp"
#include "clfront/lower.hpp"
#include "common/status.hpp"

namespace repro::clfront {

struct StreamOptions {
  /// Hard input budget; feeding more fails with a parse error. Protects the
  /// serving path from unbounded request bodies. (The recursion budgets are
  /// kMaxNestingDepth in parser.hpp and kMaxCallDepth in features.hpp.)
  std::size_t max_source_bytes = 64u << 20;
};

/// Per-kernel/per-function feature accumulator, finalized at function end:
/// the local width-weighted counts plus every user-call site in instruction
/// order. Cross-function resolution happens over these, not over IR.
struct FunctionSummary {
  std::string name;
  bool is_kernel = false;
  std::array<double, kNumFeatures> counts{};
  std::vector<std::string> calls;
};

class SourceFeeder {
 public:
  explicit SourceFeeder(StreamOptions options = {});

  /// Append the next chunk of source; chunk boundaries may fall anywhere
  /// (mid-token, mid-comment, mid-escape). Returns the sticky stream error,
  /// if one has been detected, so callers may stop early — feeding after an
  /// error is harmless and ignored.
  common::Status feed(std::string_view chunk);

  /// Declare end of input, resolve deferred functions, and settle the
  /// stream verdict. Must be called exactly once; feed() is invalid after.
  common::Status finish();

  /// Features of `kernel` (first __kernel function when empty), resolved
  /// across every function of the stream — bit-identical to
  /// extract_features_from_source on the concatenated input. Requires
  /// finish().
  [[nodiscard]] common::Result<StaticFeatures> features(
      const std::string& kernel = {}) const;

  /// Features of every kernel, in declaration order. Requires finish().
  [[nodiscard]] common::Result<std::vector<StaticFeatures>> kernel_features() const;

  [[nodiscard]] std::size_t bytes_fed() const noexcept { return bytes_fed_; }
  /// High-water mark of the pending byte buffer — the observable "bounded
  /// memory" part of the contract (tokens of the open function and deferred
  /// forward-reference ASTs come on top).
  [[nodiscard]] std::size_t peak_pending_bytes() const noexcept {
    return peak_pending_bytes_;
  }

 private:
  struct Outcome {
    // Exactly one engaged: a finished summary, a deferred AST (unknown
    // callee, retried at finish), or this function's lowering error.
    std::optional<FunctionSummary> summary;
    std::optional<FunctionDecl> deferred;
    std::optional<common::Error> error;
  };

  void ingest(std::vector<Token> tokens);
  void complete_function(std::vector<Token> tokens);
  void absorb_function(FunctionDecl fn);
  common::Result<StaticFeatures> resolve(const FunctionSummary& target) const;

  StreamOptions options_;
  std::string pending_;
  SourceLoc loc_{};
  detail::LexMode mode_ = detail::LexMode::kNormal;
  std::vector<Token> fn_tokens_;
  int brace_depth_ = 0;
  LowerSession session_;
  std::vector<Outcome> outcomes_;
  std::optional<common::Error> lex_error_;    // outranks everything
  std::optional<common::Error> parse_error_;  // outranks lowering errors
  bool lower_error_seen_ = false;             // later lowering is skipped
  std::vector<FunctionSummary> resolved_;     // settled by finish()
  std::optional<common::Error> final_error_;  // the stream verdict
  bool finished_ = false;
  std::size_t bytes_fed_ = 0;
  std::size_t peak_pending_bytes_ = 0;
};

/// Convenience for tests and benchmarks: featurize `source` fed in
/// `chunk_size`-byte pieces. Equal to extract_features_from_source for every
/// chunk size ≥ 1 — the chunk-size-invariance contract of
/// docs/DETERMINISM.md.
[[nodiscard]] common::Result<StaticFeatures> extract_features_chunked(
    std::string_view source, std::size_t chunk_size, const std::string& kernel = {},
    StreamOptions options = {});

}  // namespace repro::clfront
