#include "clfront/features.hpp"

#include <set>
#include <sstream>

#include "clfront/lower.hpp"
#include "clfront/parser.hpp"

namespace repro::clfront {

const char* feature_name(FeatureIndex i) noexcept {
  switch (i) {
    case FeatureIndex::kIntAdd: return "int_add";
    case FeatureIndex::kIntMul: return "int_mul";
    case FeatureIndex::kIntDiv: return "int_div";
    case FeatureIndex::kIntBw: return "int_bw";
    case FeatureIndex::kFloatAdd: return "float_add";
    case FeatureIndex::kFloatMul: return "float_mul";
    case FeatureIndex::kFloatDiv: return "float_div";
    case FeatureIndex::kSf: return "sf";
    case FeatureIndex::kGlAccess: return "gl_access";
    case FeatureIndex::kLocAccess: return "loc_access";
  }
  return "?";
}

double StaticFeatures::total() const noexcept {
  double acc = 0.0;
  for (double c : counts) acc += c;
  return acc;
}

std::array<double, kNumFeatures> StaticFeatures::normalized() const noexcept {
  std::array<double, kNumFeatures> out{};
  const double t = total();
  if (t <= 0.0) return out;
  for (std::size_t i = 0; i < kNumFeatures; ++i) out[i] = counts[i] / t;
  return out;
}

std::string StaticFeatures::to_string() const {
  std::ostringstream oss;
  oss << kernel_name << ": ";
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (i != 0) oss << ' ';
    oss << feature_name(static_cast<FeatureIndex>(i)) << '=' << counts[i];
  }
  return oss.str();
}

std::optional<FeatureIndex> feature_index(Opcode op) noexcept {
  switch (op) {
    case Opcode::kIAdd: return FeatureIndex::kIntAdd;
    case Opcode::kIMul: return FeatureIndex::kIntMul;
    case Opcode::kIDiv: return FeatureIndex::kIntDiv;
    case Opcode::kIBitwise: return FeatureIndex::kIntBw;
    case Opcode::kFAdd: return FeatureIndex::kFloatAdd;
    case Opcode::kFMul: return FeatureIndex::kFloatMul;
    case Opcode::kFDiv: return FeatureIndex::kFloatDiv;
    case Opcode::kSpecialFn: return FeatureIndex::kSf;
    case Opcode::kGlobalLoad:
    case Opcode::kGlobalStore: return FeatureIndex::kGlAccess;
    case Opcode::kLocalLoad:
    case Opcode::kLocalStore: return FeatureIndex::kLocAccess;
    default: return std::nullopt;
  }
}

namespace {

common::Status accumulate(const IrModule& module, const IrFunction& fn,
                          std::array<double, kNumFeatures>& counts,
                          std::set<std::string>& call_chain) {
  if (call_chain.size() >= kMaxCallDepth) {
    return common::internal_error("call chain exceeds the depth budget of " +
                                  std::to_string(kMaxCallDepth) + " at '" + fn.name +
                                  "'");
  }
  if (!call_chain.insert(fn.name).second) {
    return common::internal_error("recursive call chain through '" + fn.name + "'");
  }
  for (const auto& inst : fn.body) {
    if (const auto f = feature_index(inst.op)) {
      counts[static_cast<std::size_t>(*f)] += static_cast<double>(inst.width);
      continue;
    }
    if (inst.op == Opcode::kCall) {
      const IrFunction* callee = module.find(inst.detail);
      if (callee == nullptr) {
        return common::not_found("callee '" + inst.detail + "' not in module");
      }
      if (auto st = accumulate(module, *callee, counts, call_chain); !st.ok()) return st;
    }
  }
  call_chain.erase(fn.name);
  return common::Status::Ok();
}

}  // namespace

common::Result<StaticFeatures> extract_features(const IrModule& module,
                                                const std::string& kernel) {
  const IrFunction* fn = nullptr;
  if (kernel.empty()) {
    for (const auto& f : module.functions) {
      if (f.is_kernel) {
        fn = &f;
        break;
      }
    }
    if (fn == nullptr) return common::not_found("module contains no kernel function");
  } else {
    fn = module.find(kernel);
    if (fn == nullptr) return common::not_found("kernel '" + kernel + "' not in module");
  }

  StaticFeatures features;
  features.kernel_name = fn->name;
  std::set<std::string> chain;
  if (auto st = accumulate(module, *fn, features.counts, chain); !st.ok()) {
    return st.error();
  }
  return features;
}

common::Result<StaticFeatures> extract_features_from_source(const std::string& source,
                                                            const std::string& kernel) {
  auto unit = parse_opencl(source);
  if (!unit.ok()) return unit.error();
  auto module = lower_to_ir(unit.value());
  if (!module.ok()) return module.error();
  return extract_features(module.value(), kernel);
}

}  // namespace repro::clfront
