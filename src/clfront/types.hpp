// Type system of the OpenCL-C subset: scalars, fixed-width vectors
// (float4 etc.) and pointers with OpenCL address spaces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace repro::clfront {

enum class ScalarKind : std::uint8_t {
  kVoid,
  kBool,
  kChar, kUChar,
  kShort, kUShort,
  kInt, kUInt,
  kLong, kULong,
  kFloat, kDouble, kHalf,
};

enum class AddressSpace : std::uint8_t {
  kPrivate = 0,  // default (registers / stack)
  kGlobal,
  kLocal,
  kConstant,
};

/// A value type: scalar kind + vector width (1 for scalars) + optional
/// pointer-ness with an address space. Pointer-to-pointer is not supported.
struct Type {
  ScalarKind scalar = ScalarKind::kInt;
  int width = 1;               // 1, 2, 3, 4, 8 or 16
  bool is_pointer = false;
  AddressSpace addr_space = AddressSpace::kPrivate;

  [[nodiscard]] bool is_void() const noexcept {
    return scalar == ScalarKind::kVoid && !is_pointer;
  }
  [[nodiscard]] bool is_floating() const noexcept {
    return !is_pointer && (scalar == ScalarKind::kFloat || scalar == ScalarKind::kDouble ||
                           scalar == ScalarKind::kHalf);
  }
  [[nodiscard]] bool is_integer() const noexcept { return !is_pointer && !is_floating() && scalar != ScalarKind::kVoid; }
  [[nodiscard]] bool is_vector() const noexcept { return width > 1; }

  /// The pointed-to element type.
  [[nodiscard]] Type pointee() const noexcept {
    Type t = *this;
    t.is_pointer = false;
    return t;
  }
  [[nodiscard]] Type as_pointer(AddressSpace space) const noexcept {
    Type t = *this;
    t.is_pointer = true;
    t.addr_space = space;
    return t;
  }
  /// Same scalar kind with a different vector width.
  [[nodiscard]] Type with_width(int w) const noexcept {
    Type t = *this;
    t.width = w;
    return t;
  }

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] static Type void_type() { return {ScalarKind::kVoid, 1, false, AddressSpace::kPrivate}; }
  [[nodiscard]] static Type int_type() { return {ScalarKind::kInt, 1, false, AddressSpace::kPrivate}; }
  [[nodiscard]] static Type uint_type() { return {ScalarKind::kUInt, 1, false, AddressSpace::kPrivate}; }
  [[nodiscard]] static Type float_type() { return {ScalarKind::kFloat, 1, false, AddressSpace::kPrivate}; }
  [[nodiscard]] static Type bool_type() { return {ScalarKind::kBool, 1, false, AddressSpace::kPrivate}; }

  friend bool operator==(const Type&, const Type&) = default;
};

[[nodiscard]] const char* scalar_kind_name(ScalarKind kind) noexcept;
[[nodiscard]] const char* address_space_name(AddressSpace space) noexcept;

/// Parse a type name like "float4", "uint", "size_t". Returns nullopt for
/// non-type identifiers.
[[nodiscard]] std::optional<Type> parse_type_name(const std::string& name) noexcept;

/// Usual arithmetic conversion of two operand types (float wins over int,
/// wider vector wins over scalar, double over float).
[[nodiscard]] Type promote(const Type& a, const Type& b) noexcept;

}  // namespace repro::clfront
