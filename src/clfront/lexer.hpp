// Hand-written lexer for the OpenCL-C subset. Handles line/block comments,
// preprocessor-line skipping (#pragma etc.), integer/float literals with
// OpenCL suffixes, and all multi-character operators.
//
// The implementation is a resumable chunk lexer (detail::lex_chunk): the
// whole-string Lexer below and the streaming clfront::SourceFeeder drive the
// same scanner, so chunked input produces byte-identical tokens (text,
// values, locations) to one-shot tokenization at any chunk size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "clfront/token.hpp"
#include "common/status.hpp"

namespace repro::clfront {

class Lexer {
 public:
  explicit Lexer(std::string source);

  /// Tokenize the whole input. Fails on unterminated comments or malformed
  /// literals; the error message carries the source location.
  [[nodiscard]] common::Result<std::vector<Token>> tokenize();

 private:
  std::string src_;
};

namespace detail {

/// Scanner state carried across chunk boundaries. Comments and preprocessor
/// lines can span many chunks; their bytes are consumed as they stream (the
/// pending buffer never has to hold a whole comment), so only the mode — and
/// for block comments whether the last consumed byte was '*' — survives.
enum class LexMode : std::uint8_t {
  kNormal,
  kLineComment,       // inside // …, ends at '\n'
  kPreprocessor,      // inside a column-1 # line, ends at '\n'
  kBlockComment,      // inside /* …, previous byte was not '*'
  kBlockCommentStar,  // inside /* …, previous byte was '*' ('/' closes)
};

struct ChunkLex {
  std::vector<Token> tokens;  ///< complete tokens recognized in this pass
  std::size_t consumed = 0;   ///< prefix of the window that can be discarded
  SourceLoc loc;              ///< source location just after `consumed`
  LexMode mode = LexMode::kNormal;
  std::optional<common::Error> error;  ///< first lexical error, if any
};

/// Lex as many complete tokens as the window allows, starting at `loc` in
/// `mode`. With `final == false` no token touching the end of the window is
/// committed (the next chunk could extend an identifier, a literal, or a
/// multi-character operator) — it stays in the unconsumed tail. With
/// `final == true` everything drains and end-of-input errors (unterminated
/// block comment) are reported. The kEof token is never appended; callers
/// add it once the stream ends.
[[nodiscard]] ChunkLex lex_chunk(std::string_view text, SourceLoc loc, LexMode mode,
                                 bool final);

}  // namespace detail

}  // namespace repro::clfront
