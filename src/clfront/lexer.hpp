// Hand-written lexer for the OpenCL-C subset. Handles line/block comments,
// preprocessor-line skipping (#pragma etc.), integer/float literals with
// OpenCL suffixes, and all multi-character operators.
#pragma once

#include <string>
#include <vector>

#include "clfront/token.hpp"
#include "common/status.hpp"

namespace repro::clfront {

class Lexer {
 public:
  explicit Lexer(std::string source);

  /// Tokenize the whole input. Fails on unterminated comments or malformed
  /// literals; the error message carries the source location.
  [[nodiscard]] common::Result<std::vector<Token>> tokenize();

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept;
  char advance() noexcept;
  [[nodiscard]] bool match(char expected) noexcept;

  [[nodiscard]] common::Result<Token> lex_number();
  [[nodiscard]] Token lex_identifier();

  [[nodiscard]] common::Error error_here(const std::string& msg) const;
  [[nodiscard]] Token make(TokenKind kind) const;

  std::string src_;
  std::size_t pos_ = 0;
  SourceLoc loc_{};
  SourceLoc token_start_{};
};

}  // namespace repro::clfront
