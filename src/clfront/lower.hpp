// AST -> IR lowering with lightweight type inference.
//
// The lowering pass assigns every expression a type (OpenCL's usual
// arithmetic conversions), expands vector operations into width-weighted
// instructions, classifies memory accesses by address space, and maps the
// OpenCL builtin library onto the instruction classes of the paper's
// feature vector. Loop bodies are emitted once — the counts are static.
#pragma once

#include <map>
#include <string>

#include "clfront/ast.hpp"
#include "clfront/ir.hpp"
#include "common/status.hpp"

namespace repro::clfront {

/// Lower a parsed translation unit to IR. Produces one IrFunction per
/// function declaration. Fails on undeclared identifiers, calls to unknown
/// functions, or unsupported constructs.
[[nodiscard]] common::Result<IrModule> lower_to_ir(const TranslationUnit& unit);

/// What the lowerer needs to know about a call target: its arity (argument
/// count check) and return type (usual-arithmetic-conversion input).
struct FunctionSignature {
  Type return_type;
  std::size_t num_params = 0;
};

/// Incremental lowering for the streaming featurizer (clfront/stream.hpp):
/// signatures accumulate as function definitions arrive, and each function
/// lowers independently against everything declared so far. lower_to_ir is
/// the one-shot equivalent — it declares every function of the unit first,
/// then lowers them in order, so the two paths emit identical IR.
class LowerSession {
 public:
  /// Register `fn` as a call target for subsequently lowered bodies. A
  /// redefinition keeps the first signature, mirroring IrModule::find.
  void declare(const FunctionDecl& fn);

  /// Lower one function against the signatures declared so far. A call to a
  /// user function with no declared signature fails with kNotFound — the
  /// streaming featurizer defers those functions and retries once the whole
  /// stream (hence every signature) has been seen.
  [[nodiscard]] common::Result<IrFunction> lower(const FunctionDecl& fn) const;

 private:
  std::map<std::string, FunctionSignature> signatures_;
};

}  // namespace repro::clfront
