// AST -> IR lowering with lightweight type inference.
//
// The lowering pass assigns every expression a type (OpenCL's usual
// arithmetic conversions), expands vector operations into width-weighted
// instructions, classifies memory accesses by address space, and maps the
// OpenCL builtin library onto the instruction classes of the paper's
// feature vector. Loop bodies are emitted once — the counts are static.
#pragma once

#include "clfront/ast.hpp"
#include "clfront/ir.hpp"
#include "common/status.hpp"

namespace repro::clfront {

/// Lower a parsed translation unit to IR. Produces one IrFunction per
/// function declaration. Fails on undeclared identifiers, calls to unknown
/// functions, or unsupported constructs.
[[nodiscard]] common::Result<IrModule> lower_to_ir(const TranslationUnit& unit);

}  // namespace repro::clfront
