#include "clfront/stream.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "clfront/parser.hpp"

namespace repro::clfront {

namespace {

/// Collapse one lowered function into its feature summary: local
/// width-weighted counts plus the callee of every kCall site in instruction
/// order. Counts are sums of integer widths — exact in binary64 — so adding
/// them per-function first and across calls later reproduces the
/// whole-module accumulation of extract_features bit for bit.
FunctionSummary summarize(const IrFunction& ir) {
  FunctionSummary summary;
  summary.name = ir.name;
  summary.is_kernel = ir.is_kernel;
  for (const auto& inst : ir.body) {
    if (const auto f = feature_index(inst.op)) {
      summary.counts[static_cast<std::size_t>(*f)] += static_cast<double>(inst.width);
    } else if (inst.op == Opcode::kCall) {
      summary.calls.push_back(inst.detail);
    }
  }
  return summary;
}

const FunctionSummary* find_summary(const std::vector<FunctionSummary>& all,
                                    const std::string& name) {
  for (const auto& s : all) {
    if (s.name == name) return &s;  // first definition wins, like IrModule::find
  }
  return nullptr;
}

/// The summary-level twin of features.cpp's accumulate(): same call order,
/// same cycle guard, same depth budget, same error messages.
common::Status accumulate_summary(const std::vector<FunctionSummary>& all,
                                  const FunctionSummary& fn,
                                  std::array<double, kNumFeatures>& counts,
                                  std::set<std::string>& call_chain) {
  if (call_chain.size() >= kMaxCallDepth) {
    return common::internal_error("call chain exceeds the depth budget of " +
                                  std::to_string(kMaxCallDepth) + " at '" + fn.name +
                                  "'");
  }
  if (!call_chain.insert(fn.name).second) {
    return common::internal_error("recursive call chain through '" + fn.name + "'");
  }
  for (std::size_t i = 0; i < kNumFeatures; ++i) counts[i] += fn.counts[i];
  for (const auto& callee_name : fn.calls) {
    const FunctionSummary* callee = find_summary(all, callee_name);
    if (callee == nullptr) {
      return common::not_found("callee '" + callee_name + "' not in module");
    }
    if (auto st = accumulate_summary(all, *callee, counts, call_chain); !st.ok()) {
      return st;
    }
  }
  call_chain.erase(fn.name);
  return common::Status::Ok();
}

}  // namespace

SourceFeeder::SourceFeeder(StreamOptions options) : options_(options) {}

common::Status SourceFeeder::feed(std::string_view chunk) {
  if (finished_) {
    return common::invalid_argument("SourceFeeder: feed after finish");
  }
  bytes_fed_ += chunk.size();
  if (!lex_error_.has_value() && bytes_fed_ > options_.max_source_bytes) {
    lex_error_ = common::parse_error(
        "SourceFeeder: source exceeds the max_source_bytes budget (" +
        std::to_string(options_.max_source_bytes) + ")");
  }
  if (lex_error_.has_value()) return *lex_error_;  // sticky; input discarded

  pending_.append(chunk);
  peak_pending_bytes_ = std::max(peak_pending_bytes_, pending_.size());
  auto out = detail::lex_chunk(pending_, loc_, mode_, /*final=*/false);
  pending_.erase(0, out.consumed);
  loc_ = out.loc;
  mode_ = out.mode;
  if (out.error.has_value()) {
    lex_error_ = std::move(out.error);
    return *lex_error_;
  }
  ingest(std::move(out.tokens));
  return common::Status::Ok();
}

common::Status SourceFeeder::finish() {
  if (finished_) {
    return final_error_.has_value() ? common::Status(*final_error_)
                                    : common::Status::Ok();
  }
  finished_ = true;

  // Drain the pending tail (final = true: the last token commits, and an
  // unterminated block comment is now an error, as in one-shot lexing).
  if (!lex_error_.has_value()) {
    auto out = detail::lex_chunk(pending_, loc_, mode_, /*final=*/true);
    loc_ = out.loc;
    mode_ = out.mode;
    if (out.error.has_value()) {
      lex_error_ = std::move(out.error);
    } else {
      ingest(std::move(out.tokens));
    }
  }
  pending_.clear();
  pending_.shrink_to_fit();

  // Tokens that never reached a balanced top-level '}' — an unterminated
  // function or trailing garbage. Parse them so the verdict (and message)
  // matches what the whole-string parser would say.
  if (!lex_error_.has_value() && !parse_error_.has_value() && !fn_tokens_.empty()) {
    complete_function(std::move(fn_tokens_));
    fn_tokens_.clear();
  }

  // Settle the verdict with whole-string precedence: lexing runs first over
  // the entire input, then parsing, then lowering in declaration order.
  if (lex_error_.has_value()) {
    final_error_ = lex_error_;
  } else if (parse_error_.has_value()) {
    final_error_ = parse_error_;
  } else {
    for (auto& outcome : outcomes_) {
      if (outcome.summary.has_value()) {
        resolved_.push_back(std::move(*outcome.summary));
        continue;
      }
      if (outcome.deferred.has_value()) {
        // Forward reference: every signature of the stream is declared by
        // now, so this either lowers or is a genuine unknown callee. The
        // kNotFound deferral sentinel must not escape — at this boundary an
        // unknown callee is invalid source, matching lower_to_ir.
        auto ir = session_.lower(*outcome.deferred);
        if (!ir.ok()) {
          common::Error error = ir.error();
          if (error.code == common::ErrorCode::kNotFound) {
            error.code = common::ErrorCode::kParseError;
          }
          final_error_ = std::move(error);
          break;
        }
        resolved_.push_back(summarize(ir.value()));
        continue;
      }
      if (outcome.error.has_value()) {
        final_error_ = outcome.error;
        break;
      }
      // Empty outcome: lowering was skipped past an earlier eager error,
      // which the walk already returned — unreachable otherwise.
    }
  }
  outcomes_.clear();
  return final_error_.has_value() ? common::Status(*final_error_)
                                  : common::Status::Ok();
}

void SourceFeeder::ingest(std::vector<Token> tokens) {
  for (auto& token : tokens) {
    // After a parse error the verdict is fixed; tokens are only scanned (for
    // lexical errors, found by the lexer itself), never stored.
    if (parse_error_.has_value()) return;
    const TokenKind kind = token.kind;
    fn_tokens_.push_back(std::move(token));
    if (kind == TokenKind::kLBrace) {
      ++brace_depth_;
    } else if (kind == TokenKind::kRBrace && brace_depth_ > 0) {
      if (--brace_depth_ == 0) {
        // A top-level function just closed: parse + lower + summarize it
        // now and release its tokens — the core of the bounded-memory
        // contract.
        std::vector<Token> fn_tokens = std::move(fn_tokens_);
        fn_tokens_ = {};
        complete_function(std::move(fn_tokens));
      }
    }
  }
}

void SourceFeeder::complete_function(std::vector<Token> tokens) {
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.loc = loc_;
  tokens.push_back(std::move(eof));
  Parser parser(std::move(tokens));
  auto unit = parser.parse_translation_unit();
  if (!unit.ok()) {
    parse_error_ = unit.error();
    return;
  }
  for (auto& fn : unit.value().functions) absorb_function(std::move(fn));
}

void SourceFeeder::absorb_function(FunctionDecl fn) {
  session_.declare(fn);
  Outcome outcome;
  if (!lower_error_seen_) {
    auto ir = session_.lower(fn);
    if (ir.ok()) {
      outcome.summary = summarize(ir.value());
    } else if (ir.error().code == common::ErrorCode::kNotFound) {
      // A callee not declared yet — maybe a forward reference. Keep the AST
      // and retry at finish(), when the whole stream has been declared.
      outcome.deferred = std::move(fn);
    } else {
      outcome.error = ir.error();
      lower_error_seen_ = true;  // later lowering cannot outrank this error
    }
  }
  outcomes_.push_back(std::move(outcome));
}

common::Result<StaticFeatures> SourceFeeder::features(const std::string& kernel) const {
  if (!finished_) {
    return common::invalid_argument("SourceFeeder: features() before finish()");
  }
  if (final_error_.has_value()) return *final_error_;
  const FunctionSummary* target = nullptr;
  if (kernel.empty()) {
    for (const auto& s : resolved_) {
      if (s.is_kernel) {
        target = &s;
        break;
      }
    }
    if (target == nullptr) {
      return common::not_found("module contains no kernel function");
    }
  } else {
    target = find_summary(resolved_, kernel);
    if (target == nullptr) {
      return common::not_found("kernel '" + kernel + "' not in module");
    }
  }
  return resolve(*target);
}

common::Result<std::vector<StaticFeatures>> SourceFeeder::kernel_features() const {
  if (!finished_) {
    return common::invalid_argument("SourceFeeder: kernel_features() before finish()");
  }
  if (final_error_.has_value()) return *final_error_;
  std::vector<StaticFeatures> out;
  for (const auto& s : resolved_) {
    if (!s.is_kernel) continue;
    auto features = resolve(s);
    if (!features.ok()) return features.error();
    out.push_back(std::move(features).take());
  }
  return out;
}

common::Result<StaticFeatures> SourceFeeder::resolve(
    const FunctionSummary& target) const {
  StaticFeatures features;
  features.kernel_name = target.name;
  std::set<std::string> chain;
  if (auto st = accumulate_summary(resolved_, target, features.counts, chain);
      !st.ok()) {
    return st.error();
  }
  return features;
}

common::Result<StaticFeatures> extract_features_chunked(std::string_view source,
                                                        std::size_t chunk_size,
                                                        const std::string& kernel,
                                                        StreamOptions options) {
  if (chunk_size == 0) {
    return common::invalid_argument("extract_features_chunked: chunk_size must be > 0");
  }
  SourceFeeder feeder(options);
  for (std::size_t offset = 0; offset < source.size(); offset += chunk_size) {
    if (auto st = feeder.feed(source.substr(offset, chunk_size)); !st.ok()) {
      return st.error();
    }
  }
  if (auto st = feeder.finish(); !st.ok()) return st.error();
  return feeder.features(kernel);
}

}  // namespace repro::clfront
