#include "clfront/builtins.hpp"

#include <array>
#include <string_view>

namespace repro::clfront {

namespace {

constexpr std::array<std::string_view, 8> kRuntime = {
    "get_global_id", "get_local_id", "get_group_id",   "get_num_groups",
    "get_global_size", "get_local_size", "get_work_dim", "get_global_offset",
};

constexpr std::array<std::string_view, 4> kBarrier = {
    "barrier", "mem_fence", "read_mem_fence", "write_mem_fence"};

constexpr std::array<std::string_view, 34> kSpecial = {
    "sin",        "cos",        "tan",        "asin",        "acos",
    "atan",       "atan2",      "sinh",       "cosh",        "tanh",
    "exp",        "exp2",       "exp10",      "log",         "log2",
    "log10",      "pow",        "powr",       "pown",        "sqrt",
    "rsqrt",      "cbrt",       "hypot",      "erf",         "erfc",
    "sincos",     "native_sin", "native_cos", "native_exp",  "native_log",
    "native_sqrt", "native_rsqrt", "native_powr", "half_sqrt",
};

constexpr std::array<std::string_view, 18> kCheap = {
    "fabs", "fmin",  "fmax",  "floor", "ceil",  "round", "trunc", "sign", "step",
    "min",  "max",   "abs",   "clamp", "select", "smoothstep", "isnan", "isinf",
    "fract",
};

constexpr std::array<std::string_view, 3> kMulAdd = {"fma", "mad", "mix"};

constexpr std::array<std::string_view, 4> kDot = {"dot", "length", "distance",
                                                  "fast_length"};

constexpr std::array<std::string_view, 6> kAtomic = {
    "atomic_add", "atomic_sub", "atomic_inc", "atomic_dec", "atomic_xchg",
    "atomic_cmpxchg"};

template <std::size_t N>
bool contains(const std::array<std::string_view, N>& set, std::string_view name) {
  for (const auto& s : set) {
    if (s == name) return true;
  }
  return false;
}

bool has_prefix(std::string_view name, std::string_view prefix) {
  return name.size() >= prefix.size() && name.substr(0, prefix.size()) == prefix;
}

}  // namespace

BuiltinCategory classify_builtin(const std::string& name) noexcept {
  const std::string_view n(name);
  if (contains(kRuntime, n)) return BuiltinCategory::kRuntime;
  if (contains(kBarrier, n)) return BuiltinCategory::kBarrier;
  if (contains(kSpecial, n)) return BuiltinCategory::kSpecial;
  if (contains(kCheap, n)) return BuiltinCategory::kCheapMath;
  if (contains(kMulAdd, n)) return BuiltinCategory::kMulAdd;
  if (contains(kDot, n)) return BuiltinCategory::kDot;
  if (contains(kAtomic, n)) return BuiltinCategory::kAtomic;
  if (has_prefix(n, "convert_") || has_prefix(n, "as_")) return BuiltinCategory::kConvert;
  if (has_prefix(n, "vload")) return BuiltinCategory::kNotBuiltin;  // handled in lowering
  return BuiltinCategory::kNotBuiltin;
}

}  // namespace repro::clfront
