// Classification of the OpenCL builtin library for lowering: which calls are
// work-item runtime queries, which are transcendental "special functions"
// (the paper's k_sf feature), and what arithmetic the cheap math helpers
// expand to.
#pragma once

#include <string>

namespace repro::clfront {

enum class BuiltinCategory {
  kNotBuiltin,   // user-defined function
  kRuntime,      // get_global_id & friends — no feature contribution
  kBarrier,      // barrier / mem_fence — synchronization only
  kSpecial,      // sin, cos, exp, sqrt, pow, native_* ... -> k_sf
  kCheapMath,    // fabs, fmin, floor, min/max/abs, step ... -> one add-class op
  kMulAdd,       // fma, mad, mix -> one mul + one add
  kDot,          // dot/length/distance -> width-dependent mul/add chain
  kConvert,      // convert_*/as_* reinterpretation — free
  kAtomic,       // atomic_* -> one global access + one integer op
};

/// Classify a callee name.
[[nodiscard]] BuiltinCategory classify_builtin(const std::string& name) noexcept;

}  // namespace repro::clfront
