// The twelve test benchmarks of the paper's evaluation (§4.2, Figs. 5-8,
// Table 2): k-NN, AES, Matrix-multiply, Convolution, Median Filter,
// Bit Compression, Mersenne Twister (MT), Blackscholes, Perlin Noise,
// Molecular Dynamics (MD), K-means and Flte.
//
// Each benchmark consists of
//   * an OpenCL-C kernel source (parsed by clfront for static features), and
//   * a dynamic execution profile for the GPU simulator, hand-calibrated to
//     the characterization the paper reports: k-NN strongly core-sensitive,
//     MT/Blackscholes memory-dominated, AES bitwise+local-memory bound, etc.
// The deliberate gap between static features (loop bodies count once) and
// dynamic profiles (loops iterate) is the realistic source of prediction
// error.
#pragma once

#include <string>
#include <vector>

#include "clfront/features.hpp"
#include "common/status.hpp"
#include "gpusim/kernel_profile.hpp"

namespace repro::kernels {

struct TestBenchmark {
  std::string name;          // display name used in the paper's figures
  std::string kernel_name;   // entry-point kernel in `source`
  std::string source;        // OpenCL-C
  gpusim::KernelProfile profile;
};

/// Number of test benchmarks (the paper evaluates twelve).
inline constexpr std::size_t kNumTestBenchmarks = 12;

/// The full test suite, in the paper's Table 2 row order. Built once,
/// validated (every source parses and its features are non-empty) on first
/// use; throws std::runtime_error if an embedded source fails to compile
/// (that would be a library build defect, not user error).
[[nodiscard]] const std::vector<TestBenchmark>& test_suite();

/// Lookup by display name (nullptr when unknown).
[[nodiscard]] const TestBenchmark* find_benchmark(const std::string& name);

/// Static features of a suite benchmark (extraction is memoised).
[[nodiscard]] common::Result<clfront::StaticFeatures> benchmark_features(
    const TestBenchmark& benchmark);

/// The eight benchmarks shown in Fig. 5, in figure order.
[[nodiscard]] std::vector<std::string> figure5_selection();

}  // namespace repro::kernels
