#include "kernels/kernels.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "clfront/parser.hpp"

namespace repro::kernels {

namespace {

using gpusim::KernelProfile;
using gpusim::OpClass;

/// Builder for the dynamic profiles: counts are *per-work-item dynamic
/// averages* at the benchmark's canonical problem size (documented per
/// benchmark below).
struct ProfileSpec {
  double int_add = 0, int_mul = 0, int_div = 0, int_bw = 0;
  double float_add = 0, float_mul = 0, float_div = 0, sf = 0;
  double gl_access = 0, loc_access = 0;
  std::uint64_t work_items = 1 << 20;
  double cache_hit = 0.3;
  double coalescing = 0.85;
  double overlap = 0.15;
  double erratic = 0.5;
};

KernelProfile make_profile(const std::string& name, const ProfileSpec& s) {
  KernelProfile p;
  p.name = name;
  p.set_op(OpClass::kIntAdd, s.int_add);
  p.set_op(OpClass::kIntMul, s.int_mul);
  p.set_op(OpClass::kIntDiv, s.int_div);
  p.set_op(OpClass::kIntBitwise, s.int_bw);
  p.set_op(OpClass::kFloatAdd, s.float_add);
  p.set_op(OpClass::kFloatMul, s.float_mul);
  p.set_op(OpClass::kFloatDiv, s.float_div);
  p.set_op(OpClass::kSpecialFn, s.sf);
  p.set_op(OpClass::kGlobalAccess, s.gl_access);
  p.set_op(OpClass::kLocalAccess, s.loc_access);
  p.work_items = s.work_items;
  p.cache_hit_rate = s.cache_hit;
  p.mem_coalescing = s.coalescing;
  p.overlap_penalty = s.overlap;
  p.erratic = s.erratic;
  return p;
}

// ---------------------------------------------------------------------------
// Kernel sources (OpenCL-C subset)
// ---------------------------------------------------------------------------

const char* kKnnSource = R"CL(
// k-nearest-neighbour distance kernel: each work-item scans the training set
// and keeps the smallest Euclidean distance to its query point.
kernel void knn(global float* train, global float* query, global float* dist,
                int n_train, int dims) {
  int gid = get_global_id(0);
  float best = FLT_MAX;
  for (int t = 0; t < n_train; t++) {
    float acc = 0.0f;
    for (int d = 0; d < dims; d++) {
      float diff = query[gid * dims + d] - train[t * dims + d];
      acc = acc + diff * diff;
    }
    float dd = sqrt(acc);
    best = fmin(best, dd);
  }
  dist[gid] = best;
}
)CL";

const char* kAesSource = R"CL(
// AES-like table-based round function: substitution through a local-memory
// T-table plus round-key xor.
kernel void aes_encrypt(global uint* state_in, global uint* state_out,
                        global uint* sbox, constant uint* rkeys, int rounds) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  local uint t0[256];
  t0[lid & 255] = sbox[lid & 255];
  barrier(CLK_LOCAL_MEM_FENCE);
  uint s = state_in[gid];
  for (int r = 0; r < rounds; r++) {
    uint b0 = (s >> 24) & 255u;
    uint b1 = (s >> 16) & 255u;
    uint b2 = (s >> 8) & 255u;
    uint b3 = s & 255u;
    s = (t0[b0] << 24) ^ (t0[b1] << 16) ^ (t0[b2] << 8) ^ t0[b3];
    s = s ^ rkeys[r & 15];
  }
  state_out[gid] = s;
}
)CL";

const char* kMatMulSource = R"CL(
// Tiled matrix multiplication with 16x16 local-memory tiles.
kernel void matmul(global float* a, global float* b, global float* c, int n) {
  int row = get_global_id(1);
  int col = get_global_id(0);
  int lrow = get_local_id(1);
  int lcol = get_local_id(0);
  local float tile_a[256];
  local float tile_b[256];
  float acc = 0.0f;
  for (int t = 0; t < n / 16; t++) {
    tile_a[lrow * 16 + lcol] = a[row * n + t * 16 + lcol];
    tile_b[lrow * 16 + lcol] = b[(t * 16 + lrow) * n + col];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < 16; k++) {
      acc = mad(tile_a[lrow * 16 + k], tile_b[k * 16 + lcol], acc);
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  c[row * n + col] = acc;
}
)CL";

const char* kConvolutionSource = R"CL(
// 2-D convolution with a constant-memory filter and clamped borders.
kernel void convolution(global float* input, global float* output,
                        constant float* filt, int width, int height, int fsize) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  int hw = fsize / 2;
  float acc = 0.0f;
  for (int fy = 0; fy < fsize; fy++) {
    for (int fx = 0; fx < fsize; fx++) {
      int ix = clamp(x + fx - hw, 0, width - 1);
      int iy = clamp(y + fy - hw, 0, height - 1);
      acc += input[iy * width + ix] * filt[fy * fsize + fx];
    }
  }
  output[y * width + x] = acc;
}
)CL";

const char* kMedianSource = R"CL(
// 3x3 median filter via a min/max sorting network (branch-free).
kernel void median_filter(global float* src, global float* dst,
                          int width, int height) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  int xm = max(x - 1, 0);
  int xp = min(x + 1, width - 1);
  int ym = max(y - 1, 0);
  int yp = min(y + 1, height - 1);
  float v0 = src[ym * width + xm];
  float v1 = src[ym * width + x];
  float v2 = src[ym * width + xp];
  float v3 = src[y * width + xm];
  float v4 = src[y * width + x];
  float v5 = src[y * width + xp];
  float v6 = src[yp * width + xm];
  float v7 = src[yp * width + x];
  float v8 = src[yp * width + xp];
  float t;
  t = fmin(v1, v2); v2 = fmax(v1, v2); v1 = t;
  t = fmin(v4, v5); v5 = fmax(v4, v5); v4 = t;
  t = fmin(v7, v8); v8 = fmax(v7, v8); v7 = t;
  t = fmin(v0, v1); v1 = fmax(v0, v1); v0 = t;
  t = fmin(v3, v4); v4 = fmax(v3, v4); v3 = t;
  t = fmin(v6, v7); v7 = fmax(v6, v7); v6 = t;
  v3 = fmax(v0, v3);
  v6 = fmax(v3, v6);
  v4 = fmin(v4, v7);
  v2 = fmin(v2, v5);
  v4 = fmax(v1, v4);
  v4 = fmin(v4, v7);
  v2 = fmin(v2, v8);
  v4 = fmax(v2, v4);
  v4 = fmin(v4, v6);
  dst[y * width + x] = v4;
}
)CL";

const char* kBitCompressionSource = R"CL(
// Nibble-wise gray-code bit compression: pure integer/bitwise compute.
kernel void bit_compress(global uint* input, global uint* output, int n) {
  int gid = get_global_id(0);
  uint w = input[gid];
  uint acc = 0u;
  for (int b = 0; b < 32; b += 4) {
    uint nib = (w >> b) & 15u;
    nib = nib ^ (nib >> 1);
    nib = nib ^ (nib >> 2);
    acc = acc | (nib << (b >> 1));
  }
  uint folded = acc ^ (acc >> 16);
  folded = folded * 2654435761u;
  output[gid] = folded ^ w;
}
)CL";

const char* kMtSource = R"CL(
// Mersenne-Twister-style tempered stream generator: two state loads and one
// store per sample around a handful of shifts/xors — memory-dominated.
kernel void mersenne_twister(global uint* state, global uint* output,
                             int n, int samples) {
  int gid = get_global_id(0);
  for (int i = 0; i < samples; i++) {
    uint x = state[(gid + i) % n];
    uint y = state[(gid + i * 397) % n];
    uint z = (x & 2147483648u) | (y & 2147483647u);
    uint v = z >> 1;
    v = v ^ (v >> 11);
    v = v ^ ((v << 7) & 2636928640u);
    v = v ^ ((v << 15) & 4022730752u);
    v = v ^ (v >> 18);
    output[gid * samples + i] = v;
  }
}
)CL";

const char* kBlackscholesSource = R"CL(
// Black-Scholes European option pricing (call and put per work-item).
float cnd(float d) {
  float k = 1.0f / (1.0f + 0.2316419f * fabs(d));
  float poly = k * (0.319381530f + k * (-0.356563782f +
               k * (1.781477937f + k * (-1.821255978f + k * 1.330274429f))));
  float w = 1.0f - 0.39894228f * exp(-0.5f * d * d) * poly;
  return d < 0.0f ? 1.0f - w : w;
}

kernel void blackscholes(global float* price, global float* strike,
                         global float* years, global float* call_out,
                         global float* put_out, float riskfree, float vol) {
  int gid = get_global_id(0);
  float s = price[gid];
  float k = strike[gid];
  float t = years[gid];
  float sq = sqrt(t);
  float d1 = (log(s / k) + (riskfree + 0.5f * vol * vol) * t) / (vol * sq);
  float d2 = d1 - vol * sq;
  float c1 = cnd(d1);
  float c2 = cnd(d2);
  float kexp = k * exp(-riskfree * t);
  call_out[gid] = s * c1 - kexp * c2;
  put_out[gid] = kexp * (1.0f - c2) - s * (1.0f - c1);
}
)CL";

const char* kPerlinSource = R"CL(
// 2-D Perlin gradient noise with fractal octaves: float-multiply heavy.
float fade(float t) {
  return t * t * t * (t * (t * 6.0f - 15.0f) + 10.0f);
}

float lerpf(float a, float b, float t) {
  return a + t * (b - a);
}

float grad(int h, float x, float y) {
  int hh = h & 7;
  float u = hh < 4 ? x : y;
  float v = hh < 4 ? y : x;
  float su = (hh & 1) == 0 ? u : -u;
  float sv = (hh & 2) == 0 ? v : -v;
  return su + 0.5f * sv;
}

kernel void perlin_noise(global float* output, global int* perm,
                         int width, float frequency, int octaves) {
  int gid = get_global_id(0);
  int px = gid % width;
  int py = gid / width;
  float amp = 1.0f;
  float freq = frequency;
  float sum = 0.0f;
  for (int o = 0; o < octaves; o++) {
    float fx = (float)px * freq;
    float fy = (float)py * freq;
    int ix = (int)fx & 255;
    int iy = (int)fy & 255;
    float rx = fx - floor(fx);
    float ry = fy - floor(fy);
    float u = fade(rx);
    float v = fade(ry);
    int aa = perm[(perm[ix] + iy) & 255];
    int ab = perm[(perm[ix] + iy + 1) & 255];
    int ba = perm[(perm[(ix + 1) & 255] + iy) & 255];
    int bb = perm[(perm[(ix + 1) & 255] + iy + 1) & 255];
    float g00 = grad(aa, rx, ry);
    float g10 = grad(ba, rx - 1.0f, ry);
    float g01 = grad(ab, rx, ry - 1.0f);
    float g11 = grad(bb, rx - 1.0f, ry - 1.0f);
    float nx0 = lerpf(g00, g10, u);
    float nx1 = lerpf(g01, g11, u);
    sum += amp * lerpf(nx0, nx1, v);
    amp *= 0.5f;
    freq *= 2.0f;
  }
  output[gid] = sum;
}
)CL";

const char* kMdSource = R"CL(
// Lennard-Jones molecular-dynamics force kernel (all-pairs with cutoff).
kernel void md_forces(global float* posx, global float* posy, global float* posz,
                      global float* fx_out, global float* fy_out,
                      global float* fz_out, int n, float cutoff2) {
  int gid = get_global_id(0);
  float px = posx[gid];
  float py = posy[gid];
  float pz = posz[gid];
  float fx = 0.0f;
  float fy = 0.0f;
  float fz = 0.0f;
  for (int j = 0; j < n; j++) {
    float dx = px - posx[j];
    float dy = py - posy[j];
    float dz = pz - posz[j];
    float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 < cutoff2 && r2 > 0.000001f) {
      float inv = 1.0f / r2;
      float inv3 = inv * inv * inv;
      float f = 24.0f * inv * inv3 * (2.0f * inv3 - 1.0f);
      fx += f * dx;
      fy += f * dy;
      fz += f * dz;
    }
  }
  fx_out[gid] = fx;
  fy_out[gid] = fy;
  fz_out[gid] = fz;
}
)CL";

const char* kKmeansSource = R"CL(
// K-means assignment step: nearest centroid per point.
kernel void kmeans_assign(global float* points, global float* centroids,
                          global int* assignment, int n_clusters, int dims) {
  int gid = get_global_id(0);
  float best = FLT_MAX;
  int best_c = 0;
  for (int c = 0; c < n_clusters; c++) {
    float acc = 0.0f;
    for (int d = 0; d < dims; d++) {
      float diff = points[gid * dims + d] - centroids[c * dims + d];
      acc += diff * diff;
    }
    if (acc < best) {
      best = acc;
      best_c = c;
    }
  }
  assignment[gid] = best_c;
}
)CL";

const char* kFlteSource = R"CL(
// Flte: streaming FIR filter (linear transversal estimator) over a signal,
// coefficients in constant memory.
kernel void flte(global float* signal, global float* output,
                 constant float* coeff, int n, int taps) {
  int gid = get_global_id(0);
  float acc = 0.0f;
  for (int t = 0; t < taps; t++) {
    int idx = gid + t;
    if (idx >= n) {
      idx = n - 1;
    }
    acc = mad(signal[idx], coeff[t], acc);
  }
  float prev = gid > 0 ? signal[gid - 1] : 0.0f;
  output[gid] = acc - 0.25f * prev;
}
)CL";

// ---------------------------------------------------------------------------
// Suite assembly
// ---------------------------------------------------------------------------

/// Dynamic profiles at canonical problem sizes. The calibration targets the
/// paper's characterization:
///   * k-NN, PerlinNoise, MD, BitCompression: compute-dominated (strong core
///     scaling; speedup ~linear in f_core at high memory clocks);
///   * MT, Blackscholes, Flte: memory-dominated (flat in f_core, steep in
///     f_mem; points collapse at low memory clocks);
///   * AES, MatrixMultiply, Convolution, MedianFilter, K-means: mixed.
/// `erratic` is higher for the kernels the paper reports as hard at low
/// memory clocks (k-NN, MT, AES).
std::vector<TestBenchmark> build_suite() {
  std::vector<TestBenchmark> suite;
  const auto add = [&suite](const std::string& name, const std::string& kernel,
                            const char* source, const ProfileSpec& spec) {
    TestBenchmark b;
    b.name = name;
    b.kernel_name = kernel;
    b.source = source;
    b.profile = make_profile(name, spec);
    suite.push_back(std::move(b));
  };

  // PerlinNoise: 1Mpix, 4 octaves. Almost pure float compute, tiny tables
  // (cached). The easiest benchmark in Table 2.
  add("PerlinNoise", "perlin_noise", kPerlinSource,
      {.int_add = 90, .int_mul = 8, .int_div = 2, .int_bw = 60,
       .float_add = 120, .float_mul = 150, .float_div = 0, .sf = 8,
       .gl_access = 18, .loc_access = 0,
       .work_items = 1u << 20, .cache_hit = 0.92, .coalescing = 0.9,
       .overlap = 0.12, .erratic = 0.30});

  // MD: n = 4096 neighbours; position loads broadcast across the warp ->
  // high hit rate; ~10 flops per iteration. Compute-dominated.
  add("MD", "md_forces", kMdSource,
      {.int_add = 4200, .int_mul = 0, .int_div = 0, .int_bw = 0,
       .float_add = 20000, .float_mul = 24000, .float_div = 4100, .sf = 0,
       .gl_access = 12300, .loc_access = 0,
       .work_items = 1u << 17, .cache_hit = 0.97, .coalescing = 0.9,
       .overlap = 0.10, .erratic = 0.35});

  // K-means: 16 clusters x 8 dims; centroids cached, points streamed.
  add("K-means", "kmeans_assign", kKmeansSource,
      {.int_add = 450, .int_mul = 260, .int_div = 0, .int_bw = 0,
       .float_add = 390, .float_mul = 130, .float_div = 0, .sf = 0,
       .gl_access = 260, .loc_access = 0,
       .work_items = 1u << 21, .cache_hit = 0.62, .coalescing = 0.85,
       .overlap = 0.15, .erratic = 0.40});

  // MedianFilter: 9 loads (heavily overlapped between neighbours -> cache)
  // plus a 19-op min/max network.
  add("MedianFilter", "median_filter", kMedianSource,
      {.int_add = 18, .int_mul = 6, .int_div = 0, .int_bw = 0,
       .float_add = 21, .float_mul = 0, .float_div = 0, .sf = 0,
       .gl_access = 10, .loc_access = 0,
       .work_items = 1u << 21, .cache_hit = 0.68, .coalescing = 0.88,
       .overlap = 0.15, .erratic = 0.45});

  // Flte: 32-tap FIR; streaming with strong reuse between neighbours but a
  // high access-to-flop ratio. Memory-leaning mixed.
  add("Flte", "flte", kFlteSource,
      {.int_add = 70, .int_mul = 0, .int_div = 0, .int_bw = 0,
       .float_add = 34, .float_mul = 33, .float_div = 0, .sf = 0,
       .gl_access = 35, .loc_access = 0,
       .work_items = 1u << 22, .cache_hit = 0.55, .coalescing = 0.92,
       .overlap = 0.18, .erratic = 0.50});

  // BitCompression: 8 unrolled nibble rounds, pure integer pipeline.
  add("BitCompression", "bit_compress", kBitCompressionSource,
      {.int_add = 10, .int_mul = 2, .int_div = 0, .int_bw = 46,
       .float_add = 0, .float_mul = 0, .float_div = 0, .sf = 0,
       .gl_access = 2, .loc_access = 0,
       .work_items = 1u << 22, .cache_hit = 0.15, .coalescing = 0.95,
       .overlap = 0.15, .erratic = 0.55});

  // MatrixMultiply: 1024^2, 16x16 tiles; 64 tile phases x 16 mads.
  add("MatrixMultiply", "matmul", kMatMulSource,
      {.int_add = 700, .int_mul = 400, .int_div = 1, .int_bw = 0,
       .float_add = 1024, .float_mul = 1024, .float_div = 0, .sf = 0,
       .gl_access = 130, .loc_access = 2176,
       .work_items = 1u << 20, .cache_hit = 0.45, .coalescing = 0.9,
       .overlap = 0.12, .erratic = 0.45});

  // Convolution: 5x5 filter, filter cached, image streamed with halo reuse.
  add("Convolution", "convolution", kConvolutionSource,
      {.int_add = 180, .int_mul = 60, .int_div = 1, .int_bw = 0,
       .float_add = 50, .float_mul = 25, .float_div = 0, .sf = 0,
       .gl_access = 28, .loc_access = 0,
       .work_items = 1u << 21, .cache_hit = 0.58, .coalescing = 0.9,
       .overlap = 0.15, .erratic = 0.50});

  // k-NN: 4096 training points x 16 dims: enormous arithmetic stream with
  // broadcast-friendly loads. The strongest core scaling of the suite and —
  // per the paper — the hardest Pareto front (high erraticness at mem-l).
  add("k-NN", "knn", kKnnSource,
      {.int_add = 17000, .int_mul = 8400, .int_div = 0, .int_bw = 0,
       .float_add = 13000, .float_mul = 6600, .float_div = 0, .sf = 410,
       .gl_access = 6800, .loc_access = 0,
       .work_items = 1u << 16, .cache_hit = 0.965, .coalescing = 0.85,
       .overlap = 0.10, .erratic = 0.95});

  // AES: bitwise + local-memory T-table lookups; 10 rounds.
  add("AES", "aes_encrypt", kAesSource,
      {.int_add = 22, .int_mul = 0, .int_div = 0, .int_bw = 95,
       .float_add = 0, .float_mul = 0, .float_div = 0, .sf = 0,
       .gl_access = 5, .loc_access = 41,
       .work_items = 1u << 22, .cache_hit = 0.35, .coalescing = 0.9,
       .overlap = 0.15, .erratic = 0.85});

  // MT: per sample 2 scattered loads + 1 store around ~10 cheap bitwise
  // ops; scattered indexing hurts coalescing. Memory-dominated.
  add("MersenneTwister", "mersenne_twister", kMtSource,
      {.int_add = 130, .int_mul = 33, .int_div = 64, .int_bw = 290,
       .float_add = 0, .float_mul = 0, .float_div = 0, .sf = 0,
       .gl_access = 96, .loc_access = 0,
       .work_items = 1u << 21, .cache_hit = 0.12, .coalescing = 0.55,
       .overlap = 0.20, .erratic = 0.90});

  // Blackscholes: 5 streamed buffers around ~60 flops — bandwidth-bound on
  // high memory clocks, fully collapsed at mem-L (paper Fig. 5h).
  add("Blackscholes", "blackscholes", kBlackscholesSource,
      {.int_add = 6, .int_mul = 2, .int_div = 0, .int_bw = 0,
       .float_add = 28, .float_mul = 34, .float_div = 3, .sf = 4,
       .gl_access = 40, .loc_access = 0,
       .work_items = 1u << 22, .cache_hit = 0.05, .coalescing = 0.95,
       .overlap = 0.20, .erratic = 0.55});

  return suite;
}

std::vector<TestBenchmark> build_and_validate() {
  auto suite = build_suite();
  if (suite.size() != kNumTestBenchmarks) {
    throw std::runtime_error("kernels: suite size mismatch");
  }
  for (const auto& b : suite) {
    const auto features = clfront::extract_features_from_source(b.source, b.kernel_name);
    if (!features.ok()) {
      throw std::runtime_error("kernels: benchmark '" + b.name +
                               "' source does not compile: " + features.error().message);
    }
    if (features.value().total() <= 0.0) {
      throw std::runtime_error("kernels: benchmark '" + b.name + "' has empty features");
    }
  }
  return suite;
}

}  // namespace

const std::vector<TestBenchmark>& test_suite() {
  static const std::vector<TestBenchmark> suite = build_and_validate();
  return suite;
}

const TestBenchmark* find_benchmark(const std::string& name) {
  for (const auto& b : test_suite()) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

common::Result<clfront::StaticFeatures> benchmark_features(const TestBenchmark& benchmark) {
  static std::mutex mutex;
  static std::map<std::string, clfront::StaticFeatures> cache;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(benchmark.name);
    if (it != cache.end()) return it->second;
  }
  auto features =
      clfront::extract_features_from_source(benchmark.source, benchmark.kernel_name);
  if (!features.ok()) return features.error();
  {
    const std::lock_guard<std::mutex> lock(mutex);
    cache[benchmark.name] = features.value();
  }
  return features;
}

std::vector<std::string> figure5_selection() {
  return {"k-NN",        "AES",            "MatrixMultiply", "Convolution",
          "MedianFilter", "BitCompression", "MersenneTwister", "Blackscholes"};
}

}  // namespace repro::kernels
