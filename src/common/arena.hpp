// Monotonic bump allocator for per-request scratch (the serve hot path's
// protocol parse), plus an STL-compatible allocator over it.
//
// An Arena hands out pointers by bumping an offset through chunked slabs;
// nothing is ever freed individually. reset() rewinds the arena for the
// next request, keeping the largest slab, so a connection that has seen
// its biggest request once never touches the heap again — the lifecycle
// the zero-allocation serving contract is built on (docs/ARCHITECTURE.md,
// "Arena and pool lifetimes").
//
// Lifetime rule: everything allocated from an arena dies at the next
// reset(). Values that outlive the request (a WireRequest's source bytes,
// anything queued into the Service) must be copied out into ordinary
// heap-owned storage before the parse returns.
//
// Not thread-safe by design: one arena per connection (per thread). The
// allocator's null-arena state falls back to the global heap, so
// arena-typed containers (JsonValue's vectors and strings) behave exactly
// like their std counterparts when no arena is supplied.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace repro::common {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 4096;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : first_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultChunkBytes
                                                  : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two). Grows by
  /// doubling chunks when the active chunk is exhausted; throws
  /// std::bad_alloc only if the underlying slab allocation does.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    if (active_ < chunks_.size()) {
      Chunk& chunk = chunks_[active_];
      const std::size_t offset = (chunk.used + align - 1) & ~(align - 1);
      if (offset + bytes <= chunk.capacity && offset + bytes >= offset) {
        chunk.used = offset + bytes;
        bump_used(chunk);
        return chunk.data.get() + offset;
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Rewind for the next request: every previous allocation is dead. The
  /// largest slab is kept so a warmed-up arena serves the steady state
  /// without heap traffic; the rest are released.
  void reset() noexcept {
    if (chunks_.empty()) return;
    std::size_t largest = 0;
    for (std::size_t i = 1; i < chunks_.size(); ++i) {
      if (chunks_[i].capacity > chunks_[largest].capacity) largest = i;
    }
    if (largest != 0) chunks_[0] = std::move(chunks_[largest]);
    chunks_.resize(1);
    chunks_[0].used = 0;
    active_ = 0;
    base_used_ = 0;
    used_ = 0;
  }

  /// Live bytes since the last reset (bump offsets, padding included).
  [[nodiscard]] std::size_t used_bytes() const noexcept { return used_; }
  /// Total slab capacity currently held.
  [[nodiscard]] std::size_t reserved_bytes() const noexcept {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.capacity;
    return total;
  }
  /// High-water mark of used_bytes() across the arena's whole life — the
  /// number the repro_arena_bytes gauge reports.
  [[nodiscard]] std::size_t peak_used_bytes() const noexcept { return peak_used_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  void bump_used(const Chunk& chunk) noexcept {
    used_ = base_used_ + chunk.used;
    if (used_ > peak_used_) peak_used_ = used_;
  }

  [[nodiscard]] void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Move past the exhausted chunk; its tail is wasted until reset().
    if (active_ < chunks_.size()) base_used_ += chunks_[active_].used;
    std::size_t capacity =
        chunks_.empty() ? first_chunk_bytes_ : chunks_.back().capacity * 2;
    if (capacity < bytes + align) capacity = bytes + align;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(capacity), capacity, 0});
    active_ = chunks_.size() - 1;
    Chunk& chunk = chunks_.back();
    const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
    const std::size_t offset =
        ((base + align - 1) & ~(std::uintptr_t{align} - 1)) - base;
    chunk.used = offset + bytes;
    bump_used(chunk);
    return chunk.data.get() + offset;
  }

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;     // index of the chunk being bumped
  std::size_t base_used_ = 0;  // used bytes in exhausted chunks before it
  std::size_t used_ = 0;
  std::size_t peak_used_ = 0;
};

/// STL allocator over an Arena. Null arena = global heap, so containers
/// typed on ArenaAllocator are drop-in replacements when no arena is in
/// play (a default-constructed JsonValue, a test building documents by
/// hand). deallocate is a no-op on the arena side — memory comes back only
/// at Arena::reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // Propagate on assignment/swap so moves between containers steal buffers
  // instead of copying elements across allocators.
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc();
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) noexcept {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace repro::common
