// Bounded blocking MPMC queue — the admission and dispatch primitive under
// the serving layer (serve::Service). Closing the queue is the shutdown
// signal: producers are refused, consumers drain what is left and then see
// end-of-stream. The queue imposes FIFO order under one mutex, which is what
// the micro-batcher's arrival sequence numbers are assigned against.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace repro::common {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` == 0 is promoted to 1 (a zero-capacity queue could never
  /// transfer anything).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room, then enqueue. Returns false when the queue
  /// is or becomes closed while waiting — in that case `item` is NOT moved
  /// from, so the caller keeps it (the serving layer fails the request's
  /// promise instead of losing it).
  bool push(T&& item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueue only if there is room right now; never blocks. Like push(),
  /// `item` is left intact when the call returns false.
  bool try_push(T&& item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available and dequeue it. Returns nullopt only
  /// when the queue is closed *and* drained — items enqueued before close()
  /// are always delivered.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return pop_locked(lock);
  }

  /// Like pop(), but gives up at `deadline`; nullopt on timeout as well as
  /// on closed-and-drained (callers that care can check closed()).
  template <typename Clock, typename Duration>
  std::optional<T> pop_until(const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_until(lock, deadline,
                               [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    return pop_locked(lock);
  }

  /// Dequeue only if an item is available right now; never blocks.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    return pop_locked(lock);
  }

  /// Refuse new items and wake every waiter. Idempotent; already-queued
  /// items remain poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::optional<T> pop_locked(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace repro::common
