// Timeout-aware socket I/O primitives shared by serve and fleet.
//
// Every socket read and write in the serving stack goes through these two
// helpers so that (a) no peer can wedge another — each operation carries a
// per-op timeout enforced with poll(2) — and (b) common::FaultInjector has a
// single choke point to inject short reads/writes, EINTR, latency, and
// connection drops (see docs/ROBUSTNESS.md).
//
// Timeout semantics: the timeout applies to *progress*, not to the whole
// transfer. write_all resets its clock every time bytes leave; read_some
// waits at most `timeout` for the fd to become readable. A non-positive
// timeout blocks forever (opt-in, used by idle-capable loops that implement
// their own progress checks).
#pragma once

#include <chrono>
#include <cstddef>
#include <string_view>

namespace repro::common::net {

enum class IoStatus {
  kOk,       // moved >= 1 byte (read) / moved everything (write)
  kEof,      // orderly shutdown by the peer (read only)
  kTimeout,  // no progress within the per-op timeout
  kError,    // errno-style failure; see IoResult::err
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;  // bytes actually moved
  int err = 0;            // errno when status == kError
};

/// Read up to `len` bytes, waiting at most `timeout` for readability.
/// Retries EINTR internally. timeout <= 0 blocks until readable.
[[nodiscard]] IoResult read_some(int fd, char* buf, std::size_t len,
                                 std::chrono::milliseconds timeout);

/// Write all of `data`, waiting at most `timeout` between progress steps.
/// Sends with MSG_NOSIGNAL; retries EINTR internally.
[[nodiscard]] IoResult write_all(int fd, std::string_view data,
                                 std::chrono::milliseconds timeout);

}  // namespace repro::common::net
