#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace repro::common {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

/// Split one CSV line honouring quotes.
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

void CsvDocument::add_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double v : row) fields.push_back(format_double(v, precision));
  rows_.push_back(std::move(fields));
}

Result<std::size_t> CsvDocument::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return not_found("csv column '" + name + "'");
}

std::string CsvDocument::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i != 0) oss << ',';
    oss << quote(header_[i]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) oss << ',';
      oss << quote(row[i]);
    }
    oss << '\n';
  }
  return oss.str();
}

Status CsvDocument::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return io_error("cannot open for write: " + path);
  out << to_string();
  if (!out) return io_error("write failed: " + path);
  return Status::Ok();
}

Result<CsvDocument> CsvDocument::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return io_error("cannot open for read: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return parse(oss.str());
}

Result<CsvDocument> CsvDocument::parse(const std::string& text) {
  std::istringstream iss(text);
  std::string line;
  CsvDocument doc;
  bool first = true;
  while (std::getline(iss, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && iss.eof()) break;
    auto fields = split_csv_line(line);
    if (first) {
      doc.header_ = std::move(fields);
      first = false;
    } else {
      doc.rows_.push_back(std::move(fields));
    }
  }
  if (first) return parse_error("empty csv document");
  return doc;
}

}  // namespace repro::common
