// Lightweight error-handling vocabulary used across the library.
//
// We deliberately avoid exceptions on hot paths (Per-rules of the C++ Core
// Guidelines); fallible constructors and parsers return Result<T> instead.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace repro::common {

/// Error category used across subsystems.
enum class ErrorCode {
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kParseError,
  kTypeError,
  kUnsupported,
  kInternal,
  kIo,
  /// Transient refusal (service shutting down / no backend up / overload
  /// shed). Retryable: the fleet balancer re-dispatches requests that fail
  /// with this code.
  kUnavailable,
  /// The request's deadline budget ran out before an answer was produced.
  /// Retryable by the *client* (with a fresh deadline), but never
  /// re-dispatched by the balancer — a retry cannot resurrect a dead
  /// deadline. See docs/ROBUSTNESS.md.
  kDeadlineExceeded,
};

/// Human-readable label for an ErrorCode.
constexpr const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kTypeError: return "type_error";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

/// Codes a client may retry on (the serving layer's contract: everything
/// else is a permanent answer for that exact request).
constexpr bool is_retryable(ErrorCode code) noexcept {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kDeadlineExceeded;
}

/// An error with a code and a message. Cheap to move, printable.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(common::to_string(code)) + ": " + message;
  }
};

/// Minimal expected-like type (std::expected is C++23; we target C++20).
template <typename T>
class Result {
 public:
  // Implicit construction from both value and error keeps call sites terse.
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  /// Access the value; throws std::logic_error when holding an error.
  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::logic_error("Result::take on error: " + error().to_string());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const& {
    return std::get<Error>(data_);
  }

  /// Value or a fallback when holding an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialisation for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const { return *error_; }

  static Status Ok() { return Status(); }

 private:
  std::optional<Error> error_;
};

/// Convenience factories.
inline Error invalid_argument(std::string msg) {
  return Error{ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Error out_of_range(std::string msg) {
  return Error{ErrorCode::kOutOfRange, std::move(msg)};
}
inline Error not_found(std::string msg) {
  return Error{ErrorCode::kNotFound, std::move(msg)};
}
inline Error parse_error(std::string msg) {
  return Error{ErrorCode::kParseError, std::move(msg)};
}
inline Error type_error(std::string msg) {
  return Error{ErrorCode::kTypeError, std::move(msg)};
}
inline Error unsupported(std::string msg) {
  return Error{ErrorCode::kUnsupported, std::move(msg)};
}
inline Error internal_error(std::string msg) {
  return Error{ErrorCode::kInternal, std::move(msg)};
}
inline Error io_error(std::string msg) {
  return Error{ErrorCode::kIo, std::move(msg)};
}
inline Error unavailable(std::string msg) {
  return Error{ErrorCode::kUnavailable, std::move(msg)};
}
inline Error deadline_exceeded(std::string msg) {
  return Error{ErrorCode::kDeadlineExceeded, std::move(msg)};
}

}  // namespace repro::common
