#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace repro::common {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace repro::common
