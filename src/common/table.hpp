// ASCII table printer: the benchmark harnesses print paper-style tables
// (e.g. Table 2) through this, so all experiment output is uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace repro::common {

/// Column alignment.
enum class Align { kLeft, kRight };

/// Accumulates rows, then renders with per-column width computation.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header,
                        std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> row);

  /// Insert a horizontal separator after the last added row.
  void add_separator();

  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;  // empty vector => separator
};

}  // namespace repro::common
