// A small fixed-size thread pool with a deterministic `parallel_for`
// primitive — the parallelism layer under the prediction stack (SVR kernel
// matrices, batched prediction, cross-validation folds, the config sweep).
//
// Design constraints, in order:
//   1. Determinism. Work is split into *statically computed* chunks that
//      depend only on (range, grain, thread count), and every call site
//      writes disjoint output slots or reduces partial results in chunk
//      order. Parallel output is bit-identical to serial output.
//   2. Size awareness. Ranges at or below the grain run inline on the
//      calling thread; a pool of one thread never spawns workers.
//   3. Nesting safety. A `parallel_for` issued from inside a worker runs
//      inline (serial) instead of deadlocking on the pool's own queue.
//
// Thread count: `ThreadPool::default_thread_count()` honours the
// REPRO_THREADS environment variable when set to a positive integer and
// falls back to `std::thread::hardware_concurrency()` otherwise. The
// process-wide pool is `ThreadPool::global()`; benchmarks (and tests) pin
// it with `ThreadPool::set_global_threads(n)`.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace repro::common {

class ThreadPool {
 public:
  /// `num_threads` == 0 means `default_thread_count()`. A pool of n threads
  /// keeps n-1 background workers; the caller of `parallel_for` is the nth.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count including the calling thread (>= 1).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Invoke `body(chunk_begin, chunk_end)` over a static partition of
  /// [begin, end). Serial fallback when the range is at most `grain`
  /// elements, the pool has one thread, or the caller is itself a pool
  /// worker. Chunk boundaries depend only on (range, grain, size()) —
  /// never on scheduling — so call sites that write disjoint slots are
  /// bit-deterministic. The first exception thrown by `body` is rethrown
  /// on the calling thread after all chunks finish.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body) const;

  /// REPRO_THREADS env override (positive integer) or hardware_concurrency.
  [[nodiscard]] static std::size_t default_thread_count();

  /// The process-wide pool used by the ml/core layers.
  [[nodiscard]] static ThreadPool& global();

  /// Replace the global pool with an `n`-thread pool (0 = default count).
  /// Not safe while work is in flight; intended for benchmarks and tests.
  static void set_global_threads(std::size_t n);

  /// True when the calling thread is a pool worker (any pool).
  [[nodiscard]] static bool on_worker_thread() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace repro::common
