#include "common/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>

#include "common/rng.hpp"
#include "common/strings.hpp"

namespace repro::common {
namespace {

struct Engine {
  std::mutex mutex;
  SplitMix64 rng{0};
  FaultSpec spec;
};

Engine& engine() {
  static Engine e;
  return e;
}

// Uniform double in [0,1) from the shared stream. Caller holds the mutex.
double draw(SplitMix64& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

}  // namespace

std::atomic<int>& FaultInjector::state() {
  static std::atomic<int> s{0};
  return s;
}

void FaultInjector::install(std::uint64_t seed, const FaultSpec& spec) {
  Engine& e = engine();
  {
    std::lock_guard<std::mutex> lock(e.mutex);
    e.rng = SplitMix64(seed);
    e.spec = spec;
  }
  state().store(spec.any() ? 2 : 1, std::memory_order_relaxed);
}

void FaultInjector::set_disabled() {
  state().store(1, std::memory_order_relaxed);
}

bool FaultInjector::init_from_env() {
  // Races between threads both seeing state()==0 are benign: both parse the
  // same env value and install the same spec; the seed reset is idempotent.
  const char* env = std::getenv("REPRO_FAULTS");
  if (env == nullptr || *env == '\0') {
    set_disabled();
    return false;
  }
  auto parsed = parse(env);
  if (!parsed.ok()) {
    // A malformed spec must not silently disable injection — the chaos soak
    // would then "pass" while testing nothing. Fail the process loudly.
    std::fprintf(stderr, "REPRO_FAULTS invalid: %s\n",
                 parsed.error().to_string().c_str());
    std::abort();
  }
  install(parsed.value().first, parsed.value().second);
  return state().load(std::memory_order_relaxed) == 2;
}

FaultInjector::IoDecision FaultInjector::next_io() {
  Engine& e = engine();
  std::lock_guard<std::mutex> lock(e.mutex);
  IoDecision d;
  if (e.spec.delay_p > 0 && draw(e.rng) < e.spec.delay_p) {
    d.delay = e.spec.delay_ms;
  }
  if (e.spec.short_rw > 0 && draw(e.rng) < e.spec.short_rw) d.clamp = true;
  // eintr and drop are mutually exclusive per decision: a syscall fails one
  // way at a time.
  if (e.spec.eintr > 0 && draw(e.rng) < e.spec.eintr) {
    d.eintr = true;
  } else if (e.spec.drop > 0 && draw(e.rng) < e.spec.drop) {
    d.drop = true;
  }
  return d;
}

bool FaultInjector::drop_connect() {
  Engine& e = engine();
  std::lock_guard<std::mutex> lock(e.mutex);
  return e.spec.connect_fail > 0 && draw(e.rng) < e.spec.connect_fail;
}

Result<std::pair<std::uint64_t, FaultSpec>> FaultInjector::parse(
    const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) {
    return parse_error("fault spec must be '<seed>:<key=value,...>', got '" +
                       text + "'");
  }
  std::uint64_t seed = 0;
  {
    const std::string seed_text = text.substr(0, colon);
    if (seed_text.empty()) return parse_error("fault spec: empty seed");
    for (char c : seed_text) {
      if (c < '0' || c > '9') {
        return parse_error("fault spec: seed must be a decimal integer, got '" +
                           seed_text + "'");
      }
      seed = seed * 10 + static_cast<std::uint64_t>(c - '0');
    }
  }

  FaultSpec spec;
  for (const std::string& item : split(text.substr(colon + 1), ',')) {
    const std::string entry{trim(item)};
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos) {
      return parse_error("fault spec: entry '" + entry + "' has no '='");
    }
    const std::string key{trim(std::string_view(entry).substr(0, eq))};
    const std::string value{trim(std::string_view(entry).substr(eq + 1))};
    char* end = nullptr;
    const double number = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || !(number >= 0.0)) {
      return parse_error("fault spec: bad value for '" + key + "': '" + value +
                         "'");
    }
    const bool is_probability =
        key == "short_rw" || key == "eintr" || key == "drop" ||
        key == "connect_fail" || key == "delay_p";
    if (is_probability && number > 1.0) {
      return parse_error("fault spec: probability '" + key + "' > 1");
    }
    if (key == "short_rw") {
      spec.short_rw = number;
    } else if (key == "eintr") {
      spec.eintr = number;
    } else if (key == "drop") {
      spec.drop = number;
    } else if (key == "connect_fail") {
      spec.connect_fail = number;
    } else if (key == "delay_p") {
      spec.delay_p = number;
    } else if (key == "delay_ms") {
      spec.delay_ms = std::chrono::milliseconds(static_cast<long>(number));
    } else {
      return parse_error("fault spec: unknown key '" + key + "'");
    }
  }
  return std::make_pair(seed, spec);
}

FaultInjector::Scope::Scope(std::uint64_t seed, const FaultSpec& spec) {
  Engine& e = engine();
  {
    std::lock_guard<std::mutex> lock(e.mutex);
    prev_spec_ = e.spec;
  }
  prev_enabled_ = state().load(std::memory_order_relaxed) == 2;
  prev_seed_ = 0;  // the previous stream position is not restorable; tests
                   // that stack scopes re-seed deterministically anyway.
  install(seed, spec);
}

FaultInjector::Scope::~Scope() {
  install(prev_seed_, prev_enabled_ ? prev_spec_ : FaultSpec{});
  if (!prev_enabled_) set_disabled();
}

}  // namespace repro::common
