#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace repro::common {

TablePrinter::TablePrinter(std::vector<std::string> header, std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  if (aligns_.empty()) aligns_.assign(header_.size(), Align::kLeft);
  aligns_.resize(header_.size(), Align::kLeft);
}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::add_separator() { rows_.emplace_back(); }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_sep = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      const std::size_t pad = widths[c] - cell.size();
      s += ' ';
      if (aligns_[c] == Align::kRight) s += std::string(pad, ' ') + cell;
      else s += cell + std::string(pad, ' ');
      s += " |";
    }
    s += '\n';
    return s;
  };

  std::string out = render_sep();
  out += render_row(header_);
  out += render_sep();
  for (const auto& row : rows_) {
    if (row.empty()) out += render_sep();
    else out += render_row(row);
  }
  out += render_sep();
  return out;
}

void TablePrinter::print(std::ostream& os) const { os << to_string(); }

}  // namespace repro::common
