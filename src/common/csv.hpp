// Minimal CSV writer/reader used to persist experiment data
// (benchmark harnesses dump their series next to the printed tables so the
// figures can be re-plotted outside the binary).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"

namespace repro::common {

/// Row-oriented CSV document with a single header row.
class CsvDocument {
 public:
  CsvDocument() = default;
  explicit CsvDocument(std::vector<std::string> header) : header_(std::move(header)) {}

  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: add a row of doubles formatted with the given precision.
  void add_row(const std::vector<double>& row, int precision = 6);

  /// Column index by header name.
  [[nodiscard]] Result<std::size_t> column_index(const std::string& name) const;

  /// Serialise; fields containing separators/quotes are quoted.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] Status save(const std::string& path) const;
  [[nodiscard]] static Result<CsvDocument> load(const std::string& path);
  [[nodiscard]] static Result<CsvDocument> parse(const std::string& text);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace repro::common
