#include "common/net.hpp"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "common/fault.hpp"

namespace repro::common::net {
namespace {

// Wait for `events` on fd. Returns 0 on ready, ETIMEDOUT on expiry, errno on
// failure. timeout <= 0 means block forever.
int wait_for(int fd, short events, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    int wait_ms = -1;
    if (timeout.count() > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return ETIMEDOUT;
      wait_ms = static_cast<int>(left.count());
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc > 0) return 0;  // readable/writable, or POLLERR/POLLHUP — let the
                           // following read/write surface the real error.
    if (rc == 0) return ETIMEDOUT;
    if (errno != EINTR) return errno;
  }
}

// Apply an injected fault decision. Returns true when the caller should fail
// with `out->err` already set; updates `len` for short-op clamping.
bool apply_fault(const FaultInjector::IoDecision& d, std::size_t& len,
                 IoResult* out) {
  if (d.delay.count() > 0) std::this_thread::sleep_for(d.delay);
  if (d.drop) {
    out->status = IoStatus::kError;
    out->err = ECONNRESET;
    return true;
  }
  if (d.clamp && len > 1) len = 1;
  return false;
}

}  // namespace

IoResult read_some(int fd, char* buf, std::size_t len,
                   std::chrono::milliseconds timeout) {
  IoResult result;
  if (len == 0) return result;
  for (;;) {
    const int wait_err = wait_for(fd, POLLIN, timeout);
    if (wait_err == ETIMEDOUT) {
      result.status = IoStatus::kTimeout;
      return result;
    }
    if (wait_err != 0) {
      result.status = IoStatus::kError;
      result.err = wait_err;
      return result;
    }
    std::size_t want = len;
    if (FaultInjector::enabled()) {
      const auto d = FaultInjector::next_io();
      if (apply_fault(d, want, &result)) return result;
      if (d.eintr) continue;  // model the syscall failing with EINTR once
    }
    // MSG_DONTWAIT: poll() above is the only place allowed to block, or the
    // timeout could not be enforced on sockets left in blocking mode.
    const ssize_t n = ::recv(fd, buf, want, MSG_DONTWAIT);
    if (n > 0) {
      result.bytes = static_cast<std::size_t>(n);
      return result;
    }
    if (n == 0) {
      result.status = IoStatus::kEof;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // raced readiness
    result.status = IoStatus::kError;
    result.err = errno;
    return result;
  }
}

IoResult write_all(int fd, std::string_view data,
                   std::chrono::milliseconds timeout) {
  IoResult result;
  std::size_t off = 0;
  while (off < data.size()) {
    const int wait_err = wait_for(fd, POLLOUT, timeout);
    if (wait_err == ETIMEDOUT) {
      result.status = IoStatus::kTimeout;
      result.bytes = off;
      return result;
    }
    if (wait_err != 0) {
      result.status = IoStatus::kError;
      result.err = wait_err;
      result.bytes = off;
      return result;
    }
    std::size_t want = data.size() - off;
    if (FaultInjector::enabled()) {
      const auto d = FaultInjector::next_io();
      if (apply_fault(d, want, &result)) {
        result.bytes = off;
        return result;
      }
      if (d.eintr) continue;
    }
    // MSG_DONTWAIT, or a blocking send() of a chunk larger than the free
    // buffer space parks in the kernel until the peer reads — the poll
    // timeout above would never fire and a dead peer would hang the writer.
    const ssize_t n =
        ::send(fd, data.data() + off, want, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;  // progress made — the next wait_for restarts the clock
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    result.status = IoStatus::kError;
    result.err = (n < 0) ? errno : EIO;
    result.bytes = off;
    return result;
  }
  result.bytes = off;
  return result;
}

}  // namespace repro::common::net
