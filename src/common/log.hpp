// Tiny leveled logger. Experiments log progress (training epochs, sweep
// status) to stderr; the printed tables/series stay clean on stdout.
#pragma once

#include <sstream>
#include <string>

namespace repro::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a message (already formatted) at the given level.
void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, oss_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace repro::common
