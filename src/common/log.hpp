// Tiny leveled logger. Experiments log progress (training epochs, sweep
// status) to stderr; the printed tables/series stay clean on stdout.
//
// A filtered-out log line costs one atomic load and one comparison: the
// LogLine only engages its ostringstream (and streams its operands) when
// the level passes the threshold at construction time.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace repro::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a message (already formatted) at the given level.
void log_message(LogLevel level, const std::string& msg);

/// Structured `key=value` field for log lines:
///   log_info() << "dispatch " << kv("backend", id) << ' ' << kv("us", n);
template <typename T>
struct KV {
  std::string_view key;
  const T& value;
};

template <typename T>
[[nodiscard]] KV<T> kv(std::string_view key, const T& value) {
  return KV<T>{key, value};
}

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {
    if (static_cast<int>(level) >= static_cast<int>(log_level())) {
      oss_.emplace();
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (oss_) log_message(level_, oss_->str());
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (oss_) *oss_ << v;
    return *this;
  }

  template <typename T>
  LogLine& operator<<(const KV<T>& field) {
    if (oss_) *oss_ << field.key << '=' << field.value;
    return *this;
  }

 private:
  LogLevel level_;
  std::optional<std::ostringstream> oss_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace repro::common
