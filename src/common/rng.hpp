// Deterministic pseudo-random number generation.
//
// All stochastic elements in the library (noise injection in the GPU
// simulator, training-set sampling, test data generation) flow through these
// generators so every experiment is bit-reproducible from a seed.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace repro::common {

/// SplitMix64: used for seeding and stateless hashing (hash-to-noise).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mix; suitable to derive deterministic per-item noise
/// from structured keys (e.g. hash(kernel_id, core_mhz, mem_mhz)).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Combine two hashes (order-dependent).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

/// FNV-1a over a string, for keying noise by kernel name.
[[nodiscard]] std::uint64_t fnv1a(const char* data, std::size_t n) noexcept;
[[nodiscard]] std::uint64_t fnv1a(const std::string& s) noexcept;

/// xoshiro256** — fast, high-quality general-purpose generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n) — n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Standard normal via Box–Muller (cached spare value).
  double gaussian() noexcept;
  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Deterministic "noise oracle": maps an arbitrary key to a zero-mean,
/// unit-variance pseudo-Gaussian value. Same key -> same value, forever.
/// Used by the GPU simulator so that repeated measurements of the same
/// (kernel, frequency) point agree, as they would on warmed-up hardware.
[[nodiscard]] double hash_gaussian(std::uint64_t key) noexcept;

/// Uniform in [0,1) from a key (stateless).
[[nodiscard]] double hash_uniform(std::uint64_t key) noexcept;

}  // namespace repro::common
