// Deterministic, seed-driven fault injection for the socket I/O layer.
//
// The injection point is compiled into common::net's read/write helpers (and
// SocketClient's connect path), so every byte the serving stack moves can be
// subjected to the failure modes that dominate real deployments: short reads
// and writes, EINTR storms, injected latency, and mid-line connection drops.
// Two ways to turn it on:
//
//   1. Environment (whole process, read once at first use):
//        REPRO_FAULTS=<seed>:<spec>
//      where <spec> is a comma list of knobs, e.g.
//        REPRO_FAULTS=42:short_rw=0.3,eintr=0.2,drop=0.01,delay_ms=2,delay_p=0.1
//      scripts/chaos_soak.sh drives the fleet this way.
//
//   2. FaultInjector::Scope (unit tests): installs a spec for the lifetime
//      of the scope object and restores the previous state on destruction.
//      Scopes are not meant to nest across threads — create them from the
//      test body only, before spawning the threads under test.
//
// Knobs (all probabilities in [0,1], independent per I/O operation):
//
//   short_rw=P      clamp the operation to 1 byte (exercises reassembly loops)
//   eintr=P         fail the syscall once with EINTR (exercises retry loops)
//   drop=P          fail the operation with ECONNRESET (peer "died" mid-line)
//   connect_fail=P  fail a connect attempt with ECONNREFUSED
//   delay_ms=N      latency to inject when delay_p fires
//   delay_p=P       probability of injecting delay_ms before the operation
//
// Determinism: decisions come from a SplitMix64 stream seeded by <seed>, so
// a run is reproducible given the same seed *and* the same interleaving of
// I/O operations. Across threads the stream is shared under a mutex — the
// sequence of decisions is deterministic, their assignment to threads is
// not (that is inherent to injecting at the syscall boundary).
//
// Zero overhead when disabled: enabled() is a single relaxed atomic load,
// and nothing else is touched.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.hpp"

namespace repro::common {

/// The knobs, as parsed from a REPRO_FAULTS spec (see file comment).
struct FaultSpec {
  double short_rw = 0.0;
  double eintr = 0.0;
  double drop = 0.0;
  double connect_fail = 0.0;
  double delay_p = 0.0;
  std::chrono::milliseconds delay_ms{0};

  [[nodiscard]] bool any() const noexcept {
    return short_rw > 0 || eintr > 0 || drop > 0 || connect_fail > 0 ||
           delay_p > 0;
  }
};

class FaultInjector {
 public:
  /// What one I/O operation should suffer. Consulted by common::net before
  /// the real syscall; at most one of eintr/drop fires per decision.
  struct IoDecision {
    bool eintr = false;                   // fail once with EINTR
    bool drop = false;                    // fail with ECONNRESET
    bool clamp = false;                   // move at most 1 byte
    std::chrono::milliseconds delay{0};   // sleep first
  };

  /// True when a spec is installed (env or Scope). One relaxed atomic load.
  [[nodiscard]] static bool enabled() noexcept {
    const int s = state().load(std::memory_order_relaxed);
    return s == 0 ? init_from_env() : s == 2;
  }

  /// Draw the next decision for a read/write. Only call when enabled().
  [[nodiscard]] static IoDecision next_io();
  /// Should this connect attempt fail? Only call when enabled().
  [[nodiscard]] static bool drop_connect();

  /// "seed:spec" → (seed, FaultSpec). Rejects unknown keys and bad numbers
  /// loudly — a typo'd chaos spec that silently injects nothing would make
  /// the soak test lie.
  [[nodiscard]] static Result<std::pair<std::uint64_t, FaultSpec>> parse(
      const std::string& text);

  /// Scoped installation for unit tests; restores the previous state.
  class Scope {
   public:
    Scope(std::uint64_t seed, const FaultSpec& spec);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    bool prev_enabled_;
    std::uint64_t prev_seed_;
    FaultSpec prev_spec_;
  };

 private:
  static std::atomic<int>& state();  // 0 = uninit, 1 = off, 2 = on
  static bool init_from_env();
  static void install(std::uint64_t seed, const FaultSpec& spec);
  static void set_disabled();
};

}  // namespace repro::common
