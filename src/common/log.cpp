#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace repro::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace repro::common
