#include "common/buffer_pool.hpp"

namespace repro::common {

BufferPool& BufferPool::global() {
  // Leaked on purpose: connection threads may release leases during static
  // destruction (a server torn down by atexit paths must not race a dying
  // pool).
  static BufferPool* pool = new BufferPool();
  return *pool;
}

}  // namespace repro::common
