// Allocation-counting replacements for the global operator new/delete —
// the measurement side of the zero-allocation serve hot path contract.
//
// Include this header from exactly ONE translation unit per binary (it
// DEFINES the replaceable global allocation functions): the allocation
// regression test and the perf_stack bench's --alloc-report mode. Every
// heap allocation in the process — from any TU, not just the including one
// — then bumps a relaxed atomic counter that tests snapshot around a
// steady-state loop.
//
// The operators forward to std::malloc/std::free/posix_memalign, never to
// the library operator new, so they compose with AddressSanitizer: ASan
// intercepts at the malloc layer and keeps full redzone/use-after-free
// checking underneath the counter (the CI sanitize leg runs the allocation
// regression test to prove the two coexist).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace repro::common::alloc_hook {

/// Total heap allocations (operator new of every flavour) since process
/// start. Monotonic; snapshot before/after a region to count its allocs.
inline std::atomic<std::uint64_t> g_allocations{0};
/// Total deallocations with a non-null pointer — lets a test also assert a
/// region is free()-quiet, not just malloc-quiet.
inline std::atomic<std::uint64_t> g_deallocations{0};

[[nodiscard]] inline std::uint64_t allocations() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

[[nodiscard]] inline std::uint64_t deallocations() noexcept {
  return g_deallocations.load(std::memory_order_relaxed);
}

namespace detail {

inline void* counted_alloc(std::size_t size) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (::posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  return p;
}

inline void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_deallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace detail

}  // namespace repro::common::alloc_hook

// --- replaceable global allocation functions ---------------------------------

void* operator new(std::size_t size) {
  void* p = repro::common::alloc_hook::detail::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = repro::common::alloc_hook::detail::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return repro::common::alloc_hook::detail::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return repro::common::alloc_hook::detail::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = repro::common::alloc_hook::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = repro::common::alloc_hook::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return repro::common::alloc_hook::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return repro::common::alloc_hook::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { repro::common::alloc_hook::detail::counted_free(p); }
void operator delete[](void* p) noexcept { repro::common::alloc_hook::detail::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  repro::common::alloc_hook::detail::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  repro::common::alloc_hook::detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  repro::common::alloc_hook::detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  repro::common::alloc_hook::detail::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  repro::common::alloc_hook::detail::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  repro::common::alloc_hook::detail::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  repro::common::alloc_hook::detail::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  repro::common::alloc_hook::detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  repro::common::alloc_hook::detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  repro::common::alloc_hook::detail::counted_free(p);
}
