#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <string>

namespace repro::common {

namespace {

constexpr std::uint64_t kSplitMixGamma = 0x9E3779B97F4A7C15ULL;

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += kSplitMixGamma);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += kSplitMixGamma;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + kSplitMixGamma + (a << 6) + (a >> 2)));
}

std::uint64_t fnv1a(const char* data, std::size_t n) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t fnv1a(const std::string& s) noexcept { return fnv1a(s.data(), s.size()); }

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_index(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection-free approximation is fine here;
  // statistical bias for n << 2^64 is negligible for our use-cases.
  return static_cast<std::uint64_t>((static_cast<__uint128_t>(next()) * n) >> 64);
}

double Xoshiro256::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

double hash_uniform(std::uint64_t key) noexcept {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

double hash_gaussian(std::uint64_t key) noexcept {
  // Box–Muller on two decorrelated stateless uniforms.
  double u1 = hash_uniform(key);
  const double u2 = hash_uniform(mix64(key ^ 0xA5A5A5A5A5A5A5A5ULL));
  if (u1 <= 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace repro::common
