// Size-classed pool of reusable byte buffers (std::string storage) with
// RAII leases — the other half of the zero-allocation serve hot path next
// to common::Arena.
//
// A Lease hands out a cleared std::string whose capacity is recycled:
// when the lease dies the buffer goes back to the pool's free list for its
// capacity class instead of the heap. Connections lease their splitter
// input buffer and their reply output buffer, so a churning fleet of
// short-lived connections stops paying a malloc/free pair per connection
// and per reply.
//
// A default-constructed (detached) Lease owns a plain string and returns
// nothing anywhere — the no-pool fallback, so callers can be written
// against Lease unconditionally.
//
// Thread-safe: leases may be acquired and released from any thread (one
// mutex around the free lists; the counters are atomics readable without
// it). The pool must outlive its leases. Capacity per class is bounded —
// a burst of giant buffers is dropped back to the heap, not hoarded —
// which is what keeps RSS flat across overload bursts
// (scripts/chaos_soak.sh asserts this).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace repro::common {

class BufferPool {
 public:
  /// Capacity classes: ≤4 KiB, ≤64 KiB, ≤1 MiB, everything larger.
  static constexpr std::size_t kClasses = 4;
  static constexpr std::array<std::size_t, kClasses - 1> kClassBytes = {
      4u << 10, 64u << 10, 1u << 20};

  explicit BufferPool(std::size_t max_buffers_per_class = 16)
      : max_per_class_(max_buffers_per_class) {
    // Pre-size the free lists so give_back (noexcept, runs in Lease
    // destructors) never grows a vector.
    for (auto& list : free_) list.reserve(max_per_class_);
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  class Lease {
   public:
    /// Detached lease: plain string storage, no pool behind it.
    Lease() = default;

    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)), buf_(std::move(other.buf_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        buf_ = std::move(other.buf_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ~Lease() { release(); }

    [[nodiscard]] std::string& operator*() noexcept { return buf_; }
    [[nodiscard]] const std::string& operator*() const noexcept { return buf_; }
    [[nodiscard]] std::string* operator->() noexcept { return &buf_; }
    [[nodiscard]] const std::string* operator->() const noexcept { return &buf_; }

   private:
    friend class BufferPool;
    Lease(BufferPool* pool, std::string buf) : pool_(pool), buf_(std::move(buf)) {}

    void release() noexcept {
      if (pool_ != nullptr) {
        pool_->give_back(std::move(buf_));
        pool_ = nullptr;
      }
    }

    BufferPool* pool_ = nullptr;
    std::string buf_;
  };

  /// Lease a cleared buffer with at least `reserve_bytes` of capacity,
  /// reusing a pooled one when any class holds a big-enough buffer.
  [[nodiscard]] Lease acquire(std::size_t reserve_bytes = 0) {
    acquires_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t c = class_of(reserve_bytes); c < kClasses; ++c) {
        if (!free_[c].empty()) {
          std::string buf = std::move(free_[c].back());
          free_[c].pop_back();
          reuses_.fetch_add(1, std::memory_order_relaxed);
          if (buf.capacity() < reserve_bytes) buf.reserve(reserve_bytes);
          return Lease(this, std::move(buf));
        }
      }
    }
    std::string buf;
    if (reserve_bytes > 0) buf.reserve(reserve_bytes);
    return Lease(this, std::move(buf));
  }

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;    // acquires served from a free list
    std::uint64_t discards = 0;  // returns dropped because the class was full
    std::size_t pooled_buffers = 0;
    std::size_t pooled_bytes = 0;  // capacity currently parked in free lists
  };
  [[nodiscard]] Stats stats() const {
    Stats s;
    s.acquires = acquires_.load(std::memory_order_relaxed);
    s.reuses = reuses_.load(std::memory_order_relaxed);
    s.discards = discards_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& list : free_) {
      s.pooled_buffers += list.size();
      for (const std::string& buf : list) s.pooled_bytes += buf.capacity();
    }
    return s;
  }

  /// Process-wide pool: the default the server, balancer, and client ride
  /// when their options carry no explicit pool.
  [[nodiscard]] static BufferPool& global();

 private:
  static std::size_t class_of(std::size_t bytes) noexcept {
    for (std::size_t c = 0; c < kClassBytes.size(); ++c) {
      if (bytes <= kClassBytes[c]) return c;
    }
    return kClasses - 1;
  }

  void give_back(std::string&& buf) noexcept {
    buf.clear();
    const std::size_t c = class_of(buf.capacity());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (free_[c].size() < max_per_class_) {
        free_[c].push_back(std::move(buf));
        return;
      }
    }
    discards_.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t max_per_class_;
  mutable std::mutex mutex_;
  std::array<std::vector<std::string>, kClasses> free_;
  std::atomic<std::uint64_t> acquires_{0};
  std::atomic<std::uint64_t> reuses_{0};
  std::atomic<std::uint64_t> discards_{0};
};

}  // namespace repro::common
