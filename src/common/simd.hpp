/// \file simd.hpp
/// \brief Portable fixed-width SIMD layer for the inner math kernels.
///
/// Every hot inner loop of the prediction stack (ml::dot,
/// ml::squared_distance, the RBF/polynomial kernel evaluations, the blocked
/// Matrix::multiply micro-kernel, the MinMaxScaler passes, the SVR gradient
/// update) bottoms out here. Two backends implement the same operations:
///
///  - **std-simd** — `std::experimental::simd` with a fixed 4-lane double
///    vector, compiled in when `__has_include(<experimental/simd>)` and the
///    build did not pass `-DREPRO_SIMD=OFF`.
///  - **unrolled** — a manual 4-accumulator scalar unroll, always compiled,
///    used when std-simd is unavailable or disabled at runtime.
///
/// **Determinism contract.** Both backends perform the *identical* sequence
/// of IEEE-754 operations per output value:
///
///  1. Reductions keep `kLanes` (= 4) independent accumulators; main-loop
///     element `i` always lands in accumulator lane `i % 4`.
///  2. The tail (`n % 4` trailing elements) is folded element `t` into
///     accumulator lane `t`, in ascending order.
///  3. The final horizontal reduction is the fixed order
///     `((acc0 + acc1) + acc2) + acc3`.
///  4. Element-wise operations (scaling, min/max, fused gradient updates)
///     apply the same per-element expression in both backends.
///
/// Consequently the two backends return **bit-identical** results, the
/// `REPRO_SIMD` runtime toggle can never change an output, and callers keep
/// the thread-count invariance guaranteed by common::ThreadPool (see
/// docs/DETERMINISM.md). tests/simd_test.cpp asserts the equivalence over
/// aligned, unaligned and tail-remainder lengths.
///
/// Note the 4-lane layout is itself a *different* summation order than a
/// plain sequential loop, so results differ from the pre-SIMD scalar code in
/// the last ulps — deliberately: the lane layout is the contract, and it is
/// what both backends and every thread count reproduce. The pre-SIMD
/// sequential loops survive as `detail::*_sequential` for benchmarking.
#pragma once

#include <cstddef>
#include <span>

namespace repro::common::simd {

/// Fixed logical vector width (doubles per lane group) shared by both
/// backends. Independent of the hardware register width: on SSE2 the
/// std-simd backend lowers a 4-lane group to two 2-wide registers, on AVX2
/// to one 4-wide register — the operation order per lane is unchanged.
inline constexpr std::size_t kLanes = 4;

/// \brief True when the std::experimental::simd backend was compiled in.
///
/// False when the header is missing or the build passed `-DREPRO_SIMD=OFF`.
[[nodiscard]] bool available() noexcept;

/// \brief Runtime dispatch flag: use the std-simd backend when available?
///
/// Initialised once from the `REPRO_SIMD` environment variable — `0`, `off`
/// or `false` (case-insensitive) disable the vector backend, anything else
/// (including unset) enables it. Because the backends are bit-identical this
/// toggle is purely a performance A/B switch.
[[nodiscard]] bool enabled() noexcept;

/// \brief Override the runtime dispatch flag (benchmarks and tests).
/// \param on true selects the std-simd backend when `available()`.
void set_enabled(bool on) noexcept;

/// \brief Name of the backend `dot()` et al. currently dispatch to:
/// `"std-simd"` or `"unrolled"`.
[[nodiscard]] const char* backend_name() noexcept;

/// \brief Dot product of equal-length spans under the 4-lane reduction
/// contract. \pre a.size() == b.size().
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b) noexcept;

/// \brief Squared Euclidean distance of equal-length spans under the 4-lane
/// reduction contract. \pre a.size() == b.size().
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b) noexcept;

/// \brief Element-wise min/max update: `mins[c] = min(mins[c], row[c])`,
/// `maxs[c] = max(maxs[c], row[c])` — one row of a MinMaxScaler::fit pass.
/// \pre mins.size() == maxs.size() == row.size(); no NaNs.
void update_min_max(std::span<double> mins, std::span<double> maxs,
                    std::span<const double> row) noexcept;

/// \brief Min–max normalisation of one row:
/// `out[c] = (row[c] - mins[c]) / (maxs[c] - mins[c])`, with constant
/// columns (`maxs[c] == mins[c]`) mapping to 0 exactly as the scalar code.
/// \pre all spans the same length; out may alias row.
void min_max_transform(std::span<double> out, std::span<const double> row,
                       std::span<const double> mins,
                       std::span<const double> maxs) noexcept;

/// \brief Inverse of min_max_transform:
/// `out[c] = mins[c] + row[c] * (maxs[c] - mins[c])`.
/// \pre all spans the same length; out may alias row.
void min_max_inverse(std::span<double> out, std::span<const double> row,
                     std::span<const double> mins,
                     std::span<const double> maxs) noexcept;

/// \brief Batched dot products against consecutive rows of a row-major
/// block: `out[j] = dot(x, rows + j * stride)` for `j < out.size()`.
///
/// Same per-element reduction contract as dot(); batching moves the backend
/// dispatch out of the inner loop (one check per batch, inlined kernels).
/// \pre every row spans x.size() doubles; stride >= x.size().
void dot_rows(std::span<double> out, std::span<const double> x, const double* rows,
              std::size_t stride) noexcept;

/// \brief Batched scaled squared distances against consecutive rows:
/// `out[j] = scale * squared_distance(x, rows + j * stride)`.
///
/// The RBF pre-pass: with `scale = -gamma` the output feeds exp_batch
/// directly. Same contract and batching rationale as dot_rows().
void squared_distance_rows(std::span<double> out, std::span<const double> x,
                           const double* rows, std::size_t stride,
                           double scale) noexcept;

/// \brief Deterministic exponential: `exp(x)` to within ~2 ulp of libm.
///
/// Not std::exp — a fixed Cody–Waite range reduction plus degree-13 Horner
/// polynomial whose operation sequence is identical in the scalar and
/// vector backends, so exp of a value is the same bits everywhere (libm's
/// exp has no such guarantee across implementations, and cannot be
/// vectorized consistently with a scalar fallback). `exp_one(±0) == 1.0`
/// exactly; NaN propagates; x < -708.396… underflows to 0 and
/// x > 709.782… (including +infinity) overflows to +infinity.
[[nodiscard]] double exp_one(double x) noexcept;

/// \brief Batched deterministic exponential: `out[i] = exp_one(x[i])`.
///
/// The vector backend evaluates the polynomial 4 lanes at a time; every
/// element still gets exp_one's exact operation sequence, so the output is
/// bit-identical to calling exp_one in a loop. out may alias x.
/// \pre out.size() == x.size(); elements finite.
void exp_batch(std::span<double> out, std::span<const double> x) noexcept;

/// \brief Fused SVR gradient update over one label half:
/// `grad[i] += sign * (ca * double(a[i]) + cb * double(b[i]))`.
///
/// `a`/`b` are rows of the float kernel cache (length grad.size()); `sign`
/// is the label of the half (±1). Element-wise, so both backends produce the
/// same bits in any order.
void add_scaled_pair_f32(std::span<double> grad, const float* a, const float* b,
                         double ca, double cb, double sign) noexcept;

/// Backend-pinned entry points. `*_vector` uses the std-simd backend (it
/// aliases `*_unrolled` when `!available()`); `*_unrolled` is the portable
/// 4-accumulator fallback; `*_sequential` is the pre-SIMD single-accumulator
/// loop kept as the benchmark baseline. `vector` and `unrolled` are
/// bit-identical by the contract above; `sequential` is not (different
/// summation order) and must never back a production path.
namespace detail {

[[nodiscard]] double dot_sequential(const double* a, const double* b,
                                    std::size_t n) noexcept;
[[nodiscard]] double dot_unrolled(const double* a, const double* b,
                                  std::size_t n) noexcept;
[[nodiscard]] double dot_vector(const double* a, const double* b,
                                std::size_t n) noexcept;

[[nodiscard]] double squared_distance_sequential(const double* a, const double* b,
                                                 std::size_t n) noexcept;
[[nodiscard]] double squared_distance_unrolled(const double* a, const double* b,
                                               std::size_t n) noexcept;
[[nodiscard]] double squared_distance_vector(const double* a, const double* b,
                                             std::size_t n) noexcept;

}  // namespace detail

}  // namespace repro::common::simd
