// Descriptive statistics and regression-error metrics shared by the ML
// library and the experiment harnesses (box plots of Figs. 6/7, RMSE rows).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace repro::common {

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double variance(std::span<const double> xs) noexcept;  // population
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;
[[nodiscard]] double min_of(std::span<const double> xs) noexcept;
[[nodiscard]] double max_of(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile; p in [0, 100]. Empty input -> NaN.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Root-mean-square error between predictions and truth (same length).
[[nodiscard]] double rmse(std::span<const double> pred, std::span<const double> truth);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> pred, std::span<const double> truth);

/// Signed relative errors in percent: 100*(pred-truth)/truth.
[[nodiscard]] std::vector<double> relative_errors_percent(std::span<const double> pred,
                                                          std::span<const double> truth);

/// RMSE of the *relative percentage* errors — the metric the paper reports
/// per memory-frequency group in Figs. 6 and 7 ("RMSE = 6.68%").
[[nodiscard]] double rmse_percent(std::span<const double> pred, std::span<const double> truth);

/// Coefficient of determination.
[[nodiscard]] double r_squared(std::span<const double> pred, std::span<const double> truth);

/// Five-number summary backing a box plot (min, q25, median, q75, max).
struct BoxStats {
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

[[nodiscard]] BoxStats box_stats(std::span<const double> xs);

}  // namespace repro::common
