#include "common/simd.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#if !defined(REPRO_SIMD_DISABLED) && __has_include(<experimental/simd>)
#define REPRO_HAVE_STD_SIMD 1
#include <experimental/simd>
#endif

namespace repro::common::simd {

namespace {

bool env_enabled() {
  const char* raw = std::getenv("REPRO_SIMD");
  if (raw == nullptr) return true;
  std::string v(raw);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return !(v == "0" || v == "off" || v == "false");
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

/// Fixed horizontal reduction order shared by every backend: lane 0 and 1
/// first, then 2, then 3.
inline double reduce_lanes(const double lanes[kLanes]) noexcept {
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

// --- deterministic exp -------------------------------------------------------
//
// exp(x) = 2^k * exp(r), k = round(x / ln2), r = x - k ln2 (Cody–Waite in
// two pieces), exp(r) by a degree-13 Taylor/Horner polynomial — |r| <=
// ln2/2, so the truncation error (~4e-18 relative) is below half an ulp.
// Every step is a fixed sequence of IEEE mul/add/sub, reproduced lane for
// lane by the vector backend.

constexpr double kLog2E = 1.4426950408889634074;       // 1 / ln 2
constexpr double kLn2Hi = 6.93147180369123816490e-01;  // high bits of ln 2
constexpr double kLn2Lo = 1.90821492927058770002e-10;  // ln 2 - kLn2Hi
constexpr double kRoundMagic = 6755399441055744.0;     // 1.5 * 2^52: adds round-to-nearest
constexpr double kExpUnderflow = -708.39641853226410622;  // exp(x) < DBL_MIN below this
constexpr double kExpOverflow = 709.78271289338399684;    // exp(x) > DBL_MAX above this

/// Taylor coefficients a_i = 1/i!, ascending degree.
constexpr double kA2 = 0.5;
constexpr double kA3 = 1.0 / 6.0;
constexpr double kA4 = 1.0 / 24.0;
constexpr double kA5 = 1.0 / 120.0;
constexpr double kA6 = 1.0 / 720.0;
constexpr double kA7 = 1.0 / 5040.0;
constexpr double kA8 = 1.0 / 40320.0;
constexpr double kA9 = 1.0 / 362880.0;
constexpr double kA10 = 1.0 / 3628800.0;
constexpr double kA11 = 1.0 / 39916800.0;
constexpr double kA12 = 1.0 / 479001600.0;
constexpr double kA13 = 1.0 / 6227020800.0;

/// The reduction + degree-13 Taylor polynomial in Estrin form (short
/// dependency chains — the Horner chain is what makes libm-style exp slow
/// to vectorize). Templated over the value type so the scalar and 4-lane
/// instantiations share the exact expression tree: per lane, the identical
/// sequence of IEEE operations, hence identical bits.
template <class V>
struct ExpReduced {
  V kd;  ///< round(x / ln2) as a double-valued integer
  V p;   ///< exp(r), r = x - kd * ln2
};

template <class V>
inline ExpReduced<V> exp_reduce(V x) noexcept {
  const V t = x * V(kLog2E);
  const V kd = (t + V(kRoundMagic)) - V(kRoundMagic);
  const V r = (x - kd * V(kLn2Hi)) - kd * V(kLn2Lo);
  const V r2 = r * r;
  const V r4 = r2 * r2;
  const V r8 = r4 * r4;
  const V q01 = V(1.0) + r;                        // a0 + a1 r
  const V q23 = V(kA2) + V(kA3) * r;
  const V q45 = V(kA4) + V(kA5) * r;
  const V q67 = V(kA6) + V(kA7) * r;
  const V q89 = V(kA8) + V(kA9) * r;
  const V q1011 = V(kA10) + V(kA11) * r;
  const V q1213 = V(kA12) + V(kA13) * r;
  const V q03 = q01 + q23 * r2;
  const V q47 = q45 + q67 * r2;
  const V q811 = q89 + q1011 * r2;
  const V q07 = q03 + q47 * r4;
  const V q815 = q811 + q1213 * r4;
  return {kd, q07 + q815 * r8};
}

/// Assemble 2^k for integral |k| <= 1023 by writing the exponent field.
inline double pow2_int(long long k) noexcept {
  return std::bit_cast<double>(static_cast<std::uint64_t>(k + 1023) << 52);
}

/// Scale the polynomial value by 2^k and resolve the clamped ranges. The
/// vector backend funnels each lane through this same function.
inline double exp_finish(double x, double p, double kd) noexcept {
  if (x != x) return x;  // NaN propagates (as libm's exp); the cast below would be UB
  if (x < kExpUnderflow) return 0.0;
  if (x > kExpOverflow) return std::numeric_limits<double>::infinity();
  const long long k = static_cast<long long>(kd);
  if (k > 1023) {
    // x in [~709.44, 709.78] rounds to k = 1024, whose exponent field would
    // be the Inf pattern even though exp(x) is still finite. Split the
    // scale: both multiplications by powers of two are exact, and the
    // second overflows to Inf only when the true result does.
    return (p * pow2_int(1023)) * pow2_int(k - 1023);
  }
  return p * pow2_int(k);
}

}  // namespace

bool available() noexcept {
#if defined(REPRO_HAVE_STD_SIMD)
  return true;
#else
  return false;
#endif
}

bool enabled() noexcept {
  return available() && enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

const char* backend_name() noexcept { return enabled() ? "std-simd" : "unrolled"; }

double exp_one(double x) noexcept {
  const auto [kd, p] = exp_reduce(x);
  return exp_finish(x, p, kd);
}

// --- unrolled backend (always compiled) --------------------------------------
//
// The portable statement of the contract: 4 accumulators, main-loop element
// i in lane i % 4, tail element t folded into lane t, reduce_lanes() last.

namespace detail {

double dot_sequential(const double* a, const double* b, std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double squared_distance_sequential(const double* a, const double* b,
                                   std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double dot_unrolled(const double* a, const double* b, std::size_t n) noexcept {
  double lanes[kLanes] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n - n % kLanes;
  for (std::size_t i = 0; i < n4; i += kLanes) {
    lanes[0] += a[i + 0] * b[i + 0];
    lanes[1] += a[i + 1] * b[i + 1];
    lanes[2] += a[i + 2] * b[i + 2];
    lanes[3] += a[i + 3] * b[i + 3];
  }
  for (std::size_t t = 0; t < n - n4; ++t) lanes[t] += a[n4 + t] * b[n4 + t];
  return reduce_lanes(lanes);
}

double squared_distance_unrolled(const double* a, const double* b,
                                 std::size_t n) noexcept {
  double lanes[kLanes] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n - n % kLanes;
  for (std::size_t i = 0; i < n4; i += kLanes) {
    const double d0 = a[i + 0] - b[i + 0];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    lanes[0] += d0 * d0;
    lanes[1] += d1 * d1;
    lanes[2] += d2 * d2;
    lanes[3] += d3 * d3;
  }
  for (std::size_t t = 0; t < n - n4; ++t) {
    const double d = a[n4 + t] - b[n4 + t];
    lanes[t] += d * d;
  }
  return reduce_lanes(lanes);
}

}  // namespace detail

namespace {

void update_min_max_unrolled(double* mins, double* maxs, const double* row,
                             std::size_t n) noexcept {
  for (std::size_t c = 0; c < n; ++c) {
    mins[c] = std::min(mins[c], row[c]);
    maxs[c] = std::max(maxs[c], row[c]);
  }
}

void min_max_transform_unrolled(double* out, const double* row, const double* mins,
                                const double* maxs, std::size_t n) noexcept {
  for (std::size_t c = 0; c < n; ++c) {
    const double range = maxs[c] - mins[c];
    out[c] = range == 0.0 ? 0.0 : (row[c] - mins[c]) / range;
  }
}

void min_max_inverse_unrolled(double* out, const double* row, const double* mins,
                              const double* maxs, std::size_t n) noexcept {
  for (std::size_t c = 0; c < n; ++c) out[c] = mins[c] + row[c] * (maxs[c] - mins[c]);
}

void exp_batch_unrolled(double* out, const double* x, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_one(x[i]);
}

void add_scaled_pair_f32_unrolled(double* grad, const float* a, const float* b,
                                  double ca, double cb, double sign,
                                  std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] += sign * (ca * static_cast<double>(a[i]) + cb * static_cast<double>(b[i]));
  }
}

}  // namespace

// --- std-simd backend --------------------------------------------------------

#if defined(REPRO_HAVE_STD_SIMD)

namespace {

namespace stdx = std::experimental;
using vdouble = stdx::fixed_size_simd<double, static_cast<int>(kLanes)>;
using vfloat = stdx::fixed_size_simd<float, static_cast<int>(kLanes)>;

inline vdouble load(const double* p) noexcept {
  vdouble v;
  v.copy_from(p, stdx::element_aligned);
  return v;
}

}  // namespace

namespace detail {

double dot_vector(const double* a, const double* b, std::size_t n) noexcept {
  vdouble acc(0.0);
  const std::size_t n4 = n - n % kLanes;
  for (std::size_t i = 0; i < n4; i += kLanes) acc += load(a + i) * load(b + i);
  double lanes[kLanes];
  acc.copy_to(lanes, stdx::element_aligned);
  for (std::size_t t = 0; t < n - n4; ++t) lanes[t] += a[n4 + t] * b[n4 + t];
  return reduce_lanes(lanes);
}

double squared_distance_vector(const double* a, const double* b,
                               std::size_t n) noexcept {
  vdouble acc(0.0);
  const std::size_t n4 = n - n % kLanes;
  for (std::size_t i = 0; i < n4; i += kLanes) {
    const vdouble d = load(a + i) - load(b + i);
    acc += d * d;
  }
  double lanes[kLanes];
  acc.copy_to(lanes, stdx::element_aligned);
  for (std::size_t t = 0; t < n - n4; ++t) {
    const double d = a[n4 + t] - b[n4 + t];
    lanes[t] += d * d;
  }
  return reduce_lanes(lanes);
}

}  // namespace detail

namespace {

void update_min_max_vector(double* mins, double* maxs, const double* row,
                           std::size_t n) noexcept {
  const std::size_t n4 = n - n % kLanes;
  for (std::size_t c = 0; c < n4; c += kLanes) {
    const vdouble rv = load(row + c);
    // Explicit selects rather than stdx::min/max: std::min(a, b) keeps the
    // first argument on ties, stdx::min (minpd-style) keeps the second —
    // with signed zeros in play the two disagree in bits, and the contract
    // requires this backend to reproduce the scalar path exactly.
    vdouble mi = load(mins + c);
    stdx::where(rv < mi, mi) = rv;
    mi.copy_to(mins + c, stdx::element_aligned);
    vdouble ma = load(maxs + c);
    stdx::where(ma < rv, ma) = rv;
    ma.copy_to(maxs + c, stdx::element_aligned);
  }
  update_min_max_unrolled(mins + n4, maxs + n4, row + n4, n - n4);
}

void min_max_transform_vector(double* out, const double* row, const double* mins,
                              const double* maxs, std::size_t n) noexcept {
  const std::size_t n4 = n - n % kLanes;
  for (std::size_t c = 0; c < n4; c += kLanes) {
    const vdouble mi = load(mins + c);
    const vdouble range = load(maxs + c) - mi;
    vdouble res = (load(row + c) - mi) / range;
    stdx::where(range == vdouble(0.0), res) = 0.0;
    res.copy_to(out + c, stdx::element_aligned);
  }
  min_max_transform_unrolled(out + n4, row + n4, mins + n4, maxs + n4, n - n4);
}

void min_max_inverse_vector(double* out, const double* row, const double* mins,
                            const double* maxs, std::size_t n) noexcept {
  const std::size_t n4 = n - n % kLanes;
  for (std::size_t c = 0; c < n4; c += kLanes) {
    const vdouble mi = load(mins + c);
    const vdouble res = mi + load(row + c) * (load(maxs + c) - mi);
    res.copy_to(out + c, stdx::element_aligned);
  }
  min_max_inverse_unrolled(out + n4, row + n4, mins + n4, maxs + n4, n - n4);
}

void exp_batch_vector(double* out, const double* x, std::size_t n) noexcept {
  const std::size_t n4 = n - n % kLanes;
  for (std::size_t i = 0; i < n4; i += kLanes) {
    const auto [kd, p] = exp_reduce(load(x + i));
    // The 2^k scale and range clamps go lane by lane through the same
    // exp_finish the scalar path uses — identical bits by construction.
    double pl[kLanes];
    double kl[kLanes];
    p.copy_to(pl, stdx::element_aligned);
    kd.copy_to(kl, stdx::element_aligned);
    for (std::size_t l = 0; l < kLanes; ++l) out[i + l] = exp_finish(x[i + l], pl[l], kl[l]);
  }
  exp_batch_unrolled(out + n4, x + n4, n - n4);
}

void add_scaled_pair_f32_vector(double* grad, const float* a, const float* b,
                                double ca, double cb, double sign,
                                std::size_t n) noexcept {
  const vdouble vca(ca);
  const vdouble vcb(cb);
  const vdouble vsign(sign);
  const std::size_t n4 = n - n % kLanes;
  for (std::size_t i = 0; i < n4; i += kLanes) {
    vfloat af;
    vfloat bf;
    af.copy_from(a + i, stdx::element_aligned);
    bf.copy_from(b + i, stdx::element_aligned);
    const vdouble ad = stdx::static_simd_cast<vdouble>(af);
    const vdouble bd = stdx::static_simd_cast<vdouble>(bf);
    const vdouble res = load(grad + i) + vsign * (vca * ad + vcb * bd);
    res.copy_to(grad + i, stdx::element_aligned);
  }
  add_scaled_pair_f32_unrolled(grad + n4, a + n4, b + n4, ca, cb, sign, n - n4);
}

}  // namespace

#else  // !REPRO_HAVE_STD_SIMD — the vector entry points alias the fallback.

namespace detail {

double dot_vector(const double* a, const double* b, std::size_t n) noexcept {
  return dot_unrolled(a, b, n);
}

double squared_distance_vector(const double* a, const double* b,
                               std::size_t n) noexcept {
  return squared_distance_unrolled(a, b, n);
}

}  // namespace detail

#endif  // REPRO_HAVE_STD_SIMD

// --- dispatching public entry points -----------------------------------------

double dot(std::span<const double> a, std::span<const double> b) noexcept {
  return enabled() ? detail::dot_vector(a.data(), b.data(), a.size())
                   : detail::dot_unrolled(a.data(), b.data(), a.size());
}

double squared_distance(std::span<const double> a, std::span<const double> b) noexcept {
  return enabled() ? detail::squared_distance_vector(a.data(), b.data(), a.size())
                   : detail::squared_distance_unrolled(a.data(), b.data(), a.size());
}

void update_min_max(std::span<double> mins, std::span<double> maxs,
                    std::span<const double> row) noexcept {
#if defined(REPRO_HAVE_STD_SIMD)
  if (enabled()) {
    update_min_max_vector(mins.data(), maxs.data(), row.data(), row.size());
    return;
  }
#endif
  update_min_max_unrolled(mins.data(), maxs.data(), row.data(), row.size());
}

void min_max_transform(std::span<double> out, std::span<const double> row,
                       std::span<const double> mins,
                       std::span<const double> maxs) noexcept {
#if defined(REPRO_HAVE_STD_SIMD)
  if (enabled()) {
    min_max_transform_vector(out.data(), row.data(), mins.data(), maxs.data(),
                             row.size());
    return;
  }
#endif
  min_max_transform_unrolled(out.data(), row.data(), mins.data(), maxs.data(),
                             row.size());
}

void min_max_inverse(std::span<double> out, std::span<const double> row,
                     std::span<const double> mins,
                     std::span<const double> maxs) noexcept {
#if defined(REPRO_HAVE_STD_SIMD)
  if (enabled()) {
    min_max_inverse_vector(out.data(), row.data(), mins.data(), maxs.data(),
                           row.size());
    return;
  }
#endif
  min_max_inverse_unrolled(out.data(), row.data(), mins.data(), maxs.data(),
                           row.size());
}

void dot_rows(std::span<double> out, std::span<const double> x, const double* rows,
              std::size_t stride) noexcept {
  const std::size_t n = x.size();
#if defined(REPRO_HAVE_STD_SIMD)
  if (enabled()) {
    // Two rows per iteration — shared x loads, independent accumulator
    // chains; per-row operation order is exactly the contract sequence.
    const std::size_t n4 = n - n % kLanes;
    std::size_t j = 0;
    for (; j + 2 <= out.size(); j += 2) {
      const double* r0 = rows + j * stride;
      const double* r1 = r0 + stride;
      vdouble acc0(0.0);
      vdouble acc1(0.0);
      for (std::size_t i = 0; i < n4; i += kLanes) {
        const vdouble xv = load(x.data() + i);
        acc0 += xv * load(r0 + i);
        acc1 += xv * load(r1 + i);
      }
      double l0[kLanes];
      double l1[kLanes];
      acc0.copy_to(l0, stdx::element_aligned);
      acc1.copy_to(l1, stdx::element_aligned);
      for (std::size_t t = 0; t < n - n4; ++t) {
        l0[t] += x[n4 + t] * r0[n4 + t];
        l1[t] += x[n4 + t] * r1[n4 + t];
      }
      out[j] = reduce_lanes(l0);
      out[j + 1] = reduce_lanes(l1);
    }
    for (; j < out.size(); ++j) {
      out[j] = detail::dot_vector(x.data(), rows + j * stride, n);
    }
    return;
  }
#endif
  for (std::size_t j = 0; j < out.size(); ++j) {
    out[j] = detail::dot_unrolled(x.data(), rows + j * stride, n);
  }
}

void squared_distance_rows(std::span<double> out, std::span<const double> x,
                           const double* rows, std::size_t stride,
                           double scale) noexcept {
  const std::size_t n = x.size();
#if defined(REPRO_HAVE_STD_SIMD)
  if (enabled()) {
    // Two rows per iteration: the x loads are shared and the two
    // accumulator chains are independent, so the out-of-order core overlaps
    // them. Each row individually runs the exact contract sequence —
    // pairing changes scheduling, not per-row operation order.
    const std::size_t n4 = n - n % kLanes;
    std::size_t j = 0;
    for (; j + 2 <= out.size(); j += 2) {
      const double* r0 = rows + j * stride;
      const double* r1 = r0 + stride;
      vdouble acc0(0.0);
      vdouble acc1(0.0);
      for (std::size_t i = 0; i < n4; i += kLanes) {
        const vdouble xv = load(x.data() + i);
        const vdouble d0 = xv - load(r0 + i);
        const vdouble d1 = xv - load(r1 + i);
        acc0 += d0 * d0;
        acc1 += d1 * d1;
      }
      double l0[kLanes];
      double l1[kLanes];
      acc0.copy_to(l0, stdx::element_aligned);
      acc1.copy_to(l1, stdx::element_aligned);
      for (std::size_t t = 0; t < n - n4; ++t) {
        const double d0 = x[n4 + t] - r0[n4 + t];
        const double d1 = x[n4 + t] - r1[n4 + t];
        l0[t] += d0 * d0;
        l1[t] += d1 * d1;
      }
      out[j] = scale * reduce_lanes(l0);
      out[j + 1] = scale * reduce_lanes(l1);
    }
    for (; j < out.size(); ++j) {
      out[j] = scale * detail::squared_distance_vector(x.data(), rows + j * stride, n);
    }
    return;
  }
#endif
  for (std::size_t j = 0; j < out.size(); ++j) {
    out[j] = scale * detail::squared_distance_unrolled(x.data(), rows + j * stride, n);
  }
}

void exp_batch(std::span<double> out, std::span<const double> x) noexcept {
#if defined(REPRO_HAVE_STD_SIMD)
  if (enabled()) {
    exp_batch_vector(out.data(), x.data(), x.size());
    return;
  }
#endif
  exp_batch_unrolled(out.data(), x.data(), x.size());
}

void add_scaled_pair_f32(std::span<double> grad, const float* a, const float* b,
                         double ca, double cb, double sign) noexcept {
#if defined(REPRO_HAVE_STD_SIMD)
  if (enabled()) {
    add_scaled_pair_f32_vector(grad.data(), a, b, ca, cb, sign, grad.size());
    return;
  }
#endif
  add_scaled_pair_f32_unrolled(grad.data(), a, b, ca, cb, sign, grad.size());
}

}  // namespace repro::common::simd
