// Small string helpers used by the CSV reader, table printer and frontend.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace repro::common {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);
[[nodiscard]] std::string to_lower(std::string_view s);

/// Fixed-precision formatting (printf "%.*f") without iostream state leaks.
[[nodiscard]] std::string format_double(double v, int precision);

}  // namespace repro::common
