#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace repro::common {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double rmse(std::span<const double> pred, std::span<const double> truth) {
  if (pred.size() != truth.size()) throw std::invalid_argument("rmse: size mismatch");
  if (pred.empty()) return std::numeric_limits<double>::quiet_NaN();
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(pred.size()));
}

double mae(std::span<const double> pred, std::span<const double> truth) {
  if (pred.size() != truth.size()) throw std::invalid_argument("mae: size mismatch");
  if (pred.empty()) return std::numeric_limits<double>::quiet_NaN();
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) acc += std::abs(pred[i] - truth[i]);
  return acc / static_cast<double>(pred.size());
}

std::vector<double> relative_errors_percent(std::span<const double> pred,
                                            std::span<const double> truth) {
  if (pred.size() != truth.size())
    throw std::invalid_argument("relative_errors_percent: size mismatch");
  std::vector<double> out;
  out.reserve(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double denom = truth[i] == 0.0 ? 1e-12 : truth[i];
    out.push_back(100.0 * (pred[i] - truth[i]) / denom);
  }
  return out;
}

double rmse_percent(std::span<const double> pred, std::span<const double> truth) {
  const auto errs = relative_errors_percent(pred, truth);
  double acc = 0.0;
  for (double e : errs) acc += e * e;
  if (errs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return std::sqrt(acc / static_cast<double>(errs.size()));
}

double r_squared(std::span<const double> pred, std::span<const double> truth) {
  if (pred.size() != truth.size()) throw std::invalid_argument("r_squared: size mismatch");
  const double m = mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

BoxStats box_stats(std::span<const double> xs) {
  BoxStats b;
  b.n = xs.size();
  if (xs.empty()) return b;
  b.min = min_of(xs);
  b.q25 = percentile(xs, 25.0);
  b.median = percentile(xs, 50.0);
  b.q75 = percentile(xs, 75.0);
  b.max = max_of(xs);
  return b;
}

}  // namespace repro::common
