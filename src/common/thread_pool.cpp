#include "common/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <latch>
#include <mutex>
#include <thread>
#include <vector>

namespace repro::common {

namespace {

thread_local bool t_on_worker = false;

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::deque<std::function<void()>> queue;
  mutable std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;

  void worker_loop() {
    t_on_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }

  /// Pop one queued task and run it on the calling thread; false when idle.
  bool run_one() {
    std::function<void()> task;
    {
      std::lock_guard lock(mutex);
      if (queue.empty()) return false;
      task = std::move(queue.front());
      queue.pop_front();
    }
    task();
    return true;
  }
};

ThreadPool::ThreadPool(std::size_t num_threads) : impl_(std::make_unique<Impl>()) {
  if (num_threads == 0) num_threads = default_thread_count();
  const std::size_t background = num_threads > 0 ? num_threads - 1 : 0;
  impl_->workers.reserve(background);
  for (std::size_t i = 0; i < background; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

std::size_t ThreadPool::size() const noexcept { return impl_->workers.size() + 1; }

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) const {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  const std::size_t threads = size();
  if (threads == 1 || n <= grain || t_on_worker) {
    body(begin, end);
    return;
  }

  // Static partition: chunk count and boundaries depend only on the range,
  // the grain and the pool size — never on scheduling.
  const std::size_t max_chunks = (n + grain - 1) / grain;
  const std::size_t chunks = std::min(threads, max_chunks);

  struct Job {
    std::latch done;
    std::mutex error_mutex;
    std::exception_ptr error;
    explicit Job(std::size_t c) : done(static_cast<std::ptrdiff_t>(c)) {}
  };
  Job job(chunks);

  const auto run_chunk = [&](std::size_t c) {
    const std::size_t lo = begin + (n * c) / chunks;
    const std::size_t hi = begin + (n * (c + 1)) / chunks;
    try {
      if (lo < hi) body(lo, hi);
    } catch (...) {
      std::lock_guard lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    job.done.count_down();
  };

  {
    std::lock_guard lock(impl_->mutex);
    for (std::size_t c = 1; c < chunks; ++c) {
      impl_->queue.emplace_back([&run_chunk, c] { run_chunk(c); });
    }
  }
  impl_->cv.notify_all();
  run_chunk(0);
  // Help drain the queue (our own chunks, or a concurrent caller's), then
  // block until every chunk of this job has finished.
  while (!job.done.try_wait()) {
    if (!impl_->run_one()) {
      job.done.wait();
      break;
    }
  }
  if (job.error) std::rethrow_exception(job.error);
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("REPRO_THREADS")) {
    char* rest = nullptr;
    const long v = std::strtol(env, &rest, 10);
    if (rest != env && *rest == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(g_global_mutex);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::set_global_threads(std::size_t n) {
  auto fresh = std::make_unique<ThreadPool>(n);
  std::lock_guard lock(g_global_mutex);
  g_global_pool = std::move(fresh);
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

}  // namespace repro::common
