// Pluggable regressor registry: every model family in the library is
// constructible by name, and serialized models carry that name so they can
// be restored without the caller knowing the concrete type.
//
//   auto model = ml::make_regressor("svr-rbf", params);   // Result<unique_ptr>
//   std::string blob = ml::serialize_regressor(*model.value());
//   auto restored = ml::deserialize_regressor(blob);
//
// Built-in families: "svr-linear", "svr-rbf", "svr-polynomial", "ols",
// "ridge", "lasso", "poly". New families can be registered at runtime via
// RegressorRegistry::instance().register_family(...); the Regressor::name()
// of a registered model must equal its registry key for round-trips to work.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ml/lasso.hpp"
#include "ml/model.hpp"
#include "ml/poly.hpp"
#include "ml/svr.hpp"

namespace repro::ml {

/// Hyperparameter bag spanning every built-in family; each factory reads
/// only the members of its own family. Defaults are the paper's (§3.4):
/// C = 1000, ε = 0.1, γ = 0.1 for the SVRs.
struct RegressorParams {
  SvrParams svr{};             // the kernel function is set by the registry key
  double svr_rbf_gamma = 0.1;  // γ for "svr-rbf"
  int svr_poly_degree = 3;     // degree for "svr-polynomial"
  double ridge_l2 = 1.0;       // λ for "ridge" ("ols" is unpenalised)
  LassoParams lasso{};
  PolynomialParams poly{};
};

class RegressorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Regressor>(const RegressorParams&)>;
  using Deserializer =
      std::function<common::Result<std::unique_ptr<Regressor>>(const std::string&)>;

  /// The process-wide registry, pre-populated with the built-in families.
  [[nodiscard]] static RegressorRegistry& instance();

  /// Register a new family; fails when the name is already taken.
  common::Status register_family(const std::string& name, Factory factory,
                                 Deserializer deserializer);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;  // sorted

  [[nodiscard]] common::Result<std::unique_ptr<Regressor>> make(
      const std::string& name, const RegressorParams& params) const;

  /// Deserialize a family payload (no envelope) for the given key.
  [[nodiscard]] common::Result<std::unique_ptr<Regressor>> deserialize(
      const std::string& name, const std::string& payload) const;

 private:
  RegressorRegistry();

  struct Entry {
    Factory factory;
    Deserializer deserializer;
  };
  std::map<std::string, Entry> entries_;
};

/// Construct a registered regressor by name.
[[nodiscard]] common::Result<std::unique_ptr<Regressor>> make_regressor(
    const std::string& name, const RegressorParams& params = {});

/// Sorted names of every registered family.
[[nodiscard]] std::vector<std::string> registered_regressors();

/// Versioned polymorphic persistence: "regressor v1 <name>\n" + payload.
[[nodiscard]] std::string serialize_regressor(const Regressor& model);
[[nodiscard]] common::Result<std::unique_ptr<Regressor>> deserialize_regressor(
    const std::string& text);

}  // namespace repro::ml
