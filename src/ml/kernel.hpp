// SVR kernel functions (paper §3.4): linear kernel for the speedup model,
// RBF kernel (gamma = 0.1) for the normalized-energy model. A polynomial
// kernel is provided for the ablation study.
#pragma once

#include <span>
#include <string>

#include "common/status.hpp"

namespace repro::ml {

enum class KernelType { kLinear, kRbf, kPolynomial };

[[nodiscard]] const char* to_string(KernelType t) noexcept;
[[nodiscard]] common::Result<KernelType> kernel_type_from_string(const std::string& s);

/// Parameterised kernel function object.
struct KernelFunction {
  KernelType type = KernelType::kLinear;
  double gamma = 0.1;   // RBF / polynomial scale
  double coef0 = 1.0;   // polynomial shift
  int degree = 3;       // polynomial degree

  [[nodiscard]] double operator()(std::span<const double> a,
                                  std::span<const double> b) const noexcept;

  [[nodiscard]] static KernelFunction linear() { return {KernelType::kLinear, 0.0, 0.0, 0}; }
  [[nodiscard]] static KernelFunction rbf(double gamma) {
    return {KernelType::kRbf, gamma, 0.0, 0};
  }
  [[nodiscard]] static KernelFunction polynomial(int degree, double gamma = 1.0,
                                                 double coef0 = 1.0) {
    return {KernelType::kPolynomial, gamma, coef0, degree};
  }
};

}  // namespace repro::ml
