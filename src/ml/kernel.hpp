/// \file kernel.hpp
/// \brief SVR kernel functions (paper §3.4): linear kernel for the speedup
/// model, RBF kernel (gamma = 0.1) for the normalized-energy model. A
/// polynomial kernel is provided for the ablation study.
///
/// Kernel evaluations reduce their operands through common::simd (dot /
/// squared_distance under the fixed 4-lane contract) and apply exp/pow as
/// scalar functions of the reduced value, so an evaluation is bit-identical
/// across SIMD backends and thread counts.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/status.hpp"
#include "ml/matrix.hpp"

namespace repro::ml {

enum class KernelType { kLinear, kRbf, kPolynomial };

[[nodiscard]] const char* to_string(KernelType t) noexcept;
[[nodiscard]] common::Result<KernelType> kernel_type_from_string(const std::string& s);

/// \brief Parameterised kernel function object.
///
/// Evaluates k(a, b) for the configured kernel family:
///  - linear:      `<a, b>`
///  - rbf:         `exp(-gamma * |a - b|^2)`
///  - polynomial:  `(gamma * <a, b> + coef0)^degree`
struct KernelFunction {
  KernelType type = KernelType::kLinear;
  double gamma = 0.1;   ///< RBF / polynomial scale.
  double coef0 = 1.0;   ///< Polynomial shift.
  int degree = 3;       ///< Polynomial degree.

  /// \brief Evaluate the kernel on two equal-length feature vectors.
  /// \pre a.size() == b.size().
  /// \return k(a, b); bit-identical across SIMD backends and thread counts.
  [[nodiscard]] double operator()(std::span<const double> a,
                                  std::span<const double> b) const noexcept;

  /// \brief Batched row evaluation: `out[j - j_lo] = k(x, data.row(j))` for
  /// `j` in `[j_lo, j_hi)`.
  ///
  /// The hot path of the SVR kernel-matrix build and of batched prediction:
  /// the reductions run on common::simd and the RBF exponentials go through
  /// the batched deterministic common::simd::exp_batch, so each output
  /// element is bit-identical to `operator()(x, data.row(j))` — at any
  /// batch boundary, SIMD backend, or thread count.
  /// \pre x.size() == data.cols(); out.size() >= j_hi - j_lo.
  void evaluate_row(std::span<const double> x, const Matrix& data, std::size_t j_lo,
                    std::size_t j_hi, std::span<double> out) const noexcept;

  /// \brief The paper's speedup-model kernel.
  [[nodiscard]] static KernelFunction linear() { return {KernelType::kLinear, 0.0, 0.0, 0}; }
  /// \brief The paper's energy-model kernel (\p gamma = 0.1 in §3.4).
  [[nodiscard]] static KernelFunction rbf(double gamma) {
    return {KernelType::kRbf, gamma, 0.0, 0};
  }
  /// \brief Polynomial kernel for the ablation study.
  [[nodiscard]] static KernelFunction polynomial(int degree, double gamma = 1.0,
                                                 double coef0 = 1.0) {
    return {KernelType::kPolynomial, gamma, coef0, degree};
  }
};

}  // namespace repro::ml
