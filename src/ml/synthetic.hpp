// Deterministic synthetic regression problems, shared by the determinism
// tests and the perf_stack benchmark so both exercise the exact same data.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "ml/matrix.hpp"

namespace repro::ml {

/// n samples of d features uniform in [0,1) with a smooth nonlinear target
/// (alternating-sign quadratic) plus mild Gaussian noise. Bit-reproducible
/// from the seed.
inline void make_synthetic_regression(std::size_t n, std::size_t d, std::uint64_t seed,
                                      Matrix& x, std::vector<double>& y) {
  common::Xoshiro256 rng(seed);
  x = Matrix(n, d);
  y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double v = rng.uniform();
      x(i, j) = v;
      acc += (j % 2 == 0 ? 1.0 : -0.5) * v * v;
    }
    y[i] = acc + 0.05 * rng.gaussian();
  }
}

}  // namespace repro::ml
