#include "ml/model.hpp"

#include "common/thread_pool.hpp"

namespace repro::ml {

std::vector<double> Regressor::predict(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  common::ThreadPool::global().parallel_for(
      0, x.rows(), 64, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) out[r] = predict_one(x.row(r));
      });
  return out;
}

}  // namespace repro::ml
