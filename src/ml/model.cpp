#include "ml/model.hpp"

#include "common/thread_pool.hpp"

namespace repro::ml {

std::vector<double> Regressor::predict(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  const auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) out[r] = predict_one(x.row(r));
  };
  // rows × dim under ~2^14 is a few microseconds of arithmetic — cheaper
  // than waking workers. Rows write disjoint slots, so serial and parallel
  // produce the same bits.
  if (x.rows() * x.cols() < 16384) {
    body(0, x.rows());
  } else {
    common::ThreadPool::global().parallel_for(0, x.rows(), 64, body);
  }
  return out;
}

}  // namespace repro::ml
