#include "ml/model.hpp"

namespace repro::ml {

std::vector<double> Regressor::predict(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out.push_back(predict_one(x.row(r)));
  return out;
}

}  // namespace repro::ml
