#include "ml/kernel.hpp"

#include <cmath>

#include "common/simd.hpp"

namespace repro::ml {

const char* to_string(KernelType t) noexcept {
  switch (t) {
    case KernelType::kLinear: return "linear";
    case KernelType::kRbf: return "rbf";
    case KernelType::kPolynomial: return "polynomial";
  }
  return "?";
}

common::Result<KernelType> kernel_type_from_string(const std::string& s) {
  if (s == "linear") return KernelType::kLinear;
  if (s == "rbf") return KernelType::kRbf;
  if (s == "polynomial") return KernelType::kPolynomial;
  return common::parse_error("unknown kernel type: " + s);
}

double KernelFunction::operator()(std::span<const double> a,
                                  std::span<const double> b) const noexcept {
  // The reductions run on the SIMD layer, and RBF uses the deterministic
  // common::simd::exp_one (the scalar core of exp_batch) rather than libm,
  // so a single evaluation is bit-identical to the batched evaluate_row
  // path on any SIMD backend.
  switch (type) {
    case KernelType::kLinear:
      return common::simd::dot(a, b);
    case KernelType::kRbf:
      return common::simd::exp_one(-gamma * common::simd::squared_distance(a, b));
    case KernelType::kPolynomial:
      return std::pow(gamma * common::simd::dot(a, b) + coef0, degree);
  }
  return 0.0;
}

void KernelFunction::evaluate_row(std::span<const double> x, const Matrix& data,
                                  std::size_t j_lo, std::size_t j_hi,
                                  std::span<double> out) const noexcept {
  const std::size_t m = j_hi - j_lo;
  if (m == 0) return;
  const double* rows = data.row(j_lo).data();
  const std::size_t stride = data.cols();
  switch (type) {
    case KernelType::kLinear:
      common::simd::dot_rows(out.first(m), x, rows, stride);
      return;
    case KernelType::kRbf:
      // Two passes: the scaled squared distances land in out, then the
      // batched exponential rewrites them in place, 4 lanes at a time.
      common::simd::squared_distance_rows(out.first(m), x, rows, stride, -gamma);
      common::simd::exp_batch(out.first(m), out.first(m));
      return;
    case KernelType::kPolynomial:
      common::simd::dot_rows(out.first(m), x, rows, stride);
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = std::pow(gamma * out[j] + coef0, degree);
      }
      return;
  }
}

}  // namespace repro::ml
