#include "ml/kernel.hpp"

#include <cmath>

#include "ml/matrix.hpp"

namespace repro::ml {

const char* to_string(KernelType t) noexcept {
  switch (t) {
    case KernelType::kLinear: return "linear";
    case KernelType::kRbf: return "rbf";
    case KernelType::kPolynomial: return "polynomial";
  }
  return "?";
}

common::Result<KernelType> kernel_type_from_string(const std::string& s) {
  if (s == "linear") return KernelType::kLinear;
  if (s == "rbf") return KernelType::kRbf;
  if (s == "polynomial") return KernelType::kPolynomial;
  return common::parse_error("unknown kernel type: " + s);
}

double KernelFunction::operator()(std::span<const double> a,
                                  std::span<const double> b) const noexcept {
  switch (type) {
    case KernelType::kLinear:
      return dot(a, b);
    case KernelType::kRbf:
      return std::exp(-gamma * squared_distance(a, b));
    case KernelType::kPolynomial:
      return std::pow(gamma * dot(a, b) + coef0, degree);
  }
  return 0.0;
}

}  // namespace repro::ml
