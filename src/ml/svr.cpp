#include "ml/svr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace repro::ml {

namespace {

constexpr double kTau = 1e-12;  // floor for the quadratic coefficient

/// Dense symmetric kernel cache over the n training samples, stored as
/// float to halve memory (n ≈ 4240 in the paper's training set -> ~72 MB).
class KernelCache {
 public:
  KernelCache(const Matrix& x, const KernelFunction& kernel) : n_(x.rows()), k_(n_ * n_) {
    // Parallel over the leading index of the upper triangle: iteration i
    // writes row i (columns >= i) and column i (rows > i) — cell (r, c) is
    // written exactly once, by iteration min(r, c), so chunks touch
    // disjoint cells and the cache is bit-identical at any thread count.
    // The triangular workload is balanced by pairing row p (inner length
    // n-p) with row n-1-p (inner length p+1): every parallel index costs
    // ~n+1 kernel evaluations, so equal chunks get equal work.
    float* k = k_.data();
    const std::size_t n = n_;
    const auto fill_row = [&x, &kernel, k, n](std::size_t i) {
      const auto xi = x.row(i);
      float* row = k + i * n;
      for (std::size_t j = i; j < n; ++j) {
        const auto v = static_cast<float>(kernel(xi, x.row(j)));
        row[j] = v;
        k[j * n + i] = v;
      }
    };
    common::ThreadPool::global().parallel_for(
        0, (n + 1) / 2, 4, [&fill_row, n](std::size_t lo, std::size_t hi) {
          for (std::size_t p = lo; p < hi; ++p) {
            fill_row(p);
            if (n - 1 - p != p) fill_row(n - 1 - p);
          }
        });
  }

  [[nodiscard]] const float* row(std::size_t i) const noexcept { return k_.data() + i * n_; }
  [[nodiscard]] float at(std::size_t i, std::size_t j) const noexcept {
    return k_[i * n_ + j];
  }

 private:
  std::size_t n_;
  std::vector<float> k_;
};

}  // namespace

void Svr::fit(const Matrix& x, const std::vector<double>& y) {
  const std::size_t n = x.rows();
  if (n == 0) throw std::invalid_argument("Svr::fit: empty training set");
  if (y.size() != n) throw std::invalid_argument("Svr::fit: |y| != rows(X)");
  const double c = params_.c;
  const double eps = params_.epsilon;

  const KernelCache cache(x, params_.kernel);

  // 2n-variable formulation: s < n carries label +1 (α), s >= n label −1 (α*).
  const std::size_t m = 2 * n;
  std::vector<double> beta(m, 0.0);
  std::vector<double> grad(m);   // G_s = Σ_t Q_st β_t + p_s; initially p_s
  std::vector<std::int8_t> label(m);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = eps - y[i];
    grad[i + n] = eps + y[i];
    label[i] = +1;
    label[i + n] = -1;
  }

  const auto q = [&](std::size_t s, std::size_t t) -> double {
    const double base = static_cast<double>(label[s]) * static_cast<double>(label[t]) *
                        static_cast<double>(cache.at(s % n, t % n));
    return s == t ? base + params_.diag_jitter : base;
  };

  // Diagonal of Q (label signs square away), with the stabilising jitter.
  std::vector<double> q_diag(m);
  for (std::size_t s = 0; s < m; ++s) {
    q_diag[s] = static_cast<double>(cache.at(s % n, s % n)) + params_.diag_jitter;
  }

  std::int64_t iter = 0;
  bool converged = false;
  for (; iter < params_.max_iter; ++iter) {
    // Second-order working-set selection (LIBSVM WSS2):
    // i maximizes −y_s G_s over I_up; j minimizes the quadratic gain
    // −b²/a over I_low among points violating against i.
    double g_max = -std::numeric_limits<double>::infinity();
    double g_min = std::numeric_limits<double>::infinity();
    std::size_t best_i = m;
    for (std::size_t s = 0; s < m; ++s) {
      const double v = -static_cast<double>(label[s]) * grad[s];
      const bool in_up = (label[s] > 0) ? (beta[s] < c) : (beta[s] > 0.0);
      const bool in_low = (label[s] > 0) ? (beta[s] > 0.0) : (beta[s] < c);
      if (in_up && v > g_max) {
        g_max = v;
        best_i = s;
      }
      if (in_low && v < g_min) g_min = v;
    }
    if (best_i == m || g_max - g_min < params_.tol) {
      converged = true;
      break;
    }
    const std::size_t i = best_i;
    const float* qrow_i = cache.row(i % n);
    const double yi = static_cast<double>(label[i]);

    std::size_t best_j = m;
    double best_obj = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < m; ++s) {
      const bool in_low = (label[s] > 0) ? (beta[s] > 0.0) : (beta[s] < c);
      if (!in_low) continue;
      const double v = -static_cast<double>(label[s]) * grad[s];
      const double b_val = g_max - v;
      if (b_val <= 0.0) continue;
      const double q_is = yi * static_cast<double>(label[s]) *
                          static_cast<double>(qrow_i[s % n]);
      double a = q_diag[i] + q_diag[s] - 2.0 * q_is;
      if (a <= 0.0) a = kTau;
      const double obj = -(b_val * b_val) / a;
      if (obj < best_obj) {
        best_obj = obj;
        best_j = s;
      }
    }
    if (best_j == m) {
      converged = true;
      break;
    }
    const std::size_t j = best_j;

    // Two-variable subproblem (LIBSVM update rules, equal box C).
    const double old_bi = beta[i];
    const double old_bj = beta[j];
    if (label[i] != label[j]) {
      double quad = q(i, i) + q(j, j) + 2.0 * q(i, j);
      if (quad <= 0.0) quad = kTau;
      const double delta = (-grad[i] - grad[j]) / quad;
      const double diff = beta[i] - beta[j];
      beta[i] += delta;
      beta[j] += delta;
      if (diff > 0.0) {
        if (beta[j] < 0.0) {
          beta[j] = 0.0;
          beta[i] = diff;
        }
      } else {
        if (beta[i] < 0.0) {
          beta[i] = 0.0;
          beta[j] = -diff;
        }
      }
      if (diff > 0.0) {
        if (beta[i] > c) {
          beta[i] = c;
          beta[j] = c - diff;
        }
      } else {
        if (beta[j] > c) {
          beta[j] = c;
          beta[i] = c + diff;
        }
      }
    } else {
      double quad = q(i, i) + q(j, j) - 2.0 * q(i, j);
      if (quad <= 0.0) quad = kTau;
      const double delta = (grad[i] - grad[j]) / quad;
      const double sum = beta[i] + beta[j];
      beta[i] -= delta;
      beta[j] += delta;
      if (sum > c) {
        if (beta[i] > c) {
          beta[i] = c;
          beta[j] = sum - c;
        }
      } else {
        if (beta[j] < 0.0) {
          beta[j] = 0.0;
          beta[i] = sum;
        }
      }
      if (sum > c) {
        if (beta[j] > c) {
          beta[j] = c;
          beta[i] = sum - c;
        }
      } else {
        if (beta[i] < 0.0) {
          beta[i] = 0.0;
          beta[j] = sum;
        }
      }
    }

    // Gradient maintenance: G_s += Q_si Δβ_i + Q_sj Δβ_j.
    const double d_i = beta[i] - old_bi;
    const double d_j = beta[j] - old_bj;
    if (d_i == 0.0 && d_j == 0.0) continue;
    const float* row_i = cache.row(i % n);
    const float* row_j = cache.row(j % n);
    const double li = static_cast<double>(label[i]) * d_i;
    const double lj = static_cast<double>(label[j]) * d_j;
    for (std::size_t s = 0; s < m; ++s) {
      const double ys = static_cast<double>(label[s]);
      const std::size_t base = s % n;
      grad[s] += ys * (li * static_cast<double>(row_i[base]) +
                       lj * static_cast<double>(row_j[base]));
    }
    // Jitter contributes only on the exact diagonal of the 2n-dim problem.
    grad[i] += params_.diag_jitter * d_i;
    grad[j] += params_.diag_jitter * d_j;
  }

  if (!converged) {
    common::log_warn() << "Svr::fit hit max_iter=" << params_.max_iter
                       << " before reaching tol=" << params_.tol;
  }

  // Bias (−rho in LIBSVM terms) from the KKT conditions.
  {
    double ub = std::numeric_limits<double>::infinity();
    double lb = -std::numeric_limits<double>::infinity();
    double sum_free = 0.0;
    std::size_t n_free = 0;
    for (std::size_t s = 0; s < m; ++s) {
      const double yg = static_cast<double>(label[s]) * grad[s];
      if (beta[s] >= c) {
        if (label[s] < 0) ub = std::min(ub, yg);
        else lb = std::max(lb, yg);
      } else if (beta[s] <= 0.0) {
        if (label[s] > 0) ub = std::min(ub, yg);
        else lb = std::max(lb, yg);
      } else {
        ++n_free;
        sum_free += yg;
      }
    }
    const double rho = n_free > 0 ? sum_free / static_cast<double>(n_free) : (ub + lb) / 2.0;
    b_ = -rho;
  }

  // Collapse to support vectors: coefficient c_i = α_i − α_i*.
  std::size_t num_sv = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (beta[i] - beta[i + n] != 0.0) ++num_sv;
  }
  sv_ = Matrix(0, 0);
  sv_.reserve_rows(num_sv, x.cols());
  sv_coef_.clear();
  sv_coef_.reserve(num_sv);
  for (std::size_t i = 0; i < n; ++i) {
    const double coef = beta[i] - beta[i + n];
    if (coef != 0.0) {
      sv_.push_row(x.row(i));
      sv_coef_.push_back(coef);
    }
  }

  info_.iterations = iter;
  info_.converged = converged;
  info_.support_vectors = sv_.rows();
  fitted_ = true;
}

double Svr::predict_one(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("Svr::predict_one before fit");
  double acc = b_;
  for (std::size_t i = 0; i < sv_.rows(); ++i) {
    acc += sv_coef_[i] * params_.kernel(sv_.row(i), x);
  }
  return acc;
}

std::vector<double> Svr::predict(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("Svr::predict before fit");
  const std::size_t n_sv = sv_.rows();
  std::vector<double> out(x.rows(), b_);
  // One blocked pass over (test rows x support vectors) instead of x.rows()
  // independent predict_one loops: the support-vector block stays hot in
  // cache across the rows of a block. Support vectors are visited in
  // ascending order per row, so each output is the same left-to-right sum
  // predict_one computes — bit-identical, and deterministic under threading
  // because rows write disjoint slots.
  constexpr std::size_t kSvBlock = 64;
  common::ThreadPool::global().parallel_for(
      0, x.rows(), 32, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t sb = 0; sb < n_sv; sb += kSvBlock) {
          const std::size_t s_hi = std::min(n_sv, sb + kSvBlock);
          for (std::size_t r = lo; r < hi; ++r) {
            const auto xr = x.row(r);
            double acc = out[r];
            for (std::size_t s = sb; s < s_hi; ++s) {
              acc += sv_coef_[s] * params_.kernel(sv_.row(s), xr);
            }
            out[r] = acc;
          }
        }
      });
  return out;
}

std::string Svr::name() const {
  return std::string("svr-") + to_string(params_.kernel.type);
}

std::string Svr::serialize() const {
  if (!fitted_) throw std::logic_error("Svr::serialize before fit");
  std::ostringstream oss;
  oss.precision(17);
  oss << "svr " << to_string(params_.kernel.type) << ' ' << params_.kernel.gamma << ' '
      << params_.kernel.coef0 << ' ' << params_.kernel.degree << ' ' << params_.c << ' '
      << params_.epsilon << ' ' << b_ << ' ' << sv_.rows() << ' ' << sv_.cols() << '\n';
  for (std::size_t i = 0; i < sv_.rows(); ++i) {
    oss << sv_coef_[i];
    for (double v : sv_.row(i)) oss << ' ' << v;
    oss << '\n';
  }
  return oss.str();
}

common::Result<Svr> Svr::deserialize(const std::string& text) {
  std::istringstream iss(text);
  std::string tag;
  std::string kernel_name;
  SvrParams params;
  double b = 0.0;
  std::size_t n_sv = 0;
  std::size_t dim = 0;
  if (!(iss >> tag >> kernel_name >> params.kernel.gamma >> params.kernel.coef0 >>
        params.kernel.degree >> params.c >> params.epsilon >> b >> n_sv >> dim) ||
      tag != "svr") {
    return common::parse_error("Svr: bad header");
  }
  const auto kt = kernel_type_from_string(kernel_name);
  if (!kt.ok()) return kt.error();
  params.kernel.type = kt.value();

  Svr model(params);
  model.b_ = b;
  model.sv_.reserve_rows(n_sv, dim);
  model.sv_coef_.reserve(n_sv);
  std::vector<double> row(dim);
  for (std::size_t i = 0; i < n_sv; ++i) {
    double coef = 0.0;
    if (!(iss >> coef)) return common::parse_error("Svr: truncated SV coefficient");
    for (std::size_t d = 0; d < dim; ++d) {
      if (!(iss >> row[d])) return common::parse_error("Svr: truncated SV row");
    }
    model.sv_coef_.push_back(coef);
    model.sv_.push_row(row);
  }
  model.fitted_ = true;
  model.info_.support_vectors = n_sv;
  return model;
}

}  // namespace repro::ml
