#include "ml/svr.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/log.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"

namespace repro::ml {

namespace {

constexpr double kTau = 1e-12;  // floor for the quadratic coefficient

/// Support-vector block length for the blocked decision function: 64
/// kernel values (one evaluate_row batch) stay L1-resident alongside the
/// matching coefficient block.
constexpr std::size_t kSvBlock = 64;

/// Row-block edge for the kernel cache fill; 16 rows keep the mirror
/// stripe (16 floats = one cache line per destination row) dense.
constexpr std::size_t kCacheBlock = 16;

/// Shared decision function: b + Σ_s coef[s] * k(sv_s, x), evaluated in
/// ascending kSvBlock batches — each batch is one SIMD evaluate_row plus a
/// 4-lane dot against the coefficient block, and the per-batch partial sums
/// accumulate in block order. predict_one and the batched predict both
/// funnel through this exact sequence, so they agree bit for bit.
double decision(const KernelFunction& kernel, const Matrix& sv,
                const std::vector<double>& coef, double b, std::span<const double> x,
                std::span<double> buf) noexcept {
  double acc = b;
  const std::size_t n_sv = sv.rows();
  for (std::size_t sb = 0; sb < n_sv; sb += kSvBlock) {
    const std::size_t len = std::min(kSvBlock, n_sv - sb);
    kernel.evaluate_row(x, sv, sb, sb + len, buf);
    acc += common::simd::dot({coef.data() + sb, len}, {buf.data(), len});
  }
  return acc;
}

/// Dense symmetric kernel cache over the n training samples, stored as
/// float to halve memory (n ≈ 4240 in the paper's training set -> ~72 MB).
class KernelCache {
 public:
  KernelCache(const Matrix& x, const KernelFunction& kernel)
      : n_(x.rows()), k_(build_kernel_matrix_f32(x, kernel)) {}

  [[nodiscard]] const float* row(std::size_t i) const noexcept { return k_.data() + i * n_; }
  [[nodiscard]] float at(std::size_t i, std::size_t j) const noexcept {
    return k_[i * n_ + j];
  }

 private:
  std::size_t n_;
  std::vector<float> k_;
};

}  // namespace

std::vector<float> build_kernel_matrix_f32(const Matrix& x, const KernelFunction& kernel) {
  // Parallel over kCacheBlock-row blocks of the upper triangle: the block
  // holding row min(r, c) computes cell (r, c) — every cell is written
  // exactly once, by one block, so chunks touch disjoint cells and the
  // matrix is bit-identical at any thread count. The triangular workload
  // is balanced by pairing block p with block nb-1-p. Each row is one
  // batched SIMD evaluate_row; the mirror (column) writes are deferred and
  // done per block with the target index innermost, so they hit
  // ~kCacheBlock*4-byte runs of each destination row instead of one float
  // every n*4 bytes — at n = 2000 the naive mirror's scattered misses cost
  // more than the kernel math.
  const std::size_t n = x.rows();
  std::vector<float> k_storage(n * n);
  float* k = k_storage.data();
  const std::size_t nb = (n + kCacheBlock - 1) / kCacheBlock;
  const auto fill_block = [&x, &kernel, k, n](std::size_t b, std::span<double> buf) {
    const std::size_t i_lo = b * kCacheBlock;
    const std::size_t i_hi = std::min(n, i_lo + kCacheBlock);
    for (std::size_t i = i_lo; i < i_hi; ++i) {
      kernel.evaluate_row(x.row(i), x, i, n, buf);
      float* row = k + i * n;
      for (std::size_t j = i; j < n; ++j) row[j] = static_cast<float>(buf[j - i]);
    }
    // Mirror the block's rows into its column stripe: k(j, i) = k(i, j).
    for (std::size_t j = i_lo + 1; j < n; ++j) {
      float* dst = k + j * n;
      const std::size_t i_top = std::min(i_hi, j);
      for (std::size_t i = i_lo; i < i_top; ++i) dst[i] = k[i * n + j];
    }
  };
  const auto body = [&fill_block, nb, n](std::size_t lo, std::size_t hi) {
    std::vector<double> buf(n);
    for (std::size_t p = lo; p < hi; ++p) {
      fill_block(p, buf);
      if (nb - 1 - p != p) fill_block(nb - 1 - p, buf);
    }
  };
  // A small kernel matrix (n*n cells) is cheaper to fill than to fan out —
  // same body over the full block range, so the cells are the same bits.
  if (n * n < 16384) {
    body(0, (nb + 1) / 2);
  } else {
    common::ThreadPool::global().parallel_for(0, (nb + 1) / 2, 1, body);
  }
  return k_storage;
}

void Svr::fit(const Matrix& x, const std::vector<double>& y) {
  const std::size_t n = x.rows();
  if (n == 0) throw std::invalid_argument("Svr::fit: empty training set");
  if (y.size() != n) throw std::invalid_argument("Svr::fit: |y| != rows(X)");
  const double c = params_.c;
  const double eps = params_.epsilon;

  const KernelCache cache(x, params_.kernel);

  // 2n-variable formulation: s < n carries label +1 (α), s >= n label −1 (α*).
  const std::size_t m = 2 * n;
  std::vector<double> beta(m, 0.0);
  std::vector<double> grad(m);   // G_s = Σ_t Q_st β_t + p_s; initially p_s
  std::vector<std::int8_t> label(m);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = eps - y[i];
    grad[i + n] = eps + y[i];
    label[i] = +1;
    label[i + n] = -1;
  }

  const auto q = [&](std::size_t s, std::size_t t) -> double {
    const double base = static_cast<double>(label[s]) * static_cast<double>(label[t]) *
                        static_cast<double>(cache.at(s % n, t % n));
    return s == t ? base + params_.diag_jitter : base;
  };

  // Diagonal of Q (label signs square away), with the stabilising jitter.
  std::vector<double> q_diag(m);
  for (std::size_t s = 0; s < m; ++s) {
    q_diag[s] = static_cast<double>(cache.at(s % n, s % n)) + params_.diag_jitter;
  }

  std::int64_t iter = 0;
  bool converged = false;
  for (; iter < params_.max_iter; ++iter) {
    // Second-order working-set selection (LIBSVM WSS2):
    // i maximizes −y_s G_s over I_up; j minimizes the quadratic gain
    // −b²/a over I_low among points violating against i.
    double g_max = -std::numeric_limits<double>::infinity();
    double g_min = std::numeric_limits<double>::infinity();
    std::size_t best_i = m;
    for (std::size_t s = 0; s < m; ++s) {
      const double v = -static_cast<double>(label[s]) * grad[s];
      const bool in_up = (label[s] > 0) ? (beta[s] < c) : (beta[s] > 0.0);
      const bool in_low = (label[s] > 0) ? (beta[s] > 0.0) : (beta[s] < c);
      if (in_up && v > g_max) {
        g_max = v;
        best_i = s;
      }
      if (in_low && v < g_min) g_min = v;
    }
    if (best_i == m || g_max - g_min < params_.tol) {
      converged = true;
      break;
    }
    const std::size_t i = best_i;
    const float* qrow_i = cache.row(i % n);
    const double yi = static_cast<double>(label[i]);

    std::size_t best_j = m;
    double best_obj = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < m; ++s) {
      const bool in_low = (label[s] > 0) ? (beta[s] > 0.0) : (beta[s] < c);
      if (!in_low) continue;
      const double v = -static_cast<double>(label[s]) * grad[s];
      const double b_val = g_max - v;
      if (b_val <= 0.0) continue;
      const double q_is = yi * static_cast<double>(label[s]) *
                          static_cast<double>(qrow_i[s % n]);
      double a = q_diag[i] + q_diag[s] - 2.0 * q_is;
      if (a <= 0.0) a = kTau;
      const double obj = -(b_val * b_val) / a;
      if (obj < best_obj) {
        best_obj = obj;
        best_j = s;
      }
    }
    if (best_j == m) {
      converged = true;
      break;
    }
    const std::size_t j = best_j;

    // Two-variable subproblem (LIBSVM update rules, equal box C).
    const double old_bi = beta[i];
    const double old_bj = beta[j];
    if (label[i] != label[j]) {
      double quad = q(i, i) + q(j, j) + 2.0 * q(i, j);
      if (quad <= 0.0) quad = kTau;
      const double delta = (-grad[i] - grad[j]) / quad;
      const double diff = beta[i] - beta[j];
      beta[i] += delta;
      beta[j] += delta;
      if (diff > 0.0) {
        if (beta[j] < 0.0) {
          beta[j] = 0.0;
          beta[i] = diff;
        }
      } else {
        if (beta[i] < 0.0) {
          beta[i] = 0.0;
          beta[j] = -diff;
        }
      }
      if (diff > 0.0) {
        if (beta[i] > c) {
          beta[i] = c;
          beta[j] = c - diff;
        }
      } else {
        if (beta[j] > c) {
          beta[j] = c;
          beta[i] = c + diff;
        }
      }
    } else {
      double quad = q(i, i) + q(j, j) - 2.0 * q(i, j);
      if (quad <= 0.0) quad = kTau;
      const double delta = (grad[i] - grad[j]) / quad;
      const double sum = beta[i] + beta[j];
      beta[i] -= delta;
      beta[j] += delta;
      if (sum > c) {
        if (beta[i] > c) {
          beta[i] = c;
          beta[j] = sum - c;
        }
      } else {
        if (beta[j] < 0.0) {
          beta[j] = 0.0;
          beta[i] = sum;
        }
      }
      if (sum > c) {
        if (beta[j] > c) {
          beta[j] = c;
          beta[i] = sum - c;
        }
      } else {
        if (beta[i] < 0.0) {
          beta[i] = 0.0;
          beta[j] = sum;
        }
      }
    }

    // Gradient maintenance: G_s += Q_si Δβ_i + Q_sj Δβ_j. The 2n entries
    // split into the two label halves (s < n carries y = +1, s >= n carries
    // y = −1 over the same kernel rows), each a SIMD-fused element-wise
    // update grad[s] += y * (li * K_i[s] + lj * K_j[s]).
    const double d_i = beta[i] - old_bi;
    const double d_j = beta[j] - old_bj;
    if (d_i == 0.0 && d_j == 0.0) continue;
    const float* row_i = cache.row(i % n);
    const float* row_j = cache.row(j % n);
    const double li = static_cast<double>(label[i]) * d_i;
    const double lj = static_cast<double>(label[j]) * d_j;
    common::simd::add_scaled_pair_f32({grad.data(), n}, row_i, row_j, li, lj, +1.0);
    common::simd::add_scaled_pair_f32({grad.data() + n, n}, row_i, row_j, li, lj, -1.0);
    // Jitter contributes only on the exact diagonal of the 2n-dim problem.
    grad[i] += params_.diag_jitter * d_i;
    grad[j] += params_.diag_jitter * d_j;
  }

  if (!converged) {
    common::log_warn() << "Svr::fit hit max_iter=" << params_.max_iter
                       << " before reaching tol=" << params_.tol;
  }

  // Bias (−rho in LIBSVM terms) from the KKT conditions.
  {
    double ub = std::numeric_limits<double>::infinity();
    double lb = -std::numeric_limits<double>::infinity();
    double sum_free = 0.0;
    std::size_t n_free = 0;
    for (std::size_t s = 0; s < m; ++s) {
      const double yg = static_cast<double>(label[s]) * grad[s];
      if (beta[s] >= c) {
        if (label[s] < 0) ub = std::min(ub, yg);
        else lb = std::max(lb, yg);
      } else if (beta[s] <= 0.0) {
        if (label[s] > 0) ub = std::min(ub, yg);
        else lb = std::max(lb, yg);
      } else {
        ++n_free;
        sum_free += yg;
      }
    }
    const double rho = n_free > 0 ? sum_free / static_cast<double>(n_free) : (ub + lb) / 2.0;
    b_ = -rho;
  }

  // Collapse to support vectors: coefficient c_i = α_i − α_i*.
  std::size_t num_sv = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (beta[i] - beta[i + n] != 0.0) ++num_sv;
  }
  sv_ = Matrix(0, 0);
  sv_.reserve_rows(num_sv, x.cols());
  sv_coef_.clear();
  sv_coef_.reserve(num_sv);
  for (std::size_t i = 0; i < n; ++i) {
    const double coef = beta[i] - beta[i + n];
    if (coef != 0.0) {
      sv_.push_row(x.row(i));
      sv_coef_.push_back(coef);
    }
  }

  info_.iterations = iter;
  info_.converged = converged;
  info_.support_vectors = sv_.rows();
  fitted_ = true;
}

double Svr::predict_one(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("Svr::predict_one before fit");
  std::array<double, kSvBlock> buf;
  return decision(params_.kernel, sv_, sv_coef_, b_, x, buf);
}

std::vector<double> Svr::predict(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("Svr::predict before fit");
  const std::size_t n_sv = sv_.rows();
  std::vector<double> out(x.rows(), b_);
  // One blocked pass over (test rows x support vectors) instead of x.rows()
  // independent predict_one loops: the support-vector block stays hot in
  // cache across the rows of a block. Per row the blocks accumulate in the
  // same ascending order as decision() — bit-identical to predict_one, and
  // deterministic under threading because rows write disjoint slots.
  const auto body = [&](std::size_t lo, std::size_t hi) {
    std::vector<double> buf(kSvBlock);
    for (std::size_t sb = 0; sb < n_sv; sb += kSvBlock) {
      const std::size_t len = std::min(kSvBlock, n_sv - sb);
      for (std::size_t r = lo; r < hi; ++r) {
        params_.kernel.evaluate_row(x.row(r), sv_, sb, sb + len, buf);
        out[r] += common::simd::dot({sv_coef_.data() + sb, len}, {buf.data(), len});
      }
    }
  };
  // rows × support vectors is the kernel-evaluation count; under ~2^15 the
  // whole pass is microseconds and a fan-out only adds latch overhead. Rows
  // accumulate in the same block order either way — bit-identical.
  if (x.rows() * n_sv < 32768) {
    body(0, x.rows());
  } else {
    common::ThreadPool::global().parallel_for(0, x.rows(), 32, body);
  }
  return out;
}

std::string Svr::name() const {
  return std::string("svr-") + to_string(params_.kernel.type);
}

std::string Svr::serialize() const {
  if (!fitted_) throw std::logic_error("Svr::serialize before fit");
  std::ostringstream oss;
  oss.precision(17);
  oss << "svr " << to_string(params_.kernel.type) << ' ' << params_.kernel.gamma << ' '
      << params_.kernel.coef0 << ' ' << params_.kernel.degree << ' ' << params_.c << ' '
      << params_.epsilon << ' ' << b_ << ' ' << sv_.rows() << ' ' << sv_.cols() << '\n';
  for (std::size_t i = 0; i < sv_.rows(); ++i) {
    oss << sv_coef_[i];
    for (double v : sv_.row(i)) oss << ' ' << v;
    oss << '\n';
  }
  return oss.str();
}

common::Result<Svr> Svr::deserialize(const std::string& text) {
  std::istringstream iss(text);
  std::string tag;
  std::string kernel_name;
  SvrParams params;
  double b = 0.0;
  std::size_t n_sv = 0;
  std::size_t dim = 0;
  if (!(iss >> tag >> kernel_name >> params.kernel.gamma >> params.kernel.coef0 >>
        params.kernel.degree >> params.c >> params.epsilon >> b >> n_sv >> dim) ||
      tag != "svr") {
    return common::parse_error("Svr: bad header");
  }
  const auto kt = kernel_type_from_string(kernel_name);
  if (!kt.ok()) return kt.error();
  params.kernel.type = kt.value();

  // A corrupt header must not drive the allocations below: every serialized
  // value occupies at least two bytes (digit + separator), so counts beyond
  // what the payload could hold are a parse error, not a bad_alloc.
  if (dim > text.size()) {
    return common::parse_error("Svr: dimension exceeds payload size");
  }
  if (n_sv > text.size() / (2 * (dim + 1)) + 1) {
    return common::parse_error("Svr: support-vector count exceeds payload size");
  }

  Svr model(params);
  model.b_ = b;
  model.sv_.reserve_rows(n_sv, dim);
  model.sv_coef_.reserve(n_sv);
  std::vector<double> row(dim);
  for (std::size_t i = 0; i < n_sv; ++i) {
    double coef = 0.0;
    if (!(iss >> coef)) return common::parse_error("Svr: truncated SV coefficient");
    for (std::size_t d = 0; d < dim; ++d) {
      if (!(iss >> row[d])) return common::parse_error("Svr: truncated SV row");
    }
    model.sv_coef_.push_back(coef);
    model.sv_.push_row(row);
  }
  model.fitted_ = true;
  model.info_.support_vectors = n_sv;
  return model;
}

}  // namespace repro::ml
