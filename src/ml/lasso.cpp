#include "ml/lasso.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace repro::ml {

namespace {

double soft_threshold(double z, double t) noexcept {
  if (z > t) return z - t;
  if (z < -t) return z + t;
  return 0.0;
}

}  // namespace

void Lasso::fit(const Matrix& x, const std::vector<double>& y) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || y.size() != n) throw std::invalid_argument("Lasso::fit: shape");

  // Center the target; features are assumed roughly scaled (callers use the
  // MinMaxScaler). Intercept absorbs the target mean plus feature offsets.
  coef_.assign(d, 0.0);
  std::vector<double> residual(y);  // r = y − X w − b
  double y_mean = 0.0;
  for (double v : y) y_mean += v;
  y_mean /= static_cast<double>(n);
  intercept_ = y_mean;
  for (double& r : residual) r -= intercept_;

  // Per-feature squared norms for the coordinate updates.
  std::vector<double> col_sq(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t j = 0; j < d; ++j) col_sq[j] += row[j] * row[j];
  }

  const double l1 = params_.alpha * static_cast<double>(n);
  iterations_ = 0;
  for (std::size_t it = 0; it < params_.max_iter; ++it) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (col_sq[j] == 0.0) continue;
      // rho_j = x_j' (r + w_j x_j)
      double rho = 0.0;
      for (std::size_t r = 0; r < n; ++r) rho += x(r, j) * residual[r];
      rho += coef_[j] * col_sq[j];
      const double w_new = soft_threshold(rho, l1) / col_sq[j];
      const double delta = w_new - coef_[j];
      if (delta != 0.0) {
        for (std::size_t r = 0; r < n; ++r) residual[r] -= delta * x(r, j);
        coef_[j] = w_new;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    // Re-fit the intercept against the current residual.
    double r_mean = 0.0;
    for (double v : residual) r_mean += v;
    r_mean /= static_cast<double>(n);
    if (r_mean != 0.0) {
      intercept_ += r_mean;
      for (double& v : residual) v -= r_mean;
      max_delta = std::max(max_delta, std::abs(r_mean));
    }
    iterations_ = it + 1;
    if (max_delta < params_.tol) break;
  }
  fitted_ = true;
}

double Lasso::predict_one(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("Lasso::predict before fit");
  if (x.size() != coef_.size()) throw std::invalid_argument("Lasso::predict: width");
  return intercept_ + dot(x, coef_);
}

std::string Lasso::serialize() const {
  if (!fitted_) throw std::logic_error("Lasso::serialize before fit");
  std::ostringstream oss;
  oss.precision(17);
  oss << "lasso v1 " << params_.alpha << ' ' << params_.tol << ' ' << params_.max_iter
      << ' ' << intercept_ << ' ' << coef_.size() << '\n';
  for (std::size_t i = 0; i < coef_.size(); ++i) {
    if (i != 0) oss << ' ';
    oss << coef_[i];
  }
  oss << '\n';
  return oss.str();
}

common::Result<Lasso> Lasso::deserialize(const std::string& text) {
  std::istringstream iss(text);
  std::string tag;
  std::string version;
  LassoParams params;
  double intercept = 0.0;
  std::size_t d = 0;
  if (!(iss >> tag >> version >> params.alpha >> params.tol >> params.max_iter >>
        intercept >> d) ||
      tag != "lasso" || version != "v1") {
    return common::parse_error("Lasso: bad header");
  }
  if (d > text.size()) {  // each coefficient needs at least two payload bytes
    return common::parse_error("Lasso: coefficient count exceeds payload size");
  }
  Lasso model(params);
  model.coef_.resize(d);
  for (auto& c : model.coef_) {
    if (!(iss >> c)) return common::parse_error("Lasso: truncated coefficients");
  }
  model.intercept_ = intercept;
  model.fitted_ = true;
  return model;
}

}  // namespace repro::ml
