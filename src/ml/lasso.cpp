#include "ml/lasso.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace repro::ml {

namespace {

double soft_threshold(double z, double t) noexcept {
  if (z > t) return z - t;
  if (z < -t) return z + t;
  return 0.0;
}

}  // namespace

void Lasso::fit(const Matrix& x, const std::vector<double>& y) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || y.size() != n) throw std::invalid_argument("Lasso::fit: shape");

  // Center the target; features are assumed roughly scaled (callers use the
  // MinMaxScaler). Intercept absorbs the target mean plus feature offsets.
  coef_.assign(d, 0.0);
  std::vector<double> residual(y);  // r = y − X w − b
  double y_mean = 0.0;
  for (double v : y) y_mean += v;
  y_mean /= static_cast<double>(n);
  intercept_ = y_mean;
  for (double& r : residual) r -= intercept_;

  // Per-feature squared norms for the coordinate updates.
  std::vector<double> col_sq(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t j = 0; j < d; ++j) col_sq[j] += row[j] * row[j];
  }

  const double l1 = params_.alpha * static_cast<double>(n);
  iterations_ = 0;
  for (std::size_t it = 0; it < params_.max_iter; ++it) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (col_sq[j] == 0.0) continue;
      // rho_j = x_j' (r + w_j x_j)
      double rho = 0.0;
      for (std::size_t r = 0; r < n; ++r) rho += x(r, j) * residual[r];
      rho += coef_[j] * col_sq[j];
      const double w_new = soft_threshold(rho, l1) / col_sq[j];
      const double delta = w_new - coef_[j];
      if (delta != 0.0) {
        for (std::size_t r = 0; r < n; ++r) residual[r] -= delta * x(r, j);
        coef_[j] = w_new;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    // Re-fit the intercept against the current residual.
    double r_mean = 0.0;
    for (double v : residual) r_mean += v;
    r_mean /= static_cast<double>(n);
    if (r_mean != 0.0) {
      intercept_ += r_mean;
      for (double& v : residual) v -= r_mean;
      max_delta = std::max(max_delta, std::abs(r_mean));
    }
    iterations_ = it + 1;
    if (max_delta < params_.tol) break;
  }
  fitted_ = true;
}

double Lasso::predict_one(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("Lasso::predict before fit");
  if (x.size() != coef_.size()) throw std::invalid_argument("Lasso::predict: width");
  return intercept_ + dot(x, coef_);
}

}  // namespace repro::ml
