#include "ml/registry.hpp"

#include <sstream>
#include <utility>

namespace repro::ml {

namespace {

/// Adapt a family deserializer returning Result<T> into one returning a
/// Result<unique_ptr<Regressor>>.
template <typename T>
common::Result<std::unique_ptr<Regressor>> lift(common::Result<T> result) {
  if (!result.ok()) return result.error();
  return std::unique_ptr<Regressor>(std::make_unique<T>(std::move(result).take()));
}

SvrParams svr_params_with_kernel(const RegressorParams& p, KernelFunction kernel) {
  SvrParams q = p.svr;
  q.kernel = kernel;
  return q;
}

/// "ols" and "ridge" share LinearRegression, whose serialized payload does
/// not record the family — restore it from the envelope key so a ridge
/// model with l2 = 0 still round-trips as "ridge".
RegressorRegistry::Deserializer linear_deserializer(std::string family) {
  return [family = std::move(family)](
             const std::string& text) -> common::Result<std::unique_ptr<Regressor>> {
    auto result = LinearRegression::deserialize(text);
    if (!result.ok()) return result.error();
    auto model = std::make_unique<LinearRegression>(std::move(result).take());
    model->set_family(family);
    return std::unique_ptr<Regressor>(std::move(model));
  };
}

}  // namespace

RegressorRegistry::RegressorRegistry() {
  register_family(
      "svr-linear",
      [](const RegressorParams& p) {
        return std::make_unique<Svr>(svr_params_with_kernel(p, KernelFunction::linear()));
      },
      [](const std::string& text) { return lift(Svr::deserialize(text)); });
  register_family(
      "svr-rbf",
      [](const RegressorParams& p) {
        return std::make_unique<Svr>(
            svr_params_with_kernel(p, KernelFunction::rbf(p.svr_rbf_gamma)));
      },
      [](const std::string& text) { return lift(Svr::deserialize(text)); });
  register_family(
      "svr-polynomial",
      [](const RegressorParams& p) {
        return std::make_unique<Svr>(svr_params_with_kernel(
            p, KernelFunction::polynomial(p.svr_poly_degree)));
      },
      [](const std::string& text) { return lift(Svr::deserialize(text)); });
  register_family(
      "ols",
      [](const RegressorParams&) { return std::make_unique<LinearRegression>(); },
      linear_deserializer("ols"));
  register_family(
      "ridge",
      [](const RegressorParams& p) {
        return std::make_unique<LinearRegression>("ridge", p.ridge_l2);
      },
      linear_deserializer("ridge"));
  register_family(
      "lasso",
      [](const RegressorParams& p) { return std::make_unique<Lasso>(p.lasso); },
      [](const std::string& text) { return lift(Lasso::deserialize(text)); });
  register_family(
      "poly",
      [](const RegressorParams& p) {
        return std::make_unique<PolynomialRegression>(p.poly);
      },
      [](const std::string& text) {
        return lift(PolynomialRegression::deserialize(text));
      });
}

RegressorRegistry& RegressorRegistry::instance() {
  static RegressorRegistry registry;
  return registry;
}

common::Status RegressorRegistry::register_family(const std::string& name, Factory factory,
                                                  Deserializer deserializer) {
  const auto [it, inserted] =
      entries_.emplace(name, Entry{std::move(factory), std::move(deserializer)});
  (void)it;
  if (!inserted) {
    return common::invalid_argument("regressor family already registered: " + name);
  }
  return common::Status::Ok();
}

bool RegressorRegistry::contains(const std::string& name) const {
  return entries_.contains(name);
}

std::vector<std::string> RegressorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

common::Result<std::unique_ptr<Regressor>> RegressorRegistry::make(
    const std::string& name, const RegressorParams& params) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return common::not_found("unknown regressor \"" + name + "\"; registered: " +
                             [this] {
                               std::string joined;
                               for (const auto& n : names()) {
                                 if (!joined.empty()) joined += ", ";
                                 joined += n;
                               }
                               return joined;
                             }());
  }
  return it->second.factory(params);
}

common::Result<std::unique_ptr<Regressor>> RegressorRegistry::deserialize(
    const std::string& name, const std::string& payload) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return common::not_found("unknown regressor family in model file: " + name);
  }
  return it->second.deserializer(payload);
}

common::Result<std::unique_ptr<Regressor>> make_regressor(const std::string& name,
                                                          const RegressorParams& params) {
  return RegressorRegistry::instance().make(name, params);
}

std::vector<std::string> registered_regressors() {
  return RegressorRegistry::instance().names();
}

std::string serialize_regressor(const Regressor& model) {
  return "regressor v1 " + model.name() + '\n' + model.serialize();
}

common::Result<std::unique_ptr<Regressor>> deserialize_regressor(const std::string& text) {
  const auto header_end = text.find('\n');
  if (header_end == std::string::npos) {
    return common::parse_error("regressor: missing envelope header");
  }
  std::istringstream header(text.substr(0, header_end));
  std::string tag;
  std::string version;
  std::string name;
  if (!(header >> tag >> version >> name) || tag != "regressor") {
    return common::parse_error("regressor: bad envelope header");
  }
  if (version != "v1") {
    return common::unsupported("regressor: unsupported envelope version " + version);
  }
  return RegressorRegistry::instance().deserialize(name, text.substr(header_end + 1));
}

}  // namespace repro::ml
