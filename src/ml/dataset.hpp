// Supervised-learning dataset: a feature matrix plus a target vector,
// with helpers for splitting and K-fold cross-validation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ml/matrix.hpp"

namespace repro::ml {

struct Dataset {
  Matrix x;                 // one sample per row
  std::vector<double> y;    // target, y.size() == x.rows()

  [[nodiscard]] std::size_t size() const noexcept { return x.rows(); }
  [[nodiscard]] std::size_t num_features() const noexcept { return x.cols(); }

  void add(std::span<const double> features, double target) {
    x.push_row(features);
    y.push_back(target);
  }

  /// Subset by row indices.
  [[nodiscard]] Dataset select(const std::vector<std::size_t>& indices) const;
};

/// Random train/test split; `test_fraction` in (0,1). Deterministic in seed.
[[nodiscard]] std::pair<Dataset, Dataset> train_test_split(const Dataset& d,
                                                           double test_fraction,
                                                           std::uint64_t seed);

/// K contiguous folds over a deterministic shuffle: returns per-fold
/// (train, validation) pairs.
[[nodiscard]] std::vector<std::pair<Dataset, Dataset>> k_fold(const Dataset& d,
                                                              std::size_t k,
                                                              std::uint64_t seed);

}  // namespace repro::ml
