#include "ml/model_selection.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/stats.hpp"
#include "common/strings.hpp"

namespace repro::ml {

double cross_val_rmse(const Dataset& data, std::size_t folds, std::uint64_t seed,
                      const std::function<std::unique_ptr<Regressor>()>& make_model) {
  const auto splits = k_fold(data, folds, seed);
  double sq_sum = 0.0;
  std::size_t count = 0;
  for (const auto& [train, val] : splits) {
    auto model = make_model();
    model->fit(train.x, train.y);
    const auto pred = model->predict(val.x);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      const double d = pred[i] - val.y[i];
      sq_sum += d * d;
    }
    count += pred.size();
  }
  if (count == 0) throw std::logic_error("cross_val_rmse: empty validation folds");
  return std::sqrt(sq_sum / static_cast<double>(count));
}

SelectionResult select_model(const Dataset& data, std::size_t folds, std::uint64_t seed,
                             const std::vector<Candidate>& candidates) {
  if (candidates.empty()) throw std::invalid_argument("select_model: no candidates");
  SelectionResult result;
  result.best_rmse = std::numeric_limits<double>::infinity();
  for (const auto& candidate : candidates) {
    const double rmse = cross_val_rmse(data, folds, seed, candidate.make);
    result.scores.emplace_back(candidate.name, rmse);
    if (rmse < result.best_rmse) {
      result.best_rmse = rmse;
      result.best_name = candidate.name;
    }
  }
  return result;
}

SelectionResult svr_rbf_grid_search(const Dataset& data, std::size_t folds,
                                    std::uint64_t seed, const std::vector<double>& c_grid,
                                    const std::vector<double>& gamma_grid,
                                    double epsilon) {
  std::vector<Candidate> candidates;
  for (double c : c_grid) {
    for (double gamma : gamma_grid) {
      SvrParams params;
      params.kernel = KernelFunction::rbf(gamma);
      params.c = c;
      params.epsilon = epsilon;
      candidates.push_back({"svr-rbf C=" + common::format_double(c, 0) +
                                " g=" + common::format_double(gamma, 3),
                            [params] { return std::make_unique<Svr>(params); }});
    }
  }
  return select_model(data, folds, seed, candidates);
}

}  // namespace repro::ml
