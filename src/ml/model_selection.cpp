#include "ml/model_selection.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace repro::ml {

double cross_val_rmse(const Dataset& data, std::size_t folds, std::uint64_t seed,
                      const std::function<std::unique_ptr<Regressor>()>& make_model) {
  const auto splits = k_fold(data, folds, seed);
  // Folds are independent fit/score problems — train them in parallel, one
  // partial (sq_sum, count) slot per fold, then reduce in fold order so the
  // result is bit-identical at any thread count.
  std::vector<double> fold_sq(splits.size(), 0.0);
  std::vector<std::size_t> fold_count(splits.size(), 0);
  common::ThreadPool::global().parallel_for(
      0, splits.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t f = lo; f < hi; ++f) {
          const auto& [train, val] = splits[f];
          auto model = make_model();
          model->fit(train.x, train.y);
          const auto pred = model->predict(val.x);
          double sq = 0.0;
          for (std::size_t i = 0; i < pred.size(); ++i) {
            const double d = pred[i] - val.y[i];
            sq += d * d;
          }
          fold_sq[f] = sq;
          fold_count[f] = pred.size();
        }
      });
  double sq_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t f = 0; f < splits.size(); ++f) {
    sq_sum += fold_sq[f];
    count += fold_count[f];
  }
  if (count == 0) throw std::logic_error("cross_val_rmse: empty validation folds");
  return std::sqrt(sq_sum / static_cast<double>(count));
}

SelectionResult select_model(const Dataset& data, std::size_t folds, std::uint64_t seed,
                             const std::vector<Candidate>& candidates) {
  if (candidates.empty()) throw std::invalid_argument("select_model: no candidates");
  SelectionResult result;
  result.best_rmse = std::numeric_limits<double>::infinity();
  for (const auto& candidate : candidates) {
    const double rmse = cross_val_rmse(data, folds, seed, candidate.make);
    result.scores.emplace_back(candidate.name, rmse);
    if (rmse < result.best_rmse) {
      result.best_rmse = rmse;
      result.best_name = candidate.name;
    }
  }
  return result;
}

SelectionResult svr_rbf_grid_search(const Dataset& data, std::size_t folds,
                                    std::uint64_t seed, const std::vector<double>& c_grid,
                                    const std::vector<double>& gamma_grid,
                                    double epsilon) {
  std::vector<Candidate> candidates;
  for (double c : c_grid) {
    for (double gamma : gamma_grid) {
      SvrParams params;
      params.kernel = KernelFunction::rbf(gamma);
      params.c = c;
      params.epsilon = epsilon;
      candidates.push_back({"svr-rbf C=" + common::format_double(c, 0) +
                                " g=" + common::format_double(gamma, 3),
                            [params] { return std::make_unique<Svr>(params); }});
    }
  }
  return select_model(data, folds, seed, candidates);
}

}  // namespace repro::ml
