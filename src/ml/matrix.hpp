/// \file matrix.hpp
/// \brief Dense row-major matrix — the only linear-algebra container the ML
/// library needs — plus the free-function inner kernels (dot,
/// squared_distance) every model bottoms out in.
///
/// Kept deliberately small: rows are contiguous so a sample is a
/// std::span<const double>. The inner kernels forward to the portable
/// common::simd layer and inherit its bit-determinism contract.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/simd.hpp"

namespace repro::ml {

/// \brief Dense row-major matrix of doubles.
///
/// Rows are contiguous, so `row(r)` hands out a borrowed
/// `std::span<const double>` — the representation every reduction in
/// common::simd consumes without copying.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer list (test convenience).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) noexcept { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const noexcept { return at(r, c); }

  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Append a row (must match cols, or set cols when the matrix is empty).
  void push_row(std::span<const double> row);

  /// Pre-allocate storage for `rows` rows of `cols` columns each — callers
  /// that know the final shape avoid reallocation churn in push_row loops.
  void reserve_rows(std::size_t rows, std::size_t cols) { data_.reserve(rows * cols); }

  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

  /// \brief Transpose (used by the normal-equation solvers). Tiled for
  /// cache friendliness: one operand is always walked along contiguous
  /// rows.
  [[nodiscard]] Matrix transposed() const;

  /// \brief `this * other` — blocked over a transposed copy of `other` so
  /// both inner operands stream contiguously, parallelized over row blocks
  /// of the output, with the common::simd dot micro-kernel innermost.
  ///
  /// Each output element accumulates over k in the fixed 4-lane order of
  /// the SIMD contract, so the result is bit-identical at any thread count
  /// and on either SIMD backend. \pre cols() == other.rows().
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// \brief `this * v` under the same determinism contract as the matrix
  /// overload. \pre v.size() == cols().
  [[nodiscard]] std::vector<double> multiply(std::span<const double> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// \brief Dot product of equal-length spans.
///
/// Forwards to common::simd::dot — vectorized under the fixed 4-lane
/// reduction contract, so the result is bit-identical whichever SIMD
/// backend is active (see src/common/simd.hpp and docs/DETERMINISM.md).
/// \pre a.size() == b.size().
[[nodiscard]] inline double dot(std::span<const double> a,
                                std::span<const double> b) noexcept {
  return common::simd::dot(a, b);
}

/// \brief Squared Euclidean distance of equal-length spans.
///
/// Forwards to common::simd::squared_distance under the same 4-lane
/// reduction contract as dot(). \pre a.size() == b.size().
[[nodiscard]] inline double squared_distance(std::span<const double> a,
                                             std::span<const double> b) noexcept {
  return common::simd::squared_distance(a, b);
}

/// Solve A x = b for symmetric positive-definite A via Cholesky.
/// Throws std::runtime_error when A is not SPD (within jitter tolerance).
[[nodiscard]] std::vector<double> solve_spd(Matrix a, std::vector<double> b);

}  // namespace repro::ml
