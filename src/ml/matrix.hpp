// Dense row-major matrix, the only linear-algebra container the ML library
// needs. Kept deliberately small: rows are contiguous so a sample is a
// std::span<const double>.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace repro::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer list (test convenience).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) noexcept { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const noexcept { return at(r, c); }

  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Append a row (must match cols, or set cols when the matrix is empty).
  void push_row(std::span<const double> row);

  /// Pre-allocate storage for `rows` rows of `cols` columns each — callers
  /// that know the final shape avoid reallocation churn in push_row loops.
  void reserve_rows(std::size_t rows, std::size_t cols) { data_.reserve(rows * cols); }

  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

  /// Transpose (used by the normal-equation solvers). Tiled for cache
  /// friendliness: one operand is always walked along contiguous rows.
  [[nodiscard]] Matrix transposed() const;

  /// this * other — blocked over a transposed copy of `other` so both inner
  /// operands stream contiguously, parallelized over row blocks of the
  /// output. Each output element accumulates over k in ascending order, so
  /// the result is bit-identical at any thread count.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// this * v  (v.size() == cols()).
  [[nodiscard]] std::vector<double> multiply(std::span<const double> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product of equal-length spans.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b) noexcept;

/// Squared Euclidean distance of equal-length spans.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b) noexcept;

/// Solve A x = b for symmetric positive-definite A via Cholesky.
/// Throws std::runtime_error when A is not SPD (within jitter tolerance).
[[nodiscard]] std::vector<double> solve_spd(Matrix a, std::vector<double> b);

}  // namespace repro::ml
