#include "ml/poly.hpp"

#include <sstream>
#include <stdexcept>

namespace repro::ml {

std::vector<double> PolynomialRegression::expand(std::span<const double> x) const {
  // Basis: [x_i] ∪ [x_i^k for k=2..degree] ∪ (optionally) [x_i x_j, i<j].
  std::vector<double> out(x.begin(), x.end());
  for (int k = 2; k <= params_.degree; ++k) {
    for (double v : x) {
      double p = v;
      for (int e = 1; e < k; ++e) p *= v;
      out.push_back(p);
    }
  }
  if (params_.interactions) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      for (std::size_t j = i + 1; j < x.size(); ++j) out.push_back(x[i] * x[j]);
    }
  }
  return out;
}

void PolynomialRegression::fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() == 0) throw std::invalid_argument("PolynomialRegression::fit: empty");
  input_dim_ = x.cols();
  linear_ = LinearRegression(params_.l2);
  Matrix expanded(0, 0);
  if (x.rows() > 0) expanded.reserve_rows(x.rows(), expand(x.row(0)).size());
  for (std::size_t r = 0; r < x.rows(); ++r) expanded.push_row(expand(x.row(r)));
  linear_.fit(expanded, y);
}

double PolynomialRegression::predict_one(std::span<const double> x) const {
  if (x.size() != input_dim_) throw std::invalid_argument("PolynomialRegression: width");
  const auto e = expand(x);
  return linear_.predict_one(e);
}

std::string PolynomialRegression::serialize() const {
  if (!fitted()) throw std::logic_error("PolynomialRegression::serialize before fit");
  std::ostringstream oss;
  oss.precision(17);
  oss << "poly v1 " << params_.degree << ' ' << params_.l2 << ' '
      << (params_.interactions ? 1 : 0) << ' ' << input_dim_ << '\n';
  oss << linear_.serialize();
  return oss.str();
}

common::Result<PolynomialRegression> PolynomialRegression::deserialize(
    const std::string& text) {
  const auto header_end = text.find('\n');
  if (header_end == std::string::npos) {
    return common::parse_error("PolynomialRegression: missing header");
  }
  std::istringstream iss(text.substr(0, header_end));
  std::string tag;
  std::string version;
  PolynomialParams params;
  int interactions = 0;
  std::size_t input_dim = 0;
  if (!(iss >> tag >> version >> params.degree >> params.l2 >> interactions >>
        input_dim) ||
      tag != "poly" || version != "v1") {
    return common::parse_error("PolynomialRegression: bad header");
  }
  params.interactions = interactions != 0;
  auto linear = LinearRegression::deserialize(text.substr(header_end + 1));
  if (!linear.ok()) return linear.error();

  PolynomialRegression model(params);
  model.linear_ = std::move(linear).take();
  model.input_dim_ = input_dim;
  return model;
}

}  // namespace repro::ml
