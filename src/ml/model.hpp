// Common regressor interface: every model in the library (SVR, OLS, ridge,
// LASSO, polynomial) trains from a Matrix + target vector and predicts a
// scalar per sample.
//
// Every concrete regressor also round-trips through a text serialization;
// `name()` doubles as the registry key (see ml/registry.hpp), which is what
// makes persistence polymorphic: a serialized model records its key and the
// registry dispatches deserialization to the right family.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace repro::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fit on training data; y.size() must equal x.rows().
  virtual void fit(const Matrix& x, const std::vector<double>& y) = 0;

  /// Predict a single sample (x.size() == num_features at fit time).
  [[nodiscard]] virtual double predict_one(std::span<const double> x) const = 0;

  /// Registry key of this model ("svr-linear", "ols", "lasso", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual bool fitted() const noexcept = 0;

  /// Family-specific text payload; restore with the family's deserializer or
  /// polymorphically via ml::deserialize_regressor (which adds a versioned
  /// envelope naming the family). Throws std::logic_error before fit().
  [[nodiscard]] virtual std::string serialize() const = 0;

  /// Batch prediction over one sample per row. The default implementation
  /// runs predict_one per row, parallelized over row blocks (each row writes
  /// its own output slot, so the result is bit-identical at any thread
  /// count). Families with a cheaper batch formulation override this — SVR
  /// evaluates all rows against the support-vector matrix in one blocked
  /// pass instead of per-point kernel loops.
  [[nodiscard]] virtual std::vector<double> predict(const Matrix& x) const;
};

}  // namespace repro::ml
