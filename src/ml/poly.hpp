// Polynomial regression: degree-d feature expansion followed by ridge-
// regularised least squares. The paper lists polynomial regression as the
// alternative it tried for the normalized-energy model (§3.4).
#pragma once

#include <string>
#include <vector>

#include "ml/linear.hpp"
#include "ml/model.hpp"

namespace repro::ml {

struct PolynomialParams {
  int degree = 2;
  double l2 = 1e-8;           // tiny ridge keeps the expanded design solvable
  bool interactions = true;   // include cross terms (x_i * x_j)
};

class PolynomialRegression final : public Regressor {
 public:
  PolynomialRegression() = default;
  explicit PolynomialRegression(PolynomialParams params) : params_(params) {}

  void fit(const Matrix& x, const std::vector<double>& y) override;
  [[nodiscard]] double predict_one(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return "poly"; }
  [[nodiscard]] bool fitted() const noexcept override { return linear_.fitted(); }

  /// Expand a sample into the polynomial basis (exposed for tests).
  [[nodiscard]] std::vector<double> expand(std::span<const double> x) const;

  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] static common::Result<PolynomialRegression> deserialize(
      const std::string& text);

 private:
  PolynomialParams params_;
  LinearRegression linear_{1e-8};
  std::size_t input_dim_ = 0;
};

}  // namespace repro::ml
