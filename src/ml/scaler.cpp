#include "ml/scaler.hpp"

#include <sstream>
#include <stdexcept>

namespace repro::ml {

void MinMaxScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("MinMaxScaler::fit: empty matrix");
  mins_.assign(x.cols(), 0.0);
  maxs_.assign(x.cols(), 0.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double lo = x(0, c);
    double hi = x(0, c);
    for (std::size_t r = 1; r < x.rows(); ++r) {
      lo = std::min(lo, x(r, c));
      hi = std::max(hi, x(r, c));
    }
    mins_[c] = lo;
    maxs_[c] = hi;
  }
}

std::vector<double> MinMaxScaler::transform(std::span<const double> row) const {
  if (row.size() != mins_.size()) throw std::invalid_argument("MinMaxScaler: width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    const double range = maxs_[c] - mins_[c];
    out[c] = range == 0.0 ? 0.0 : (row[c] - mins_[c]) / range;
  }
  return out;
}

Matrix MinMaxScaler::transform(const Matrix& x) const {
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto t = transform(x.row(r));
    for (std::size_t c = 0; c < x.cols(); ++c) out(r, c) = t[c];
  }
  return out;
}

Matrix MinMaxScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

std::vector<double> MinMaxScaler::inverse_transform(std::span<const double> row) const {
  if (row.size() != mins_.size()) throw std::invalid_argument("MinMaxScaler: width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = mins_[c] + row[c] * (maxs_[c] - mins_[c]);
  }
  return out;
}

std::string MinMaxScaler::serialize() const {
  std::ostringstream oss;
  oss.precision(17);
  oss << "minmax_scaler " << mins_.size() << '\n';
  for (std::size_t c = 0; c < mins_.size(); ++c) {
    oss << mins_[c] << ' ' << maxs_[c] << '\n';
  }
  return oss.str();
}

common::Result<MinMaxScaler> MinMaxScaler::deserialize(const std::string& text) {
  std::istringstream iss(text);
  std::string tag;
  std::size_t n = 0;
  if (!(iss >> tag >> n) || tag != "minmax_scaler") {
    return common::parse_error("MinMaxScaler: bad header");
  }
  MinMaxScaler s;
  s.mins_.resize(n);
  s.maxs_.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    if (!(iss >> s.mins_[c] >> s.maxs_[c])) {
      return common::parse_error("MinMaxScaler: truncated body");
    }
  }
  return s;
}

}  // namespace repro::ml
