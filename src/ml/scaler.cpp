#include "ml/scaler.hpp"

#include <sstream>
#include <stdexcept>

#include "common/simd.hpp"

namespace repro::ml {

void MinMaxScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("MinMaxScaler::fit: empty matrix");
  // Row-major sweep: initialise from row 0, then fold each row in with the
  // SIMD element-wise min/max. Column c still sees its values in ascending
  // row order, so the result matches the column-at-a-time scan bit for bit
  // while streaming the matrix contiguously once.
  mins_.assign(x.row(0).begin(), x.row(0).end());
  maxs_.assign(x.row(0).begin(), x.row(0).end());
  for (std::size_t r = 1; r < x.rows(); ++r) {
    common::simd::update_min_max(mins_, maxs_, x.row(r));
  }
}

std::vector<double> MinMaxScaler::transform(std::span<const double> row) const {
  if (row.size() != mins_.size()) throw std::invalid_argument("MinMaxScaler: width mismatch");
  std::vector<double> out(row.size());
  common::simd::min_max_transform(out, row, mins_, maxs_);
  return out;
}

Matrix MinMaxScaler::transform(const Matrix& x) const {
  if (x.cols() != mins_.size()) throw std::invalid_argument("MinMaxScaler: width mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    common::simd::min_max_transform(out.row(r), x.row(r), mins_, maxs_);
  }
  return out;
}

Matrix MinMaxScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

std::vector<double> MinMaxScaler::inverse_transform(std::span<const double> row) const {
  if (row.size() != mins_.size()) throw std::invalid_argument("MinMaxScaler: width mismatch");
  std::vector<double> out(row.size());
  common::simd::min_max_inverse(out, row, mins_, maxs_);
  return out;
}

std::string MinMaxScaler::serialize() const {
  std::ostringstream oss;
  oss.precision(17);
  oss << "minmax_scaler " << mins_.size() << '\n';
  for (std::size_t c = 0; c < mins_.size(); ++c) {
    oss << mins_[c] << ' ' << maxs_[c] << '\n';
  }
  return oss.str();
}

common::Result<MinMaxScaler> MinMaxScaler::deserialize(const std::string& text) {
  std::istringstream iss(text);
  std::string tag;
  std::size_t n = 0;
  if (!(iss >> tag >> n) || tag != "minmax_scaler") {
    return common::parse_error("MinMaxScaler: bad header");
  }
  if (n > text.size()) {  // each column needs at least four payload bytes
    return common::parse_error("MinMaxScaler: column count exceeds payload size");
  }
  MinMaxScaler s;
  s.mins_.resize(n);
  s.maxs_.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    if (!(iss >> s.mins_[c] >> s.maxs_[c])) {
      return common::parse_error("MinMaxScaler: truncated body");
    }
  }
  return s;
}

}  // namespace repro::ml
