// Hyper-parameter selection via K-fold cross-validation — the machinery
// behind the paper's §3.4 statement that several regression models were
// tried and SVR kept "because of the more accurate results".
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "ml/svr.hpp"

namespace repro::ml {

/// Cross-validated RMSE of a model factory on a dataset.
/// `make_model` is invoked once per fold with a fresh regressor; folds are
/// trained in parallel on the global thread pool (so `make_model` and the
/// regressors it builds must not share mutable state) and reduced in fold
/// order — the score is bit-identical at any thread count.
[[nodiscard]] double cross_val_rmse(const Dataset& data, std::size_t folds,
                                    std::uint64_t seed,
                                    const std::function<std::unique_ptr<Regressor>()>&
                                        make_model);

/// One candidate in a model-selection sweep.
struct Candidate {
  std::string name;
  std::function<std::unique_ptr<Regressor>()> make;
};

struct SelectionResult {
  std::string best_name;
  double best_rmse = 0.0;
  std::vector<std::pair<std::string, double>> scores;  // name -> CV RMSE
};

/// Score every candidate with K-fold CV and pick the best (lowest RMSE).
[[nodiscard]] SelectionResult select_model(const Dataset& data, std::size_t folds,
                                           std::uint64_t seed,
                                           const std::vector<Candidate>& candidates);

/// Convenience: SVR grid over (C, gamma) for an RBF kernel.
[[nodiscard]] SelectionResult svr_rbf_grid_search(const Dataset& data, std::size_t folds,
                                                  std::uint64_t seed,
                                                  const std::vector<double>& c_grid,
                                                  const std::vector<double>& gamma_grid,
                                                  double epsilon = 0.1);

}  // namespace repro::ml
