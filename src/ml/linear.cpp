#include "ml/linear.hpp"

#include <sstream>
#include <stdexcept>

namespace repro::ml {

void LinearRegression::fit(const Matrix& x, const std::vector<double>& y) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || y.size() != n) throw std::invalid_argument("LinearRegression::fit: shape");

  // Augmented design [X | 1]; normal equations A w = b with
  // A = X'X + l2*I (intercept unpenalised), b = X'y.
  const std::size_t da = d + 1;
  Matrix a(da, da);
  std::vector<double> b(da, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i; j < d; ++j) a(i, j) += row[i] * row[j];
      a(i, d) += row[i];
      b[i] += row[i] * y[r];
    }
    a(d, d) += 1.0;
    b[d] += y[r];
  }
  for (std::size_t i = 0; i < d; ++i) {
    a(i, i) += l2_;
    for (std::size_t j = 0; j < i; ++j) a(i, j) = a(j, i);
  }
  for (std::size_t j = 0; j < d; ++j) a(d, j) = a(j, d);

  // Small ridge jitter keeps rank-deficient designs solvable for OLS too.
  if (l2_ == 0.0) {
    for (std::size_t i = 0; i < da; ++i) a(i, i) += 1e-10;
  }

  const auto w = solve_spd(a, b);
  coef_.assign(w.begin(), w.begin() + static_cast<long>(d));
  intercept_ = w[d];
  fitted_ = true;
}

double LinearRegression::predict_one(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("LinearRegression::predict before fit");
  if (x.size() != coef_.size())
    throw std::invalid_argument("LinearRegression::predict: width mismatch");
  return intercept_ + dot(x, coef_);
}

std::string LinearRegression::serialize() const {
  if (!fitted_) throw std::logic_error("LinearRegression::serialize before fit");
  std::ostringstream oss;
  oss.precision(17);
  oss << "linear v1 " << l2_ << ' ' << intercept_ << ' ' << coef_.size() << '\n';
  for (std::size_t i = 0; i < coef_.size(); ++i) {
    if (i != 0) oss << ' ';
    oss << coef_[i];
  }
  oss << '\n';
  return oss.str();
}

common::Result<LinearRegression> LinearRegression::deserialize(const std::string& text) {
  std::istringstream iss(text);
  std::string tag;
  std::string version;
  double l2 = 0.0;
  double intercept = 0.0;
  std::size_t d = 0;
  if (!(iss >> tag >> version >> l2 >> intercept >> d) || tag != "linear" ||
      version != "v1") {
    return common::parse_error("LinearRegression: bad header");
  }
  if (d > text.size()) {  // each coefficient needs at least two payload bytes
    return common::parse_error("LinearRegression: coefficient count exceeds payload size");
  }
  LinearRegression model(l2);
  model.coef_.resize(d);
  for (auto& c : model.coef_) {
    if (!(iss >> c)) return common::parse_error("LinearRegression: truncated coefficients");
  }
  model.intercept_ = intercept;
  model.fitted_ = true;
  return model;
}

}  // namespace repro::ml
