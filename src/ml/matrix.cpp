#include "ml/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace repro::ml {

namespace {

/// Square tile edge for transpose/multiply blocking: 64 doubles = 4 KiB per
/// tile row set, comfortably inside L1 alongside the destination tile.
constexpr std::size_t kTile = 64;

/// Row-block grain for parallel loops over output rows.
constexpr std::size_t kRowGrain = 16;

/// Below this many multiply-accumulates a fan-out costs more than the whole
/// product (queue push + latch per chunk is ~microseconds; 2^18 MACs is
/// tens of microseconds of arithmetic). The serial path runs the identical
/// body over the full row range, so the output bits cannot change.
constexpr std::size_t kSerialMultiplyWork = 1u << 18;

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::push_row(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  } else if (row.size() != cols_) {
    throw std::invalid_argument("Matrix::push_row: width mismatch");
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  // Tiled: both source reads and destination writes stay within a
  // kTile x kTile block, so one of the two access patterns is always
  // cache-resident instead of striding the full row length.
  for (std::size_t rb = 0; rb < rows_; rb += kTile) {
    const std::size_t r_hi = std::min(rows_, rb + kTile);
    for (std::size_t cb = 0; cb < cols_; cb += kTile) {
      const std::size_t c_hi = std::min(cols_, cb + kTile);
      for (std::size_t r = rb; r < r_hi; ++r) {
        for (std::size_t c = cb; c < c_hi; ++c) t(c, r) = at(r, c);
      }
    }
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, other.cols_);
  // out(i, j) = <row_i(A), row_j(B^T)>: transposing B up front turns the
  // inner loop into two contiguous streams that the SIMD dot micro-kernel
  // consumes directly. Each element accumulates over k ascending in the
  // fixed 4-lane layout of common::simd, regardless of blocking, thread
  // count or SIMD backend — the same bits every time.
  const Matrix bt = other.transposed();
  const std::size_t out_cols = other.cols_;
  const auto body = [&](std::size_t i_lo, std::size_t i_hi) {
    for (std::size_t jb = 0; jb < out_cols; jb += kTile) {
      const std::size_t j_hi = std::min(out_cols, jb + kTile);
      for (std::size_t i = i_lo; i < i_hi; ++i) {
        common::simd::dot_rows({&out(i, jb), j_hi - jb}, row(i),
                               bt.row(jb).data(), bt.cols_);
      }
    }
  };
  if (rows_ * out_cols * cols_ < kSerialMultiplyWork) {
    body(0, rows_);
  } else {
    common::ThreadPool::global().parallel_for(0, rows_, kRowGrain, body);
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  if (v.size() != cols_) throw std::invalid_argument("Matrix::multiply(v): shape mismatch");
  std::vector<double> out(rows_, 0.0);
  // dot(row, v) == dot(v, row) bit for bit: the per-lane products are the
  // same values and the reduction order is fixed by the contract.
  common::simd::dot_rows(out, v, data_.data(), cols_);
  return out;
}

std::vector<double> solve_spd(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) throw std::invalid_argument("solve_spd: shape");

  // In-place Cholesky A = L L^T with small diagonal jitter for robustness.
  constexpr double kJitter = 1e-10;
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j) + kJitter;
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0) throw std::runtime_error("solve_spd: matrix not positive definite");
    a(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / a(j, j);
    }
  }
  // Forward solve L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a(i, k) * b[k];
    b[i] = s / a(i, i);
  }
  // Backward solve L^T x = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a(k, ii) * b[k];
    b[ii] = s / a(ii, ii);
  }
  return b;
}

}  // namespace repro::ml
