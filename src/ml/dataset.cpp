#include "ml/dataset.hpp"

#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace repro::ml {

Dataset Dataset::select(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.x = Matrix(0, 0);
  for (std::size_t idx : indices) {
    if (idx >= size()) throw std::out_of_range("Dataset::select: index");
    out.add(x.row(idx), y[idx]);
  }
  return out;
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& d, double test_fraction,
                                             std::uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0)
    throw std::invalid_argument("train_test_split: fraction out of (0,1)");
  std::vector<std::size_t> order(d.size());
  std::iota(order.begin(), order.end(), 0);
  common::Xoshiro256 rng(seed);
  rng.shuffle(order);
  const auto n_test = static_cast<std::size_t>(test_fraction * static_cast<double>(d.size()));
  std::vector<std::size_t> test_idx(order.begin(), order.begin() + static_cast<long>(n_test));
  std::vector<std::size_t> train_idx(order.begin() + static_cast<long>(n_test), order.end());
  return {d.select(train_idx), d.select(test_idx)};
}

std::vector<std::pair<Dataset, Dataset>> k_fold(const Dataset& d, std::size_t k,
                                                std::uint64_t seed) {
  if (k < 2 || k > d.size()) throw std::invalid_argument("k_fold: bad k");
  std::vector<std::size_t> order(d.size());
  std::iota(order.begin(), order.end(), 0);
  common::Xoshiro256 rng(seed);
  rng.shuffle(order);

  std::vector<std::pair<Dataset, Dataset>> folds;
  folds.reserve(k);
  const std::size_t base = d.size() / k;
  const std::size_t extra = d.size() % k;
  std::size_t start = 0;
  for (std::size_t f = 0; f < k; ++f) {
    const std::size_t len = base + (f < extra ? 1 : 0);
    std::vector<std::size_t> val_idx(order.begin() + static_cast<long>(start),
                                     order.begin() + static_cast<long>(start + len));
    std::vector<std::size_t> train_idx;
    train_idx.reserve(d.size() - len);
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (i < start || i >= start + len) train_idx.push_back(order[i]);
    }
    folds.emplace_back(d.select(train_idx), d.select(val_idx));
    start += len;
  }
  return folds;
}

}  // namespace repro::ml
