// Min–max feature scaling to [0, 1], the normalization the paper applies to
// feature vectors before training (§3.2: "The frequency values ... are both
// linearly mapped into the interval [0, 1]").
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ml/matrix.hpp"

namespace repro::ml {

class MinMaxScaler {
 public:
  MinMaxScaler() = default;

  /// Learn per-column minima/maxima. Constant columns map to 0.
  void fit(const Matrix& x);

  [[nodiscard]] bool fitted() const noexcept { return !mins_.empty(); }
  [[nodiscard]] std::size_t num_features() const noexcept { return mins_.size(); }

  [[nodiscard]] std::vector<double> transform(std::span<const double> row) const;
  [[nodiscard]] Matrix transform(const Matrix& x) const;
  [[nodiscard]] Matrix fit_transform(const Matrix& x);

  /// Inverse map for a single row (used in tests).
  [[nodiscard]] std::vector<double> inverse_transform(std::span<const double> row) const;

  [[nodiscard]] const std::vector<double>& mins() const noexcept { return mins_; }
  [[nodiscard]] const std::vector<double>& maxs() const noexcept { return maxs_; }

  /// Text serialisation (one line per field), for model persistence.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static common::Result<MinMaxScaler> deserialize(const std::string& text);

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace repro::ml
