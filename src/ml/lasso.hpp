// LASSO (L1-penalised least squares) trained with cyclic coordinate descent
// and soft-thresholding. One of the speedup-model baselines from §3.4.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "ml/model.hpp"

namespace repro::ml {

struct LassoParams {
  double alpha = 0.01;     // L1 strength
  double tol = 1e-7;       // max coefficient change to declare convergence
  std::size_t max_iter = 10'000;
};

class Lasso final : public Regressor {
 public:
  Lasso() = default;
  explicit Lasso(LassoParams params) : params_(params) {}

  void fit(const Matrix& x, const std::vector<double>& y) override;
  [[nodiscard]] double predict_one(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return "lasso"; }
  [[nodiscard]] bool fitted() const noexcept override { return fitted_; }

  [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return coef_; }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }
  [[nodiscard]] std::size_t iterations_used() const noexcept { return iterations_; }

  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] static common::Result<Lasso> deserialize(const std::string& text);

 private:
  LassoParams params_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  std::size_t iterations_ = 0;
  bool fitted_ = false;
};

}  // namespace repro::ml
