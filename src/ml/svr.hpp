// ε-insensitive Support Vector Regression trained with an SMO solver
// (sequential minimal optimization with maximal-violating-pair working-set
// selection, LIBSVM-style formulation).
//
// The paper (§3.4) uses two SVR instances:
//   * speedup model:            linear kernel, C = 1000, ε = 0.1
//   * normalized-energy model:  RBF kernel, γ = 0.1, C = 1000, ε = 0.1
//
// The dual problem for ε-SVR over n samples is expressed with 2n box-
// constrained variables β (the first n play the role of α, the last n of α*)
// subject to Σ y_s β_s = 0 with labels y_s = +1 (s < n) / −1 (s ≥ n).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ml/kernel.hpp"
#include "ml/model.hpp"

namespace repro::ml {

/// \brief Dense symmetric kernel matrix over the rows of `x`, row-major
/// float storage of size rows² — the SVR training-cache fill.
///
/// This is the production build path (batched SIMD evaluate_row per row,
/// block-tiled mirror writes, parallel over the thread pool, and
/// bit-deterministic at any thread count or SIMD backend); exposed so
/// benchmarks and tests measure the real algorithm instead of a copy.
[[nodiscard]] std::vector<float> build_kernel_matrix_f32(const Matrix& x,
                                                         const KernelFunction& kernel);

struct SvrParams {
  KernelFunction kernel = KernelFunction::linear();
  double c = 1000.0;       // box constraint (paper: C = 1000)
  double epsilon = 0.1;    // ε-insensitive tube (paper: ε = 0.1)
  double tol = 1e-3;       // KKT violation stopping tolerance
  std::int64_t max_iter = 2'000'000;  // safety cap for the SMO loop
  /// Ridge added to the kernel diagonal during training. The training sets
  /// of this domain contain near-duplicate rows (one kernel sampled at many
  /// configurations), which makes Q singular — especially with the linear
  /// kernel, whose rank is bounded by the feature dimension — and SMO
  /// convergence pathologically slow at C = 1000. A small jitter restores
  /// strict positive-definiteness at negligible cost to the fit.
  double diag_jitter = 0.05;
};

/// Result diagnostics of a training run.
struct SvrTrainingInfo {
  std::int64_t iterations = 0;
  bool converged = false;
  std::size_t support_vectors = 0;
};

class Svr final : public Regressor {
 public:
  Svr() = default;
  explicit Svr(SvrParams params) : params_(params) {}

  void fit(const Matrix& x, const std::vector<double>& y) override;
  [[nodiscard]] double predict_one(std::span<const double> x) const override;
  /// Batch override: evaluates every row of `x` against the support-vector
  /// matrix in one blocked pass (parallelized over rows). Per row, kernel
  /// contributions accumulate in support-vector order, so the result is
  /// bit-identical to predict_one at any thread count.
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool fitted() const noexcept override { return fitted_; }

  [[nodiscard]] const SvrParams& params() const noexcept { return params_; }
  [[nodiscard]] const SvrTrainingInfo& training_info() const noexcept { return info_; }
  [[nodiscard]] double bias() const noexcept { return b_; }
  [[nodiscard]] std::size_t num_support_vectors() const noexcept { return sv_.rows(); }

  /// Text round-trip for model persistence.
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] static common::Result<Svr> deserialize(const std::string& text);

 private:
  SvrParams params_;
  SvrTrainingInfo info_;
  Matrix sv_;                      // support vectors, one per row
  std::vector<double> sv_coef_;    // α_i − α_i* per support vector
  double b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace repro::ml
