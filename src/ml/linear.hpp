// Linear least-squares regressors: OLS and ridge (Tikhonov) regression via
// normal equations + Cholesky. These are the baselines the paper reports
// having tried against SVR for speedup modeling (§3.4).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "ml/model.hpp"

namespace repro::ml {

/// Ordinary least squares with intercept. With `l2` > 0 this becomes ridge
/// regression (the intercept is never penalised).
class LinearRegression final : public Regressor {
 public:
  LinearRegression() = default;
  explicit LinearRegression(double l2) : LinearRegression(l2 > 0.0 ? "ridge" : "ols", l2) {}
  LinearRegression(std::string family, double l2) : l2_(l2), family_(std::move(family)) {}

  void fit(const Matrix& x, const std::vector<double>& y) override;
  [[nodiscard]] double predict_one(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return family_; }
  /// The registry key this model was constructed under. Must track the key
  /// even when it cannot be derived from the parameters (ridge with l2 = 0),
  /// or cache-key comparisons and serialized envelopes get the wrong family.
  void set_family(std::string family) { family_ = std::move(family); }
  [[nodiscard]] bool fitted() const noexcept override { return fitted_; }

  [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return coef_; }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }

  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] static common::Result<LinearRegression> deserialize(const std::string& text);

 private:
  double l2_ = 0.0;
  std::string family_ = "ols";
  std::vector<double> coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace repro::ml
