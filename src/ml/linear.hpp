// Linear least-squares regressors: OLS and ridge (Tikhonov) regression via
// normal equations + Cholesky. These are the baselines the paper reports
// having tried against SVR for speedup modeling (§3.4).
#pragma once

#include <string>
#include <vector>

#include "ml/model.hpp"

namespace repro::ml {

/// Ordinary least squares with intercept. With `l2` > 0 this becomes ridge
/// regression (the intercept is never penalised).
class LinearRegression final : public Regressor {
 public:
  LinearRegression() = default;
  explicit LinearRegression(double l2) : l2_(l2) {}

  void fit(const Matrix& x, const std::vector<double>& y) override;
  [[nodiscard]] double predict_one(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override {
    return l2_ > 0.0 ? "ridge" : "ols";
  }
  [[nodiscard]] bool fitted() const noexcept override { return fitted_; }

  [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return coef_; }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }

 private:
  double l2_ = 0.0;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace repro::ml
