// Per-request tracing: a 64-bit trace id plus per-stage monotonic
// timestamps, carried on the wire when (and only when) the client asked
// for it. Each hop stamps stages against its own steady_clock t0, so
// offsets are per-hop microseconds — clock domains are never merged
// across processes (docs/OBSERVABILITY.md covers reading a merged
// trace). Requests without a trace id pay nothing: the shared_ptr stays
// null and every stamp site is one pointer test.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace repro::obs {

/// One stamped stage: name plus µs elapsed since the owning hop's t0.
struct TraceStage {
  std::string stage;
  double us = 0.0;
};

/// The wire form of a trace: id plus the accumulated stages.
struct Trace {
  std::uint64_t id = 0;
  std::vector<TraceStage> stages;
};

/// Mutable per-request trace, shared between the connection reader, the
/// service pipeline, and the reply writer. The mutex is only ever taken
/// for requests that asked to be traced, so it costs untraced traffic
/// nothing.
class RequestTrace {
 public:
  explicit RequestTrace(std::uint64_t id)
      : id_(id), t0_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Record `stage` at now() - t0, in µs.
  void stamp(std::string_view stage);

  /// Splice in stages received from another hop (kept in their order,
  /// with their own time base).
  void append(const std::vector<TraceStage>& stages);

  [[nodiscard]] Trace snapshot() const;

 private:
  std::uint64_t id_;
  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mutex_;
  std::vector<TraceStage> stages_;
};

using RequestTracePtr = std::shared_ptr<RequestTrace>;

/// stamp() through a possibly-null trace pointer — the universal call
/// site form.
inline void stamp(const RequestTracePtr& trace, std::string_view stage) {
  if (trace) trace->stamp(stage);
}

/// Render a trace as an aligned "stage / us" table for failure reports
/// (repro_serve_client --trace, chaos/fleet script failure paths).
[[nodiscard]] std::string format_trace_table(const Trace& trace);

}  // namespace repro::obs
