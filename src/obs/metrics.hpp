// Low-overhead metrics registry: sharded relaxed-atomic counters, gauges
// (stored or callback), and fixed log-bucket latency histograms whose
// p50/p95/p99/max are derivable at snapshot time without storing samples.
// Hot-path cost is one relaxed atomic add per event; snapshots never stop
// writers. Instruments are registered by name and owned by a Registry
// (usually Registry::global()); callers cache the returned pointers at
// construction so the name lookup happens once.
//
// Building with -DREPRO_OBS=OFF defines REPRO_OBS_DISABLED and compiles
// every hot-path operation down to nothing — that build is the baseline
// the obs-overhead perf case compares against (docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace repro::obs {

/// Global runtime kill switch. Defaults to on; the disabled path is one
/// relaxed load per event. (REPRO_OBS_DISABLED removes even that.)
void set_enabled(bool on) noexcept;
[[nodiscard]] bool enabled() noexcept;

namespace detail {
/// Stable small integer for the calling thread, used to pick a counter
/// shard. Dense (an incrementing counter, not a hash of thread::id), so
/// a handful of threads spread over distinct shards.
[[nodiscard]] std::size_t thread_slot() noexcept;
}  // namespace detail

/// Monotonic counter, sharded across cache lines so concurrent writers
/// on different threads do not bounce one line.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void inc(std::uint64_t delta = 1) noexcept {
#if !defined(REPRO_OBS_DISABLED)
    if (!enabled()) return;
    shards_[detail::thread_slot() & (kShards - 1)].cell.fetch_add(
        delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.cell.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> cell{0};
  };
  Shard shards_[kShards];
};

/// Last-value gauge (stored form; callback gauges live on the Registry).
class Gauge {
 public:
  void set(double v) noexcept {
#if !defined(REPRO_OBS_DISABLED)
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency histogram over fixed log2 buckets of microseconds: bucket i
/// counts samples in [2^i, 2^(i+1)) µs (bucket 0 also takes < 1 µs).
/// Quantiles are read off the bucket counts at snapshot time — an upper
/// bound within 2x of the true sample, which is the standard trade for
/// not storing samples. Recording is one relaxed add plus a relaxed
/// count/sum update and a CAS-loop max.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void observe_us(double us) noexcept;

  struct Snapshot {
    std::uint64_t buckets[kBuckets] = {};
    std::uint64_t count = 0;
    double sum_us = 0.0;
    double max_us = 0.0;

    /// Upper edge (in µs) of the bucket holding quantile q in [0, 1].
    [[nodiscard]] double quantile_us(double q) const noexcept;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;

  /// Upper edge of bucket i in µs (2^(i+1), capped for the last bucket).
  [[nodiscard]] static double bucket_upper_us(std::size_t i) noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};  // integral ns: relaxed add stays exact
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Named instruments, snapshot-able while writers run. Registration and
/// snapshotting take a mutex; inc()/set()/observe_us() never do. Entries
/// live in deques so pointers handed out stay valid for the Registry's
/// lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Look up or create. Repeated calls with one name return one instrument.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);
  /// Callback gauge: fn() is evaluated at snapshot time (e.g. queue depth).
  void gauge_fn(std::string_view name, std::function<double()> fn);

  /// Flat name -> value view. Histograms expand to `<name>_count`,
  /// `<name>_sum_us`, `<name>_p50_us`, `<name>_p95_us`, `<name>_p99_us`,
  /// `<name>_max_us`. Names come out sorted.
  [[nodiscard]] std::vector<std::pair<std::string, double>> snapshot_values() const;

  /// Prometheus text exposition: `name value` lines, histograms as
  /// cumulative `<name>_bucket{le="..."}` series plus _count/_sum.
  [[nodiscard]] std::string prometheus_text() const;

  /// Process-wide default registry (what a null `registry` option means).
  static Registry& global();

 private:
  struct Named {
    std::string name;
  };
  struct NamedCounter : Named {
    Counter counter;
  };
  struct NamedGauge : Named {
    Gauge gauge;
  };
  struct NamedGaugeFn : Named {
    std::function<double()> fn;
  };
  struct NamedHistogram : Named {
    Histogram histogram;
  };

  mutable std::mutex mutex_;
  std::deque<NamedCounter> counters_;
  std::deque<NamedGauge> gauges_;
  std::deque<NamedGaugeFn> gauge_fns_;
  std::deque<NamedHistogram> histograms_;
};

}  // namespace repro::obs
