#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace repro::obs {

void RequestTrace::stamp(std::string_view stage) {
  const auto now = std::chrono::steady_clock::now();
  const double us =
      std::chrono::duration<double, std::micro>(now - t0_).count();
  const std::lock_guard<std::mutex> lock(mutex_);
  stages_.push_back(TraceStage{std::string(stage), us});
}

void RequestTrace::append(const std::vector<TraceStage>& stages) {
  const std::lock_guard<std::mutex> lock(mutex_);
  stages_.insert(stages_.end(), stages.begin(), stages.end());
}

Trace RequestTrace::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Trace t;
  t.id = id_;
  t.stages = stages_;
  return t;
}

std::string format_trace_table(const Trace& trace) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "trace %016llx\n",
                static_cast<unsigned long long>(trace.id));
  out += line;
  std::size_t width = 5;  // "stage"
  for (const TraceStage& s : trace.stages) {
    width = std::max(width, s.stage.size());
  }
  for (const TraceStage& s : trace.stages) {
    std::snprintf(line, sizeof(line), "  %-*s %12.1f us\n",
                  static_cast<int>(width), s.stage.c_str(), s.us);
    out += line;
  }
  if (trace.stages.empty()) out += "  (no stages)\n";
  return out;
}

}  // namespace repro::obs
