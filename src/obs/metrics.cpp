#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace repro::obs {

namespace {

std::atomic<bool> g_enabled{true};

void append_number(std::string& out, double v) {
  std::array<char, 64> buf;
  const auto [ptr, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec == std::errc()) {
    out.append(buf.data(), static_cast<std::size_t>(ptr - buf.data()));
  } else {
    out += "0";
  }
}

}  // namespace

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

namespace detail {

std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

void Histogram::observe_us(double us) noexcept {
#if !defined(REPRO_OBS_DISABLED)
  if (!enabled()) return;
  if (!(us >= 0.0)) us = 0.0;  // also catches NaN
  // Bucket i covers [2^i, 2^(i+1)) µs; sub-µs samples land in bucket 0.
  const auto whole_us = static_cast<std::uint64_t>(us);
  std::size_t bucket = 0;
  if (whole_us >= 1) {
    bucket = 63u - static_cast<std::size_t>(__builtin_clzll(whole_us));
    bucket = std::min(bucket, kBuckets - 1);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const auto ns = static_cast<std::uint64_t>(us * 1000.0);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
#else
  (void)us;
#endif
}

double Histogram::bucket_upper_us(std::size_t i) noexcept {
  return std::ldexp(1.0, static_cast<int>(i) + 1);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot snap;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_us =
      static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1000.0;
  snap.max_us =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1000.0;
  return snap;
}

double Histogram::Snapshot::quantile_us(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Upper bucket edge, but never past the observed maximum.
      return std::min(Histogram::bucket_upper_us(i), max_us);
    }
  }
  return max_us;
}

Counter* Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (NamedCounter& c : counters_) {
    if (c.name == name) return &c.counter;
  }
  counters_.emplace_back();
  counters_.back().name.assign(name);
  return &counters_.back().counter;
}

Gauge* Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (NamedGauge& g : gauges_) {
    if (g.name == name) return &g.gauge;
  }
  gauges_.emplace_back();
  gauges_.back().name.assign(name);
  return &gauges_.back().gauge;
}

Histogram* Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (NamedHistogram& h : histograms_) {
    if (h.name == name) return &h.histogram;
  }
  histograms_.emplace_back();
  histograms_.back().name.assign(name);
  return &histograms_.back().histogram;
}

void Registry::gauge_fn(std::string_view name, std::function<double()> fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (NamedGaugeFn& g : gauge_fns_) {
    if (g.name == name) {
      g.fn = std::move(fn);
      return;
    }
  }
  gauge_fns_.emplace_back();
  gauge_fns_.back().name.assign(name);
  gauge_fns_.back().fn = std::move(fn);
}

std::vector<std::pair<std::string, double>> Registry::snapshot_values() const {
  std::vector<std::pair<std::string, double>> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const NamedCounter& c : counters_) {
      out.emplace_back(c.name, static_cast<double>(c.counter.value()));
    }
    for (const NamedGauge& g : gauges_) {
      out.emplace_back(g.name, g.gauge.value());
    }
    for (const NamedGaugeFn& g : gauge_fns_) {
      out.emplace_back(g.name, g.fn ? g.fn() : 0.0);
    }
    for (const NamedHistogram& h : histograms_) {
      const Histogram::Snapshot snap = h.histogram.snapshot();
      out.emplace_back(h.name + "_count", static_cast<double>(snap.count));
      out.emplace_back(h.name + "_sum_us", snap.sum_us);
      out.emplace_back(h.name + "_p50_us", snap.quantile_us(0.50));
      out.emplace_back(h.name + "_p95_us", snap.quantile_us(0.95));
      out.emplace_back(h.name + "_p99_us", snap.quantile_us(0.99));
      out.emplace_back(h.name + "_max_us", snap.max_us);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string Registry::prometheus_text() const {
  std::string out;
  for (const auto& [name, value] : snapshot_values()) {
    out += name;
    out += ' ';
    append_number(out, value);
    out += '\n';
  }
  // Histogram bucket detail rides after the flat view so the flat form
  // stays mergeable across workers.
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const NamedHistogram& h : histograms_) {
    const Histogram::Snapshot snap = h.histogram.snapshot();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      cum += snap.buckets[i];
      if (snap.buckets[i] == 0 && cum != snap.count) continue;
      out += h.name;
      out += "_bucket{le=\"";
      append_number(out, Histogram::bucket_upper_us(i));
      out += "\"} ";
      append_number(out, static_cast<double>(cum));
      out += '\n';
    }
    out += h.name;
    out += "_bucket{le=\"+Inf\"} ";
    append_number(out, static_cast<double>(snap.count));
    out += '\n';
  }
  return out;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

}  // namespace repro::obs
