#include "pareto/hypervolume.hpp"

#include <algorithm>
#include <vector>

namespace repro::pareto {

double hypervolume(std::span<const Point> points, ReferencePoint ref) {
  if (points.empty()) return 0.0;

  // Clip points into the reference box and drop those with no contribution.
  std::vector<Point> clipped;
  clipped.reserve(points.size());
  for (const Point& p : points) {
    if (p.speedup <= ref.speedup || p.energy >= ref.energy) continue;
    clipped.push_back(p);
  }
  if (clipped.empty()) return 0.0;

  // Keep only the front; dominated points add no area.
  std::vector<Point> front = pareto_set_fast(clipped);
  sort_front(front);  // ascending speedup, ascending energy

  // Walking the front left->right, energy strictly decreases (front property).
  // Sum vertical slabs: each point contributes
  //   (s_i - s_{i-1}) * (ref.energy - e_i) ... but careful: with speedup
  // ascending and energy descending along the front, the dominated region of
  // the union is the staircase under the *lowest energy to the right*.
  // Standard 2-D HV: sort by speedup DESCENDING; slab width is the speedup
  // drop, height from the best (lowest) energy seen so far.
  std::sort(front.begin(), front.end(), [](const Point& a, const Point& b) {
    if (a.speedup != b.speedup) return a.speedup > b.speedup;
    return a.energy < b.energy;
  });

  double hv = 0.0;
  double prev_speedup = 0.0;
  double best_energy = ref.energy;
  bool first = true;
  for (const Point& p : front) {
    if (first) {
      prev_speedup = p.speedup;
      best_energy = p.energy;
      first = false;
      continue;
    }
    if (p.energy < best_energy) {
      // Slab between this point's speedup and the previous slab edge,
      // at the previous best energy level.
      hv += (prev_speedup - p.speedup) * (ref.energy - best_energy);
      prev_speedup = p.speedup;
      best_energy = p.energy;
    }
  }
  // Final slab down to the reference speedup.
  hv += (prev_speedup - ref.speedup) * (ref.energy - best_energy);
  return hv;
}

double coverage_difference(std::span<const Point> a, std::span<const Point> b,
                           ReferencePoint ref) {
  std::vector<Point> merged(a.begin(), a.end());
  merged.insert(merged.end(), b.begin(), b.end());
  return hypervolume(merged, ref) - hypervolume(b, ref);
}

}  // namespace repro::pareto
