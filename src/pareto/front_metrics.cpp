#include "pareto/front_metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace repro::pareto {

Point max_speedup_point(std::span<const Point> front) {
  if (front.empty()) throw std::invalid_argument("max_speedup_point: empty front");
  Point best = front[0];
  for (const Point& p : front) {
    if (p.speedup > best.speedup ||
        (p.speedup == best.speedup && p.energy < best.energy)) {
      best = p;
    }
  }
  return best;
}

Point min_energy_point(std::span<const Point> front) {
  if (front.empty()) throw std::invalid_argument("min_energy_point: empty front");
  Point best = front[0];
  for (const Point& p : front) {
    if (p.energy < best.energy ||
        (p.energy == best.energy && p.speedup > best.speedup)) {
      best = p;
    }
  }
  return best;
}

FrontEvaluation evaluate_front(std::span<const Point> optimal,
                               std::span<const Point> predicted, ReferencePoint ref) {
  FrontEvaluation eval;
  eval.coverage = coverage_difference(optimal, predicted, ref);
  eval.predicted_size = predicted.size();
  eval.optimal_size = optimal.size();

  const Point true_ms = max_speedup_point(optimal);
  const Point pred_ms = max_speedup_point(predicted);
  eval.max_speedup = {std::abs(true_ms.speedup - pred_ms.speedup),
                      std::abs(true_ms.energy - pred_ms.energy)};

  const Point true_me = min_energy_point(optimal);
  const Point pred_me = min_energy_point(predicted);
  eval.min_energy = {std::abs(true_me.speedup - pred_me.speedup),
                     std::abs(true_me.energy - pred_me.energy)};
  return eval;
}

}  // namespace repro::pareto
