#include "pareto/pareto.hpp"

#include <algorithm>
#include <deque>

namespace repro::pareto {

bool dominates(const Point& a, const Point& b) noexcept {
  return (a.speedup >= b.speedup && a.energy < b.energy) ||
         (a.speedup > b.speedup && a.energy <= b.energy);
}

bool is_non_dominated(const Point& p, std::span<const Point> set) noexcept {
  for (const Point& q : set) {
    if (dominates(q, p)) return false;
  }
  return true;
}

std::vector<Point> pareto_set_naive(std::span<const Point> points) {
  // Faithful transcription of the paper's Algorithm 1: pop a candidate,
  // compare against every remaining point; if nothing dominates it and it is
  // removed from consideration it joins the frontier. The published
  // pseudo-code has two well-known typos (it "removes" the candidate from a
  // set it was already popped from, and never re-tests against accepted
  // frontier points); we implement the intended semantics — the candidate is
  // accepted iff no *other* point in the input dominates it — which is also
  // what the paper's evaluation requires.
  std::deque<Point> pending(points.begin(), points.end());
  std::vector<Point> frontier;
  std::vector<Point> dominated;

  while (!pending.empty()) {
    Point candidate = pending.front();
    pending.pop_front();

    bool candidate_dominated = false;
    // Scan remaining points: drop those the candidate dominates; detect
    // whether any remaining point dominates the candidate.
    for (auto it = pending.begin(); it != pending.end();) {
      if (dominates(candidate, *it)) {
        dominated.push_back(*it);
        it = pending.erase(it);
      } else {
        if (dominates(*it, candidate)) candidate_dominated = true;
        ++it;
      }
    }
    // The frontier so far is mutually non-dominated with the candidate only
    // if no accepted point dominates it; points accepted earlier were checked
    // against the candidate when it was still pending, except when the
    // candidate was inserted later. Re-check to be exact.
    if (!candidate_dominated) {
      for (const Point& f : frontier) {
        if (dominates(f, candidate)) {
          candidate_dominated = true;
          break;
        }
      }
    }
    if (candidate_dominated) {
      dominated.push_back(candidate);
    } else {
      frontier.push_back(candidate);
    }
  }
  return frontier;
}

std::vector<Point> pareto_set_fast(std::span<const Point> points) {
  if (points.empty()) return {};
  std::vector<Point> sorted(points.begin(), points.end());
  // Sort by descending speedup; ties by ascending energy. Then a point is
  // non-dominated iff its energy is strictly below every energy seen so far,
  // except that equal-objective duplicates of a frontier point are kept.
  std::sort(sorted.begin(), sorted.end(), [](const Point& a, const Point& b) {
    if (a.speedup != b.speedup) return a.speedup > b.speedup;
    return a.energy < b.energy;
  });

  std::vector<Point> frontier;
  double best_energy = sorted.front().energy;
  double best_speedup = sorted.front().speedup;
  frontier.push_back(sorted.front());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const Point& p = sorted[i];
    if (p.speedup == best_speedup && p.energy == best_energy) {
      frontier.push_back(p);  // exact duplicate of current frontier point
      continue;
    }
    if (p.energy < best_energy) {
      frontier.push_back(p);
      best_energy = p.energy;
      best_speedup = p.speedup;
    }
  }
  return frontier;
}

void sort_front(std::vector<Point>& front) noexcept {
  std::sort(front.begin(), front.end(), [](const Point& a, const Point& b) {
    if (a.speedup != b.speedup) return a.speedup < b.speedup;
    return a.energy < b.energy;
  });
}

bool same_front(std::span<const Point> a, std::span<const Point> b) {
  if (a.size() != b.size()) return false;
  std::vector<Point> sa(a.begin(), a.end());
  std::vector<Point> sb(b.begin(), b.end());
  sort_front(sa);
  sort_front(sb);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].speedup != sb[i].speedup || sa[i].energy != sb[i].energy) return false;
  }
  return true;
}

}  // namespace repro::pareto
