// Hypervolume indicator and the binary coverage-difference metric used in
// Table 2 of the paper.
//
// The hypervolume HV(P) of a point set P w.r.t. a reference point r measures
// the area of objective space dominated by P and bounded by r. With speedup
// maximized and energy minimized, a point (s, e) dominates the axis-aligned
// rectangle [0, s] x [e, r_e] when the reference point is r = (r_s, r_e) with
// r_s = 0 on the speedup axis ("worst" speedup) and r_e above all energies.
// The paper uses the reference point (0.0, 2.0).
//
// The binary coverage difference (Zitzler's D metric, Eq. 2 in the paper):
//     D(P*, P') = HV(P* + P') - HV(P')
// i.e. the area dominated by the union but not by the approximation P'.
#pragma once

#include <span>

#include "pareto/pareto.hpp"

namespace repro::pareto {

/// Reference point for the hypervolume; the paper fixes (0.0, 2.0).
struct ReferencePoint {
  double speedup = 0.0;  // lower bound on speedup
  double energy = 2.0;   // upper bound on normalized energy
};

/// 2-D hypervolume of the region dominated by `points` w.r.t. `ref`.
/// Points outside the reference box contribute only their clipped part.
[[nodiscard]] double hypervolume(std::span<const Point> points,
                                 ReferencePoint ref = ReferencePoint{});

/// Binary coverage difference D(a, b) = HV(a ∪ b) − HV(b) (paper Eq. 2).
[[nodiscard]] double coverage_difference(std::span<const Point> a,
                                         std::span<const Point> b,
                                         ReferencePoint ref = ReferencePoint{});

}  // namespace repro::pareto
