// Front-quality metrics reported in Table 2 of the paper: cardinalities,
// coverage difference and the distances between predicted and true extreme
// points (maximum-speedup point and minimum-energy point).
#pragma once

#include <span>

#include "pareto/hypervolume.hpp"
#include "pareto/pareto.hpp"

namespace repro::pareto {

/// Absolute objective-space displacement between two points, reported as the
/// pair the paper prints, e.g. "(0.036, 0.183)".
struct ExtremeDistance {
  double d_speedup = 0.0;
  double d_energy = 0.0;
};

/// The point of maximum speedup (ties broken by lower energy).
[[nodiscard]] Point max_speedup_point(std::span<const Point> front);

/// The point of minimum normalized energy (ties broken by higher speedup).
[[nodiscard]] Point min_energy_point(std::span<const Point> front);

/// Table-2 row for one benchmark.
struct FrontEvaluation {
  double coverage = 0.0;       // D(P*, P')
  std::size_t predicted_size = 0;  // |P'|
  std::size_t optimal_size = 0;    // |P*|
  ExtremeDistance max_speedup;     // distance at the max-speedup extreme
  ExtremeDistance min_energy;      // distance at the min-energy extreme
};

/// Evaluate a predicted front `predicted` against the true front `optimal`.
/// `ref` is the hypervolume reference point; the paper uses (0, 2).
[[nodiscard]] FrontEvaluation evaluate_front(std::span<const Point> optimal,
                                             std::span<const Point> predicted,
                                             ReferencePoint ref = ReferencePoint{});

}  // namespace repro::pareto
