// Post-Pareto decision support: once a front is predicted, a deployment
// still has to pick *one* configuration. Two standard selectors are
// provided (an extension beyond the paper, which stops at the front):
//   * utopia-distance knee: the front point closest to the ideal point
//     (max speedup, min energy), objectives scaled to the front's ranges;
//   * hypervolume contribution: the point whose removal loses the most
//     dominated area — the "most load-bearing" recommendation.
#pragma once

#include <span>

#include "pareto/hypervolume.hpp"
#include "pareto/pareto.hpp"

namespace repro::pareto {

/// The front point nearest (scaled Euclidean) to the utopia point
/// (max speedup, min energy over the front). Ranges degenerate to a single
/// point front gracefully. Precondition: non-empty front.
[[nodiscard]] Point knee_by_utopia_distance(std::span<const Point> front);

/// Exclusive hypervolume contribution of each front point w.r.t. `ref`
/// (same order as the input).
[[nodiscard]] std::vector<double> hypervolume_contributions(
    std::span<const Point> front, ReferencePoint ref = ReferencePoint{});

/// The front point with the largest exclusive hypervolume contribution.
/// Precondition: non-empty front.
[[nodiscard]] Point knee_by_hypervolume(std::span<const Point> front,
                                        ReferencePoint ref = ReferencePoint{});

}  // namespace repro::pareto
