// Bi-objective Pareto machinery for (speedup, normalized energy) points.
//
// Objective convention throughout the library (paper §3.4):
//   * speedup  s — to be MAXIMIZED,
//   * normalized energy e — to be MINIMIZED.
//
// A point w_i = (s_i, e_i) dominates w_j = (s_j, e_j), written w_i ≺ w_j, iff
//   (s_i >= s_j && e_i < e_j)  ||  (s_i > s_j && e_i <= e_j).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace repro::pareto {

/// One evaluated kernel execution in objective space. `id` carries the
/// identity of the underlying frequency configuration so a computed front
/// can be mapped back to configurations.
struct Point {
  double speedup = 0.0;
  double energy = 0.0;   // normalized energy (lower is better)
  std::uint32_t id = 0;  // opaque tag (e.g. index into a config table)

  friend bool operator==(const Point&, const Point&) = default;
};

/// Strict Pareto dominance a ≺ b under (max speedup, min energy).
[[nodiscard]] bool dominates(const Point& a, const Point& b) noexcept;

/// True if no element of `set` dominates `p`.
[[nodiscard]] bool is_non_dominated(const Point& p, std::span<const Point> set) noexcept;

/// The paper's Algorithm 1 ("Simple Pareto set calculation"), faithfully
/// O(n^2): every candidate is compared against the remaining points.
/// Returns the Pareto-optimal subset (order unspecified). Kept as the
/// reference implementation for tests and benchmarks; production paths
/// (core::FrequencyModel::predict_pareto) use pareto_set_fast.
[[nodiscard]] std::vector<Point> pareto_set_naive(std::span<const Point> points);

/// Sort-based O(n log n) 2-D Pareto set. Semantics identical to the naive
/// algorithm: duplicates of a non-dominated objective vector are all kept.
[[nodiscard]] std::vector<Point> pareto_set_fast(std::span<const Point> points);

/// Canonical front ordering: ascending speedup, ties by ascending energy.
/// Useful for printing/diffing fronts.
void sort_front(std::vector<Point>& front) noexcept;

/// True if every point in `a` equals some point in `b` and vice versa
/// (multiset equality on objective vectors, ignoring ids).
[[nodiscard]] bool same_front(std::span<const Point> a, std::span<const Point> b);

}  // namespace repro::pareto
