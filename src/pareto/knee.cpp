#include "pareto/knee.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace repro::pareto {

Point knee_by_utopia_distance(std::span<const Point> front) {
  if (front.empty()) throw std::invalid_argument("knee_by_utopia_distance: empty front");
  double s_min = front[0].speedup, s_max = front[0].speedup;
  double e_min = front[0].energy, e_max = front[0].energy;
  for (const Point& p : front) {
    s_min = std::min(s_min, p.speedup);
    s_max = std::max(s_max, p.speedup);
    e_min = std::min(e_min, p.energy);
    e_max = std::max(e_max, p.energy);
  }
  const double s_range = s_max - s_min;
  const double e_range = e_max - e_min;

  Point best = front[0];
  double best_d = std::numeric_limits<double>::infinity();
  for (const Point& p : front) {
    const double ds = s_range > 0.0 ? (s_max - p.speedup) / s_range : 0.0;
    const double de = e_range > 0.0 ? (p.energy - e_min) / e_range : 0.0;
    const double d = std::sqrt(ds * ds + de * de);
    if (d < best_d) {
      best_d = d;
      best = p;
    }
  }
  return best;
}

std::vector<double> hypervolume_contributions(std::span<const Point> front,
                                              ReferencePoint ref) {
  const double total = hypervolume(front, ref);
  std::vector<double> out(front.size(), 0.0);
  std::vector<Point> without;
  without.reserve(front.size());
  for (std::size_t i = 0; i < front.size(); ++i) {
    without.clear();
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (j != i) without.push_back(front[j]);
    }
    out[i] = total - hypervolume(without, ref);
  }
  return out;
}

Point knee_by_hypervolume(std::span<const Point> front, ReferencePoint ref) {
  if (front.empty()) throw std::invalid_argument("knee_by_hypervolume: empty front");
  const auto contributions = hypervolume_contributions(front, ref);
  std::size_t best = 0;
  for (std::size_t i = 1; i < contributions.size(); ++i) {
    if (contributions[i] > contributions[best]) best = i;
  }
  return front[best];
}

}  // namespace repro::pareto
