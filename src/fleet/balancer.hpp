// The fleet's front balancer: one client-facing endpoint speaking the
// existing line-JSON protocol, dispatching every prediction request over a
// persistent backend connection to one of N repro_serve workers.
//
//   clients ──▶ acceptor ──▶ conn reader ─┬─▶ backend 0 (pending map, reader)
//               (line JSON,   dispatch:   ├─▶ backend 1       …
//                unchanged)   least-loaded└─▶ backend N-1
//                             RR tie-break
//
// Request ids are rewritten per backend (each backend connection has its
// own id space) and mapped back before the reply line is written, so
// clients keep their own ids and strict per-connection response order —
// the wire contract is byte-for-byte the one repro_serve speaks directly.
//
// Fault handling: when a backend connection drops (worker crash, graceful
// restart) every request pending on it is re-dispatched to a live worker,
// and responses carrying the retryable "unavailable" code (a worker
// draining for shutdown) are re-dispatched the same way — clients never
// observe a worker death, only added latency. Re-dispatch cannot change
// reply bytes: a prediction depends only on the request and the shared
// model, never on which worker serves it (the fleet bit-identity tests
// assert this at 1/2/4 workers). A maintenance thread reconnects dead
// backends with bounded backoff and pings live ones with "health" requests.
//
// Balancer-addressed "health"/"stats" requests are answered by the balancer
// itself (its own uptime and counters; queue_depth = requests currently
// pending on backends). A "metrics" request aggregates: each live worker is
// scraped over its backend connection, the flat name→value snapshots are
// merged (counters sum; per-worker quantile/max expansions take the max),
// and the balancer's own repro_balancer_* metrics ride along.
//
// Traced requests (wire "trace") get balancer-side stages — balancer.parse,
// balancer.dispatch, balancer.redispatch, balancer.reply — merged around
// the worker's own stage table in the reply. The trace member is forwarded
// unchanged while ids are rewritten, so one trace id follows the request
// end to end.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"

namespace repro::fleet {

/// One worker endpoint. A non-empty unix_path wins over tcp_port (the
/// in-process tests back the balancer with TCP servers; the process fleet
/// uses the supervisor's per-worker unix sockets).
struct BackendEndpoint {
  std::string unix_path;
  int tcp_port = -1;
};

struct BalancerOptions {
  /// Client-facing endpoint, same semantics as ServerOptions.
  std::string unix_path;
  int tcp_port = -1;  // 0 = ephemeral, reported by tcp_port()
  std::size_t max_line_bytes = 1 << 20;
  /// Per client connection, like ServerOptions::max_inflight.
  std::size_t max_inflight = 64;
  /// Backoff for the initial backend connects (fleet startup races).
  serve::ConnectOptions connect{8, std::chrono::milliseconds(50),
                                std::chrono::milliseconds(1000)};
  /// Period of the maintenance tick (reconnects + health pings). Zero
  /// disables pings but keeps reconnects on a 50ms tick.
  std::chrono::milliseconds health_interval{1000};
  /// A request is re-dispatched at most this many times before its client
  /// sees the unavailable error (guards against a fleet dying mid-burst).
  int max_dispatch_attempts = 4;
  /// Progress timeout on backend I/O: a write that cannot make progress
  /// fails the connection, and a backend that stays silent this long *while
  /// requests are outstanding on it* is declared dead and torn down (its
  /// pending requests re-dispatch). An idle backend connection never times
  /// out — quiet is not dead. Also bounds client-facing reply writes.
  std::chrono::milliseconds io_timeout{10000};
  /// Registry the balancer's own repro_balancer_* counters register in.
  /// Null = a registry PRIVATE to this balancer — deliberately not the
  /// process-global one, so an in-process fleet (tests start workers and
  /// the balancer in one process) never double-counts worker metrics when
  /// a "metrics" scrape merges backend snapshots with the balancer's own.
  obs::Registry* registry = nullptr;
  /// Pool behind every splitter input buffer (client connections and backend
  /// readers). Null = common::BufferPool::global(), the same pool the worker
  /// servers default to. Must outlive the balancer.
  common::BufferPool* buffer_pool = nullptr;
};

class Balancer {
 public:
  /// Connect to every backend (with backoff), then bind, listen, accept.
  [[nodiscard]] static common::Result<std::unique_ptr<Balancer>> start(
      std::vector<BackendEndpoint> backends, const BalancerOptions& options);

  ~Balancer();
  Balancer(const Balancer&) = delete;
  Balancer& operator=(const Balancer&) = delete;

  /// Stop accepting, fail whatever is still pending, join all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] int tcp_port() const noexcept;
  [[nodiscard]] const std::string& unix_path() const noexcept;

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;          // prediction requests forwarded
    std::uint64_t protocol_errors = 0;
    std::uint64_t redispatches = 0;      // requests moved off a dead/draining worker
    std::uint64_t backend_failures = 0;  // backend connections lost
    std::uint64_t reconnects = 0;        // backend connections re-established
    /// High-water mark, across finished client connections, of bytes
    /// buffered for one message (same contract as SocketServer::Stats).
    std::uint64_t peak_message_bytes = 0;
    std::vector<std::uint64_t> routed;   // requests routed per backend
  };
  [[nodiscard]] Stats stats() const;
  /// Backends currently connected (tests; racy by nature).
  [[nodiscard]] std::size_t alive_backends() const;

 private:
  Balancer();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace repro::fleet
