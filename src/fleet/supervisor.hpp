// The fleet's worker lifecycle manager: fork/exec N `repro_serve`
// processes, wait until each accepts connections, auto-respawn crashed
// workers, and restart or stop them gracefully (SIGTERM → drain → exit).
//
// Each worker listens on its own Unix socket under socket_dir
// (worker-<i>.sock) and logs to worker-<i>.log there. Readiness is probed
// by connecting with the client's bounded backoff and completing a health
// round trip — repro_serve only accepts after its model is trained or
// loaded, so a successful probe means "serving", not just "spawned".
//
// One monitor thread per worker owns that worker's state machine: it polls
// waitpid(WNOHANG), respawns on unexpected exit (the balancer reconnects to
// the same socket path by itself), and executes restart()/stop() commands.
// A kill -9'd worker is therefore back in the fleet within roughly
// poll-interval + model-load time, and no other worker is disturbed.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace repro::fleet {

/// How to launch one worker process. `binary` is argv[0] (the repro_serve
/// executable); `common_args` is appended after the per-worker
/// "--unix <socket_dir>/worker-<i>.sock" pair (cache dir, broker, suite
/// flags — everything that must be identical across the fleet).
struct WorkerSpec {
  std::string binary;
  std::vector<std::string> common_args;
};

struct SupervisorOptions {
  std::size_t workers = 2;
  /// Directory for the per-worker sockets and log files (must exist).
  std::string socket_dir;
  /// How long spawn()/restart() waits for a worker to accept connections.
  /// Generous by default: the first worker of a cold fleet trains the model.
  std::chrono::seconds ready_timeout{300};
  /// Respawn workers that exit without being asked to.
  bool auto_restart = true;
  /// Chaos mode: every this-many milliseconds, SIGKILL one randomly chosen
  /// live worker (the regular monitor respawns it). Zero disables. Meant
  /// for the chaos soak — pair with auto_restart, never with production.
  std::chrono::milliseconds chaos_kill_interval{0};
  /// Seed for the chaos victim sequence (deterministic per seed).
  std::uint64_t chaos_seed = 1;
};

class Supervisor {
 public:
  /// Spawn every worker and wait until all of them serve.
  [[nodiscard]] static common::Result<std::unique_ptr<Supervisor>> start(
      WorkerSpec spec, const SupervisorOptions& options);

  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// The workers' Unix socket paths, index-aligned with pids().
  [[nodiscard]] std::vector<std::string> endpoints() const;
  /// Current pid of each worker (changes across respawns).
  [[nodiscard]] std::vector<pid_t> pids() const;

  /// Graceful rolling restart of one worker: SIGTERM (repro_serve drains
  /// its connections and exits), wait, respawn, wait until serving again.
  [[nodiscard]] common::Status restart(std::size_t index);

  struct Stats {
    std::uint64_t spawns = 0;       // initial spawns + respawns
    std::uint64_t crashes = 0;      // exits the supervisor did not request
    std::uint64_t restarts = 0;     // explicit restart() calls completed
    std::uint64_t chaos_kills = 0;  // SIGKILLs delivered by chaos mode
  };
  [[nodiscard]] Stats stats() const;

  /// SIGTERM every worker, wait for exits (SIGKILL stragglers). Idempotent;
  /// also run by the destructor.
  void stop();

 private:
  Supervisor();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace repro::fleet
