#include "fleet/balancer.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/arena.hpp"
#include "common/buffer_pool.hpp"
#include "common/log.hpp"
#include "common/net.hpp"
#include "common/queue.hpp"
#include "serve/protocol.hpp"

namespace repro::fleet {

namespace {

common::Error errno_error(const std::string& what) {
  return common::io_error(what + ": " + std::strerror(errno));
}

bool write_all(int fd, std::string_view data, std::chrono::milliseconds timeout) {
  return common::net::write_all(fd, data, timeout).status ==
         common::net::IoStatus::kOk;
}

struct BackendConn {
  int fd = -1;
  bool binary = false;  // negotiated framing for this backend connection
};

common::Result<BackendConn> connect_endpoint(const BackendEndpoint& endpoint,
                                             const serve::ConnectOptions& options) {
  auto client = !endpoint.unix_path.empty()
                    ? serve::SocketClient::connect_unix(endpoint.unix_path, options)
                    : serve::SocketClient::connect_tcp(endpoint.tcp_port, options);
  if (!client.ok()) return client.error();
  // Negotiate per backend connection: a mixed fleet (some workers upgraded,
  // some not) works — each backend is spoken to in its own framing, and
  // protocol 0 just means this one stays on JSON lines. An IO failure here
  // is a connect failure (the worker died mid-handshake).
  auto version = client.value().negotiate_binary();
  if (!version.ok()) return version.error();
  BackendConn conn;
  conn.binary = version.value() >= 1;
  conn.fd = client.value().release_fd();
  return conn;
}

std::string endpoint_name(const BackendEndpoint& endpoint) {
  return !endpoint.unix_path.empty() ? endpoint.unix_path
                                     : "127.0.0.1:" + std::to_string(endpoint.tcp_port);
}

}  // namespace

struct Balancer::Impl {
  /// One forwarded request. `request` keeps the client-side id; the copy
  /// sent to a backend gets that backend's id, so the entry can move
  /// between backends (re-dispatch) without the client noticing.
  struct Pending {
    serve::WireRequest request;  // deadline_ms stays the ORIGINAL budget
    /// When the balancer took custody. Every dispatch (first try or
    /// re-dispatch) deducts the time elapsed since then from the wire
    /// deadline, so a retry can never resurrect a dead budget.
    std::chrono::steady_clock::time_point arrival;
    int attempts = 0;
    bool internal = false;  // maintenance health ping: no one awaits it
    /// A chunk-streamed predict_source. The balancer forwards its chunks as
    /// they arrive and buffers none of them, so the request can NEVER be
    /// re-dispatched — losing the backend mid-stream surfaces a retryable
    /// kUnavailable to the client, which still holds the bytes.
    bool streamed = false;
    /// Non-null when the client asked to be traced: balancer-side stages
    /// (parse/dispatch/redispatch) stamped against this balancer's own
    /// clock; the connection writer merges the worker's stages in and adds
    /// balancer.reply.
    obs::RequestTracePtr trace;
    std::promise<serve::WireResponse> promise;
  };
  using PendingPtr = std::shared_ptr<Pending>;

  struct Backend {
    BackendEndpoint endpoint;

    /// Guards fd/generation/alive/next_id/pending. Never held across a
    /// socket write — see write_mutex.
    std::mutex state_mutex;
    int fd = -1;
    /// Bumped on every (re)connect; a dispatcher that registered against an
    /// older generation must not touch the (possibly recycled) fd.
    std::uint64_t generation = 0;
    std::atomic<bool> alive{false};
    /// Framing negotiated for the current connection (re-negotiated on every
    /// reconnect — a worker may be replaced by an older or newer binary).
    std::atomic<bool> binary{false};
    bool reader_exited = false;  // reader finished; maintenance may join+close
    std::uint64_t next_id = 1;
    std::map<std::uint64_t, PendingPtr> pending;  // ordered: redispatch in id order

    /// Serializes writes from concurrent client connections; close() takes
    /// both mutexes, so a write never races the fd teardown.
    std::mutex write_mutex;

    std::atomic<std::size_t> outstanding{0};
    std::atomic<std::uint64_t> routed{0};
    std::thread reader;

    // Maintenance bookkeeping (maintenance thread only).
    std::chrono::steady_clock::time_point next_reconnect{};
    std::chrono::milliseconds backoff{50};

    // Last health-ping answers (state_mutex).
    double last_uptime_s = 0.0;
    std::uint64_t last_queue_depth = 0;
  };

  BalancerOptions options;
  /// Resolved buffer pool (options.buffer_pool or the process-global one);
  /// backs every splitter's input buffer on both sides of the balancer.
  common::BufferPool* pool = nullptr;
  std::vector<std::unique_ptr<Backend>> backends;
  std::atomic<std::size_t> rr_next{0};
  std::chrono::steady_clock::time_point started = std::chrono::steady_clock::now();

  int listen_fd = -1;
  int bound_tcp_port = -1;
  std::string bound_unix_path;

  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::thread acceptor;
  std::mutex conn_mutex;
  std::list<std::unique_ptr<Conn>> conns;

  std::thread maintenance;
  std::atomic<bool> stopping{false};
  std::once_flag stop_once;

  mutable std::mutex stats_mutex;
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t redispatches = 0;
  std::uint64_t backend_failures = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t peak_message_bytes = 0;

  /// The balancer's own metrics (see BalancerOptions::registry for why the
  /// default is private, not global). Counter pointers are resolved once at
  /// start; gauges are set at scrape time by gather_metrics.
  obs::Registry owned_registry;
  obs::Registry* registry = nullptr;
  obs::Counter* obs_requests = nullptr;
  obs::Counter* obs_dispatches = nullptr;
  obs::Counter* obs_redispatches = nullptr;
  obs::Counter* obs_backend_failures = nullptr;
  obs::Counter* obs_reconnects = nullptr;

  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked();
  void maintenance_loop();

  void start_reader(Backend& backend);
  void backend_reader(Backend& backend);
  void teardown_backend(Backend& backend);
  Backend* pick_backend(bool need_binary = false);
  void dispatch(const PendingPtr& pending);
  void fail_pending(const PendingPtr& pending, const common::Error& error);
  void send_health_ping(Backend& backend);
  /// Register + write a balancer-originated request addressed to this one
  /// backend, bypassing pick_backend — health pings and metrics scrapes are
  /// per-backend by nature. Sent as a JSON line (framing is detected per
  /// message, so it interleaves safely with binary traffic). On failure the
  /// entry is reclaimed, the reader is woken to run the teardown, and the
  /// pending promise resolves with a retryable error.
  void send_to_backend(Backend& backend, const PendingPtr& pending);
  /// One bounded round of per-backend "metrics" scrapes, merged with the
  /// balancer's own registry.
  [[nodiscard]] serve::WireMetrics gather_metrics();
  [[nodiscard]] serve::WireStats own_wire_stats();
};

Balancer::Balancer() : impl_(std::make_unique<Impl>()) {}

common::Result<std::unique_ptr<Balancer>> Balancer::start(
    std::vector<BackendEndpoint> backends, const BalancerOptions& options) {
  if (backends.empty()) {
    return common::invalid_argument("Balancer: need at least one backend");
  }
  std::unique_ptr<Balancer> balancer(new Balancer());
  Impl& impl = *balancer->impl_;
  impl.options = options;
  impl.pool = options.buffer_pool != nullptr ? options.buffer_pool
                                             : &common::BufferPool::global();
  impl.registry = options.registry != nullptr ? options.registry : &impl.owned_registry;
  impl.obs_requests = impl.registry->counter("repro_balancer_requests_total");
  impl.obs_dispatches = impl.registry->counter("repro_balancer_dispatches_total");
  impl.obs_redispatches = impl.registry->counter("repro_balancer_redispatches_total");
  impl.obs_backend_failures =
      impl.registry->counter("repro_balancer_backend_failures_total");
  impl.obs_reconnects = impl.registry->counter("repro_balancer_reconnects_total");

  // Backends first: a balancer that cannot reach its fleet should fail
  // loudly at startup, not accept clients it cannot serve. The connect
  // backoff rides out workers that are still binding their sockets.
  for (auto& endpoint : backends) {
    auto backend = std::make_unique<Impl::Backend>();
    backend->endpoint = std::move(endpoint);
    auto conn = connect_endpoint(backend->endpoint, options.connect);
    if (!conn.ok()) return conn.error();
    backend->fd = conn.value().fd;
    backend->binary.store(conn.value().binary, std::memory_order_release);
    backend->generation = 1;
    backend->alive.store(true, std::memory_order_release);
    impl.backends.push_back(std::move(backend));
  }
  for (auto& backend : impl.backends) impl.start_reader(*backend);

  // Client-facing listener (mirrors SocketServer::start).
  int fd = -1;
  if (!options.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.unix_path.size() >= sizeof(addr.sun_path)) {
      return common::invalid_argument("Balancer: unix path too long: " +
                                      options.unix_path);
    }
    std::strncpy(addr.sun_path, options.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return errno_error("Balancer: socket(AF_UNIX)");
    ::unlink(options.unix_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      auto err = errno_error("Balancer: bind(" + options.unix_path + ")");
      ::close(fd);
      return err;
    }
    impl.bound_unix_path = options.unix_path;
  } else if (options.tcp_port >= 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return errno_error("Balancer: socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options.tcp_port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      auto err = errno_error("Balancer: bind(127.0.0.1:" +
                             std::to_string(options.tcp_port) + ")");
      ::close(fd);
      return err;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      auto err = errno_error("Balancer: getsockname");
      ::close(fd);
      return err;
    }
    impl.bound_tcp_port = static_cast<int>(ntohs(bound.sin_port));
  } else {
    return common::invalid_argument("Balancer: configure either unix_path or tcp_port");
  }
  if (::listen(fd, 64) != 0) {
    auto err = errno_error("Balancer: listen");
    ::close(fd);
    return err;
  }
  impl.listen_fd = fd;
  impl.acceptor = std::thread([&impl] { impl.accept_loop(); });
  impl.maintenance = std::thread([&impl] { impl.maintenance_loop(); });
  return balancer;
}

// --- backend side -------------------------------------------------------------

void Balancer::Impl::start_reader(Backend& backend) {
  backend.reader = std::thread([this, &backend] { backend_reader(backend); });
}

void Balancer::Impl::backend_reader(Backend& backend) {
  const int fd = backend.fd;  // stable for this reader's lifetime
  serve::MessageSplitter splitter(options.max_line_bytes, /*accept_binary=*/true,
                                  pool);
  char chunk[4096];
  bool read_loop_done = false;
  // Progress-based liveness: read in short ticks; a backend that stays
  // silent past io_timeout *while it owes replies* is declared dead (its
  // pending re-dispatch via teardown). An idle connection — nothing
  // outstanding — can stay quiet forever; quiet is not dead.
  auto last_progress = std::chrono::steady_clock::now();
  while (!read_loop_done) {
    const auto r = common::net::read_some(fd, chunk, sizeof chunk,
                                          std::chrono::milliseconds(250));
    if (r.status == common::net::IoStatus::kTimeout) {
      if (backend.outstanding.load(std::memory_order_relaxed) == 0) {
        last_progress = std::chrono::steady_clock::now();
        continue;
      }
      if (options.io_timeout.count() > 0 &&
          std::chrono::steady_clock::now() - last_progress >= options.io_timeout) {
        common::log_warn() << "Balancer: backend "
                           << endpoint_name(backend.endpoint)
                           << " silent past io_timeout with requests "
                              "outstanding; tearing down";
        break;
      }
      continue;
    }
    if (r.status != common::net::IoStatus::kOk) break;  // EOF, error, shutdown
    last_progress = std::chrono::steady_clock::now();
    splitter.feed(std::string_view(chunk, r.bytes));

    for (;;) {
      auto next = splitter.next();
      if (!next.ok()) {
        common::log_warn() << "Balancer: framing fault from "
                           << endpoint_name(backend.endpoint) << ": "
                           << next.error().to_string();
        read_loop_done = true;
        break;
      }
      if (!next.value().has_value()) break;  // need more bytes
      const serve::WireMessage& message = *next.value();

      auto response = [&]() -> common::Result<serve::WireResponse> {
        if (!message.binary) return serve::parse_response(message.payload);
        if (message.frame != serve::binary::FrameType::kResponse) {
          return common::parse_error("Balancer: unexpected frame from worker");
        }
        return serve::binary::parse_response(message.payload);
      }();
      if (!response.ok()) {
        // A worker speaking gibberish cannot be correlated to a pending
        // entry; drop the connection and let teardown re-dispatch.
        common::log_warn() << "Balancer: unparseable response from "
                           << endpoint_name(backend.endpoint) << ": "
                           << response.error().to_string();
        read_loop_done = true;
        break;
      }
      PendingPtr pending;
      {
        std::lock_guard lock(backend.state_mutex);
        const auto it = backend.pending.find(response.value().id);
        if (it != backend.pending.end()) {
          pending = it->second;
          backend.pending.erase(it);
        }
      }
      if (pending == nullptr) continue;  // stale id; nothing owed
      backend.outstanding.fetch_sub(1, std::memory_order_relaxed);
      if (pending->internal) {
        if (response.value().stats.has_value()) {
          std::lock_guard lock(backend.state_mutex);
          backend.last_uptime_s = response.value().stats->uptime_s;
          backend.last_queue_depth = response.value().stats->queue_depth;
        }
        continue;
      }
      if (response.value().error.has_value() &&
          response.value().error->code == common::ErrorCode::kUnavailable &&
          !pending->streamed && !stopping.load(std::memory_order_acquire)) {
        // The worker is draining for a graceful restart — move the request
        // to a live worker instead of surfacing the refusal. A streamed
        // request cannot move (its chunks were never buffered here): the
        // refusal goes back to the client, which can retry the stream.
        {
          std::lock_guard lock(stats_mutex);
          ++redispatches;
        }
        obs_redispatches->inc();
        dispatch(pending);
        continue;
      }
      pending->promise.set_value(std::move(response.value()));
    }
    if (read_loop_done) break;
  }
  teardown_backend(backend);
}

void Balancer::Impl::teardown_backend(Backend& backend) {
  std::map<std::uint64_t, PendingPtr> orphans;
  {
    std::lock_guard lock(backend.state_mutex);
    backend.alive.store(false, std::memory_order_release);
    orphans.swap(backend.pending);
    if (backend.fd >= 0) ::shutdown(backend.fd, SHUT_RDWR);
    backend.reader_exited = true;
  }
  backend.outstanding.fetch_sub(orphans.size(), std::memory_order_relaxed);
  if (!orphans.empty() || !stopping.load(std::memory_order_acquire)) {
    {
      std::lock_guard lock(stats_mutex);
      ++backend_failures;
      redispatches += orphans.size();
    }
    obs_backend_failures->inc();
    obs_redispatches->inc(orphans.size());
  }
  // Re-dispatch in backend-id (= send) order. Order cannot change reply
  // bytes — each reply depends only on its own request — it just keeps the
  // failover deterministic and easy to reason about. A partially-streamed
  // request is the one thing that can NOT move: its chunks were forwarded,
  // not buffered, so only the client can replay them. It fails retryably.
  for (auto& [id, pending] : orphans) {
    (void)id;
    if (pending->internal) continue;
    if (pending->streamed) {
      fail_pending(pending,
                   common::unavailable("Balancer: backend lost mid-stream"));
      continue;
    }
    dispatch(pending);
  }
}

Balancer::Impl::Backend* Balancer::Impl::pick_backend(bool need_binary) {
  // Least-loaded among the live backends; the rotating scan start makes
  // ties round-robin (the fallback when loads are equal, e.g. all zero).
  // A chunk stream needs a binary-framing backend — its chunks cannot be
  // expressed on a JSON-only connection.
  const std::size_t n = backends.size();
  const std::size_t start = rr_next.fetch_add(1, std::memory_order_relaxed) % n;
  Backend* best = nullptr;
  std::size_t best_load = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Backend* candidate = backends[(start + i) % n].get();
    if (!candidate->alive.load(std::memory_order_acquire)) continue;
    if (need_binary && !candidate->binary.load(std::memory_order_acquire)) continue;
    const std::size_t load = candidate->outstanding.load(std::memory_order_relaxed);
    if (best == nullptr || load < best_load) {
      best = candidate;
      best_load = load;
    }
  }
  return best;
}

void Balancer::Impl::fail_pending(const PendingPtr& pending,
                                  const common::Error& error) {
  if (pending->internal) return;
  serve::WireResponse response;
  response.id = pending->request.id;
  response.error = error;
  pending->promise.set_value(std::move(response));
}

void Balancer::Impl::dispatch(const PendingPtr& pending) {
  for (;;) {
    if (stopping.load(std::memory_order_acquire)) {
      fail_pending(pending, common::unavailable("Balancer: shutting down"));
      return;
    }
    if (pending->attempts >= options.max_dispatch_attempts) {
      fail_pending(pending,
                   common::unavailable("Balancer: request re-dispatched " +
                                       std::to_string(pending->attempts) +
                                       " times without an answer"));
      return;
    }
    // Deadline accounting happens here, once per dispatch attempt: whatever
    // the client's budget was, the backend only gets what is left of it.
    // When nothing is left the request fails *here* — a re-dispatch must
    // not resurrect a deadline the first attempt already spent.
    double remaining_ms = 0.0;
    if (pending->request.deadline_ms.has_value()) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - pending->arrival)
              .count();
      remaining_ms = *pending->request.deadline_ms - elapsed_ms;
      if (remaining_ms <= 0.0) {
        fail_pending(pending, common::deadline_exceeded(
                                  "Balancer: deadline budget exhausted after " +
                                  std::to_string(pending->attempts) +
                                  " dispatch attempt(s)"));
        return;
      }
    }
    Backend* backend = pick_backend();
    if (backend == nullptr) {
      fail_pending(pending, common::unavailable("Balancer: no live workers"));
      return;
    }
    ++pending->attempts;
    obs::stamp(pending->trace, pending->attempts == 1 ? "balancer.dispatch"
                                                      : "balancer.redispatch");

    std::uint64_t backend_id = 0;
    std::uint64_t generation = 0;
    {
      std::lock_guard lock(backend->state_mutex);
      if (!backend->alive.load(std::memory_order_relaxed)) continue;
      backend_id = backend->next_id++;
      generation = backend->generation;
      backend->pending.emplace(backend_id, pending);
    }
    backend->outstanding.fetch_add(1, std::memory_order_relaxed);

    serve::WireRequest request = pending->request;
    request.id = backend_id;
    if (request.deadline_ms.has_value()) request.deadline_ms = remaining_ms;
    // Speak the backend's negotiated framing; the request itself is
    // framing-agnostic, so JSON clients ride binary backends and vice versa.
    std::string line;
    if (backend->binary.load(std::memory_order_acquire)) {
      line = serve::binary::format_request_frame(request);
    } else {
      line = serve::format_request(request);
      line.push_back('\n');
    }

    bool written = false;
    {
      // write_mutex serializes concurrent client connections onto the one
      // backend connection; the generation check keeps a dispatcher that
      // lost a race with reconnect off the new connection's fd.
      std::lock_guard wlock(backend->write_mutex);
      std::lock_guard slock(backend->state_mutex);
      if (backend->generation == generation && backend->fd >= 0) {
        written = write_all(backend->fd, line, options.io_timeout);
      }
    }
    if (written) {
      backend->routed.fetch_add(1, std::memory_order_relaxed);
      obs_dispatches->inc();
      return;
    }
    // Write failed (worker died between pick and write). Wake the reader so
    // teardown runs, reclaim the entry if teardown has not already — if it
    // has, teardown owns the re-dispatch and this loop must not double it.
    bool ours = false;
    {
      std::lock_guard lock(backend->state_mutex);
      ours = backend->pending.erase(backend_id) > 0;
      if (backend->generation == generation && backend->fd >= 0) {
        ::shutdown(backend->fd, SHUT_RDWR);
      }
    }
    if (!ours) return;
    backend->outstanding.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Balancer::Impl::send_to_backend(Backend& backend, const PendingPtr& pending) {
  std::uint64_t backend_id = 0;
  std::uint64_t generation = 0;
  {
    std::lock_guard lock(backend.state_mutex);
    if (!backend.alive.load(std::memory_order_relaxed)) {
      fail_pending(pending, common::unavailable("Balancer: backend not alive"));
      return;
    }
    backend_id = backend.next_id++;
    generation = backend.generation;
    backend.pending.emplace(backend_id, pending);
  }
  backend.outstanding.fetch_add(1, std::memory_order_relaxed);
  serve::WireRequest request = pending->request;
  request.id = backend_id;
  std::string line = serve::format_request(request);
  line.push_back('\n');
  bool written = false;
  {
    std::lock_guard wlock(backend.write_mutex);
    std::lock_guard slock(backend.state_mutex);
    if (backend.generation == generation && backend.fd >= 0) {
      written = write_all(backend.fd, line, options.io_timeout);
    }
  }
  if (!written) {
    bool ours = false;
    {
      std::lock_guard lock(backend.state_mutex);
      ours = backend.pending.erase(backend_id) > 0;
      if (backend.generation == generation && backend.fd >= 0) {
        ::shutdown(backend.fd, SHUT_RDWR);  // reader runs the teardown
      }
    }
    if (ours) {
      backend.outstanding.fetch_sub(1, std::memory_order_relaxed);
      fail_pending(pending,
                   common::unavailable("Balancer: backend write failed"));
    }
  }
}

void Balancer::Impl::send_health_ping(Backend& backend) {
  auto pending = std::make_shared<Pending>();
  pending->internal = true;
  pending->request.kind = serve::RequestKind::kHealth;
  send_to_backend(backend, pending);
}

serve::WireMetrics Balancer::Impl::gather_metrics() {
  // Scrape every live worker over its existing backend connection. The
  // pending entries are marked streamed so they can never re-dispatch — a
  // snapshot is per-backend; moving it would answer for the wrong worker —
  // and a backend lost mid-scrape resolves them with an error via teardown,
  // which the merge below simply skips.
  std::vector<std::future<serve::WireResponse>> probes;
  for (auto& backend : backends) {
    if (!backend->alive.load(std::memory_order_acquire)) continue;
    auto pending = std::make_shared<Pending>();
    pending->streamed = true;
    pending->request.kind = serve::RequestKind::kMetrics;
    pending->arrival = std::chrono::steady_clock::now();
    probes.push_back(pending->promise.get_future());
    send_to_backend(*backend, pending);
  }

  // Merge rule: counters and sums add across workers; per-worker quantile
  // and max expansions take the max (a fleet p99 is at least some worker's
  // p99 — summing them would be meaningless).
  const auto merged_by_max = [](std::string_view name) {
    for (std::string_view suffix : {"_p50_us", "_p95_us", "_p99_us", "_max_us"}) {
      if (name.size() >= suffix.size() &&
          name.substr(name.size() - suffix.size()) == suffix) {
        return true;
      }
    }
    return false;
  };
  std::map<std::string, double> merged;
  const auto merge_value = [&](const std::string& name, double value) {
    auto [it, inserted] = merged.emplace(name, value);
    if (!inserted) {
      it->second =
          merged_by_max(name) ? std::max(it->second, value) : it->second + value;
    }
  };
  // Workers answer metrics inline, so a short budget covers the fleet; one
  // that cannot answer in time is skipped rather than wedging the scrape.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::size_t scraped = 0;
  for (auto& probe : probes) {
    if (probe.wait_until(deadline) != std::future_status::ready) continue;
    serve::WireResponse response = probe.get();
    if (!response.metrics.has_value()) continue;
    ++scraped;
    for (const auto& [name, value] : response.metrics->values) {
      merge_value(name, value);
    }
  }

  // The balancer's own registry rides along (names are disjoint by the
  // repro_balancer_ prefix), with its gauges stamped at scrape time.
  registry->gauge("repro_balancer_uptime_seconds")
      ->set(std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                .count());
  std::size_t outstanding = 0;
  std::size_t alive = 0;
  for (const auto& backend : backends) {
    outstanding += backend->outstanding.load(std::memory_order_relaxed);
    if (backend->alive.load(std::memory_order_acquire)) ++alive;
  }
  registry->gauge("repro_balancer_pending")->set(static_cast<double>(outstanding));
  registry->gauge("repro_balancer_backends_alive")->set(static_cast<double>(alive));
  registry->gauge("repro_balancer_backends_scraped")->set(static_cast<double>(scraped));
  for (const auto& [name, value] : registry->snapshot_values()) {
    merge_value(name, value);
  }

  serve::WireMetrics wire;
  wire.values.assign(merged.begin(), merged.end());
  // Regenerated flat text: per-worker histogram buckets do not survive the
  // merge (scrape a worker directly for its bucket lines).
  std::string text = "# merged across " + std::to_string(scraped) + " worker(s)\n";
  char buffer[64];
  for (const auto& [name, value] : merged) {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    text += name;
    text += ' ';
    text += buffer;
    text += '\n';
  }
  wire.text = std::move(text);
  return wire;
}

void Balancer::Impl::maintenance_loop() {
  auto last_ping = std::chrono::steady_clock::now();
  while (!stopping.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const auto now = std::chrono::steady_clock::now();

    for (auto& backend_ptr : backends) {
      Backend& backend = *backend_ptr;
      bool joinable = false;
      {
        std::lock_guard lock(backend.state_mutex);
        joinable = backend.reader_exited && backend.reader.joinable();
      }
      if (joinable) {
        backend.reader.join();
        // Both mutexes: no dispatcher can be mid-write on the fd.
        std::lock_guard wlock(backend.write_mutex);
        std::lock_guard slock(backend.state_mutex);
        if (backend.fd >= 0) ::close(backend.fd);
        backend.fd = -1;
        backend.reader_exited = false;
        backend.next_reconnect = now;  // eligible immediately
      }

      bool want_reconnect = false;
      {
        std::lock_guard lock(backend.state_mutex);
        want_reconnect = backend.fd < 0 && !backend.reader.joinable() &&
                         now >= backend.next_reconnect;
      }
      if (want_reconnect) {
        serve::ConnectOptions one_shot;  // backoff lives in next_reconnect
        auto conn = connect_endpoint(backend.endpoint, one_shot);
        if (conn.ok()) {
          {
            std::lock_guard lock(backend.state_mutex);
            backend.fd = conn.value().fd;
            backend.binary.store(conn.value().binary, std::memory_order_release);
            ++backend.generation;
            backend.alive.store(true, std::memory_order_release);
          }
          backend.backoff = std::chrono::milliseconds(50);
          start_reader(backend);
          {
            std::lock_guard lock(stats_mutex);
            ++reconnects;
          }
          obs_reconnects->inc();
          common::log_info() << "Balancer: reconnected to "
                             << endpoint_name(backend.endpoint);
        } else {
          backend.backoff = std::min(backend.backoff * 2,
                                     std::chrono::milliseconds(2000));
          backend.next_reconnect = now + backend.backoff;
        }
      }
    }

    if (options.health_interval.count() > 0 && now - last_ping >= options.health_interval) {
      last_ping = now;
      for (auto& backend : backends) {
        if (backend->alive.load(std::memory_order_acquire)) {
          send_health_ping(*backend);
        }
      }
    }
  }
}

// --- client side --------------------------------------------------------------

void Balancer::Impl::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (stopping.load(std::memory_order_acquire)) return;
      if (err == ECONNABORTED || err == EMFILE || err == ENFILE) {
        common::log_warn() << "Balancer: accept: " << std::strerror(err);
        if (err != ECONNABORTED) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        continue;
      }
      common::log_error() << "Balancer: accept failed permanently: "
                          << std::strerror(err) << "; no longer accepting";
      return;
    }
    std::lock_guard lock(conn_mutex);
    if (stopping.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    reap_finished_locked();
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conns.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] {
      serve_connection(raw->fd);
      ::shutdown(raw->fd, SHUT_RDWR);
      {
        std::lock_guard lock(conn_mutex);
        reap_finished_locked();
      }
      raw->done.store(true, std::memory_order_release);
    });
    std::lock_guard slock(stats_mutex);
    ++connections;
  }
}

void Balancer::Impl::reap_finished_locked() {
  for (auto it = conns.begin(); it != conns.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = conns.erase(it);
    } else {
      ++it;
    }
  }
}

serve::WireStats Balancer::Impl::own_wire_stats() {
  serve::WireStats wire;
  wire.uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  std::size_t outstanding = 0;
  for (const auto& backend : backends) {
    outstanding += backend->outstanding.load(std::memory_order_relaxed);
  }
  wire.queue_depth = outstanding;
  std::lock_guard lock(stats_mutex);
  wire.requests = requests;
  wire.connections = connections;
  wire.protocol_errors = protocol_errors;
  wire.peak_message_bytes = peak_message_bytes;
  return wire;
}

void Balancer::Impl::serve_connection(int fd) {
  // Same pipelined reader/writer split as SocketServer::serve_connection:
  // in-order reply queue, bounded by max_inflight. The difference is where
  // a reply comes from — a promise fulfilled by whichever backend reader
  // ends up holding the request. Replies mirror their request's framing.
  struct PendingReply {
    std::uint64_t id = 0;
    bool binary = false;
    std::optional<std::future<serve::WireResponse>> response;
    std::string immediate;
    /// The forwarded request's balancer-side trace; the writer merges the
    /// worker's stages into it and stamps balancer.reply.
    obs::RequestTracePtr trace;
  };
  common::BoundedQueue<PendingReply> replies(
      std::max<std::size_t>(1, options.max_inflight));
  std::atomic<bool> write_failed{false};
  std::thread writer([&] {
    while (auto pending = replies.pop()) {
      if (write_failed.load(std::memory_order_relaxed)) continue;  // drain only
      std::string reply;
      if (pending->response.has_value()) {
        serve::WireResponse response = pending->response->get();
        // Merge order: balancer pre-dispatch stages, the worker's stage
        // table (offsets against the WORKER's clock — per-hop, never
        // rebased), then balancer.reply against this balancer's clock.
        std::optional<obs::Trace> trace;
        if (pending->trace != nullptr) {
          if (response.trace.has_value()) {
            pending->trace->append(response.trace->stages);
          }
          pending->trace->stamp("balancer.reply");
          trace = pending->trace->snapshot();
        }
        const obs::Trace* trace_ptr = trace.has_value() ? &*trace : nullptr;
        const common::Error malformed =
            common::internal_error("Balancer: malformed backend reply");
        if (pending->binary) {
          if (response.prediction.has_value()) {
            reply = serve::binary::format_prediction_frame(
                pending->id, *response.prediction, trace_ptr);
          } else if (response.error.has_value()) {
            reply = serve::binary::format_error_frame(pending->id, *response.error,
                                                      trace_ptr);
          } else {
            reply = serve::binary::format_error_frame(pending->id, malformed);
          }
        } else {
          if (response.prediction.has_value()) {
            reply = serve::format_response(pending->id, *response.prediction,
                                           trace_ptr);
          } else if (response.error.has_value()) {
            reply = serve::format_error(pending->id, *response.error, trace_ptr);
          } else {
            reply = serve::format_error(pending->id, malformed);
          }
        }
      } else {
        reply = std::move(pending->immediate);
      }
      if (!pending->binary) reply.push_back('\n');
      if (!write_all(fd, reply, options.io_timeout)) {
        write_failed.store(true, std::memory_order_relaxed);
        ::shutdown(fd, SHUT_RD);
      }
    }
  });

  auto count_protocol_error = [&] {
    std::lock_guard slock(stats_mutex);
    ++protocol_errors;
  };
  // Writes one frame to a routed stream's backend under the same
  // generation-checked double-mutex discipline as dispatch(). Returns false
  // when the backend is gone (caller marks the route broken).
  auto write_to_backend = [&](Backend& backend, std::uint64_t generation,
                              std::string_view bytes) {
    std::lock_guard wlock(backend.write_mutex);
    std::lock_guard slock(backend.state_mutex);
    if (backend.generation != generation || backend.fd < 0) return false;
    return write_all(backend.fd, bytes, options.io_timeout);
  };

  // One live chunk stream per client request id: where its frames are being
  // forwarded. The balancer is a pass-through — it never buffers chunks, so
  // peak memory per stream is one frame.
  struct StreamRoute {
    Backend* backend = nullptr;
    std::uint64_t backend_id = 0;
    std::uint64_t generation = 0;
    PendingPtr pending;
    bool broken = false;  // forwarding failed; End still surfaces the error
  };
  std::unordered_map<std::uint64_t, StreamRoute> routes;

  // Decoded WireRequests from either framing meet here.
  auto handle_request = [&](serve::WireRequest wire, bool is_binary) {
    PendingReply pending;
    pending.binary = is_binary;
    pending.id = wire.id;
    if (wire.kind == serve::RequestKind::kHello) {
      // The balancer negotiates for itself: its client-facing connection
      // always speaks both framings, whatever the workers speak.
      const std::uint32_t negotiated =
          std::min(wire.max_protocol, serve::kProtocolVersion);
      pending.immediate =
          is_binary ? serve::binary::format_hello_frame(wire.id, negotiated)
                    : serve::format_hello_response(wire.id, negotiated);
      replies.push(std::move(pending));
      return;
    }
    if (wire.kind == serve::RequestKind::kHealth ||
        wire.kind == serve::RequestKind::kStats) {
      // The balancer answers for itself — a client asking the fleet
      // endpoint for health wants the fleet front, not one worker.
      const auto stats_now = own_wire_stats();
      if (wire.kind == serve::RequestKind::kHealth) {
        pending.immediate = is_binary
                                ? serve::binary::format_health_frame(wire.id, stats_now)
                                : serve::format_health_response(wire.id, stats_now);
      } else {
        pending.immediate = is_binary
                                ? serve::binary::format_stats_frame(wire.id, stats_now)
                                : serve::format_stats_response(wire.id, stats_now);
      }
      replies.push(std::move(pending));
      return;
    }
    if (wire.kind == serve::RequestKind::kMetrics) {
      // Aggregation runs on this reader thread: scrapes come from dedicated
      // monitoring connections (repro_top), and the gather is bounded, so
      // stalling this connection's decode briefly is fine.
      const serve::WireMetrics merged = gather_metrics();
      pending.immediate = is_binary
                              ? serve::binary::format_metrics_frame(wire.id, merged)
                              : serve::format_metrics_response(wire.id, merged);
      replies.push(std::move(pending));
      return;
    }
    {
      std::lock_guard slock(stats_mutex);
      ++requests;
    }
    obs_requests->inc();
    auto forwarded = std::make_shared<Pending>();
    forwarded->request = std::move(wire);
    forwarded->arrival = std::chrono::steady_clock::now();
    if (forwarded->request.trace.has_value()) {
      forwarded->trace =
          std::make_shared<obs::RequestTrace>(*forwarded->request.trace);
      forwarded->trace->stamp("balancer.parse");
      pending.trace = forwarded->trace;
    }
    pending.response = forwarded->promise.get_future();
    // Push before dispatch: the queue bound is the pipelining window, and
    // it must count this request before the next message is decoded.
    replies.push(std::move(pending));
    dispatch(forwarded);
  };

  serve::MessageSplitter splitter(options.max_line_bytes, /*accept_binary=*/true,
                                  pool);
  // Backs the intermediate JSON document inside parse_request; reset after
  // every message (the decoded WireRequest owns plain heap strings).
  common::Arena arena;
  char chunk[4096];
  bool framing_fault = false;
  for (;;) {
    // Blocking (timeout 0): an idle client connection is legitimate.
    const auto rd = common::net::read_some(fd, chunk, sizeof chunk,
                                           std::chrono::milliseconds(0));
    if (rd.status != common::net::IoStatus::kOk) break;
    splitter.feed(std::string_view(chunk, rd.bytes));

    for (;;) {
      auto next = splitter.next();
      if (!next.ok()) {
        PendingReply pending;
        pending.immediate = serve::format_error(0, next.error());
        replies.push(std::move(pending));
        framing_fault = true;
        break;
      }
      if (!next.value().has_value()) break;  // need more bytes
      serve::WireMessage message = std::move(*next.value());

      if (!message.binary) {
        auto request = serve::parse_request(message.payload, &arena);
        if (!request.ok()) {
          count_protocol_error();
          PendingReply pending;
          pending.id = serve::best_effort_id(message.payload);
          pending.immediate = serve::format_error(pending.id, request.error());
          replies.push(std::move(pending));
        } else {
          handle_request(std::move(request).take(), /*is_binary=*/false);
        }
        arena.reset();
        continue;
      }

      switch (message.frame) {
        case serve::binary::FrameType::kRequest: {
          auto request = serve::binary::parse_request(message.payload);
          if (!request.ok()) {
            count_protocol_error();
            PendingReply pending;
            pending.binary = true;
            pending.id = serve::binary::best_effort_id(message.payload);
            pending.immediate =
                serve::binary::format_error_frame(pending.id, request.error());
            replies.push(std::move(pending));
          } else {
            handle_request(std::move(request).take(), /*is_binary=*/true);
          }
          break;
        }
        case serve::binary::FrameType::kSourceBegin: {
          auto begin = serve::binary::parse_source_begin(message.payload);
          if (!begin.ok()) {
            count_protocol_error();
            PendingReply pending;
            pending.binary = true;
            pending.id = serve::binary::best_effort_id(message.payload);
            pending.immediate =
                serve::binary::format_error_frame(pending.id, begin.error());
            replies.push(std::move(pending));
            break;
          }
          auto& open = begin.value();
          if (routes.find(open.id) != routes.end()) {
            count_protocol_error();
            PendingReply pending;
            pending.binary = true;
            pending.id = open.id;
            pending.immediate = serve::binary::format_error_frame(
                open.id, common::parse_error("binary: duplicate stream id"));
            replies.push(std::move(pending));
            break;
          }
          {
            std::lock_guard slock(stats_mutex);
            ++requests;
          }
          obs_requests->inc();
          auto pending_entry = std::make_shared<Pending>();
          pending_entry->streamed = true;
          pending_entry->request.id = open.id;
          pending_entry->request.kind = serve::RequestKind::kPredictSource;
          pending_entry->request.deadline_ms = open.deadline_ms;
          pending_entry->arrival = std::chrono::steady_clock::now();
          // Route selection retries write failures like dispatch(), but only
          // for the Begin frame — once a chunk has been forwarded the stream
          // is pinned to its backend.
          StreamRoute route;
          route.pending = pending_entry;
          bool routed = false;
          while (pending_entry->attempts < options.max_dispatch_attempts &&
                 !stopping.load(std::memory_order_acquire)) {
            Backend* backend = pick_backend(/*need_binary=*/true);
            if (backend == nullptr) break;
            ++pending_entry->attempts;
            std::uint64_t backend_id = 0;
            std::uint64_t generation = 0;
            {
              std::lock_guard lock(backend->state_mutex);
              if (!backend->alive.load(std::memory_order_relaxed)) continue;
              backend_id = backend->next_id++;
              generation = backend->generation;
              backend->pending.emplace(backend_id, pending_entry);
            }
            backend->outstanding.fetch_add(1, std::memory_order_relaxed);
            serve::binary::SourceBegin fwd;
            fwd.id = backend_id;
            fwd.kernel = open.kernel;
            fwd.deadline_ms = open.deadline_ms;
            if (write_to_backend(*backend, generation,
                                 serve::binary::format_source_begin(fwd))) {
              backend->routed.fetch_add(1, std::memory_order_relaxed);
              route.backend = backend;
              route.backend_id = backend_id;
              route.generation = generation;
              routed = true;
              break;
            }
            bool ours = false;
            {
              std::lock_guard lock(backend->state_mutex);
              ours = backend->pending.erase(backend_id) > 0;
              if (backend->generation == generation && backend->fd >= 0) {
                ::shutdown(backend->fd, SHUT_RDWR);
              }
            }
            if (ours) backend->outstanding.fetch_sub(1, std::memory_order_relaxed);
          }
          if (!routed) {
            PendingReply pending;
            pending.binary = true;
            pending.id = open.id;
            pending.immediate = serve::binary::format_error_frame(
                open.id,
                common::unavailable("Balancer: no stream-capable worker"));
            replies.push(std::move(pending));
            break;
          }
          routes.emplace(open.id, std::move(route));
          break;
        }
        case serve::binary::FrameType::kSourceChunk: {
          auto source_chunk = serve::binary::parse_source_chunk(message.payload);
          if (!source_chunk.ok()) {
            count_protocol_error();
            break;
          }
          auto it = routes.find(source_chunk.value().id);
          if (it == routes.end()) {
            count_protocol_error();
            break;
          }
          StreamRoute& route = it->second;
          if (route.broken) break;  // error already owed at End
          if (!write_to_backend(*route.backend, route.generation,
                                serve::binary::format_source_chunk(
                                    route.backend_id, source_chunk.value().data))) {
            // Backend died mid-stream: the teardown fails the pending entry
            // with a retryable error; stop forwarding, keep the route so the
            // client's End still collects that error in order.
            route.broken = true;
          }
          break;
        }
        case serve::binary::FrameType::kSourceEnd: {
          auto end = serve::binary::parse_source_end(message.payload);
          if (!end.ok()) {
            count_protocol_error();
            break;
          }
          auto it = routes.find(end.value());
          if (it == routes.end()) {
            count_protocol_error();
            break;
          }
          StreamRoute& route = it->second;
          if (!route.broken &&
              !write_to_backend(*route.backend, route.generation,
                                serve::binary::format_source_end(route.backend_id))) {
            route.broken = true;
          }
          // The reply slot is taken at End — matching the worker, which also
          // answers streams at End; a broken route's promise is resolved by
          // the backend teardown, never left dangling.
          PendingReply pending;
          pending.binary = true;
          pending.id = end.value();
          pending.response = route.pending->promise.get_future();
          routes.erase(it);
          replies.push(std::move(pending));
          break;
        }
        case serve::binary::FrameType::kSourceAbort: {
          auto abort = serve::binary::parse_source_abort(message.payload);
          if (!abort.ok()) {
            count_protocol_error();
            break;
          }
          auto it = routes.find(abort.value());
          if (it == routes.end()) {
            count_protocol_error();
            break;
          }
          StreamRoute& route = it->second;
          if (!route.broken) {
            (void)write_to_backend(*route.backend, route.generation,
                                   serve::binary::format_source_abort(route.backend_id));
          }
          // The worker never answers an abort — reclaim the pending entry
          // ourselves (backend ids are never reused, so a stale erase is a
          // harmless no-op).
          {
            std::lock_guard lock(route.backend->state_mutex);
            if (route.backend->pending.erase(route.backend_id) > 0) {
              route.backend->outstanding.fetch_sub(1, std::memory_order_relaxed);
            }
          }
          routes.erase(it);
          break;
        }
        case serve::binary::FrameType::kResponse: {
          count_protocol_error();
          PendingReply pending;
          pending.binary = true;
          pending.id = serve::binary::best_effort_id(message.payload);
          pending.immediate = serve::binary::format_error_frame(
              pending.id,
              common::parse_error("binary: unexpected response frame"));
          replies.push(std::move(pending));
          break;
        }
      }
    }
    if (framing_fault) break;
  }
  // A connection that dies with open streams: tell their backends to drop
  // the half-streamed requests (best effort) and reclaim the entries, so a
  // worker never waits on chunks that can no longer arrive.
  for (auto& [id, route] : routes) {
    (void)id;
    if (!route.broken) {
      (void)write_to_backend(*route.backend, route.generation,
                             serve::binary::format_source_abort(route.backend_id));
    }
    std::lock_guard lock(route.backend->state_mutex);
    if (route.backend->pending.erase(route.backend_id) > 0) {
      route.backend->outstanding.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  replies.close();
  writer.join();
  {
    std::lock_guard slock(stats_mutex);
    peak_message_bytes = std::max<std::uint64_t>(peak_message_bytes,
                                                 splitter.peak_buffered_bytes());
    if (framing_fault) ++protocol_errors;
  }
}

// --- lifecycle ----------------------------------------------------------------

Balancer::~Balancer() {
  if (impl_ != nullptr) stop();
}

void Balancer::stop() {
  std::call_once(impl_->stop_once, [this] {
    Impl& impl = *impl_;
    impl.stopping.store(true, std::memory_order_release);
    if (impl.maintenance.joinable()) impl.maintenance.join();

    // Listener down first: no new clients while the fleet detaches.
    if (impl.listen_fd >= 0) ::shutdown(impl.listen_fd, SHUT_RDWR);
    if (impl.acceptor.joinable()) impl.acceptor.join();
    if (impl.listen_fd >= 0) ::close(impl.listen_fd);

    // Backends next: readers exit, teardown fails whatever is pending with
    // "unavailable" (stopping suppresses re-dispatch), so every client
    // future is resolved before the connection writers drain below.
    for (auto& backend : impl.backends) {
      std::lock_guard lock(backend->state_mutex);
      if (backend->fd >= 0) ::shutdown(backend->fd, SHUT_RDWR);
    }
    for (auto& backend : impl.backends) {
      if (backend->reader.joinable()) backend->reader.join();
      std::lock_guard wlock(backend->write_mutex);
      std::lock_guard slock(backend->state_mutex);
      if (backend->fd >= 0) ::close(backend->fd);
      backend->fd = -1;
    }

    std::list<std::unique_ptr<Impl::Conn>> conns;
    {
      std::lock_guard lock(impl.conn_mutex);
      conns.swap(impl.conns);
    }
    for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
    for (auto& conn : conns) {
      if (conn->thread.joinable()) conn->thread.join();
      ::close(conn->fd);
    }
    if (!impl.bound_unix_path.empty()) ::unlink(impl.bound_unix_path.c_str());
  });
}

int Balancer::tcp_port() const noexcept { return impl_->bound_tcp_port; }

const std::string& Balancer::unix_path() const noexcept {
  return impl_->bound_unix_path;
}

Balancer::Stats Balancer::stats() const {
  Stats out;
  {
    std::lock_guard lock(impl_->stats_mutex);
    out.connections = impl_->connections;
    out.requests = impl_->requests;
    out.protocol_errors = impl_->protocol_errors;
    out.redispatches = impl_->redispatches;
    out.backend_failures = impl_->backend_failures;
    out.reconnects = impl_->reconnects;
    out.peak_message_bytes = impl_->peak_message_bytes;
  }
  out.routed.reserve(impl_->backends.size());
  for (const auto& backend : impl_->backends) {
    out.routed.push_back(backend->routed.load(std::memory_order_relaxed));
  }
  return out;
}

std::size_t Balancer::alive_backends() const {
  std::size_t alive = 0;
  for (const auto& backend : impl_->backends) {
    if (backend->alive.load(std::memory_order_acquire)) ++alive;
  }
  return alive;
}

}  // namespace repro::fleet
