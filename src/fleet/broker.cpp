#include "fleet/broker.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <list>
#include <mutex>
#include <thread>
#include <utility>

#include "common/log.hpp"
#include "common/net.hpp"
#include "serve/protocol.hpp"

namespace repro::fleet {

namespace {

common::Error errno_error(const std::string& what) {
  return common::io_error(what + ": " + std::strerror(errno));
}

// Replies are small (one JSON line); a worker that cannot absorb one within
// 30s has wedged — drop it, it will retry with backoff.
bool write_all(int fd, std::string_view data) {
  return common::net::write_all(fd, data, std::chrono::milliseconds(30000))
             .status == common::net::IoStatus::kOk;
}

}  // namespace

struct Broker::Impl {
  serve::ServiceConfig config;
  BrokerOptions options;
  std::unique_ptr<serve::ModelCache> cache;
  int listen_fd = -1;
  std::string bound_path;

  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  std::thread acceptor;
  std::mutex conn_mutex;
  std::list<std::unique_ptr<Conn>> conns;
  std::atomic<bool> stopping{false};
  std::once_flag stop_once;

  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked();
  [[nodiscard]] std::string answer(const std::string& line);
};

Broker::Broker() : impl_(std::make_unique<Impl>()) {}

common::Result<std::unique_ptr<Broker>> Broker::start(serve::ServiceConfig config,
                                                      const BrokerOptions& options) {
  if (options.unix_path.empty()) {
    return common::invalid_argument("Broker: unix_path is required");
  }
  if (options.cache_dir.empty()) {
    return common::invalid_argument(
        "Broker: cache_dir is required (workers load the write-through copy)");
  }
  std::unique_ptr<Broker> broker(new Broker());
  broker->impl_->config = std::move(config);
  broker->impl_->options = options;
  broker->impl_->cache =
      std::make_unique<serve::ModelCache>(options.cache_capacity, options.cache_dir);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.unix_path.size() >= sizeof(addr.sun_path)) {
    return common::invalid_argument("Broker: unix path too long: " + options.unix_path);
  }
  std::strncpy(addr.sun_path, options.unix_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("Broker: socket(AF_UNIX)");
  ::unlink(options.unix_path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    auto err = errno_error("Broker: bind(" + options.unix_path + ")");
    ::close(fd);
    return err;
  }
  if (::listen(fd, 16) != 0) {
    auto err = errno_error("Broker: listen");
    ::close(fd);
    return err;
  }
  broker->impl_->listen_fd = fd;
  broker->impl_->bound_path = options.unix_path;
  broker->impl_->acceptor =
      std::thread([impl = broker->impl_.get()] { impl->accept_loop(); });
  return broker;
}

void Broker::Impl::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping.load(std::memory_order_acquire)) return;
      if (errno == ECONNABORTED) continue;
      common::log_error() << "Broker: accept: " << std::strerror(errno)
                          << "; no longer accepting";
      return;
    }
    std::lock_guard lock(conn_mutex);
    if (stopping.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    reap_finished_locked();
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conns.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] {
      serve_connection(raw->fd);
      ::shutdown(raw->fd, SHUT_RDWR);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void Broker::Impl::reap_finished_locked() {
  for (auto it = conns.begin(); it != conns.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = conns.erase(it);
    } else {
      ++it;
    }
  }
}

std::string Broker::Impl::answer(const std::string& line) {
  auto doc = serve::parse_json(line);
  const std::uint64_t id = serve::best_effort_id(line);
  if (!doc.ok()) return serve::format_error(id, doc.error());
  const serve::JsonValue* type =
      doc.value().is_object() ? doc.value().find("type") : nullptr;
  if (type == nullptr || !type->is_string()) {
    return serve::format_error(
        id, common::parse_error("broker: request needs a string \"type\""));
  }
  const std::string_view t = type->as_string();
  if (t == "model") {
    // Train-or-load under the cache's own mutex: N workers asking at once
    // block here and the suite is fitted exactly once for the whole fleet.
    auto model = serve::Service::train_or_fetch(config, *cache);
    if (!model.ok()) return serve::format_error(id, model.error());
    const serve::ModelKey key = serve::Service::key_for(config);
    return "{\"id\":" + std::to_string(id) + ",\"status\":\"ok\",\"key\":" +
           serve::json_quote(key.to_string()) +
           ",\"path\":" + serve::json_quote(cache->disk_path(key)) + "}";
  }
  if (t == "health" || t == "stats") {
    const auto cache_stats = cache->stats();
    serve::WireStats wire;
    wire.cache_hits = cache_stats.hits + cache_stats.disk_hits;
    wire.cache_misses = cache_stats.misses;
    return t == "health" ? serve::format_health_response(id, wire)
                         : serve::format_stats_response(id, wire);
  }
  return serve::format_error(
      id, common::parse_error("broker: unknown request type \"" + std::string(t) +
                              "\""));
}

void Broker::Impl::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // Blocking (timeout 0): workers keep the connection only for the fetch,
    // but a worker mid-backoff between retries may legitimately idle here.
    const auto r = common::net::read_some(fd, chunk, sizeof chunk,
                                          std::chrono::milliseconds(0));
    if (r.status != common::net::IoStatus::kOk) return;  // EOF, error, shutdown
    buffer.append(chunk, r.bytes);

    std::size_t start = 0;
    for (;;) {
      const auto nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string reply = answer(line);
      reply.push_back('\n');
      if (!write_all(fd, reply)) return;
    }
    buffer.erase(0, start);
    if (buffer.size() > (1u << 16)) return;  // no broker request is this long
  }
}

Broker::~Broker() {
  if (impl_ != nullptr) stop();
}

void Broker::stop() {
  std::call_once(impl_->stop_once, [this] {
    impl_->stopping.store(true, std::memory_order_release);
    if (impl_->listen_fd >= 0) ::shutdown(impl_->listen_fd, SHUT_RDWR);
    if (impl_->acceptor.joinable()) impl_->acceptor.join();
    if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
    std::list<std::unique_ptr<Impl::Conn>> conns;
    {
      std::lock_guard lock(impl_->conn_mutex);
      conns.swap(impl_->conns);
    }
    for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
    for (auto& conn : conns) {
      if (conn->thread.joinable()) conn->thread.join();
      ::close(conn->fd);
    }
    if (!impl_->bound_path.empty()) ::unlink(impl_->bound_path.c_str());
  });
}

const std::string& Broker::unix_path() const noexcept { return impl_->bound_path; }

const serve::ModelCache& Broker::cache() const noexcept { return *impl_->cache; }

common::Result<BrokerModelReply> fetch_model(const std::string& broker_unix_path,
                                             const serve::ConnectOptions& retry) {
  // Raw fd round trip rather than SocketClient: the reply is a broker
  // message, not a prediction, and SocketClient's typed readers would
  // reject it. Connect retry still comes from the shared backoff helper.
  // The read blocks for the whole training run when this worker is the
  // fleet's first — that can legitimately take minutes, so the fetch gets a
  // much longer io_timeout than a prediction round trip would.
  serve::ConnectOptions options = retry;
  options.io_timeout = std::max(options.io_timeout, std::chrono::milliseconds(300000));
  auto client = serve::SocketClient::connect_unix(broker_unix_path, options);
  if (!client.ok()) return client.error();
  auto reply = client.value().raw_round_trip("{\"id\":1,\"type\":\"model\"}");
  if (!reply.ok()) return reply.error();
  auto doc = serve::parse_json(reply.value());
  if (!doc.ok()) return doc.error();
  if (doc.value().is_object()) {
    if (const serve::JsonValue* error = doc.value().find("error");
        error != nullptr && error->is_object()) {
      const serve::JsonValue* message = error->find("message");
      return common::unavailable(
          "broker: " + (message != nullptr && message->is_string()
                            ? std::string(message->as_string())
                            : std::string("unknown error")));
    }
  }
  const serve::JsonValue* status =
      doc.value().is_object() ? doc.value().find("status") : nullptr;
  const serve::JsonValue* key =
      doc.value().is_object() ? doc.value().find("key") : nullptr;
  const serve::JsonValue* path =
      doc.value().is_object() ? doc.value().find("path") : nullptr;
  if (status == nullptr || !status->is_string() || status->as_string() != "ok" ||
      key == nullptr || !key->is_string() || path == nullptr || !path->is_string()) {
    return common::parse_error("broker: malformed model reply: " + reply.value());
  }
  return BrokerModelReply{std::string(key->as_string()),
                          std::string(path->as_string())};
}

}  // namespace repro::fleet
