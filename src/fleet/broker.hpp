// The fleet's shared model-cache broker: a small line-JSON socket service
// the workers consult before training, backed by serve::ModelCache's disk
// write-through.
//
// Without it, every worker of an N-process fleet would train the same suite
// at startup — N identical multi-second SVR fits. The broker owns the one
// ModelCache (and its shared disk directory); a worker asks
//
//   {"id": 1, "type": "model"}
//
// and the broker trains (or disk-loads) the fleet's configured model —
// concurrent workers block on the same get_or_train mutex, so training
// happens exactly once — then answers with where the write-through copy
// landed:
//
//   {"id": 1, "status": "ok", "key": "<canonical key>", "path": "<file>"}
//
// The worker then points its own ModelCache at the same directory and gets
// a disk hit. Determinism is preserved across this hand-off because
// FrequencyModel's serialization round-trips exactly (asserted in
// tests/serve_test.cpp): a disk-loaded model predicts bit-identically to
// the freshly trained one.
//
// The broker also answers {"type": "stats"} with its cache counters, and
// {"type": "health"} with a liveness line — repro_fleet polls that at
// startup.
#pragma once

#include <memory>
#include <string>

#include "common/status.hpp"
#include "serve/client.hpp"
#include "serve/model_cache.hpp"
#include "serve/service.hpp"

namespace repro::fleet {

struct BrokerOptions {
  /// Unix socket the broker listens on.
  std::string unix_path;
  /// Shared write-through directory; workers must use the same one.
  std::string cache_dir;
  std::size_t cache_capacity = 4;
};

class Broker {
 public:
  /// Bind, listen, and serve "model" requests for this one fleet config.
  [[nodiscard]] static common::Result<std::unique_ptr<Broker>> start(
      serve::ServiceConfig config, const BrokerOptions& options);

  ~Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Stop accepting and join all threads. Idempotent; also run by the
  /// destructor.
  void stop();

  [[nodiscard]] const std::string& unix_path() const noexcept;
  [[nodiscard]] const serve::ModelCache& cache() const noexcept;

 private:
  Broker();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Worker-side call: ask the broker (with connect retry — the broker may
/// still be binding when a worker starts) to ensure the fleet's model is
/// trained and persisted. Returns the on-disk path of the model. Blocks for
/// as long as training takes.
struct BrokerModelReply {
  std::string key;   // canonical ModelKey the broker trained
  std::string path;  // write-through file the worker can load
};
[[nodiscard]] common::Result<BrokerModelReply> fetch_model(
    const std::string& broker_unix_path, const serve::ConnectOptions& retry = {});

}  // namespace repro::fleet
