#include "fleet/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "serve/client.hpp"

namespace repro::fleet {

namespace {

constexpr auto kPollInterval = std::chrono::milliseconds(100);
constexpr auto kTermGrace = std::chrono::seconds(10);

/// fork/exec one worker with stdout+stderr appended to `log_path`. Only
/// async-signal-safe calls between fork and exec (argv/envp are prepared in
/// the parent).
common::Result<pid_t> spawn_process(const std::vector<std::string>& args,
                                    const std::string& log_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return common::io_error(std::string("Supervisor: fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      if (log_fd > STDERR_FILENO) ::close(log_fd);
    }
    // Undo the parent's blocked SIGINT/SIGTERM (repro_fleet sigwaits on
    // them); the worker must receive its own shutdown signals.
    sigset_t none;
    sigemptyset(&none);
    pthread_sigmask(SIG_SETMASK, &none, nullptr);
    ::execv(argv[0], argv.data());
    // exec failed; the 127 shows up as a crash in the monitor's waitpid.
    ::_exit(127);
  }
  return pid;
}

/// Poll-connect until the worker answers a health round trip (repro_serve
/// accepts only after its model is ready, so this means "serving").
common::Status wait_serving(const std::string& socket_path,
                            std::chrono::seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  serve::ConnectOptions retry;
  retry.attempts = 1;
  for (;;) {
    auto client = serve::SocketClient::connect_unix(socket_path, retry);
    if (client.ok()) {
      if (auto health = client.value().health(); health.ok()) {
        return common::Status::Ok();
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return common::unavailable("Supervisor: worker at " + socket_path +
                                 " not serving within timeout");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

}  // namespace

struct Supervisor::Impl {
  WorkerSpec spec;
  SupervisorOptions options;

  struct Worker {
    std::string socket_path;
    std::string log_path;
    pid_t pid = -1;
    bool restart_requested = false;
    bool restart_done = false;
    common::Status restart_status;
    std::thread monitor;
  };

  std::vector<std::unique_ptr<Worker>> workers;
  mutable std::mutex mutex;          // workers' pid/flags + stats
  std::condition_variable restart_cv;
  std::atomic<bool> stopping{false};
  std::once_flag stop_once;
  Stats stats;
  std::thread chaos;

  /// SIGKILL a seeded-random live worker every chaos_kill_interval. The
  /// worker's own monitor sees the exit as a crash and respawns it — chaos
  /// mode only supplies the kills, recovery is the normal path under test.
  void chaos_loop() {
    common::SplitMix64 rng(options.chaos_seed);
    for (;;) {
      // Sleep in small slices so stop() is not delayed by a long interval.
      const auto until = std::chrono::steady_clock::now() + options.chaos_kill_interval;
      while (std::chrono::steady_clock::now() < until) {
        if (stopping.load(std::memory_order_acquire)) return;
        std::this_thread::sleep_for(kPollInterval);
      }
      const std::size_t victim = rng.next() % workers.size();
      pid_t pid;
      {
        // Kill under the mutex so pid and the kill count stay coherent with
        // the monitor's respawn bookkeeping.
        std::lock_guard lock(mutex);
        pid = workers[victim]->pid;
        if (pid > 0) {
          ++stats.chaos_kills;
          ::kill(pid, SIGKILL);
        }
      }
      if (pid <= 0) continue;  // mid-respawn; try again next tick
      common::log_warn() << "Supervisor[chaos]: SIGKILLed worker " << victim
                         << " (pid " << pid << ")";
    }
  }

  [[nodiscard]] std::vector<std::string> worker_args(const Worker& worker) const {
    std::vector<std::string> args;
    args.reserve(spec.common_args.size() + 3);
    args.push_back(spec.binary);
    args.push_back("--unix");
    args.push_back(worker.socket_path);
    for (const auto& a : spec.common_args) args.push_back(a);
    return args;
  }

  common::Status spawn_and_wait(Worker& worker) {
    auto pid = spawn_process(worker_args(worker), worker.log_path);
    if (!pid.ok()) return pid.error();
    {
      std::lock_guard lock(mutex);
      worker.pid = pid.value();
      ++stats.spawns;
    }
    return wait_serving(worker.socket_path, options.ready_timeout);
  }

  void terminate(Worker& worker) {
    pid_t pid;
    {
      std::lock_guard lock(mutex);
      pid = worker.pid;
    }
    if (pid <= 0) return;
    ::kill(pid, SIGTERM);
    const auto deadline = std::chrono::steady_clock::now() + kTermGrace;
    for (;;) {
      int status = 0;
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid || (r < 0 && errno == ECHILD)) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(kPollInterval);
    }
    std::lock_guard lock(mutex);
    worker.pid = -1;
  }

  void monitor_loop(Worker& worker) {
    for (;;) {
      if (stopping.load(std::memory_order_acquire)) return;

      bool do_restart = false;
      {
        std::lock_guard lock(mutex);
        do_restart = worker.restart_requested && !worker.restart_done;
      }
      if (do_restart) {
        terminate(worker);
        auto status = spawn_and_wait(worker);
        std::lock_guard lock(mutex);
        worker.restart_status = status;
        worker.restart_done = true;
        if (status.ok()) ++stats.restarts;
        restart_cv.notify_all();
      }

      pid_t pid;
      {
        std::lock_guard lock(mutex);
        pid = worker.pid;
      }
      if (pid > 0) {
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid) {
          // Exit the supervisor did not request — a crash (or a kill -9
          // from outside). Respawn; the balancer reconnects to the same
          // socket path on its own.
          {
            std::lock_guard lock(mutex);
            worker.pid = -1;
            ++stats.crashes;
          }
          common::log_warn() << "Supervisor: worker " << worker.socket_path
                             << " exited unexpectedly (status " << status << ")";
          if (options.auto_restart && !stopping.load(std::memory_order_acquire)) {
            if (auto st = spawn_and_wait(worker); !st.ok()) {
              common::log_error() << "Supervisor: respawn failed: "
                                  << st.error().to_string();
            }
          }
        }
      }
      std::this_thread::sleep_for(kPollInterval);
    }
  }
};

Supervisor::Supervisor() : impl_(std::make_unique<Impl>()) {}

common::Result<std::unique_ptr<Supervisor>> Supervisor::start(
    WorkerSpec spec, const SupervisorOptions& options) {
  if (options.workers == 0) {
    return common::invalid_argument("Supervisor: need at least one worker");
  }
  if (options.socket_dir.empty()) {
    return common::invalid_argument("Supervisor: socket_dir is required");
  }
  std::unique_ptr<Supervisor> supervisor(new Supervisor());
  supervisor->impl_->spec = std::move(spec);
  supervisor->impl_->options = options;

  for (std::size_t i = 0; i < options.workers; ++i) {
    auto worker = std::make_unique<Impl::Worker>();
    worker->socket_path =
        options.socket_dir + "/worker-" + std::to_string(i) + ".sock";
    worker->log_path = options.socket_dir + "/worker-" + std::to_string(i) + ".log";
    supervisor->impl_->workers.push_back(std::move(worker));
  }
  // Spawn everything first (the broker serializes their training), then
  // wait: a cold fleet starts in max(train, load...) rather than the sum.
  for (auto& worker : supervisor->impl_->workers) {
    auto pid = spawn_process(supervisor->impl_->worker_args(*worker),
                             worker->log_path);
    if (!pid.ok()) {
      supervisor->stop();
      return pid.error();
    }
    std::lock_guard lock(supervisor->impl_->mutex);
    worker->pid = pid.value();
    ++supervisor->impl_->stats.spawns;
  }
  for (auto& worker : supervisor->impl_->workers) {
    if (auto st = wait_serving(worker->socket_path, options.ready_timeout);
        !st.ok()) {
      supervisor->stop();
      return st.error();
    }
  }
  for (auto& worker : supervisor->impl_->workers) {
    worker->monitor = std::thread(
        [impl = supervisor->impl_.get(), w = worker.get()] { impl->monitor_loop(*w); });
  }
  if (options.chaos_kill_interval.count() > 0) {
    supervisor->impl_->chaos =
        std::thread([impl = supervisor->impl_.get()] { impl->chaos_loop(); });
  }
  return supervisor;
}

std::vector<std::string> Supervisor::endpoints() const {
  std::vector<std::string> out;
  out.reserve(impl_->workers.size());
  for (const auto& worker : impl_->workers) out.push_back(worker->socket_path);
  return out;
}

std::vector<pid_t> Supervisor::pids() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<pid_t> out;
  out.reserve(impl_->workers.size());
  for (const auto& worker : impl_->workers) out.push_back(worker->pid);
  return out;
}

common::Status Supervisor::restart(std::size_t index) {
  if (index >= impl_->workers.size()) {
    return common::out_of_range("Supervisor: no worker " + std::to_string(index));
  }
  auto& worker = *impl_->workers[index];
  std::unique_lock lock(impl_->mutex);
  worker.restart_requested = true;
  worker.restart_done = false;
  impl_->restart_cv.wait(lock, [&] {
    return worker.restart_done || impl_->stopping.load(std::memory_order_acquire);
  });
  worker.restart_requested = false;
  return worker.restart_status;
}

Supervisor::Stats Supervisor::stats() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->stats;
}

void Supervisor::stop() {
  std::call_once(impl_->stop_once, [this] {
    impl_->stopping.store(true, std::memory_order_release);
    impl_->restart_cv.notify_all();
    if (impl_->chaos.joinable()) impl_->chaos.join();
    for (auto& worker : impl_->workers) {
      if (worker->monitor.joinable()) worker->monitor.join();
    }
    for (auto& worker : impl_->workers) impl_->terminate(*worker);
  });
}

Supervisor::~Supervisor() {
  if (impl_ != nullptr) stop();
}

}  // namespace repro::fleet
