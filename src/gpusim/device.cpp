#include "gpusim/device.hpp"

namespace repro::gpusim {

namespace {

constexpr std::size_t idx(OpClass c) { return static_cast<std::size_t>(c); }

void fill_maxwell_throughputs(DeviceModel& d) {
  // Ops per cycle per SM (GM200-like). Divides and special functions run on
  // narrower units; local (shared) memory sustains one access per lane per
  // two cycles.
  d.throughput[idx(OpClass::kIntAdd)] = 128.0;
  d.throughput[idx(OpClass::kIntMul)] = 32.0;
  d.throughput[idx(OpClass::kIntDiv)] = 4.0;   // emulated, multi-instruction
  d.throughput[idx(OpClass::kIntBitwise)] = 128.0;
  d.throughput[idx(OpClass::kFloatAdd)] = 128.0;
  d.throughput[idx(OpClass::kFloatMul)] = 128.0;
  d.throughput[idx(OpClass::kFloatDiv)] = 8.0;
  d.throughput[idx(OpClass::kSpecialFn)] = 32.0;
  d.throughput[idx(OpClass::kGlobalAccess)] = 128.0;  // issue side only
  d.throughput[idx(OpClass::kLocalAccess)] = 64.0;
}

void fill_maxwell_energies(DeviceModel& d) {
  // Relative switching energy per executed op (dimensionless; the
  // core_power_coef carries the absolute scale). Wide ops are cheap, divides
  // and transcendentals expensive, memory instructions carry address-path
  // cost on the core side.
  d.op_energy[idx(OpClass::kIntAdd)] = 1.0;
  d.op_energy[idx(OpClass::kIntMul)] = 1.8;
  d.op_energy[idx(OpClass::kIntDiv)] = 6.0;
  d.op_energy[idx(OpClass::kIntBitwise)] = 0.9;
  d.op_energy[idx(OpClass::kFloatAdd)] = 1.3;
  d.op_energy[idx(OpClass::kFloatMul)] = 1.6;
  d.op_energy[idx(OpClass::kFloatDiv)] = 7.0;
  d.op_energy[idx(OpClass::kSpecialFn)] = 4.0;
  d.op_energy[idx(OpClass::kGlobalAccess)] = 2.5;
  d.op_energy[idx(OpClass::kLocalAccess)] = 2.2;
}

}  // namespace

DeviceModel DeviceModel::titan_x() {
  DeviceModel d;
  d.name = "NVIDIA GTX Titan X (simulated)";
  d.freq = FrequencyDomain::titan_x();
  d.voltage = VoltageCurve::titan_x();
  d.num_sms = 24;
  d.lanes_per_sm = 128;
  d.bytes_per_mem_cycle = 96.0;
  fill_maxwell_throughputs(d);
  fill_maxwell_energies(d);
  return d;
}

DeviceModel DeviceModel::tesla_p100() {
  DeviceModel d;
  d.name = "NVIDIA Tesla P100 (simulated)";
  d.freq = FrequencyDomain::tesla_p100();
  d.voltage = VoltageCurve::tesla_p100();
  d.num_sms = 56;
  d.lanes_per_sm = 64;
  // HBM2: 732 GB/s at 715 MHz at ~70% efficiency -> ~1463 B/cycle raw.
  d.bytes_per_mem_cycle = 1463.0;
  d.mem_eff_drop = 0.30;
  d.mem_eff_exponent = 1.5;
  d.mem_ref_mhz = 715.0;
  fill_maxwell_throughputs(d);
  fill_maxwell_energies(d);
  d.core_power_coef = 150.0;
  d.mem_power_coef = 40.0;
  return d;
}

}  // namespace repro::gpusim
