// Architectural parameters of the simulated GPU: per-class execution
// throughputs, memory system characteristics and power-model coefficients.
// Values are calibrated to a GM200 "Titan X" so absolute numbers land in a
// plausible range (TDP 250 W, 336 GB/s peak bandwidth, ~6 TFLOP/s FP32).
#pragma once

#include <array>
#include <string>

#include "gpusim/freq_table.hpp"
#include "gpusim/kernel_profile.hpp"
#include "gpusim/voltage.hpp"

namespace repro::gpusim {

struct DeviceModel {
  std::string name;
  FrequencyDomain freq;
  VoltageCurve voltage = VoltageCurve::titan_x();

  // --- Execution resources -------------------------------------------------
  int num_sms = 24;          // GM200: 24 SMM
  int lanes_per_sm = 128;    // CUDA cores per SMM

  /// Per-class issue throughput in operations per cycle per SM.
  std::array<double, kNumOpClasses> throughput{};

  // --- Memory system -------------------------------------------------------
  /// DRAM bytes per memory-clock cycle (device-wide) at perfect efficiency.
  double bytes_per_mem_cycle = 175.0;

  /// DRAM efficiency falls with the memory clock (row-buffer conflicts and
  /// command overhead bite harder at high data rates):
  ///   eff(f_mem) = 1 - mem_eff_drop * (f_mem / mem_ref_mhz)^mem_eff_exponent
  /// At the Titan X defaults this yields ~0.55 * 175 B/cyc * 3505 MHz
  /// = ~337 GB/s effective at mem-H (the quoted peak) while the lower
  /// memory clocks run near-perfectly efficient — which is why the paper's
  /// memory-bound kernels sit at ~0.5x speedup at mem-l rather than at the
  /// raw 810/3505 clock ratio.
  double mem_eff_drop = 0.45;
  double mem_eff_exponent = 1.5;
  double mem_ref_mhz = 3505.0;

  /// Memory-request issue cost on the core side, cycles per access per lane.
  /// This is what keeps even memory-bound kernels mildly core-sensitive.
  double mem_issue_cycles = 4.0;

  // --- Power model ----------------------------------------------------------
  /// Relative switching energy per op class (dimensionless weights).
  std::array<double, kNumOpClasses> op_energy{};

  double core_power_coef = 150.0;   // W at V=1, f=1 GHz, mix-weight 1, util 1
  double mem_power_coef = 95.0;     // W at nominal Vmem, f_mem = 3505 MHz, util 1
  double static_power_base = 12.0;  // V-independent board power (fans, VRM)
  double static_power_v2 = 10.0;    // leakage term scaled by V(f)^2
  double mem_static_base = 4.0;     // DRAM refresh/PLL floor ...
  double mem_static_slope = 22.0;   // ... plus a term growing with f_mem

  /// Kernel launch/driver overhead per invocation (seconds).
  double launch_overhead_s = 5e-6;

  /// Simulated Titan X (Maxwell) — the paper's platform.
  [[nodiscard]] static DeviceModel titan_x();

  /// Simulated Tesla P100 (used only for the Fig. 4b frequency-domain plot).
  [[nodiscard]] static DeviceModel tesla_p100();

  [[nodiscard]] double tput(OpClass c) const noexcept {
    return throughput[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double energy_weight(OpClass c) const noexcept {
    return op_energy[static_cast<std::size_t>(c)];
  }
};

}  // namespace repro::gpusim
