#include "gpusim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace repro::gpusim {

namespace {

/// Noise amplitudes per memory level: the two high clocks measure cleanly,
/// the low clocks are progressively worse (paper §4.2–4.4).
struct LevelNoise {
  double systematic_offset;  // per-(kernel, level) efficiency offset scale
  double wiggle;             // core-frequency-dependent systematic wiggle
  double time_jitter;        // multiplicative measurement jitter on time
  double power_jitter;       // multiplicative measurement jitter on power
};

LevelNoise level_noise(MemLevel level) {
  switch (level) {
    case MemLevel::kL: return {0.10, 0.07, 0.030, 0.035};
    case MemLevel::kLow: return {0.09, 0.06, 0.018, 0.022};
    case MemLevel::kHigh: return {0.0, 0.0, 0.007, 0.009};
    case MemLevel::kH: return {0.0, 0.0, 0.007, 0.009};
  }
  return {0.0, 0.0, 0.0, 0.0};
}

std::uint64_t key_of(std::uint64_t seed, const std::string& kernel, FrequencyConfig c,
                     std::uint64_t salt) {
  std::uint64_t k = common::hash_combine(seed, common::fnv1a(kernel));
  k = common::hash_combine(k, static_cast<std::uint64_t>(c.core_mhz));
  k = common::hash_combine(k, static_cast<std::uint64_t>(c.mem_mhz));
  return common::hash_combine(k, salt);
}

}  // namespace

GpuSimulator::GpuSimulator(DeviceModel device, SimOptions options)
    : device_(std::move(device)), options_(options) {}

double GpuSimulator::mem_efficiency_modifier(const KernelProfile& profile,
                                             FrequencyConfig config) const {
  if (!options_.erratic_behaviour) return 1.0;
  const auto level = device_.freq.level_of(config.mem_mhz);
  if (!level.ok()) return 1.0;
  const LevelNoise noise = level_noise(level.value());
  if (noise.systematic_offset == 0.0 && noise.wiggle == 0.0) return 1.0;

  const double erratic = std::clamp(profile.erratic, 0.0, 1.0);

  // Per-(kernel, memory level) systematic offset: the same kernel is
  // consistently faster or slower than nominal at this memory clock.
  const std::uint64_t level_key = common::hash_combine(
      common::hash_combine(options_.seed, common::fnv1a(profile.name)),
      static_cast<std::uint64_t>(config.mem_mhz));
  const double offset =
      erratic * noise.systematic_offset * common::hash_gaussian(level_key);

  // Core-frequency-dependent wiggle with a kernel-specific phase and period:
  // a smooth, systematic deviation no static feature can explain.
  const double phase = common::hash_uniform(common::mix64(level_key)) * 2.0 *
                       std::numbers::pi;
  const double period_mhz = 220.0 + 200.0 * common::hash_uniform(common::mix64(level_key ^ 0x77));
  const double wiggle =
      erratic * noise.wiggle *
      std::sin(2.0 * std::numbers::pi * static_cast<double>(config.core_mhz) / period_mhz +
               phase);

  return std::clamp(1.0 + offset + wiggle, 0.55, 1.45);
}

Measurement GpuSimulator::measure(const KernelProfile& profile,
                                  FrequencyConfig actual) const {
  const double eff = mem_efficiency_modifier(profile, actual);
  const TimingBreakdown timing = compute_timing(device_, profile, actual, eff);
  const PowerBreakdown power = compute_power(device_, profile, actual, timing);

  double time_s = timing.total_s;
  double power_w = power.total();

  const auto level = device_.freq.level_of(actual.mem_mhz);
  const LevelNoise noise =
      level.ok() ? level_noise(level.value()) : LevelNoise{0, 0, 0.01, 0.01};

  if (options_.measurement_noise) {
    const std::uint64_t kt = key_of(options_.seed, profile.name, actual, 0x71AE);
    const std::uint64_t kp = key_of(options_.seed, profile.name, actual, 0x9022);
    time_s *= 1.0 + noise.time_jitter * common::hash_gaussian(kt);
    power_w *= 1.0 + noise.power_jitter * common::hash_gaussian(kp);

    // NVML power sampling at 62.5 Hz: the benchmark harness re-runs the
    // kernel until the sampling window is filled; the residual uncertainty
    // of the mean shrinks with the number of samples (paper §4.1).
    const double window = std::max(options_.sampling_window_s, time_s);
    const double n_samples = std::max(1.0, window * options_.sampling_hz);
    const double sample_sigma_w = 2.0 / std::sqrt(n_samples);
    const std::uint64_t ks = key_of(options_.seed, profile.name, actual, 0x5A3B);
    power_w += sample_sigma_w * common::hash_gaussian(ks);
  }

  Measurement m;
  m.config = actual;
  m.time_ms = time_s * 1e3;
  m.avg_power_w = std::max(power_w, 1.0);
  m.energy_j = m.avg_power_w * time_s;
  return m;
}

common::Result<Measurement> GpuSimulator::run(const KernelProfile& profile,
                                              FrequencyConfig requested) const {
  auto actual = device_.freq.resolve(requested);
  if (!actual.ok()) return actual.error();
  return measure(profile, actual.value());
}

Measurement GpuSimulator::run_at(const KernelProfile& profile,
                                 FrequencyConfig actual) const {
  return measure(profile, actual);
}

Measurement GpuSimulator::run_default(const KernelProfile& profile) const {
  return measure(profile, device_.freq.default_config());
}

double GpuSimulator::speedup(const KernelProfile& profile, FrequencyConfig config) const {
  const Measurement def = run_default(profile);
  const Measurement m = run_at(profile, config);
  return def.time_ms / m.time_ms;
}

double GpuSimulator::normalized_energy(const KernelProfile& profile,
                                       FrequencyConfig config) const {
  const Measurement def = run_default(profile);
  const Measurement m = run_at(profile, config);
  return m.energy_j / def.energy_j;
}

std::vector<GpuSimulator::CharacterizedPoint> GpuSimulator::characterize(
    const KernelProfile& profile, std::span<const FrequencyConfig> configs) const {
  const Measurement def = run_default(profile);
  std::vector<CharacterizedPoint> out;
  out.reserve(configs.size());
  for (const FrequencyConfig& c : configs) {
    const Measurement m = run_at(profile, c);
    out.push_back({c, def.time_ms / m.time_ms, m.energy_j / def.energy_j});
  }
  return out;
}

}  // namespace repro::gpusim
