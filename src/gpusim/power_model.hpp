// Board power model, decomposed per architectural component in the style of
// Guerreiro et al. [11] (the paper's feature design follows the same
// decomposition): voltage-squared-scaled core dynamic power weighted by the
// executed instruction mix, memory dynamic power on the memory clock, and
// static/leakage power that rises with the core voltage.
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/kernel_profile.hpp"
#include "gpusim/perf_model.hpp"

namespace repro::gpusim {

struct PowerBreakdown {
  double core_dynamic_w = 0.0;
  double mem_dynamic_w = 0.0;
  double static_w = 0.0;      // board + leakage (V-dependent)
  double mem_static_w = 0.0;  // DRAM refresh/idle, scales with memory clock
  [[nodiscard]] double total() const noexcept {
    return core_dynamic_w + mem_dynamic_w + static_w + mem_static_w;
  }
};

/// Average board power over the busy window of one kernel invocation.
[[nodiscard]] PowerBreakdown compute_power(const DeviceModel& device,
                                           const KernelProfile& profile,
                                           FrequencyConfig config,
                                           const TimingBreakdown& timing);

/// Mix-weighted mean switching energy of the profile's instruction blend,
/// normalized so a "typical" arithmetic mix is ~1.0.
[[nodiscard]] double mix_energy_factor(const DeviceModel& device,
                                       const KernelProfile& profile) noexcept;

}  // namespace repro::gpusim
