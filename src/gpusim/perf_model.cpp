#include "gpusim/perf_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace repro::gpusim {

TimingBreakdown compute_timing(const DeviceModel& device, const KernelProfile& profile,
                               FrequencyConfig config, double mem_efficiency) {
  if (config.core_mhz <= 0 || config.mem_mhz <= 0) {
    throw std::invalid_argument("compute_timing: non-positive clock");
  }
  if (mem_efficiency <= 0.0) {
    throw std::invalid_argument("compute_timing: non-positive mem_efficiency");
  }
  const double fc_hz = static_cast<double>(config.core_mhz) * 1e6;
  const double fm_hz = static_cast<double>(config.mem_mhz) * 1e6;
  const double w = static_cast<double>(profile.work_items);
  const double sms = static_cast<double>(device.num_sms);
  const double lanes = sms * static_cast<double>(device.lanes_per_sm);

  // Compute phase: per-class device throughput at fc is tput_c * sms ops per
  // core cycle; classes contend for issue slots, so their times add.
  double compute_s = 0.0;
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    const double n = profile.ops[c];
    if (n <= 0.0) continue;
    const double device_tput = device.throughput[c] * sms;  // ops per cycle
    compute_s += w * n / (device_tput * fc_hz);
  }
  // Core-side cost of issuing global memory requests (address generation,
  // LSU occupancy). Keeps memory-bound kernels mildly core-sensitive.
  const double n_gl = profile.op(OpClass::kGlobalAccess);
  compute_s += w * n_gl * device.mem_issue_cycles / (lanes * fc_hz);

  // DRAM phase: only cache misses reach DRAM. Efficiency degrades with the
  // memory clock (see DeviceModel::mem_eff_drop).
  const double bytes =
      w * n_gl * profile.bytes_per_access * std::clamp(1.0 - profile.cache_hit_rate, 0.0, 1.0);
  const double dram_eff =
      1.0 - device.mem_eff_drop *
                std::pow(static_cast<double>(config.mem_mhz) / device.mem_ref_mhz,
                         device.mem_eff_exponent);
  const double eff_bw =
      device.bytes_per_mem_cycle * fm_hz * std::clamp(dram_eff, 0.05, 1.0) *
      std::clamp(profile.mem_coalescing, 0.05, 1.0) * mem_efficiency;
  const double dram_s = bytes > 0.0 ? bytes / eff_bw : 0.0;

  TimingBreakdown t;
  t.compute_s = compute_s;
  t.dram_s = dram_s;
  const double longer = std::max(compute_s, dram_s);
  const double shorter = std::min(compute_s, dram_s);
  t.busy_s = longer + std::clamp(profile.overlap_penalty, 0.0, 1.0) * shorter;
  t.total_s = t.busy_s + device.launch_overhead_s;
  if (t.busy_s > 0.0) {
    t.core_util = std::min(1.0, compute_s / t.busy_s);
    t.mem_util = std::min(1.0, dram_s / t.busy_s);
  }
  return t;
}

}  // namespace repro::gpusim
