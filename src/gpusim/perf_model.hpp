// Analytical execution-time model.
//
// A kernel execution is decomposed into a core-clocked compute phase
// (per-class issue throughput limits, plus the core-side cost of issuing
// memory requests) and a memory-clocked DRAM phase. The phases overlap
// imperfectly; the overlap penalty is a kernel property. This reproduces the
// two regimes of Fig. 1: compute-dominated kernels scale ~linearly with the
// core clock, memory-dominated kernels are flat in core and steep in memory.
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/freq_table.hpp"
#include "gpusim/kernel_profile.hpp"

namespace repro::gpusim {

struct TimingBreakdown {
  double compute_s = 0.0;   // core-clocked phase (includes memory issue cost)
  double dram_s = 0.0;      // memory-clocked phase
  double busy_s = 0.0;      // after overlap composition
  double total_s = 0.0;     // busy + launch overhead
  double core_util = 0.0;   // compute share of the busy window [0,1]
  double mem_util = 0.0;    // DRAM share of the busy window [0,1]
};

/// Compute the timing of one kernel invocation at an *actual* frequency
/// configuration. `mem_efficiency` is a multiplicative modifier on DRAM
/// efficiency (1.0 = nominal; the simulator derives the erratic low-memory
/// modifiers from the kernel identity).
[[nodiscard]] TimingBreakdown compute_timing(const DeviceModel& device,
                                             const KernelProfile& profile,
                                             FrequencyConfig config,
                                             double mem_efficiency = 1.0);

}  // namespace repro::gpusim
