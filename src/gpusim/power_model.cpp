#include "gpusim/power_model.hpp"

namespace repro::gpusim {

namespace {
// op_energy weights average around this value for balanced arithmetic codes;
// dividing by it keeps core_power_coef interpretable as "watts at V=1, 1 GHz,
// full utilization, typical mix".
constexpr double kTypicalMixEnergy = 1.5;
}  // namespace

double mix_energy_factor(const DeviceModel& device, const KernelProfile& profile) noexcept {
  const double total = profile.total_ops();
  if (total <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    acc += profile.ops[c] * device.op_energy[c];
  }
  return acc / total / kTypicalMixEnergy;
}

PowerBreakdown compute_power(const DeviceModel& device, const KernelProfile& profile,
                             FrequencyConfig config, const TimingBreakdown& timing) {
  const double v = device.voltage.volts_at(static_cast<double>(config.core_mhz));
  const double vm = memory_volts(static_cast<double>(config.mem_mhz));
  const double fc_ghz = static_cast<double>(config.core_mhz) / 1000.0;
  const double fm_rel = static_cast<double>(config.mem_mhz) / 3505.0;

  PowerBreakdown p;
  p.core_dynamic_w = device.core_power_coef * v * v * fc_ghz * timing.core_util *
                     mix_energy_factor(device, profile);
  p.mem_dynamic_w =
      device.mem_power_coef * (vm / 1.5) * (vm / 1.5) * fm_rel * timing.mem_util;
  p.static_w = device.static_power_base + device.static_power_v2 * v * v;
  p.mem_static_w = device.mem_static_base + device.mem_static_slope * fm_rel;
  return p;
}

}  // namespace repro::gpusim
