// The measurement layer: combines the timing and power models, the erratic
// low-memory-clock behaviour, and an NVML-style 62.5 Hz power-sampling
// emulation into per-(kernel, configuration) measurements.
//
// All noise is *deterministic* in (kernel name, configuration, seed): the
// same measurement repeated yields the same value, like a warmed-up,
// fan-stabilised card. The erratic components at mem-l/mem-L are systematic
// (per-kernel offsets and core-frequency wiggles), which is what makes the
// low memory clocks genuinely hard for the predictor — matching §4.2-4.4 of
// the paper ("Mem-l behaves like the highest memory frequency ... the mem-L
// is even more erratic").
#pragma once

#include <span>
#include <vector>

#include "common/status.hpp"
#include "gpusim/device.hpp"
#include "gpusim/freq_table.hpp"
#include "gpusim/kernel_profile.hpp"
#include "gpusim/perf_model.hpp"
#include "gpusim/power_model.hpp"

namespace repro::gpusim {

/// One measured kernel execution.
struct Measurement {
  FrequencyConfig config;   // the configuration that actually took effect
  double time_ms = 0.0;     // per-invocation execution time
  double avg_power_w = 0.0; // mean of the sampled power trace
  double energy_j = 0.0;    // avg_power * time (the paper's method, §4.1)
};

struct SimOptions {
  bool measurement_noise = true;   // multiplicative time/power jitter
  bool erratic_behaviour = true;   // systematic low-memory-clock effects
  double sampling_window_s = 0.5;  // kernels re-run until this window is full
  double sampling_hz = 62.5;       // NVML power counter update rate
  std::uint64_t seed = 0x5EED0001ULL;
};

class GpuSimulator {
 public:
  explicit GpuSimulator(DeviceModel device, SimOptions options = {});

  [[nodiscard]] const DeviceModel& device() const noexcept { return device_; }
  [[nodiscard]] const FrequencyDomain& freq() const noexcept { return device_.freq; }
  [[nodiscard]] const SimOptions& options() const noexcept { return options_; }

  /// Run at a requested (reported) configuration; NVML clamping semantics
  /// apply. Errors if the configuration is not even reported.
  [[nodiscard]] common::Result<Measurement> run(const KernelProfile& profile,
                                                FrequencyConfig requested) const;

  /// Run at a configuration assumed to be actual (no validation).
  [[nodiscard]] Measurement run_at(const KernelProfile& profile,
                                   FrequencyConfig actual) const;

  [[nodiscard]] Measurement run_default(const KernelProfile& profile) const;

  /// t_default / t_config.
  [[nodiscard]] double speedup(const KernelProfile& profile, FrequencyConfig config) const;

  /// E_config / E_default.
  [[nodiscard]] double normalized_energy(const KernelProfile& profile,
                                         FrequencyConfig config) const;

  /// One kernel execution in (speedup, normalized energy) space.
  struct CharacterizedPoint {
    FrequencyConfig config;
    double speedup = 0.0;
    double norm_energy = 0.0;
  };

  /// Characterize a kernel over a set of actual configurations (the data
  /// behind Figs. 1, 5 and 8).
  [[nodiscard]] std::vector<CharacterizedPoint> characterize(
      const KernelProfile& profile, std::span<const FrequencyConfig> configs) const;

 private:
  DeviceModel device_;
  SimOptions options_;

  [[nodiscard]] double mem_efficiency_modifier(const KernelProfile& profile,
                                               FrequencyConfig config) const;
  [[nodiscard]] Measurement measure(const KernelProfile& profile,
                                    FrequencyConfig actual) const;
};

}  // namespace repro::gpusim
