#include "gpusim/voltage.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace repro::gpusim {

VoltageCurve::VoltageCurve(std::vector<Knot> knots) : knots_(std::move(knots)) {
  if (knots_.size() < 2) throw std::invalid_argument("VoltageCurve: need >= 2 knots");
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (knots_[i].freq_mhz <= knots_[i - 1].freq_mhz) {
      throw std::invalid_argument("VoltageCurve: knots must be strictly increasing");
    }
  }
}

VoltageCurve VoltageCurve::titan_x() {
  // Anchors in the style of GM200 V/f tables: a gently rising low/mid range
  // and a steep ramp in the boost region above ~900 MHz. The knee placement
  // is what puts the normalized-energy minimum of compute-bound kernels in
  // the paper's [885, 987] MHz window (§1.1).
  return VoltageCurve({{135.0, 0.680},
                       {405.0, 0.720},
                       {700.0, 0.780},
                       {900.0, 0.840},
                       {1001.0, 0.930},
                       {1100.0, 1.020},
                       {1196.0, 1.100},
                       {1392.0, 1.210}});
}

VoltageCurve VoltageCurve::tesla_p100() {
  return VoltageCurve({{544.0, 0.700},
                       {810.0, 0.800},
                       {1126.0, 0.950},
                       {1324.0, 1.050}});
}

double VoltageCurve::volts_at(double freq_mhz) const noexcept {
  if (freq_mhz <= knots_.front().freq_mhz) return knots_.front().volts;
  if (freq_mhz >= knots_.back().freq_mhz) return knots_.back().volts;
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), freq_mhz,
      [](double f, const Knot& k) { return f < k.freq_mhz; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double t = (freq_mhz - lo.freq_mhz) / (hi.freq_mhz - lo.freq_mhz);
  return lo.volts + t * (hi.volts - lo.volts);
}

double memory_volts(double mem_mhz) noexcept {
  // GDDR5 core rail ~1.35 V; the 3.3+ GHz data-rate steps need ~1.5 V I/O.
  if (mem_mhz <= 810.0) return 1.35;
  if (mem_mhz <= 3304.0) return 1.50;
  return 1.55;
}

}  // namespace repro::gpusim
