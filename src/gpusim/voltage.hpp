// Core voltage/frequency (V/f) curve of the simulated GPU.
//
// DVFS energy behaviour hinges on the non-linear voltage scaling the paper
// highlights (and that Abe et al. neglected): dynamic power goes like
// C·V(f)²·f, so energy-per-task develops an interior minimum as frequency
// rises. We model V(f) as a piecewise-linear curve over anchor points in the
// style of published Maxwell V/f tables.
#pragma once

#include <vector>

namespace repro::gpusim {

/// Piecewise-linear voltage curve; frequencies in MHz, voltage in volts.
class VoltageCurve {
 public:
  struct Knot {
    double freq_mhz;
    double volts;
  };

  /// Curve with explicit knots (must be sorted by frequency, >= 2 knots).
  explicit VoltageCurve(std::vector<Knot> knots);

  /// Maxwell-like default curve for the simulated Titan X.
  [[nodiscard]] static VoltageCurve titan_x();

  /// Pascal-like curve for the simulated Tesla P100.
  [[nodiscard]] static VoltageCurve tesla_p100();

  /// Voltage at a core frequency; clamps outside the knot range.
  [[nodiscard]] double volts_at(double freq_mhz) const noexcept;

  [[nodiscard]] const std::vector<Knot>& knots() const noexcept { return knots_; }

 private:
  std::vector<Knot> knots_;
};

/// Memory-rail voltage: nearly flat for GDDR5, but the high-frequency steps
/// run the I/O at a higher rail, which is why high memory clocks carry a
/// power premium.
[[nodiscard]] double memory_volts(double mem_mhz) noexcept;

}  // namespace repro::gpusim
