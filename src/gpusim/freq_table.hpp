// Frequency-domain tables of the simulated GPUs.
//
// Reproduces the topology the paper reports for the NVIDIA GTX Titan X
// (Maxwell) and Tesla P100 (Fig. 4):
//   * Titan X: four memory clocks — 405 (mem-L), 810 (mem-l), 3304 (mem-h),
//     3505 MHz (mem-H). mem-L supports only 6 core clocks (up to ~405 MHz),
//     mem-l supports 71, mem-h/H support 50 each (177 actual configurations).
//     NVML additionally *reports* core clocks up to 1392 MHz which are
//     silently clamped to the ~1202 MHz cap — the "gray points" of Fig. 4a.
//   * Tesla P100: a single memory clock (715 MHz) with a dense core range.
//   * Titan X default applications clocks: core 1001 MHz, memory 3505 MHz.
//
// The concrete intermediate clock values are generated around the paper's
// anchor values (135 MHz floor, 13 MHz vendor step, 1001 MHz default) — see
// DESIGN.md §1 for the documented approximations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace repro::gpusim {

/// One core/memory clock pair, in MHz.
struct FrequencyConfig {
  int core_mhz = 0;
  int mem_mhz = 0;

  friend bool operator==(const FrequencyConfig&, const FrequencyConfig&) = default;
};

/// The paper's shorthand for the Titan X memory clocks: L < l < h < H.
enum class MemLevel { kL = 0, kLow = 1, kHigh = 2, kH = 3 };

[[nodiscard]] const char* mem_level_label(MemLevel level) noexcept;  // "Mem-L" ...

/// All supported clocks for one memory level.
struct MemoryClockDomain {
  MemLevel level = MemLevel::kH;
  int mem_mhz = 0;
  std::vector<int> actual_core_mhz;    // settings that really take effect
  std::vector<int> reported_core_mhz;  // superset NVML advertises (gray points clamp)
};

/// A device's full DVFS configuration space.
class FrequencyDomain {
 public:
  /// Simulated NVIDIA GTX Titan X (Maxwell) — the paper's main platform.
  [[nodiscard]] static FrequencyDomain titan_x();

  /// Simulated NVIDIA Tesla P100 — single memory clock (Fig. 4b).
  [[nodiscard]] static FrequencyDomain tesla_p100();

  [[nodiscard]] const std::string& device_name() const noexcept { return name_; }
  [[nodiscard]] FrequencyConfig default_config() const noexcept { return default_; }

  [[nodiscard]] const std::vector<MemoryClockDomain>& domains() const noexcept {
    return domains_;
  }

  /// All actually-effective configurations, mem-major then ascending core.
  [[nodiscard]] std::vector<FrequencyConfig> all_actual() const;

  /// All NVML-reported configurations (actual + clamped gray points).
  [[nodiscard]] std::vector<FrequencyConfig> all_reported() const;

  [[nodiscard]] bool is_actual(FrequencyConfig c) const noexcept;
  [[nodiscard]] bool is_reported(FrequencyConfig c) const noexcept;

  /// NVML set-clocks semantics: a reported config maps to the actual config
  /// that takes effect (clamping over-cap core clocks); an unknown config is
  /// an error.
  [[nodiscard]] common::Result<FrequencyConfig> resolve(FrequencyConfig requested) const;

  /// Memory domain lookup by clock or level.
  [[nodiscard]] const MemoryClockDomain* find_domain(int mem_mhz) const noexcept;
  [[nodiscard]] const MemoryClockDomain* find_domain(MemLevel level) const noexcept;

  /// MemLevel of a memory clock (error if no such domain).
  [[nodiscard]] common::Result<MemLevel> level_of(int mem_mhz) const;

  /// The paper's training-set sampling (§3.3): `total` configurations spread
  /// over the memory levels — every mem-L config (there are only 6) plus
  /// evenly strided core clocks of the remaining levels. Deterministic.
  [[nodiscard]] std::vector<FrequencyConfig> sample_configs(std::size_t total) const;

  /// Normalization bounds used for the frequency features (§3.2: core in
  /// [135, 1392]-ish, memory in [405, 3505], both mapped to [0, 1]).
  [[nodiscard]] int min_core_mhz() const noexcept { return min_core_; }
  [[nodiscard]] int max_core_mhz() const noexcept { return max_core_; }
  [[nodiscard]] int min_mem_mhz() const noexcept { return min_mem_; }
  [[nodiscard]] int max_mem_mhz() const noexcept { return max_mem_; }

 private:
  std::string name_;
  FrequencyConfig default_;
  std::vector<MemoryClockDomain> domains_;  // ascending mem clock
  int min_core_ = 0, max_core_ = 0, min_mem_ = 0, max_mem_ = 0;

  void finalize_bounds();
};

}  // namespace repro::gpusim
