#include "gpusim/freq_table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace repro::gpusim {

namespace {

/// Master Titan X core-clock table: the 135 MHz idle clock plus a 13 MHz
/// ladder from 143 MHz to the 1196 MHz effective cap. Contains the 1001 MHz
/// default exactly (143 + 66*13 = 1001). 83 values in total.
std::vector<int> titan_master_cores() {
  std::vector<int> cores;
  cores.push_back(135);
  for (int f = 143; f <= 1196; f += 13) cores.push_back(f);
  return cores;
}

/// Over-cap clocks NVML reports but silently clamps (Fig. 4a gray points):
/// 1209..1391 MHz on the same 13 MHz ladder.
std::vector<int> titan_gray_cores() {
  std::vector<int> cores;
  for (int f = 1209; f <= 1391; f += 13) cores.push_back(f);
  return cores;
}

/// Evenly strided subset of size `count` that always keeps the first and
/// last element and (when present) the `keep` value.
std::vector<int> strided_subset(const std::vector<int>& values, std::size_t count,
                                std::optional<int> keep) {
  assert(count >= 2 && count <= values.size());
  std::vector<int> out;
  out.reserve(count);
  const double step = static_cast<double>(values.size() - 1) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    const auto idx = static_cast<std::size_t>(std::llround(static_cast<double>(i) * step));
    out.push_back(values[idx]);
  }
  if (keep && std::find(out.begin(), out.end(), *keep) == out.end() &&
      std::find(values.begin(), values.end(), *keep) != values.end()) {
    // Replace the nearest element with the protected value.
    auto nearest = std::min_element(out.begin(), out.end(), [&](int a, int b) {
      return std::abs(a - *keep) < std::abs(b - *keep);
    });
    *nearest = *keep;
    std::sort(out.begin(), out.end());
  }
  return out;
}

}  // namespace

const char* mem_level_label(MemLevel level) noexcept {
  switch (level) {
    case MemLevel::kL: return "Mem-L";
    case MemLevel::kLow: return "Mem-l";
    case MemLevel::kHigh: return "Mem-h";
    case MemLevel::kH: return "Mem-H";
  }
  return "?";
}

FrequencyDomain FrequencyDomain::titan_x() {
  FrequencyDomain d;
  d.name_ = "NVIDIA GTX Titan X (simulated)";
  d.default_ = {1001, 3505};

  const auto master = titan_master_cores();
  const auto gray = titan_gray_cores();

  // mem-L 405 MHz: six low core clocks, capped near the memory clock itself.
  MemoryClockDomain mem_L;
  mem_L.level = MemLevel::kL;
  mem_L.mem_mhz = 405;
  mem_L.actual_core_mhz = {135, 195, 247, 299, 351, 403};
  mem_L.reported_core_mhz = mem_L.actual_core_mhz;

  // mem-l 810 MHz: 71 of the 83 master clocks (a few ladder steps are not
  // exposed at this level, mirroring the vendor tables).
  MemoryClockDomain mem_l;
  mem_l.level = MemLevel::kLow;
  mem_l.mem_mhz = 810;
  {
    const std::vector<int> skipped = {156, 260, 364, 468, 572, 676,
                                      780, 884, 988, 1092, 1144, 1170};
    for (int f : master) {
      if (std::find(skipped.begin(), skipped.end(), f) == skipped.end()) {
        mem_l.actual_core_mhz.push_back(f);
      }
    }
    mem_l.reported_core_mhz = mem_l.actual_core_mhz;
    mem_l.reported_core_mhz.insert(mem_l.reported_core_mhz.end(), gray.begin(), gray.end());
  }

  // mem-h 3304 MHz and mem-H 3505 MHz: the upper 50 clocks of the ladder
  // (559..1196 MHz), as on real boards where high memory clocks only pair
  // with the performance-range core clocks. Contains the 1001 MHz default.
  std::vector<int> fifty;
  for (int f : master) {
    if (f >= 559) fifty.push_back(f);
  }
  MemoryClockDomain mem_h;
  mem_h.level = MemLevel::kHigh;
  mem_h.mem_mhz = 3304;
  mem_h.actual_core_mhz = fifty;
  mem_h.reported_core_mhz = fifty;
  mem_h.reported_core_mhz.insert(mem_h.reported_core_mhz.end(), gray.begin(), gray.end());

  MemoryClockDomain mem_H = mem_h;
  mem_H.level = MemLevel::kH;
  mem_H.mem_mhz = 3505;

  d.domains_ = {mem_L, mem_l, mem_h, mem_H};
  d.finalize_bounds();
  return d;
}

FrequencyDomain FrequencyDomain::tesla_p100() {
  FrequencyDomain d;
  d.name_ = "NVIDIA Tesla P100 (simulated)";
  MemoryClockDomain mem;
  mem.level = MemLevel::kH;
  mem.mem_mhz = 715;
  for (int f = 544; f <= 1324; f += 13) mem.actual_core_mhz.push_back(f);
  mem.reported_core_mhz = mem.actual_core_mhz;
  d.domains_ = {mem};
  d.default_ = {1324, 715};
  d.finalize_bounds();
  return d;
}

void FrequencyDomain::finalize_bounds() {
  min_core_ = 1 << 30;
  max_core_ = 0;
  min_mem_ = 1 << 30;
  max_mem_ = 0;
  for (const auto& dom : domains_) {
    min_mem_ = std::min(min_mem_, dom.mem_mhz);
    max_mem_ = std::max(max_mem_, dom.mem_mhz);
    for (int f : dom.reported_core_mhz) {
      min_core_ = std::min(min_core_, f);
      max_core_ = std::max(max_core_, f);
    }
  }
}

std::vector<FrequencyConfig> FrequencyDomain::all_actual() const {
  std::vector<FrequencyConfig> out;
  for (const auto& dom : domains_) {
    for (int f : dom.actual_core_mhz) out.push_back({f, dom.mem_mhz});
  }
  return out;
}

std::vector<FrequencyConfig> FrequencyDomain::all_reported() const {
  std::vector<FrequencyConfig> out;
  for (const auto& dom : domains_) {
    for (int f : dom.reported_core_mhz) out.push_back({f, dom.mem_mhz});
  }
  return out;
}

bool FrequencyDomain::is_actual(FrequencyConfig c) const noexcept {
  const auto* dom = find_domain(c.mem_mhz);
  if (dom == nullptr) return false;
  return std::find(dom->actual_core_mhz.begin(), dom->actual_core_mhz.end(), c.core_mhz) !=
         dom->actual_core_mhz.end();
}

bool FrequencyDomain::is_reported(FrequencyConfig c) const noexcept {
  const auto* dom = find_domain(c.mem_mhz);
  if (dom == nullptr) return false;
  return std::find(dom->reported_core_mhz.begin(), dom->reported_core_mhz.end(),
                   c.core_mhz) != dom->reported_core_mhz.end();
}

common::Result<FrequencyConfig> FrequencyDomain::resolve(FrequencyConfig requested) const {
  const auto* dom = find_domain(requested.mem_mhz);
  if (dom == nullptr) {
    return common::not_found("memory clock " + std::to_string(requested.mem_mhz) +
                             " MHz is not supported");
  }
  if (std::find(dom->reported_core_mhz.begin(), dom->reported_core_mhz.end(),
                requested.core_mhz) == dom->reported_core_mhz.end()) {
    return common::not_found("core clock " + std::to_string(requested.core_mhz) +
                             " MHz is not reported for memory clock " +
                             std::to_string(requested.mem_mhz) + " MHz");
  }
  if (std::find(dom->actual_core_mhz.begin(), dom->actual_core_mhz.end(),
                requested.core_mhz) != dom->actual_core_mhz.end()) {
    return requested;
  }
  // Reported but not actual: NVML accepts the request and the hardware
  // silently clamps to the highest effective clock of this memory level.
  return FrequencyConfig{dom->actual_core_mhz.back(), dom->mem_mhz};
}

const MemoryClockDomain* FrequencyDomain::find_domain(int mem_mhz) const noexcept {
  for (const auto& dom : domains_) {
    if (dom.mem_mhz == mem_mhz) return &dom;
  }
  return nullptr;
}

const MemoryClockDomain* FrequencyDomain::find_domain(MemLevel level) const noexcept {
  for (const auto& dom : domains_) {
    if (dom.level == level) return &dom;
  }
  return nullptr;
}

common::Result<MemLevel> FrequencyDomain::level_of(int mem_mhz) const {
  const auto* dom = find_domain(mem_mhz);
  if (dom == nullptr) {
    return common::not_found("memory clock " + std::to_string(mem_mhz) + " MHz");
  }
  return dom->level;
}

std::vector<FrequencyConfig> FrequencyDomain::sample_configs(std::size_t total) const {
  // Allocation policy (§3.3 "40 carefully sampled frequency settings"):
  // every configuration of tiny domains (|cores| <= 8) is kept; the rest of
  // the budget is split evenly across the remaining domains with any
  // remainder given to the highest memory clocks.
  std::vector<FrequencyConfig> out;
  std::vector<const MemoryClockDomain*> large;
  std::size_t budget = total;
  for (const auto& dom : domains_) {
    if (dom.actual_core_mhz.size() <= 8) {
      for (int f : dom.actual_core_mhz) out.push_back({f, dom.mem_mhz});
      budget -= std::min(budget, dom.actual_core_mhz.size());
    } else {
      large.push_back(&dom);
    }
  }
  if (large.empty() || budget == 0) return out;
  const std::size_t base = budget / large.size();
  std::size_t extra = budget % large.size();
  // Give remainders to the highest memory clocks first (iterate descending).
  for (auto it = large.rbegin(); it != large.rend(); ++it) {
    std::size_t want = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    want = std::min(want, (*it)->actual_core_mhz.size());
    if (want < 2) want = 2;
    const auto cores = strided_subset((*it)->actual_core_mhz, want, default_.core_mhz);
    for (int f : cores) out.push_back({f, (*it)->mem_mhz});
  }
  // Stable order: mem-major ascending, then core ascending.
  std::sort(out.begin(), out.end(), [](const FrequencyConfig& a, const FrequencyConfig& b) {
    if (a.mem_mhz != b.mem_mhz) return a.mem_mhz < b.mem_mhz;
    return a.core_mhz < b.core_mhz;
  });
  return out;
}

}  // namespace repro::gpusim
