// Dynamic execution profile of a kernel — what the simulated GPU actually
// executes. All instruction counts are *per work-item averages* (dynamic,
// i.e. loop bodies counted per iteration), which is deliberately different
// from the static counts the predictor sees: static features cannot observe
// trip counts, and that information gap is the realistic source of model
// error, exactly as in the paper.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace repro::gpusim {

/// Instruction classes, mirroring the paper's 10 static features (§3.2).
enum class OpClass : std::uint8_t {
  kIntAdd = 0,
  kIntMul,
  kIntDiv,
  kIntBitwise,
  kFloatAdd,
  kFloatMul,
  kFloatDiv,
  kSpecialFn,
  kGlobalAccess,
  kLocalAccess,
};

inline constexpr std::size_t kNumOpClasses = 10;

[[nodiscard]] constexpr const char* op_class_name(OpClass c) noexcept {
  switch (c) {
    case OpClass::kIntAdd: return "int_add";
    case OpClass::kIntMul: return "int_mul";
    case OpClass::kIntDiv: return "int_div";
    case OpClass::kIntBitwise: return "int_bw";
    case OpClass::kFloatAdd: return "float_add";
    case OpClass::kFloatMul: return "float_mul";
    case OpClass::kFloatDiv: return "float_div";
    case OpClass::kSpecialFn: return "sf";
    case OpClass::kGlobalAccess: return "gl_access";
    case OpClass::kLocalAccess: return "loc_access";
  }
  return "?";
}

struct KernelProfile {
  std::string name;

  /// Dynamic per-work-item instruction counts, indexed by OpClass.
  std::array<double, kNumOpClasses> ops{};

  /// Total work-items launched per kernel invocation.
  std::uint64_t work_items = 1 << 20;

  /// Average bytes moved per global access (coalesced transaction share).
  double bytes_per_access = 4.0;

  /// Fraction of global accesses served by on-chip caches.
  double cache_hit_rate = 0.3;

  /// DRAM efficiency of the access pattern (1.0 = perfectly streamed).
  double mem_coalescing = 0.8;

  /// Fraction of the shorter of (compute, memory) phases that cannot be
  /// hidden under the longer one (0 = perfect overlap).
  double overlap_penalty = 0.15;

  /// How irregular the kernel behaves at the low memory clocks (0..1);
  /// drives the systematic mem-l/mem-L wiggle the paper struggles with.
  double erratic = 0.5;

  [[nodiscard]] double op(OpClass c) const noexcept {
    return ops[static_cast<std::size_t>(c)];
  }
  void set_op(OpClass c, double v) noexcept { ops[static_cast<std::size_t>(c)] = v; }

  /// Total dynamic instructions per work-item.
  [[nodiscard]] double total_ops() const noexcept {
    double acc = 0.0;
    for (double v : ops) acc += v;
    return acc;
  }
};

}  // namespace repro::gpusim
