// Tests for the twelve test benchmarks (§4.2): source validity, feature
// extraction and the calibrated characterization the paper reports.
#include <gtest/gtest.h>

#include <set>

#include "gpusim/simulator.hpp"
#include "kernels/kernels.hpp"

namespace rk = repro::kernels;
namespace rg = repro::gpusim;

namespace {

const rg::GpuSimulator& sim() {
  static const rg::GpuSimulator s(rg::DeviceModel::titan_x());
  return s;
}

std::vector<rg::GpuSimulator::CharacterizedPoint> characterize_level(
    const rk::TestBenchmark& b, rg::MemLevel level) {
  const auto* dom = sim().freq().find_domain(level);
  std::vector<rg::FrequencyConfig> configs;
  for (int core : dom->actual_core_mhz) configs.push_back({core, dom->mem_mhz});
  return sim().characterize(b.profile, configs);
}

double speedup_range(const std::vector<rg::GpuSimulator::CharacterizedPoint>& pts) {
  double lo = 1e18;
  double hi = -1e18;
  for (const auto& p : pts) {
    lo = std::min(lo, p.speedup);
    hi = std::max(hi, p.speedup);
  }
  return hi - lo;
}

}  // namespace

TEST(KernelsTest, SuiteHasTwelveBenchmarks) {
  EXPECT_EQ(rk::test_suite().size(), rk::kNumTestBenchmarks);
}

TEST(KernelsTest, NamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (const auto& b : rk::test_suite()) {
    names.insert(b.name);
    EXPECT_EQ(rk::find_benchmark(b.name), &b);
  }
  EXPECT_EQ(names.size(), rk::kNumTestBenchmarks);
  EXPECT_EQ(rk::find_benchmark("NoSuchBenchmark"), nullptr);
}

TEST(KernelsTest, PaperBenchmarksArePresent) {
  for (const char* name :
       {"k-NN", "AES", "MatrixMultiply", "Convolution", "MedianFilter",
        "BitCompression", "MersenneTwister", "Blackscholes", "PerlinNoise", "MD",
        "K-means", "Flte"}) {
    EXPECT_NE(rk::find_benchmark(name), nullptr) << name;
  }
}

TEST(KernelsTest, EverySourceYieldsFeatures) {
  for (const auto& b : rk::test_suite()) {
    const auto f = rk::benchmark_features(b);
    ASSERT_TRUE(f.ok()) << b.name << ": " << f.error().message;
    EXPECT_GT(f.value().total(), 0.0) << b.name;
    EXPECT_EQ(f.value().kernel_name, b.kernel_name);
  }
}

TEST(KernelsTest, FeatureCacheIsStable) {
  const auto& b = rk::test_suite().front();
  const auto a1 = rk::benchmark_features(b);
  const auto a2 = rk::benchmark_features(b);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a1.value().counts, a2.value().counts);
}

TEST(KernelsTest, Figure5SelectionIsValidSubset) {
  const auto sel = rk::figure5_selection();
  EXPECT_EQ(sel.size(), 8u);
  for (const auto& name : sel) EXPECT_NE(rk::find_benchmark(name), nullptr) << name;
}

TEST(KernelsTest, ProfilesAreSane) {
  for (const auto& b : rk::test_suite()) {
    EXPECT_GT(b.profile.work_items, 0u) << b.name;
    EXPECT_GT(b.profile.total_ops(), 0.0) << b.name;
    EXPECT_EQ(b.profile.name, b.name);
  }
}

// --- characterization shape (paper §4.2) -------------------------------------------

TEST(KernelsCharacterizationTest, KnnIsStronglyCoreSensitive) {
  const auto pts = characterize_level(*rk::find_benchmark("k-NN"), rg::MemLevel::kH);
  // Paper Fig. 5a: k-NN speedup roughly doubles across the core range.
  EXPECT_GT(speedup_range(pts), 0.4);
  double max_speedup = 0.0;
  for (const auto& p : pts) max_speedup = std::max(max_speedup, p.speedup);
  EXPECT_GT(max_speedup, 1.05);
}

TEST(KernelsCharacterizationTest, MersenneTwisterIsFlatInCoreAtMemH) {
  const auto pts =
      characterize_level(*rk::find_benchmark("MersenneTwister"), rg::MemLevel::kH);
  // Paper Fig. 1d: raising the core clock barely helps MT.
  EXPECT_LT(speedup_range(pts), 0.25);
}

TEST(KernelsCharacterizationTest, MersenneTwisterCollapsesAtLowMemory) {
  const auto pts =
      characterize_level(*rk::find_benchmark("MersenneTwister"), rg::MemLevel::kLow);
  // All mem-l points cluster around the bandwidth-limited speedup.
  EXPECT_LT(speedup_range(pts), 0.15);
  for (const auto& p : pts) {
    EXPECT_LT(p.speedup, 0.75) << "mem-l should be far below the default";
  }
}

TEST(KernelsCharacterizationTest, BlackscholesCollapsesToPointAtMemL) {
  const auto pts =
      characterize_level(*rk::find_benchmark("Blackscholes"), rg::MemLevel::kL);
  // Paper §4.2: "in blackscholes mem-L shows the same normalized energy for
  // all the core frequencies" — the cluster degenerates to a point.
  EXPECT_LT(speedup_range(pts), 0.06);
  double e_lo = 1e18;
  double e_hi = -1e18;
  for (const auto& p : pts) {
    e_lo = std::min(e_lo, p.norm_energy);
    e_hi = std::max(e_hi, p.norm_energy);
  }
  EXPECT_LT(e_hi - e_lo, 0.2);
}

TEST(KernelsCharacterizationTest, EnergyStaysInPaperRange) {
  // Fig. 5/8 plot normalized energy in [0.4, 2.0]; the simulation must not
  // blow past the reference point.
  const auto configs = sim().freq().all_actual();
  for (const auto& b : rk::test_suite()) {
    for (const auto& p : sim().characterize(b.profile, configs)) {
      EXPECT_GT(p.norm_energy, 0.3) << b.name;
      EXPECT_LT(p.norm_energy, 2.1) << b.name;
      EXPECT_GT(p.speedup, 0.05) << b.name;
      EXPECT_LT(p.speedup, 1.4) << b.name;
    }
  }
}

TEST(KernelsCharacterizationTest, ComputeKernelsSaveEnergyAtMemL) {
  // Paper §4.2 (k-NN): mem-l reaches default-level performance at ~20% less
  // energy — the memory rail saving.
  const auto pts = characterize_level(*rk::find_benchmark("k-NN"), rg::MemLevel::kLow);
  double best_energy_at_speed = 1e18;
  for (const auto& p : pts) {
    if (p.speedup > 0.9) best_energy_at_speed = std::min(best_energy_at_speed, p.norm_energy);
  }
  EXPECT_LT(best_energy_at_speed, 0.92);
}

TEST(KernelsCharacterizationTest, DefaultConfigIsUnity) {
  for (const auto& b : rk::test_suite()) {
    EXPECT_NEAR(sim().speedup(b.profile, sim().freq().default_config()), 1.0, 1e-9);
    EXPECT_NEAR(sim().normalized_energy(b.profile, sim().freq().default_config()), 1.0,
                1e-9);
  }
}

TEST(KernelsCharacterizationTest, EnergyParabolaAcrossSuite) {
  // For a majority of codes the mem-H energy minimum is interior (§1.1).
  const auto* dom = sim().freq().find_domain(rg::MemLevel::kH);
  int interior = 0;
  for (const auto& b : rk::test_suite()) {
    const auto pts = characterize_level(b, rg::MemLevel::kH);
    std::size_t best = 0;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (pts[i].norm_energy < pts[best].norm_energy) best = i;
    }
    if (best != 0 && best != pts.size() - 1) ++interior;
  }
  (void)dom;
  EXPECT_GE(interior, 8);
}
