// End-to-end integration tests: the full experiment pipeline of the paper —
// 106 micro-benchmarks, 40 sampled configurations, 4240 training samples,
// two SVR models, evaluation on the 12 test benchmarks (Figs. 6-8, Table 2).
//
// These tests assert the *shape* of the paper's results: error magnitudes
// per memory level, Pareto coverage ranges and set cardinalities.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/evaluation.hpp"

namespace rco = repro::core;
namespace rg = repro::gpusim;

namespace {

/// One shared pipeline for the whole test binary (training takes seconds).
rco::ExperimentPipeline& pipeline() {
  static auto* p = [] {
    auto* pipe = new rco::ExperimentPipeline();
    const auto st = pipe->prepare();
    EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
    return pipe;
  }();
  return *p;
}

double level_rmse(const rco::ErrorReport& report, rg::MemLevel level) {
  for (const auto& block : report.levels) {
    if (block.level == level) return block.rmse_percent;
  }
  ADD_FAILURE() << "level missing from report";
  return 0.0;
}

}  // namespace

TEST(PipelineTest, TrainingSetMatchesPaperScale) {
  auto& p = pipeline();
  EXPECT_EQ(p.training_suite().size(), 106u);             // §3.3
  EXPECT_EQ(p.model().training_configs().size(), 40u);    // §3.3
  EXPECT_EQ(p.model().training_samples(), 4240u);         // 106 x 40
}

TEST(PipelineTest, EvaluationConfigsSpanAllMemoryLevels) {
  auto& p = pipeline();
  const auto configs = p.evaluation_configs();
  EXPECT_EQ(configs.size(), 40u);
  std::set<int> mems;
  for (const auto& c : configs) mems.insert(c.mem_mhz);
  EXPECT_EQ(mems.size(), 4u);
}

// --- Fig. 6: speedup errors -----------------------------------------------------

TEST(PipelineTest, SpeedupErrorReportCoversAllLevelsAndBenchmarks) {
  const auto report = pipeline().speedup_errors();
  EXPECT_EQ(report.objective, "speedup");
  ASSERT_EQ(report.levels.size(), 4u);
  // Figure order: H, h, l, L.
  EXPECT_EQ(report.levels[0].mem_mhz, 3505);
  EXPECT_EQ(report.levels[1].mem_mhz, 3304);
  EXPECT_EQ(report.levels[2].mem_mhz, 810);
  EXPECT_EQ(report.levels[3].mem_mhz, 405);
  for (const auto& block : report.levels) {
    EXPECT_EQ(block.per_benchmark.size(), 12u);
    for (const auto& group : block.per_benchmark) {
      EXPECT_FALSE(group.errors_percent.empty());
      EXPECT_EQ(group.box.n, group.errors_percent.size());
    }
  }
}

TEST(PipelineTest, SpeedupErrorsInPaperBand) {
  // Paper Fig. 6: RMSE 6.68 / 7.10 / 11.13 / 9.09 % for H / h / l / L.
  // We assert the same shape: single-digit-to-low-teens accuracy at the
  // high clocks, and mem-l clearly the hardest memory level.
  const auto report = pipeline().speedup_errors();
  const double rmse_H = level_rmse(report, rg::MemLevel::kH);
  const double rmse_h = level_rmse(report, rg::MemLevel::kHigh);
  const double rmse_l = level_rmse(report, rg::MemLevel::kLow);
  const double rmse_L = level_rmse(report, rg::MemLevel::kL);
  EXPECT_LT(rmse_H, 15.0);
  EXPECT_LT(rmse_h, 15.0);
  EXPECT_GT(rmse_l, rmse_H);
  EXPECT_GT(rmse_l, rmse_L);  // paper: mem-l is the worst level for speedup
  EXPECT_LT(rmse_l, 30.0);
  EXPECT_LT(rmse_L, 15.0);
}

// --- Fig. 7: energy errors ---------------------------------------------------------

TEST(PipelineTest, EnergyErrorsInPaperBand) {
  // Paper Fig. 7: RMSE 7.82 / 5.65 / 12.85 / 15.10 % for H / h / l / L —
  // the two low memory clocks are markedly harder.
  const auto report = pipeline().energy_errors();
  const double rmse_H = level_rmse(report, rg::MemLevel::kH);
  const double rmse_h = level_rmse(report, rg::MemLevel::kHigh);
  const double rmse_l = level_rmse(report, rg::MemLevel::kLow);
  const double rmse_L = level_rmse(report, rg::MemLevel::kL);
  EXPECT_LT(rmse_H, 12.0);
  EXPECT_LT(rmse_h, 12.0);
  EXPECT_GT(rmse_l, rmse_h);
  EXPECT_GT(rmse_L, rmse_H);
  EXPECT_LT(rmse_L, 30.0);
}

TEST(PipelineTest, HighMemoryLevelsAreEasierOnAverage) {
  for (const auto& report : {pipeline().speedup_errors(), pipeline().energy_errors()}) {
    const double high = (level_rmse(report, rg::MemLevel::kH) +
                         level_rmse(report, rg::MemLevel::kHigh)) / 2.0;
    const double low = (level_rmse(report, rg::MemLevel::kLow) +
                        level_rmse(report, rg::MemLevel::kL)) / 2.0;
    EXPECT_LT(high, low) << report.objective;
  }
}

// --- Fig. 8 / Table 2: Pareto fronts ---------------------------------------------------

TEST(PipelineTest, ParetoEvaluationCoversTwelveBenchmarks) {
  const auto cases = pipeline().pareto_evaluation();
  ASSERT_EQ(cases.size(), 12u);
  // Sorted ascending by coverage difference, like Table 2.
  for (std::size_t i = 1; i < cases.size(); ++i) {
    EXPECT_LE(cases[i - 1].evaluation.coverage, cases[i].evaluation.coverage);
  }
}

TEST(PipelineTest, CoverageDifferencesInPaperRange) {
  // Paper Table 2: D(P*, P') between 0.0059 and 0.066.
  const auto cases = pipeline().pareto_evaluation();
  for (const auto& pc : cases) {
    EXPECT_GE(pc.evaluation.coverage, 0.0) << pc.name;
    EXPECT_LT(pc.evaluation.coverage, 0.12) << pc.name;
  }
  // The best benchmarks are well under 0.03 (paper: six codes <= 0.0208).
  EXPECT_LT(cases.front().evaluation.coverage, 0.03);
}

TEST(PipelineTest, TrueFrontSizesMatchPaperRange) {
  // Paper Table 2: |P*| between 6 and 14.
  for (const auto& pc : pipeline().pareto_evaluation()) {
    EXPECT_GE(pc.evaluation.optimal_size, 4u) << pc.name;
    EXPECT_LE(pc.evaluation.optimal_size, 16u) << pc.name;
  }
}

TEST(PipelineTest, TrueFrontsOfferMoreThanTheDefault) {
  // §4.2: "there are other dominant solutions that cannot be selected by
  // using the default configuration" — every benchmark's true front has a
  // point that beats the default (1, 1) in at least one objective without
  // losing the other.
  int improved = 0;
  for (const auto& pc : pipeline().pareto_evaluation()) {
    for (const auto& p : pc.true_front) {
      if ((p.speedup >= 0.99 && p.energy < 0.99) ||
          (p.speedup > 1.01 && p.energy <= 1.01)) {
        ++improved;
        break;
      }
    }
    // And the recommendations carry real value for every benchmark: some
    // recommended point saves >= 5% energy at >= 90% of default performance.
    bool saves_energy = false;
    for (const auto& p : pc.predicted_measured) {
      if (p.speedup >= 0.9 && p.energy < 0.95) {
        saves_energy = true;
        break;
      }
    }
    EXPECT_TRUE(saves_energy) << pc.name;
  }
  // The large majority of codes have dominant solutions beyond the default
  // ("the default configuration is often a very good one. However, ...").
  EXPECT_GE(improved, 9);
}

TEST(PipelineTest, MaxSpeedupExtremeIsUsuallyExact) {
  // Paper: the max-speedup point is predicted exactly in 7 of 12 cases and
  // the distance is small otherwise.
  const auto cases = pipeline().pareto_evaluation();
  int exact = 0;
  for (const auto& pc : cases) {
    if (pc.evaluation.max_speedup.d_speedup < 0.02) ++exact;
    EXPECT_LT(pc.evaluation.max_speedup.d_speedup, 0.15) << pc.name;
  }
  EXPECT_GE(exact, 6);
}

TEST(PipelineTest, TrueFrontsAreActuallyNonDominated) {
  for (const auto& pc : pipeline().pareto_evaluation()) {
    for (const auto& a : pc.true_front) {
      for (const auto& b : pc.true_front) {
        EXPECT_FALSE(repro::pareto::dominates(a, b)) << pc.name;
      }
    }
  }
}

TEST(PipelineTest, MeasuredPointsMatchEvaluationConfigCount) {
  const auto configs = pipeline().evaluation_configs();
  for (const auto& pc : pipeline().pareto_evaluation()) {
    EXPECT_EQ(pc.measured.size(), configs.size()) << pc.name;
    EXPECT_EQ(pc.predicted.size(), pc.predicted_measured.size()) << pc.name;
  }
}
