// Tests for the synthetic training-benchmark generator (§3.3): suite size,
// source validity, feature-space coverage and source/profile consistency.
#include <gtest/gtest.h>

#include <set>

#include "benchgen/benchgen.hpp"
#include "clfront/features.hpp"

namespace rb = repro::benchgen;
namespace rc = repro::clfront;

namespace {

const std::vector<rb::MicroBenchmark>& suite() {
  static const auto s = rb::generate_training_suite().value();
  return s;
}

/// The feature index each pattern is designed to stress.
rc::FeatureIndex target_feature(rb::Pattern p) {
  return static_cast<rc::FeatureIndex>(static_cast<std::size_t>(p));
}

}  // namespace

TEST(BenchgenTest, SuiteHas106Benchmarks) {
  EXPECT_EQ(rb::kSuiteSize, 106u);
  EXPECT_EQ(suite().size(), 106u);
}

TEST(BenchgenTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& mb : suite()) names.insert(mb.name);
  EXPECT_EQ(names.size(), suite().size());
}

TEST(BenchgenTest, EverySourceCompilesWithNonEmptyFeatures) {
  for (const auto& mb : suite()) {
    const auto f = rc::extract_features_from_source(mb.source, mb.name);
    ASSERT_TRUE(f.ok()) << mb.name << ": " << f.error().message;
    EXPECT_GT(f.value().total(), 0.0) << mb.name;
  }
}

TEST(BenchgenTest, ProfileMatchesStaticCounts) {
  // The generated codes are fully unrolled, so the simulator profile equals
  // the static counts by construction.
  for (const auto& mb : suite()) {
    for (std::size_t i = 0; i < rc::kNumFeatures; ++i) {
      EXPECT_DOUBLE_EQ(mb.profile.ops[i], mb.features.counts[i]) << mb.name;
    }
  }
}

TEST(BenchgenTest, DeterministicInSeed) {
  const auto a = rb::generate_training_suite(99).value();
  const auto b = rb::generate_training_suite(99).value();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_DOUBLE_EQ(a[i].profile.cache_hit_rate, b[i].profile.cache_hit_rate);
  }
}

TEST(BenchgenTest, DifferentSeedsChangeMixes) {
  const auto a = rb::generate_training_suite(1).value();
  const auto b = rb::generate_training_suite(2).value();
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].source != b[i].source) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BenchgenTest, ProfileKnobsInSaneRanges) {
  for (const auto& mb : suite()) {
    EXPECT_GT(mb.profile.work_items, 0u) << mb.name;
    EXPECT_GE(mb.profile.cache_hit_rate, 0.0);
    EXPECT_LE(mb.profile.cache_hit_rate, 1.0);
    EXPECT_GT(mb.profile.mem_coalescing, 0.0);
    EXPECT_LE(mb.profile.mem_coalescing, 1.0);
    EXPECT_GE(mb.profile.erratic, 0.0);
    EXPECT_LE(mb.profile.erratic, 1.0);
  }
}

/// Parameterized per-pattern checks.
class PatternSweep : public ::testing::TestWithParam<int> {};

TEST_P(PatternSweep, TargetFeatureFractionGrowsWithIntensity) {
  const auto pattern = static_cast<rb::Pattern>(GetParam());
  const auto target = target_feature(pattern);
  double prev_fraction = -1.0;
  for (int e = 0; e < rb::kIntensityLevels; e += 2) {
    const auto src = rb::pattern_source(pattern, e);
    const auto f = rc::extract_features_from_source(src);
    ASSERT_TRUE(f.ok()) << rb::pattern_name(pattern) << " e=" << e;
    const double fraction =
        f.value().normalized()[static_cast<std::size_t>(target)];
    EXPECT_GT(fraction, prev_fraction)
        << rb::pattern_name(pattern) << " intensity " << e;
    prev_fraction = fraction;
  }
  // At the highest intensity the targeted feature carries substantial
  // weight (memory patterns need companion index arithmetic per access, so
  // their asymptotic fraction is below the pure-arithmetic patterns').
  const auto top = rc::extract_features_from_source(
      rb::pattern_source(pattern, rb::kIntensityLevels - 1));
  ASSERT_TRUE(top.ok());
  EXPECT_GT(top.value().normalized()[static_cast<std::size_t>(target)], 0.2)
      << rb::pattern_name(pattern);
}

TEST_P(PatternSweep, AllIntensitiesCompile) {
  const auto pattern = static_cast<rb::Pattern>(GetParam());
  for (int e = 0; e < rb::kIntensityLevels; ++e) {
    const auto f = rc::extract_features_from_source(rb::pattern_source(pattern, e));
    EXPECT_TRUE(f.ok()) << rb::pattern_name(pattern) << " e=" << e << ": "
                        << (f.ok() ? "" : f.error().message);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternSweep,
                         ::testing::Range(0, static_cast<int>(rb::kNumPatterns)));

TEST(BenchgenTest, PatternNamesFollowPaperConvention) {
  EXPECT_STREQ(rb::pattern_name(rb::Pattern::kIntAdd), "b-int-add");
  EXPECT_STREQ(rb::pattern_name(rb::Pattern::kSf), "b-sf");
  EXPECT_STREQ(rb::pattern_name(rb::Pattern::kLocAccess), "b-loc-access");
}

TEST(BenchgenTest, MixBenchmarksCombineMultipleFeatures) {
  std::size_t multi_feature_mixes = 0;
  for (const auto& mb : suite()) {
    if (mb.name.rfind("b_mix_", 0) != 0) continue;
    std::size_t active = 0;
    for (double c : mb.features.counts) active += c > 0.0 ? 1 : 0;
    if (active >= 3) ++multi_feature_mixes;
  }
  EXPECT_GE(multi_feature_mixes, 8u);
}
